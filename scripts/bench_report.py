#!/usr/bin/env python
"""Emit a machine-readable engine perf snapshot (``BENCH_engine.json``).

Runs the scheduler-focused benchmarks once and writes one JSON document so
future PRs can diff performance machine-readably instead of eyeballing
pytest-benchmark tables:

* engine events/sec on the 256-node campaign-shaped scheduler workload,
  timer-wheel vs the retained PR 8 heap engine;
* wall-clock of one reduced 256-node campaign cell (2 detection cycles),
  with the engine counters of the run;
* mobility tick throughput (vectorised vs scalar) at 1,024 nodes.

Usage::

    PYTHONPATH=src python scripts/bench_report.py --output BENCH_engine.json
    PYTHONPATH=src python scripts/bench_report.py --skip-cell   # quick mode

The document's ``schema`` field is versioned; add keys freely, never
repurpose existing ones.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro.netsim.engine import HeapSimulator, Simulator  # noqa: E402
from repro.netsim.mobility import RandomWalkMobility  # noqa: E402

from benchmarks.test_bench_olsr_scale import _engine_workload  # noqa: E402

SCHEMA = "repro.bench_engine/1"


def bench_engine_throughput(node_count: int = 256, repeats: int = 3) -> dict:
    """Events/sec of both engines on the campaign-shaped workload."""
    results = {}
    events = None
    for name, engine_cls in (("wheel", Simulator), ("heap", HeapSimulator)):
        best = float("inf")
        for _ in range(repeats):
            simulator = engine_cls()
            started = time.perf_counter()
            processed = _engine_workload(simulator, node_count)
            best = min(best, time.perf_counter() - started)
            if events is None:
                events = processed
            assert processed == events, "engines must process identical work"
        results[name] = {"seconds": round(best, 4),
                         "events_per_s": round(events / best)}
    return {
        "nodes": node_count,
        "workload_events": events,
        "wheel": results["wheel"],
        "heap": results["heap"],
        "speedup": round(results["wheel"]["events_per_s"]
                         / results["heap"]["events_per_s"], 3),
    }


def bench_campaign_cell(node_count: int = 256, area_size: float = 2800.0) -> dict:
    """Wall-clock of one reduced campaign cell on the current engine."""
    from repro.experiments.campaign import CampaignSpec, execute_spec

    spec = CampaignSpec(
        run_id="bench-report", seed=1, node_count=node_count,
        liar_fraction=0.1, loss_model="bernoulli", loss_probability=0.1,
        max_speed=2.0, attack_variant="false_existing_link",
        area_size=area_size, warmup=12.0, cycles=2,
    )
    started = time.perf_counter()
    result = execute_spec(spec)
    elapsed = time.perf_counter() - started
    row = result.as_row()
    return {
        "nodes": node_count,
        "area_m": area_size,
        "wall_clock_s": round(elapsed, 2),
        "events": row["events"],
        "events_per_s": round(row["events"] / elapsed),
        "engine_counters": result.stats.get("engine", {}),
    }


def bench_mobility_ticks(node_count: int = 1024, ticks: int = 300) -> dict:
    """Mobility tick throughput, vectorised vs forced-scalar.

    Uses the random-walk model: its tick is draw-bound and dispatches to
    the numpy path in production (waypoint's gather-bound tick stays
    scalar by measured choice, so benchmarking it would compare scalar
    against scalar)."""

    class _Clock:
        now = 0.0

    class _Net:
        def __init__(self, positions):
            self.positions = dict(positions)
            self.simulator = _Clock()

    def measure(scalar: bool) -> float:
        model = RandomWalkMobility(width=5600.0, height=5600.0,
                                   rng=random.Random(7))
        net = _Net(model.place([f"n{i:04d}" for i in range(node_count)]))
        advance = model._advance_scalar if scalar else model._advance
        started = time.perf_counter()
        for tick in range(ticks):
            net.simulator.now = (tick + 1) * model.update_interval
            advance(net)
        return time.perf_counter() - started

    vector_s = measure(scalar=False)
    scalar_s = measure(scalar=True)
    return {
        "nodes": node_count,
        "ticks": ticks,
        "model": "random_walk",
        "vector_ticks_per_s": round(ticks / vector_s, 1),
        "scalar_ticks_per_s": round(ticks / scalar_s, 1),
        "speedup": round(scalar_s / vector_s, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_engine.json",
                        help="path of the JSON report (default: %(default)s)")
    parser.add_argument("--cell-nodes", type=int, default=256,
                        help="campaign-cell size (default: %(default)s)")
    parser.add_argument("--skip-cell", action="store_true",
                        help="skip the campaign-cell run (quick mode)")
    args = parser.parse_args(argv)

    report = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine_throughput": bench_engine_throughput(),
        "mobility_ticks": bench_mobility_ticks(),
    }
    print(f"engine throughput: {report['engine_throughput']['speedup']}x "
          "wheel over heap", flush=True)
    print(f"mobility ticks: {report['mobility_ticks']['speedup']}x "
          "vector over scalar", flush=True)
    if not args.skip_cell:
        report["campaign_cell"] = bench_campaign_cell(args.cell_nodes)
        print(f"campaign cell ({args.cell_nodes} nodes): "
              f"{report['campaign_cell']['wall_clock_s']}s", flush=True)

    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
