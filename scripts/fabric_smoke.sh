#!/usr/bin/env bash
# Fabric smoke test: the acceptance scenario of the distributed campaign
# fabric, driven entirely through the public CLI.
#
#   1. Run the campaign single-process -> the golden report.
#   2. Dispatch the same campaign to a work-stealing queue.
#   3. Start worker A, SIGKILL it mid-run (its leases are left dangling).
#   4. Worker B drains the queue, stealing A's lapsed leases after the TTL.
#   5. Merge both shards (plus the queue's run context) into one store.
#   6. Serve the store and fetch the report twice: the second fetch must be
#      an LRU cache hit and an ETag revalidation must return 304.
#   7. diff the served report against the golden run - byte identity.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
    [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# Cells sized so worker A cannot finish the campaign before it is killed
# (~0.4s per cell, 9 cells), but the whole smoke stays under a minute.
spec=(confidence_sweep --param total_nodes=250 --param rounds=250)
queue="$workdir/queue.sqlite"
shards="$workdir/shards"

echo "== golden single-process run"
python -m repro.experiments run "${spec[@]}" --output "$workdir/golden.txt"

echo "== dispatch"
python -m repro.experiments fabric dispatch "${spec[@]}" --queue "$queue"

echo "== worker A starts, then dies mid-run"
python -m repro.experiments fabric work --queue "$queue" --group a \
    --shard-dir "$shards" --batch 3 --lease-ttl 4 --poll 0.1 \
    > "$workdir/worker-a.log" 2>&1 &
worker_a=$!
sleep 2
kill -9 "$worker_a" 2>/dev/null || true
wait "$worker_a" 2>/dev/null || true
echo "   SIGKILLed worker A (pid $worker_a)"

echo "== worker B drains the queue, stealing A's lapsed leases"
python -m repro.experiments fabric work --queue "$queue" --group b \
    --shard-dir "$shards" --batch 3 --lease-ttl 15 --poll 0.1 \
    | tee "$workdir/worker-b.log"

python -m repro.experiments fabric status --queue "$queue" \
    | tee "$workdir/status.log"
grep -q "done=9" "$workdir/status.log" || {
    echo "smoke: queue did not finish all 9 cells" >&2; exit 1; }

echo "== merge"
merge_args=()
for shard in "$shards"/shard-*.sqlite; do merge_args+=("$shard"); done
python -m repro.experiments fabric merge "${merge_args[@]}" \
    --into "$workdir/merged.sqlite" --queue "$queue"

echo "== serve"
python -m repro.experiments fabric serve --db "$workdir/merged.sqlite" \
    --port 0 > "$workdir/serve.log" 2>&1 &
serve_pid=$!
url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's|^fabric: serving .* at \(http://[^ ]*\)$|\1|p' \
        "$workdir/serve.log" | head -1)
    [[ -n "$url" ]] && break
    sleep 0.1
done
[[ -n "$url" ]] || {
    echo "smoke: service never announced its URL" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}
echo "   serving at $url"

echo "== fetch the report twice: MISS then HIT, then a 304 revalidation"
python - "$url" <<'PY'
import sys

from repro.fabric import client

url = sys.argv[1]
first = client.fetch_report(url, "confidence_sweep")
assert first.status == 200, first.status
assert first.cache == "MISS", first.cache
second = client.fetch_report(url, "confidence_sweep")
assert second.cache == "HIT", second.cache
assert second.body == first.body
revalidated = client.fetch_report(url, "confidence_sweep", etag=first.etag)
assert revalidated.not_modified and revalidated.body == b""
print(f"   cache: MISS -> HIT -> 304 (etag {first.etag})")
PY

python -m repro.experiments report --url "$url" \
    --experiment confidence_sweep --output "$workdir/served.txt"

echo "== diff served report vs golden"
diff "$workdir/served.txt" "$workdir/golden.txt"
echo "fabric smoke: OK (served report byte-identical to the golden run)"
