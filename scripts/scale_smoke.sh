#!/usr/bin/env bash
# Scale smoke test: a reduced 256-node, 2-cycle cell on the full netsim
# backend, run once through the batched delivery path and once through the
# per-receiver scalar path.  Batching is a pure performance optimisation,
# so the two reports must be byte-identical.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# area_size keeps node density constant with the campaign defaults
# (~radio_range neighbourhoods); the stock 800 m arena would put all 256
# nodes in mutual range and square the flooding cost.
cell=(figure1 --backend netsim
      --param total_nodes=256 --param liar_count=25
      --param area_size=2800 --param warmup=12 --param cycles=2)

echo "== batch-mode cell (256 nodes, 2 cycles)"
python -m repro.experiments run "${cell[@]}" \
    --param batch_delivery=true --output "$workdir/batch.txt"

echo "== scalar-mode cell (identical inputs)"
python -m repro.experiments run "${cell[@]}" \
    --param batch_delivery=false --output "$workdir/scalar.txt"

echo "== diff batch vs scalar report"
diff "$workdir/batch.txt" "$workdir/scalar.txt"
echo "scale smoke: OK (batch report byte-identical to the scalar path)"

# Machine-readable perf trajectory: engine events/sec (timer wheel vs the
# retained heap reference), mobility tick throughput, and — unless
# REPRO_SMOKE_SKIP_CELL=1 — one 256-node campaign cell wall-clock.  CI
# uploads the JSON so PRs can be diffed against each other numerically.
echo "== engine perf snapshot (BENCH_engine.json)"
if [[ "${REPRO_SMOKE_SKIP_CELL:-0}" == "1" ]]; then
    python scripts/bench_report.py --skip-cell --output BENCH_engine.json
else
    python scripts/bench_report.py --output BENCH_engine.json
fi
