"""Tests for OLSR messages, link codes and the packet wrapper."""

from __future__ import annotations

import pytest

from repro.olsr.constants import (
    LinkType,
    MessageType,
    NeighborType,
    Willingness,
    decode_link_code,
    encode_link_code,
)
from repro.olsr.messages import (
    HelloMessage,
    HnaMessage,
    LinkAdvertisement,
    MidMessage,
    OlsrMessage,
    TcMessage,
    make_hello,
)
from repro.olsr.packet import OlsrPacket


def test_link_code_roundtrip():
    for link_type in LinkType:
        for neighbor_type in NeighborType:
            code = encode_link_code(link_type, neighbor_type)
            assert decode_link_code(code) == (link_type, neighbor_type)


def test_hello_symmetric_neighbors_includes_mpr_type():
    hello = HelloMessage()
    hello.add_link("n1", LinkType.SYM_LINK, NeighborType.SYM_NEIGH)
    hello.add_link("n2", LinkType.SYM_LINK, NeighborType.MPR_NEIGH)
    hello.add_link("n3", LinkType.ASYM_LINK, NeighborType.NOT_NEIGH)
    assert hello.symmetric_neighbors() == {"n1", "n2"}
    assert hello.mpr_neighbors() == {"n2"}
    assert hello.asymmetric_neighbors() == {"n3"}


def test_hello_lost_neighbors_and_all_addresses():
    hello = HelloMessage()
    hello.add_link("n1", LinkType.LOST_LINK, NeighborType.NOT_NEIGH)
    hello.add_link("n2", LinkType.SYM_LINK, NeighborType.SYM_NEIGH)
    assert hello.lost_neighbors() == {"n1"}
    assert hello.all_addresses() == {"n1", "n2"}


def test_hello_copy_is_independent():
    hello = HelloMessage(willingness=Willingness.WILL_HIGH)
    hello.add_link("n1", LinkType.SYM_LINK, NeighborType.SYM_NEIGH)
    copy = hello.copy()
    copy.add_link("n2", LinkType.SYM_LINK, NeighborType.SYM_NEIGH)
    assert hello.symmetric_neighbors() == {"n1"}
    assert copy.symmetric_neighbors() == {"n1", "n2"}
    assert copy.willingness == Willingness.WILL_HIGH


def test_hello_size_grows_with_links():
    empty = HelloMessage()
    one = HelloMessage(links=[LinkAdvertisement("n1", LinkType.SYM_LINK, NeighborType.SYM_NEIGH)])
    assert one.size_bytes() > empty.size_bytes()


def test_make_hello_classifies_addresses():
    hello = make_hello(
        symmetric={"s1", "s2"},
        mprs={"s1"},
        asymmetric={"a1"},
        lost={"l1"},
    )
    assert hello.symmetric_neighbors() == {"s1", "s2"}
    assert hello.mpr_neighbors() == {"s1"}
    assert hello.asymmetric_neighbors() == {"a1"}
    assert hello.lost_neighbors() == {"l1"}


def test_make_hello_mpr_must_be_symmetric():
    with pytest.raises(ValueError):
        make_hello(symmetric={"a"}, mprs={"b"})


def test_tc_message_copy_and_size():
    tc = TcMessage(ansn=5, advertised_neighbors={"a", "b"})
    copy = tc.copy()
    copy.advertised_neighbors.add("c")
    assert tc.advertised_neighbors == {"a", "b"}
    assert copy.size_bytes() > tc.size_bytes()


def test_mid_and_hna_sizes():
    mid = MidMessage(interface_addresses=["10.0.0.1", "10.0.1.1"])
    hna = HnaMessage(networks=[("192.168.0.0", "255.255.255.0")])
    assert mid.size_bytes() > 0
    assert hna.size_bytes() > 0
    assert mid.message_type == MessageType.MID
    assert hna.message_type == MessageType.HNA


def test_olsr_message_type_follows_body():
    hello = OlsrMessage(originator="a", body=HelloMessage())
    tc = OlsrMessage(originator="a", body=TcMessage(ansn=1))
    assert hello.message_type == MessageType.HELLO
    assert tc.message_type == MessageType.TC


def test_message_sequence_numbers_increase():
    first = OlsrMessage(originator="a", body=TcMessage(ansn=1))
    second = OlsrMessage(originator="a", body=TcMessage(ansn=1))
    assert second.message_seq_number > first.message_seq_number


def test_forwarded_copy_updates_ttl_and_hops_only():
    message = OlsrMessage(originator="a", body=TcMessage(ansn=1), ttl=10, hop_count=2)
    forwarded = message.forwarded_copy()
    assert forwarded.ttl == 9
    assert forwarded.hop_count == 3
    assert forwarded.originator == "a"
    assert forwarded.message_seq_number == message.message_seq_number
    assert forwarded.body is message.body


def test_message_describe_fields():
    message = OlsrMessage(originator="a", body=HelloMessage(), ttl=1)
    described = message.describe()
    assert described["type"] == "HELLO"
    assert described["origin"] == "a"
    assert described["ttl"] == "1"


def test_packet_bundle_and_iteration():
    messages = [
        OlsrMessage(originator="a", body=HelloMessage()),
        OlsrMessage(originator="a", body=TcMessage(ansn=1)),
    ]
    packet = OlsrPacket.bundle("a", messages)
    assert len(packet) == 2
    assert [m.message_type for m in packet] == [MessageType.HELLO, MessageType.TC]
    assert packet.size_bytes() > sum(m.size_bytes() for m in messages)


def test_packet_sequence_numbers_increase():
    a = OlsrPacket(source="a")
    b = OlsrPacket(source="a")
    assert b.packet_seq_number > a.packet_seq_number
