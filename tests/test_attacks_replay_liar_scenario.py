"""Tests for replay/wormhole attacks, liar behaviour and attack scenarios."""

from __future__ import annotations

import random

import pytest

from repro.attacks.liar import LiarBehavior, LieMode
from repro.attacks.link_spoofing import LinkSpoofingAttack
from repro.attacks.replay import ReplayAttack, SequenceNumberHijackAttack, WormholeAttack
from repro.attacks.scenario import AttackScenario
from repro.core.signatures import LinkSpoofingVariant
from repro.logs.records import LogCategory
from repro.olsr.constants import MessageType
from tests.conftest import CHAIN_POSITIONS, make_olsr_network


def converged_chain():
    network, nodes = make_olsr_network(CHAIN_POSITIONS)
    network.run(until=30.0)
    return network, nodes


# ------------------------------------------------------------------- replay
def test_replay_attack_reemits_old_tc():
    network, nodes = converged_chain()
    attack = ReplayAttack(delay=35.0, message_type=MessageType.TC, max_replays=5)
    attack.install(nodes["B"])
    network.run(until=network.now + 60.0)
    assert attack.replayed_count > 0
    # Replayed messages surface as duplicates at the receiving neighbours
    # (their duplicate tuples expire after 30 s, so some may be re-processed;
    # either way A keeps functioning).
    assert nodes["A"].routing_table.destinations()


def test_replay_delay_validation():
    with pytest.raises(ValueError):
        ReplayAttack(delay=0.0)


def test_sequence_hijack_rebroadcasts_with_inflated_sequence():
    network, nodes = converged_chain()
    attack = SequenceNumberHijackAttack(increment=5000)
    attack.install(nodes["B"])
    network.run(until=network.now + 30.0)
    assert attack.hijacked_count > 0


def test_wormhole_tunnels_hellos_between_far_nodes():
    network, nodes = converged_chain()
    # A and D are 3 hops apart; a wormhole between B and C tunnels HELLOs, so
    # A starts hearing D's HELLOs (re-emitted at B) and vice versa.
    wormhole = WormholeAttack(tunnel_latency=0.01, message_type=MessageType.HELLO)
    wormhole.install_pair(nodes["B"], nodes["C"])
    network.run(until=network.now + 30.0)
    assert wormhole.tunnelled_count > 0
    assert wormhole.endpoints() == ("B", "C")
    hello_from_d_at_a = [r for r in nodes["A"].log.by_category(LogCategory.MESSAGE_RX)
                         if r.event == "HELLO" and r.get("origin") == "D"]
    assert hello_from_d_at_a


def test_wormhole_rejects_third_endpoint():
    network, nodes = converged_chain()
    wormhole = WormholeAttack()
    wormhole.install_pair(nodes["A"], nodes["B"])
    with pytest.raises(ValueError):
        wormhole.install(nodes["C"])


# --------------------------------------------------------------------- liar
class FakeDetectorNode:
    def __init__(self, node_id="liar"):
        self.node_id = node_id
        self.answer_mutators = []
        self.now = 0.0


def test_liar_protect_mode_always_confirms():
    liar = LiarBehavior(protected_suspects={"attacker"}, rng=random.Random(0))
    node = FakeDetectorNode()
    liar.install(node)
    mutator = node.answer_mutators[0]
    assert mutator("attacker", "victim", False) is True
    assert mutator("attacker", "victim", None) is True
    assert liar.lies_told == 2


def test_liar_frame_mode_always_denies():
    liar = LiarBehavior(protected_suspects={"innocent"}, mode=LieMode.FRAME,
                        rng=random.Random(0))
    assert liar.answer(True) is False
    assert liar.answer(None) is False


def test_liar_invert_mode():
    liar = LiarBehavior(mode=LieMode.INVERT, rng=random.Random(0))
    assert liar.answer(True) is False
    assert liar.answer(False) is True
    assert liar.answer(None) is True


def test_liar_only_lies_about_protected_suspects():
    liar = LiarBehavior(protected_suspects={"attacker"}, rng=random.Random(0))
    node = FakeDetectorNode()
    liar.install(node)
    mutator = node.answer_mutators[0]
    assert mutator("someone-else", "victim", False) is False
    assert liar.honest_answers == 1


def test_liar_lie_probability_zero_is_always_honest():
    liar = LiarBehavior(lie_probability=0.0, rng=random.Random(0))
    assert all(liar.answer(False) is False for _ in range(10))
    assert liar.lies_told == 0


def test_liar_suppression():
    liar = LiarBehavior(suppress_probability=1.0, rng=random.Random(0))
    assert liar.answer(False) is None
    assert liar.answers_suppressed == 1


def test_liar_deactivation_makes_it_honest():
    liar = LiarBehavior(rng=random.Random(0))
    liar.deactivate()
    assert liar.answer(False) is False


def test_liar_parameter_validation_and_describe():
    with pytest.raises(ValueError):
        LiarBehavior(lie_probability=1.5)
    with pytest.raises(ValueError):
        LiarBehavior(suppress_probability=-0.1)
    liar = LiarBehavior()
    description = liar.describe()
    assert description["mode"] == "protect"
    with pytest.raises(TypeError):
        liar.install(object())


# ------------------------------------------------------------------ scenario
def test_scenario_ground_truth_sets():
    scenario = AttackScenario(name="test")
    scenario.add("i", LinkSpoofingAttack(LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR, ["ghost"]))
    scenario.add("l1", LiarBehavior())
    scenario.add("l2", LiarBehavior())
    assert scenario.attackers() == {"i"}
    assert scenario.liars() == {"l1", "l2"}
    assert scenario.misbehaving() == {"i", "l1", "l2"}
    assert scenario.link_spoofers() == {"i"}
    assert scenario.well_behaving({"i", "l1", "l2", "v", "w"}) == {"v", "w"}


def test_scenario_install_all_unknown_node_raises():
    scenario = AttackScenario()
    scenario.add("ghost", LiarBehavior())
    with pytest.raises(KeyError):
        scenario.install_all({})


def test_scenario_install_all_and_stop_resume():
    network, nodes = converged_chain()
    attack = LinkSpoofingAttack(LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR, ["ghost"])
    scenario = AttackScenario()
    scenario.add("B", attack)
    scenario.install_all(nodes)
    assert attack.is_active(network.now)
    scenario.stop_all()
    assert not attack.is_active(network.now)
    scenario.resume_all()
    assert attack.is_active(network.now)


def test_scenario_describe_rows():
    scenario = AttackScenario()
    scenario.add("i", LinkSpoofingAttack(LinkSpoofingVariant.FALSE_EXISTING_LINK, ["x"]))
    scenario.add("l", LiarBehavior())
    rows = scenario.describe()
    assert len(rows) == 2
    assert {row["node"] for row in rows} == {"i", "l"}
