"""Tests for the SQLite-backed campaign results store and resume semantics."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.campaign import (
    SYSTEMS,
    CampaignGrid,
    CampaignSpec,
    main,
    run_campaign,
)
from repro.experiments.results import ResultsStore, spec_content_hash


def _spec(**overrides) -> CampaignSpec:
    settings = dict(
        run_id="n008-x-r0-detector", seed=1, node_count=8, liar_fraction=0.0,
        loss_model="bernoulli", loss_probability=0.0, max_speed=0.0,
        attack_variant="false_existing_link",
    )
    settings.update(overrides)
    return CampaignSpec(**settings)


def _grid(**overrides) -> CampaignGrid:
    settings = dict(
        node_counts=(8,),
        liar_fractions=(0.0, 0.25),
        loss_models=("bernoulli:0.0",),
        max_speeds=(0.0,),
        systems=("detector", "averaging"),
        base_seed=7,
        warmup=20.0,
        cycles=1,
    )
    settings.update(overrides)
    return CampaignGrid(**settings)


# ------------------------------------------------------------- content hash
def test_spec_content_hash_is_stable_and_field_sensitive():
    spec = _spec()
    assert spec_content_hash(spec) == spec_content_hash(_spec())
    assert spec.content_hash() == spec_content_hash(spec)
    for change in (dict(seed=2), dict(node_count=16), dict(system="beta"),
                   dict(warmup=30.0), dict(cycles=6)):
        assert spec_content_hash(_spec(**change)) != spec_content_hash(spec)


# -------------------------------------------------------------------- store
def test_store_roundtrip_and_streaming_order(tmp_path):
    path = str(tmp_path / "runs.sqlite")
    spec_b = _spec(run_id="b-cell")
    spec_a = _spec(run_id="a-cell", seed=2)
    with ResultsStore(path) as store:
        digest_b = store.record(spec_b, {"run_id": "b-cell", "x": 1.5, "ok": True})
        store.record(spec_a, {"run_id": "a-cell", "x": None, "ok": False})
        assert digest_b == spec_content_hash(spec_b)
        assert digest_b in store
        assert "missing" not in store
        assert len(store) == 2
        assert store.get_row(digest_b) == {"run_id": "b-cell", "x": 1.5, "ok": True}
        assert store.get_row("missing") is None
        # Streaming is ordered by run_id and filterable per campaign.
        assert [r["run_id"] for r in store.iter_rows()] == ["a-cell", "b-cell"]
        assert [r["run_id"] for r in store.iter_rows([digest_b])] == ["b-cell"]

    # Reopening sees the committed rows (durability across connections).
    with ResultsStore(path) as store:
        assert len(store) == 2
        store.discard(digest_b)
        assert len(store) == 1


def test_store_rejects_unknown_schema_version(tmp_path):
    path = str(tmp_path / "runs.sqlite")
    with ResultsStore(path) as store:
        store._connection.execute(
            "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
        )
    with pytest.raises(ValueError):
        ResultsStore(path)


def test_record_replaces_existing_row(tmp_path):
    with ResultsStore(str(tmp_path / "runs.sqlite")) as store:
        spec = _spec()
        digest = store.record(spec, {"run_id": spec.run_id, "v": 1})
        store.record(spec, {"run_id": spec.run_id, "v": 2})
        assert len(store) == 1
        assert store.get_row(digest) == {"run_id": spec.run_id, "v": 2}


def test_completed_hashes_chunks_large_sets(tmp_path):
    with ResultsStore(str(tmp_path / "runs.sqlite")) as store:
        specs = [_spec(run_id=f"cell-{i:04d}", seed=i) for i in range(7)]
        digests = [store.record(s, {"run_id": s.run_id}) for s in specs]
        probe = digests + [f"absent-{i}" for i in range(600)]
        assert store.completed_hashes(probe) == set(digests)


# ------------------------------------------------------------------- resume
def test_interrupted_campaign_resumes_and_report_is_byte_identical(tmp_path):
    grid = _grid()
    total = grid.size()
    assert total == 4
    reference = run_campaign(grid).format_report()  # uninterrupted, in-memory

    path = str(tmp_path / "campaign.sqlite")
    with ResultsStore(path) as store:
        # "Kill" the campaign after 2 of 4 cells.
        partial = run_campaign(grid, store=store, max_new_runs=2)
        assert len(partial.executed_run_ids) == 2
        assert partial.skipped_run_ids == []
        assert len(store) == 2

    # Reopen the store: only the remaining cells are executed.
    with ResultsStore(path) as store:
        resumed = run_campaign(grid, store=store)
        assert len(resumed.skipped_run_ids) == 2
        assert len(resumed.executed_run_ids) == total - 2
        assert set(resumed.skipped_run_ids) | set(resumed.executed_run_ids) == {
            spec.run_id for spec in grid.expand()
        }
        assert resumed.format_report() == reference

    # A third invocation is a pure replay: nothing executes, same report.
    with ResultsStore(path) as store:
        replay = run_campaign(grid, store=store)
        assert replay.executed_run_ids == []
        assert len(replay.skipped_run_ids) == total
        assert replay.format_report() == reference


def test_resume_false_re_executes_stored_cells(tmp_path):
    grid = _grid(liar_fractions=(0.0,), systems=("detector",))
    with ResultsStore(str(tmp_path / "campaign.sqlite")) as store:
        first = run_campaign(grid, store=store)
        assert len(first.executed_run_ids) == 1
        again = run_campaign(grid, store=store, resume=False)
        assert len(again.executed_run_ids) == 1
        assert again.skipped_run_ids == []


def test_store_backed_campaign_matches_parallel_and_serial(tmp_path):
    grid = _grid(systems=("detector",))
    serial = run_campaign(grid).format_report()
    with ResultsStore(str(tmp_path / "campaign.sqlite")) as store:
        parallel = run_campaign(grid, workers=2, store=store)
        assert parallel.format_report() == serial


# ------------------------------------------------------------- systems axis
def test_one_grid_compares_detector_against_all_baselines():
    grid = _grid(liar_fractions=(0.25,), systems=SYSTEMS, cycles=2, warmup=25.0)
    result = run_campaign(grid, workers=2)
    rows = result.as_rows()
    assert len(rows) == len(SYSTEMS)
    assert sorted(row["system"] for row in rows) == sorted(SYSTEMS)
    # Every system judged the identical simulation.
    assert len({row["seed"] for row in rows}) == 1
    assert len({row["frames_sent"] for row in rows}) == 1
    comparison = result.aggregate(("system",))
    assert [row["system"] for row in comparison] == sorted(SYSTEMS)
    report = result.format_report()
    assert "Detector vs baselines" in report
    for system in SYSTEMS:
        assert system in report


# ---------------------------------------------------------------------- CLI
def _cli_args(db_path: str) -> list:
    return ["--node-counts", "8", "--liar-fractions", "0.0",
            "--loss", "bernoulli:0.0", "--speeds", "0",
            "--systems", "detector,averaging",
            "--warmup", "20", "--cycles", "1", "--db", db_path]


def test_cli_db_resume_and_report_subcommand(tmp_path, capsys):
    db_path = str(tmp_path / "campaign.sqlite")
    out_a = tmp_path / "a.txt"
    out_b = tmp_path / "b.txt"
    out_c = tmp_path / "c.txt"

    assert main(_cli_args(db_path) + ["--output", str(out_a)]) == 0
    # Resumed invocation executes nothing but reports identically.
    assert main(_cli_args(db_path) + ["--resume", "--output", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    # The report subcommand re-aggregates the store without re-running.
    assert main(["report", "--db", db_path, "--output", str(out_c)]) == 0
    assert out_c.read_bytes() == out_a.read_bytes()
    capsys.readouterr()  # swallow the printed reports


def test_cli_resume_requires_db(capsys):
    with pytest.raises(SystemExit):
        main(["--resume"])
    capsys.readouterr()


def test_cli_report_subcommand_missing_db(tmp_path, capsys):
    missing = str(tmp_path / "nope" / "x.sqlite")
    assert main(["report", "--db", missing]) == 1
    # A mistyped path must not be silently created as an empty store.
    missing_file = tmp_path / "typo.sqlite"
    assert main(["report", "--db", str(missing_file)]) == 1
    assert not missing_file.exists()
    capsys.readouterr()


def test_cli_run_with_unopenable_db_errors_cleanly(tmp_path, capsys):
    bad = str(tmp_path / "no_such_dir" / "c.sqlite")
    assert main(["--node-counts", "8", "--cycles", "1", "--db", bad]) == 1
    assert "cannot open results store" in capsys.readouterr().err


# --------------------------------------------------------- hostile payloads
def test_nan_and_infinite_metrics_round_trip(tmp_path):
    """NaN/±inf metric values survive storage and resume intact.

    Aggregations can legitimately produce non-finite floats (empty-cell
    means, saturating ratios); the store must neither crash nor silently
    rewrite them, and the stored bytes must be identical after reopening —
    that is what keeps resumed reports byte-identical to live ones.
    """
    import json
    import math

    path = str(tmp_path / "runs.sqlite")
    row = {"run_id": "hostile-nan", "nan": float("nan"),
           "pos": float("inf"), "neg": float("-inf"), "finite": 0.1 + 0.2}
    with ResultsStore(path) as store:
        spec = _spec(run_id="hostile-nan")
        digest = store.record(spec, row)
        raw_before = store._connection.execute(
            "SELECT row_json FROM runs WHERE spec_hash = ?", (digest,)
        ).fetchone()[0]

    with ResultsStore(path) as store:  # resume: fresh connection
        raw_after = store._connection.execute(
            "SELECT row_json FROM runs WHERE spec_hash = ?", (digest,)
        ).fetchone()[0]
        assert raw_after == raw_before  # byte-identical across resume
        loaded = store.get_row(digest)
        assert math.isnan(loaded["nan"])
        assert loaded["pos"] == float("inf")
        assert loaded["neg"] == float("-inf")
        assert loaded["finite"] == 0.1 + 0.2  # repr-exact, not re-rounded
        streamed = list(store.iter_rows([digest]))
        assert json.dumps(streamed[0]) == json.dumps(loaded)


def test_unicode_and_param_heavy_specs_round_trip(tmp_path):
    """Unicode ids/values and very wide parameter tuples store losslessly."""
    from repro.experiments.engine import ExperimentSpec

    heavy_params = tuple(
        (f"param_{i:03d}", value)
        for i, value in enumerate(
            [0.1 * i for i in range(120)]
            + ["véhicule-nœud", "攻撃者", "liar:нет", None, True, -1]
        )
    )
    spec = ExperimentSpec(
        experiment="hostile-experiment-☃",
        cell_id="liar_ratio=26.3%-μ=0.5",
        run_id="hostile-☃/liar_ratio=26.3%",
        seed=7,
        backend="netsim",
        params=heavy_params,
    )
    row = {"run_id": spec.run_id, "note": "tröst ≤ 0.4 — 信頼", "ok": True}

    path = str(tmp_path / "runs.sqlite")
    with ResultsStore(path) as store:
        digest = store.record(spec, row)
        assert digest == spec.content_hash()

    with ResultsStore(path) as store:
        assert store.get_row(digest) == row
        assert list(store.iter_rows([digest])) == [row]
        import json

        stored_spec = json.loads(store._connection.execute(
            "SELECT spec_json FROM runs WHERE spec_hash = ?", (digest,)
        ).fetchone()[0])
        assert stored_spec["params"] == [list(p) for p in heavy_params]
        assert stored_spec["run_id"] == spec.run_id


def test_multi_row_cells_flatten_identically_after_resume(tmp_path):
    """A multi-row engine cell streams the same flat rows before and after
    reopening, interleaved correctly with single-row campaign cells."""
    import json

    multi = [{"run_id": "multi", "node": f"n{i:02d}", "trust": i / 7.0}
             for i in range(7)]
    single = {"run_id": "single", "x": 1}
    path = str(tmp_path / "runs.sqlite")
    with ResultsStore(path) as store:
        digest_multi = store.record(_spec(run_id="multi", seed=3), multi)
        digest_single = store.record(_spec(run_id="single", seed=4), single)
        live = list(store.iter_rows([digest_multi, digest_single]))

    with ResultsStore(path) as store:
        resumed = list(store.iter_rows([digest_multi, digest_single]))
        assert json.dumps(resumed) == json.dumps(live)
        assert resumed == multi + [single]
        assert store.get_row(digest_multi) == multi


# ------------------------------------------------------------ stored fields
def test_stored_spec_json_round_trips(tmp_path):
    with ResultsStore(str(tmp_path / "runs.sqlite")) as store:
        spec = _spec(system="beta")
        digest = store.record(spec, {"run_id": spec.run_id})
        import json

        stored = store._connection.execute(
            "SELECT system, spec_json FROM runs WHERE spec_hash = ?", (digest,)
        ).fetchone()
        assert stored[0] == "beta"
        assert json.loads(stored[1]) == dataclasses.asdict(spec)


# ------------------------------------------------- fabric-facing store APIs
def test_count_rows_flattens_multi_row_cells(tmp_path):
    with ResultsStore(str(tmp_path / "runs.sqlite")) as store:
        assert store.count_rows() == 0
        store.record(_spec(run_id="single"), {"run_id": "single"})
        multi = [{"run_id": "multi", "node": i} for i in range(5)]
        store.record(_spec(run_id="multi", seed=2), multi)
        assert store.count_rows() == 6
        assert len(store) == 2


def test_has_cell_mirrors_containment(tmp_path):
    with ResultsStore(str(tmp_path / "runs.sqlite")) as store:
        digest = store.record(_spec(), {"run_id": "x"})
        assert store.has_cell(digest)
        assert not store.has_cell("absent")


def test_meta_round_trip_and_prefix_iteration(tmp_path):
    with ResultsStore(str(tmp_path / "runs.sqlite")) as store:
        store.set_meta("context:figure1", '{"params":{}}')
        store.set_meta("context:figure2", '{"params":{"rounds":3}}')
        store.set_meta("note", "hello")
        assert store.get_meta("context:figure1") == '{"params":{}}'
        assert store.get_meta("absent", "fallback") == "fallback"
        assert list(store.iter_meta("context:")) == [
            ("context:figure1", '{"params":{}}'),
            ("context:figure2", '{"params":{"rounds":3}}'),
        ]
        # schema_version is managed by the store and never exposed/overwritten.
        assert all(key != "schema_version" for key, _ in store.iter_meta())
        with pytest.raises(ValueError):
            store.set_meta("schema_version", "999")


def test_iter_records_streams_raw_stored_text(tmp_path):
    import json

    with ResultsStore(str(tmp_path / "runs.sqlite")) as store:
        spec = _spec(run_id="raw")
        digest = store.record(spec, {"run_id": "raw", "x": float("inf")})
        records = list(store.iter_records())
        assert len(records) == 1
        record = records[0]
        assert record.spec_hash == digest
        assert record.run_id == "raw"
        assert record.system == "detector"
        assert record.row_json == store.raw_row_json(digest)
        assert json.loads(record.spec_json)["run_id"] == "raw"
