"""Property-based tests for the stable seed-derivation helpers.

These guard the PR 3 seeding fixes: every RNG stream in the system now
derives from ``stable_seed``/``stable_digest``, so the properties below are
load-bearing for the whole resumable-campaign design — cross-process
determinism (content-hash resume re-runs cells in fresh workers),
independence of derived streams (sibling cells must not correlate) and
collision-freedom over the derivation paths the codebase actually uses.
"""

from __future__ import annotations

import random
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seeding import stable_digest, stable_seed

# ------------------------------------------------------- derivation corpus
#: Derivation paths modelled on every stable_seed/stable_digest call site in
#: the codebase (liar streams, channel models, mobility, clique epochs,
#: engine cell ids, fuzzer samples).  The no-collision test freezes this
#: corpus: it is deterministic, so one green run means green forever.
def derivation_corpus() -> list:
    labels = ["loss-model", "mobility", "oracle-transport", "grayhole",
              "self-liar", "clique", "base-grayhole", "threshold-grayhole",
              "initial-trust"]
    labels += [f"liar:n{i:02d}" for i in range(64)]
    # Install-time per-node attack streams (base seed 0 in production, but
    # collision-freedom must hold under any base).
    labels += [f"attack:grayhole:n{i:02d}" for i in range(32)]
    labels += [f"attack:liar:n{i:02d}" for i in range(32)]
    labels += [f"attack:threshold-grayhole:n{i:02d}" for i in range(16)]
    labels += [f"attack-search:{gen}:{child}"
               for gen in range(8) for child in range(8)]
    labels += [f"clique:n{i:02d}@{epoch}" for i in range(16) for epoch in range(12)]
    labels += [f"fuzz:{i}" for i in range(256)]
    labels += [f"fuzz-seed:{i}" for i in range(256)]
    labels += [f"owner:n{i:02d}" for i in range(64)]
    for experiment in ("figure1", "figure2", "figure3", "ablation",
                       "confidence_sweep", "gravity_ablation", "mobility"):
        for axis in ("liar_ratio", "max_speed", "gamma", "confidence"):
            for value in ("0", "0.5", "1", "2", "5", "6.7%", "26.3%", "43.2%"):
                labels.append(f"{experiment}/{axis}={value}")
    return labels


def test_corpus_has_no_seed_collisions():
    labels = derivation_corpus()
    assert len(labels) == len(set(labels))  # the corpus itself is duplicate-free
    for base_seed in (0, 7, 23, 2 ** 31 - 1):
        seeds = [stable_seed(base_seed, label) for label in labels]
        assert len(set(seeds)) == len(labels), (
            f"stable_seed collision under base seed {base_seed}")


def test_corpus_has_no_digest_collisions():
    labels = derivation_corpus()
    digests = [stable_digest(label) for label in labels]
    assert len(set(digests)) == len(labels)


# --------------------------------------------------- cross-process stability
def test_seeds_are_identical_across_processes():
    """A fresh interpreter derives byte-identical seeds (no hash salting).

    This is the property ``PYTHONHASHSEED``-based derivations violate and
    the reason resume-from-store is sound: a worker process re-executing a
    cell must reproduce the parent's randomness exactly.
    """
    labels = derivation_corpus()[:48]
    script = (
        "import sys, json\n"
        "from repro.seeding import stable_seed, stable_digest\n"
        "labels = json.loads(sys.stdin.read())\n"
        "out = [[stable_digest(l)] + [stable_seed(b, l) for b in (0, 7, 23)]\n"
        "       for l in labels]\n"
        "print(json.dumps(out))\n"
    )
    import json

    results = []
    for hash_seed in ("0", "12345"):  # two different interpreter salts
        process = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(labels), capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
        )
        assert process.returncode == 0, process.stderr
        results.append(json.loads(process.stdout))
    assert results[0] == results[1]
    expected = [[stable_digest(l)] + [stable_seed(b, l) for b in (0, 7, 23)]
                for l in labels]
    assert results[0] == expected


# ------------------------------------------------------- stream independence
def test_derived_streams_are_independent():
    """Streams derived under distinct labels are decorrelated, not shifted.

    An additive derivation (``seed + offset``) makes sibling streams
    overlap after a lag; a digest derivation must not.  We check the first
    draws of many derived streams are all distinct, and that two labels'
    streams do not coincide under a common base seed.
    """
    base = 7
    first_draws = set()
    for label in derivation_corpus()[:200]:
        rng = random.Random(stable_seed(base, label))
        first_draws.add(rng.random())
    assert len(first_draws) == 200

    stream_a = [random.Random(stable_seed(base, "liar:n00")).random() for _ in range(1)]
    rng_a = random.Random(stable_seed(base, "liar:n00"))
    rng_b = random.Random(stable_seed(base, "liar:n01"))
    a = [rng_a.random() for _ in range(64)]
    b = [rng_b.random() for _ in range(64)]
    assert a != b
    assert not set(a) & set(b)
    assert stream_a[0] == a[0]  # re-deriving replays the same stream


@given(st.integers(min_value=0, max_value=2 ** 31 - 1),
       st.text(min_size=0, max_size=64))
@settings(max_examples=200, deadline=None)
def test_stable_seed_is_deterministic_and_in_range(base_seed, label):
    first = stable_seed(base_seed, label)
    assert first == stable_seed(base_seed, label)
    assert 0 <= first < 2 ** 31
    assert stable_digest(label) == stable_digest(label)
    assert 0 <= stable_digest(label) < 2 ** 32


@given(st.integers(min_value=0, max_value=2 ** 20), st.integers(min_value=0, max_value=2 ** 20))
@settings(max_examples=100, deadline=None)
def test_distinct_bases_rarely_alias_fixed_label(base_a, base_b):
    """Under one label, distinct base seeds derive distinct seeds.

    The multiplier 1_000_003 is odd and the modulus is 2**31, so
    ``base * 1_000_003 mod 2**31`` is injective over bases below 2**31 —
    two campaigns with different base seeds can never share every stream.
    """
    if base_a == base_b:
        return
    assert stable_seed(base_a, "loss-model") != stable_seed(base_b, "loss-model")
