"""Tests for the ablation / baseline comparison and the confidence sweep."""

from __future__ import annotations

import pytest

from repro.core.decision import DecisionOutcome
from repro.experiments.ablation import run_ablation
from repro.experiments.config import ScenarioConfig, paper_default_config
from repro.experiments.confidence_sweep import run_confidence_sweep


@pytest.fixture(scope="module")
def ablation():
    return run_ablation(paper_default_config())


def test_ablation_covers_all_methods(ablation):
    assert set(ablation.methods) == {
        "trust-weighted", "unweighted-vote", "cap-olsr", "beta-reputation",
        "report-averaging",
    }
    for trajectory in ablation.methods.values():
        assert len(trajectory.scores) == 25
        assert trajectory.final_score is not None


def test_ablation_trust_weighting_beats_unweighted_vote(ablation):
    ours = ablation.methods["trust-weighted"]
    vote = ablation.methods["unweighted-vote"]
    assert ours.final_score < vote.final_score
    assert ours.detection_round is not None
    # The plain vote cannot push past the liar bias (stays at the fixed ratio).
    assert vote.final_score == pytest.approx(vote.scores[0], abs=0.2)


def test_ablation_final_scores_separate_ours_from_baselines(ablation):
    ours = ablation.methods["trust-weighted"].final_score
    for name in ("cap-olsr", "report-averaging", "beta-reputation"):
        assert ours < ablation.methods[name].final_score


def test_ablation_rows_structure(ablation):
    rows = ablation.as_rows()
    assert len(rows) == 5
    assert {row["method"] for row in rows} == set(ablation.methods)


def test_ablation_same_answer_stream_for_all_methods(ablation):
    # Every method consumed the same number of rounds from the same experiment.
    rounds = {len(t.scores) for t in ablation.methods.values()}
    assert len(rounds) == 1


def test_ablation_with_small_config_runs():
    result = run_ablation(ScenarioConfig(seed=3, rounds=5))
    assert all(len(t.scores) == 5 for t in result.methods.values())


# ------------------------------------------------------------ confidence sweep
@pytest.fixture(scope="module")
def sweep():
    return run_confidence_sweep(confidence_levels=(0.90, 0.95, 0.99),
                                gammas=(0.4, 0.6, 0.8))


def test_sweep_has_one_row_per_configuration(sweep):
    assert len(sweep.rows) == 9
    pairs = {(row.confidence_level, row.gamma) for row in sweep.rows}
    assert len(pairs) == 9


def test_sweep_low_gamma_configurations_detect_the_intruder(sweep):
    for row in sweep.rows:
        if row.gamma <= 0.6:
            assert row.final_outcome == DecisionOutcome.INTRUDER
            assert row.rounds_to_decision is not None


def test_sweep_higher_confidence_never_speeds_up_detection(sweep):
    by_gamma = {}
    for row in sweep.rows:
        if row.rounds_to_decision is not None:
            by_gamma.setdefault(row.gamma, {})[row.confidence_level] = row.rounds_to_decision
    for gamma, per_level in by_gamma.items():
        if 0.90 in per_level and 0.99 in per_level:
            assert per_level[0.99] >= per_level[0.90]


def test_sweep_higher_gamma_never_speeds_up_detection(sweep):
    by_level = {}
    for row in sweep.rows:
        if row.rounds_to_decision is not None:
            by_level.setdefault(row.confidence_level, {})[row.gamma] = row.rounds_to_decision
    for level, per_gamma in by_level.items():
        gammas = sorted(per_gamma)
        for low, high in zip(gammas, gammas[1:]):
            assert per_gamma[high] >= per_gamma[low]


def test_sweep_margin_grows_with_confidence_level(sweep):
    margins = {row.confidence_level: row.final_margin for row in sweep.rows
               if row.gamma == 0.6 and row.final_margin is not None}
    assert margins[0.99] > margins[0.90]


def test_sweep_correct_fraction_and_rows(sweep):
    assert sweep.correct_fraction() >= 0.5
    rows = sweep.as_rows()
    assert len(rows) == 9
    assert all("verdict_correct" in row for row in rows)
