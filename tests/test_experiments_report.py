"""Tests for the plain-text report helpers."""

from __future__ import annotations

from repro.experiments.report import (
    aggregate_rows,
    format_series,
    format_table,
    format_trajectories,
    render_report,
    sparkline,
)


def test_format_table_basic_layout():
    rows = [
        {"node": "n1", "trust": 0.41234, "role": "honest"},
        {"node": "n2", "trust": 0.05, "role": "liar"},
    ]
    text = format_table(rows, title="Trust")
    lines = text.splitlines()
    assert lines[0] == "Trust"
    assert "node" in lines[1] and "trust" in lines[1] and "role" in lines[1]
    assert "0.4123" in text
    assert "liar" in text


def test_format_table_handles_none_and_empty():
    assert "(no data)" in format_table([], title="Empty")
    text = format_table([{"a": None, "b": 1}])
    assert "-" in text


def test_format_table_columns_union_of_all_rows():
    # Keys appearing only in later rows must still get a column (the old
    # first-row-only behaviour silently dropped them).
    rows = [
        {"a": 1, "b": 2},
        {"a": 3, "c": 4},
    ]
    text = format_table(rows)
    header = text.splitlines()[0]
    assert "a" in header and "b" in header and "c" in header
    first_data = text.splitlines()[2]
    assert first_data.rstrip().endswith("-")  # row 1 has no "c" value


def test_format_table_column_order_first_occurrence_wins():
    rows = [{"x": 1}, {"y": 2, "x": 3}]
    header = format_table(rows).splitlines()[0]
    assert header.index("x") < header.index("y")


def test_format_table_alignment_consistent_width():
    rows = [{"col": "short"}, {"col": "a-much-longer-value"}]
    text = format_table(rows)
    data_lines = text.splitlines()[2:]
    assert len({len(line) for line in data_lines}) == 1


def test_format_series():
    text = format_series({"26.3%": [0.1, -0.5], "6.7%": [-0.9, -1.0]}, title="Detect")
    lines = text.splitlines()
    assert lines[0] == "Detect"
    assert any("+0.10" in line for line in lines)
    assert any("-1.00" in line for line in lines)
    assert "(no series)" in format_series({}, title="x")


def test_sparkline_length_and_extremes():
    values = [0.0, 0.5, 1.0]
    line = sparkline(values, low=0.0, high=1.0)
    assert len(line) == 3
    assert line[0] == "▁"
    assert line[-1] == "█"
    assert sparkline([]) == ""
    assert sparkline([0.5, 0.5], low=0.5, high=0.5) == "▁▁"


def test_format_trajectories():
    text = format_trajectories(
        {"liar": [0.7, 0.3, 0.05], "honest": [0.3, 0.4, 0.5]},
        roles={"liar": "liar", "honest": "honest"},
        title="Figure 1",
    )
    assert text.splitlines()[0] == "Figure 1"
    assert "0.70->0.05" in text
    assert "honest" in text
    assert "(no trajectories)" in format_trajectories({})


def test_render_report_joins_sections():
    report = render_report(["section A", "", "section B"])
    assert report == "section A\n\nsection B"


def test_aggregate_rows_accepts_a_row_generator():
    # Aggregation is streaming: a one-shot iterator (e.g. a database cursor)
    # must produce the same result as a list.
    rows = [
        {"g": "a", "v": 1.0},
        {"g": "a", "v": 3.0},
        {"g": "b", "v": 5.0},
    ]
    from_list = aggregate_rows(rows, ("g",), ("v",))
    from_iter = aggregate_rows(iter(rows), ("g",), ("v",))
    assert from_list == from_iter
    assert from_list[0] == {"g": "a", "runs": 2, "v": 2.0}
