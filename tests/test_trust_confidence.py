"""Tests for the confidence interval (Eq. 9)."""

from __future__ import annotations

import math

import pytest

from repro.trust.confidence import (
    ConfidenceInterval,
    confidence_interval,
    effective_sample_size,
    margin_of_error,
    sample_standard_deviation,
    weighted_margin_of_error,
    weighted_sample_standard_deviation,
    z_value,
)


def test_z_value_reference_points():
    assert z_value(0.95) == pytest.approx(1.96, abs=0.01)
    assert z_value(0.90) == pytest.approx(1.645, abs=0.01)
    assert z_value(0.99) == pytest.approx(2.576, abs=0.01)


def test_z_value_monotone_in_confidence_level():
    assert z_value(0.99) > z_value(0.95) > z_value(0.90) > z_value(0.80)


def test_z_value_via_approximation_for_unusual_level():
    # 0.97 is not in the table; the approximation must still be sensible.
    assert z_value(0.95) < z_value(0.97) < z_value(0.99)


def test_z_value_rejects_invalid_levels():
    with pytest.raises(ValueError):
        z_value(0.0)
    with pytest.raises(ValueError):
        z_value(1.0)


def test_sample_standard_deviation_known_value():
    # Sample std of [1, -1] with n-1 denominator is sqrt(2).
    assert sample_standard_deviation([1.0, -1.0]) == pytest.approx(math.sqrt(2.0))


def test_sample_standard_deviation_small_samples_are_zero():
    assert sample_standard_deviation([]) == 0.0
    assert sample_standard_deviation([0.7]) == 0.0


def test_sample_standard_deviation_zero_for_identical_values():
    assert sample_standard_deviation([0.5] * 10) == 0.0


def test_margin_of_error_formula():
    samples = [1.0, -1.0, 1.0, -1.0]
    sigma = sample_standard_deviation(samples)
    expected = z_value(0.95) * sigma / math.sqrt(4)
    assert margin_of_error(samples, 0.95) == pytest.approx(expected)


def test_margin_of_error_empty_sample_is_zero():
    assert margin_of_error([], 0.95) == 0.0


def test_margin_shrinks_with_more_samples():
    small = margin_of_error([1.0, -1.0] * 2, 0.95)
    large = margin_of_error([1.0, -1.0] * 50, 0.95)
    assert large < small


def test_margin_grows_with_confidence_level():
    samples = [1.0, -1.0, 0.0, 1.0]
    assert margin_of_error(samples, 0.99) > margin_of_error(samples, 0.90)


def test_weighted_std_downweights_unreliable_samples():
    samples = [-1.0, -1.0, -1.0, 1.0]
    equal = weighted_sample_standard_deviation(samples, [1.0, 1.0, 1.0, 1.0])
    # The lone dissenting +1 comes from an almost-zero-weight responder.
    discounted = weighted_sample_standard_deviation(samples, [1.0, 1.0, 1.0, 0.01])
    assert discounted < equal


def test_weighted_std_falls_back_when_all_weights_zero():
    samples = [1.0, -1.0]
    assert weighted_sample_standard_deviation(samples, [0.0, 0.0]) == pytest.approx(
        sample_standard_deviation(samples))


def test_weighted_std_length_mismatch_raises():
    with pytest.raises(ValueError):
        weighted_sample_standard_deviation([1.0], [1.0, 2.0])


def test_effective_sample_size():
    assert effective_sample_size([1.0, 1.0, 1.0, 1.0]) == pytest.approx(4.0)
    assert effective_sample_size([1.0, 0.0, 0.0]) == pytest.approx(1.0)
    assert effective_sample_size([]) == 0.0


def test_weighted_margin_tightens_as_liar_weights_vanish():
    samples = [-1.0] * 10 + [1.0] * 4
    full_weights = [0.5] * 14
    shrunk_weights = [0.5] * 10 + [0.01] * 4
    assert weighted_margin_of_error(samples, shrunk_weights, 0.95) < \
        weighted_margin_of_error(samples, full_weights, 0.95)


def test_weighted_margin_empty_and_zero_weight_fallback():
    assert weighted_margin_of_error([], [], 0.95) == 0.0
    samples = [1.0, -1.0]
    assert weighted_margin_of_error(samples, [0.0, 0.0], 0.95) == pytest.approx(
        margin_of_error(samples, 0.95))


def test_confidence_interval_object():
    interval = confidence_interval([1.0, -1.0, 1.0, -1.0], center=0.0, confidence_level=0.95)
    assert isinstance(interval, ConfidenceInterval)
    assert interval.lower == pytest.approx(-interval.margin)
    assert interval.upper == pytest.approx(interval.margin)
    assert interval.width == pytest.approx(2 * interval.margin)
    assert interval.sample_size == 4
    assert interval.contains(0.0)
    assert not interval.contains(10.0)


def test_confidence_interval_conclusiveness():
    tight = ConfidenceInterval(center=-0.9, margin=0.05, confidence_level=0.95, sample_size=10)
    wide = ConfidenceInterval(center=-0.9, margin=0.5, confidence_level=0.95, sample_size=3)
    assert tight.is_conclusive(0.6)
    assert not wide.is_conclusive(0.6)
    positive = ConfidenceInterval(center=0.9, margin=0.1, confidence_level=0.95, sample_size=10)
    assert positive.is_conclusive(0.6)
