"""Golden regression tests for RFC 3626 MPR selection on fixed topologies.

Each case pins the exact MPR set the heuristic must produce on a
hand-checked topology, *and* asserts the RFC §8.3.1 coverage property
through the same code path the validation harness uses
(:func:`repro.validation.check_mpr_coverage` /
:func:`repro.olsr.mpr.mpr_coverage_complete`), so a regression in either
the heuristic or the invariant checker trips these before a fuzzing
campaign has to find it.
"""

from __future__ import annotations

from repro.olsr.constants import Willingness
from repro.olsr.mpr import mpr_coverage_complete, select_mprs
from repro.experiments.scenario import build_canonical_scenario, build_manet_scenario
from repro.validation import check_mpr_coverage


def _coverage_property(result, coverage, symmetric, local="self"):
    """The RFC coverage property, via the shared helper."""
    two_hop = set()
    for neighbor in symmetric:
        two_hop |= {
            a for a in coverage.get(neighbor, set())
            if a not in symmetric and a not in (local, neighbor)
        }
    return mpr_coverage_complete(result.mprs, result.coverage,
                                 two_hop - result.uncovered)


# ----------------------------------------------------------- fixed topologies
def test_golden_chain_topology():
    # self - a - x : a is the only bridge, so it must be the single MPR.
    symmetric = {"a"}
    coverage = {"a": {"x"}}
    result = select_mprs(symmetric, coverage, local_address="self")
    assert result.mprs == {"a"}
    assert result.isolated_two_hops == {"x": "a"}
    assert _coverage_property(result, coverage, symmetric)


def test_golden_diamond_prefers_higher_coverage():
    # b covers both 2-hop nodes, a covers one of them: b alone suffices.
    symmetric = {"a", "b"}
    coverage = {"a": {"x"}, "b": {"x", "y"}}
    result = select_mprs(symmetric, coverage, local_address="self")
    assert result.mprs == {"b"}
    assert _coverage_property(result, coverage, symmetric)


def test_golden_sole_provider_beats_coverage_count():
    # c covers the most, but a and b are sole providers of x and y.
    symmetric = {"a", "b", "c"}
    coverage = {"a": {"x"}, "b": {"y"}, "c": {"p", "q"}}
    result = select_mprs(symmetric, coverage, local_address="self")
    assert result.mprs == {"a", "b", "c"}
    assert result.isolated_two_hops == {"p": "c", "q": "c", "x": "a", "y": "b"}
    assert _coverage_property(result, coverage, symmetric)


def test_golden_willingness_tie_break():
    # a and b each cover both 2-hop nodes; the higher willingness wins.
    symmetric = {"a", "b"}
    coverage = {"a": {"x", "y"}, "b": {"x", "y"}}
    result = select_mprs(
        symmetric, coverage,
        willingness={"b": Willingness.WILL_HIGH},
        local_address="self",
    )
    assert result.mprs == {"b"}
    assert _coverage_property(result, coverage, symmetric)


def test_golden_will_never_neighbors_are_excluded():
    # The only provider of x is WILL_NEVER: x must surface as uncovered,
    # never silently "covered" by an ineligible neighbour.
    symmetric = {"a", "b"}
    coverage = {"a": {"x"}, "b": {"y"}}
    result = select_mprs(
        symmetric, coverage,
        willingness={"a": Willingness.WILL_NEVER},
        local_address="self",
    )
    assert result.mprs == {"b"}
    assert result.uncovered == {"x"}
    assert _coverage_property(result, coverage, symmetric)


def test_golden_redundancy_selects_extra_providers():
    symmetric = {"a", "b", "c"}
    coverage = {"a": {"x"}, "b": {"x"}, "c": {"x"}}
    plain = select_mprs(symmetric, coverage, local_address="self")
    assert len(plain.mprs) == 1
    redundant = select_mprs(symmetric, coverage, local_address="self",
                            redundancy=1)
    assert len(redundant.mprs) == 2
    assert _coverage_property(redundant, coverage, symmetric)


def test_golden_own_address_and_one_hops_excluded_from_two_hop_set():
    # Addresses equal to the selector or inside N are not 2-hop targets.
    symmetric = {"a", "b"}
    coverage = {"a": {"self", "b"}, "b": {"a"}}
    result = select_mprs(symmetric, coverage, local_address="self")
    assert result.mprs == set()
    assert result.uncovered == set()


# --------------------------------------------- live scenarios, shared checker
def test_canonical_scenario_satisfies_mpr_invariant():
    scenario = build_canonical_scenario(seed=11)
    scenario.warm_up(30.0)
    assert check_mpr_coverage(scenario) == []
    # The canonical topology is engineered so the victim needs an MPR.
    assert scenario.victim.olsr.mpr_set


def test_random_manet_satisfies_mpr_invariant_across_seeds():
    for seed in (1, 5, 23):
        scenario = build_manet_scenario(node_count=12, liar_count=2, seed=seed)
        scenario.warm_up(30.0)
        assert check_mpr_coverage(scenario) == [], f"seed {seed}"
