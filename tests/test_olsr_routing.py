"""Tests for the routing-table calculation."""

from __future__ import annotations

from repro.olsr.link_state import NeighborSet, NeighborTuple, TwoHopNeighborSet, TwoHopTuple
from repro.olsr.routing import RouteEntry, RoutingTable, compute_routing_table
from repro.olsr.topology import TopologySet


def build_state(symmetric, two_hop_pairs, tc_edges):
    neighbors = NeighborSet()
    for address in symmetric:
        neighbors.upsert(NeighborTuple(address, symmetric=True))
    two_hop = TwoHopNeighborSet()
    for via, dest in two_hop_pairs:
        two_hop.upsert(TwoHopTuple(via, dest, expiry_time=1000.0))
    topology = TopologySet()
    for ansn, (last, dest) in enumerate(tc_edges, start=1):
        topology.process_tc(last, ansn=ansn, advertised={dest}, now=0.0, hold_time=1000.0)
    return neighbors, two_hop, topology


def test_one_hop_routes():
    neighbors, two_hop, topology = build_state({"a", "b"}, [], [])
    routes = compute_routing_table("me", neighbors, two_hop, topology)
    assert routes["a"] == RouteEntry("a", "a", 1)
    assert routes["b"].distance == 1


def test_two_hop_routes_via_advertising_neighbor():
    neighbors, two_hop, topology = build_state({"a"}, [("a", "x")], [])
    routes = compute_routing_table("me", neighbors, two_hop, topology)
    assert routes["x"] == RouteEntry("x", "a", 2)


def test_two_hop_route_requires_symmetric_intermediate():
    neighbors, two_hop, topology = build_state(set(), [("a", "x")], [])
    routes = compute_routing_table("me", neighbors, two_hop, topology)
    assert "x" not in routes


def test_three_hop_route_through_topology_set():
    # me - a - x - far  (x advertises far in its TC)
    neighbors, two_hop, topology = build_state({"a"}, [("a", "x")], [("x", "far")])
    routes = compute_routing_table("me", neighbors, two_hop, topology)
    assert routes["far"].next_hop == "a"
    assert routes["far"].distance == 3


def test_multi_hop_chain_route():
    # me - a - x - y - z
    neighbors, two_hop, topology = build_state(
        {"a"}, [("a", "x")], [("x", "y"), ("y", "z")]
    )
    routes = compute_routing_table("me", neighbors, two_hop, topology)
    assert routes["y"].distance == 3
    assert routes["z"].distance == 4
    assert routes["z"].next_hop == "a"


def test_shorter_route_preferred_over_topology_edge():
    # "x" is both a 2-hop neighbour and advertised in a TC far away; 2-hop wins.
    neighbors, two_hop, topology = build_state(
        {"a", "b"}, [("a", "x")], [("b", "x")]
    )
    routes = compute_routing_table("me", neighbors, two_hop, topology)
    assert routes["x"].distance == 2


def test_own_address_never_in_routes():
    neighbors, two_hop, topology = build_state({"a"}, [("a", "me")], [("a", "me")])
    routes = compute_routing_table("me", neighbors, two_hop, topology)
    assert "me" not in routes


def test_unreachable_topology_destination_excluded():
    # TC edge exists but its last hop is not reachable from us.
    neighbors, two_hop, topology = build_state({"a"}, [], [("stranger", "far")])
    routes = compute_routing_table("me", neighbors, two_hop, topology)
    assert "far" not in routes


def test_routing_table_replace_all_diff():
    table = RoutingTable()
    diff = table.replace_all({"a": RouteEntry("a", "a", 1)})
    assert diff.added == {"a"} and not diff.removed and not diff.changed
    diff = table.replace_all({"a": RouteEntry("a", "b", 2), "c": RouteEntry("c", "a", 1)})
    assert diff.changed == {"a"}
    assert diff.added == {"c"}
    diff = table.replace_all({})
    assert diff.removed == {"a", "c"}
    assert diff.is_empty is False
    assert table.destinations() == set()


def test_routing_table_queries():
    table = RoutingTable()
    table.replace_all({
        "a": RouteEntry("a", "a", 1),
        "x": RouteEntry("x", "a", 2),
    })
    assert table.next_hop("x") == "a"
    assert table.distance("x") == 2
    assert table.next_hop("ghost") is None
    assert table.distance("ghost") is None
    assert table.get("a").destination == "a"
    assert len(table) == 2
    entries = table.entries()
    assert [e.destination for e in entries] == ["a", "x"]  # sorted by distance


def test_routing_table_diff_empty_when_identical():
    table = RoutingTable()
    entries = {"a": RouteEntry("a", "a", 1)}
    table.replace_all(entries)
    diff = table.replace_all(dict(entries))
    assert diff.is_empty
