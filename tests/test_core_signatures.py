"""Tests for attack signatures and the link-spoofing expressions."""

from __future__ import annotations

from repro.core.signatures import (
    EventPattern,
    LinkSpoofingVariant,
    Signature,
    SignatureMatcher,
    broadcast_storm_signature,
    evaluate_expression_1,
    evaluate_expression_2,
    evaluate_expression_3,
    evaluate_link_spoofing,
    link_spoofing_event_signature,
)
from repro.logs.analyzer import DetectionEvent, DetectionEventType


def event(event_type: DetectionEventType, time: float = 0.0, subject: str = "s") -> DetectionEvent:
    return DetectionEvent(time=time, node="me", event_type=event_type, subject=subject)


# ----------------------------------------------------------- generic matcher
def test_signature_matches_in_order():
    signature = Signature(
        name="two-step",
        steps=[
            EventPattern("first", lambda e: e.event_type == DetectionEventType.NEIGHBOR_APPEARED),
            EventPattern("second", lambda e: e.event_type == DetectionEventType.MPR_REPLACED),
        ],
    )
    events = [
        event(DetectionEventType.NEIGHBOR_APPEARED, 1.0),
        event(DetectionEventType.MPR_REPLACED, 2.0),
    ]
    match = signature.match(events)
    assert match.complete
    assert match.matched_steps == ["first", "second"]
    assert match.completion_ratio == 1.0


def test_signature_out_of_order_is_partial():
    signature = Signature(
        name="two-step",
        steps=[
            EventPattern("first", lambda e: e.event_type == DetectionEventType.MPR_REPLACED),
            EventPattern("second", lambda e: e.event_type == DetectionEventType.NEIGHBOR_APPEARED),
        ],
    )
    events = [
        event(DetectionEventType.NEIGHBOR_APPEARED, 1.0),
        event(DetectionEventType.MPR_REPLACED, 2.0),
    ]
    match = signature.match(events)
    assert not match.complete
    assert "second" in match.missing_steps
    assert 0.0 < match.completion_ratio < 1.0


def test_optional_steps_do_not_block():
    signature = link_spoofing_event_signature()
    events = [event(DetectionEventType.MPR_REPLACED, 1.0)]
    match = signature.match(events)
    assert match.complete


def test_link_spoofing_signature_with_advertisement_change():
    signature = link_spoofing_event_signature()
    events = [
        event(DetectionEventType.ADVERTISEMENT_CHANGED, 1.0),
        event(DetectionEventType.MPR_MISBEHAVIOR, 2.0),
    ]
    match = signature.match(events)
    assert match.complete
    assert "advertisement-change" in match.matched_steps


def test_link_spoofing_signature_missing_trigger_incomplete():
    signature = link_spoofing_event_signature()
    events = [event(DetectionEventType.ADVERTISEMENT_CHANGED, 1.0)]
    assert not signature.match(events).complete


def test_irrelevant_events_interleaved_are_ignored():
    signature = link_spoofing_event_signature()
    events = [
        event(DetectionEventType.NEIGHBOR_APPEARED, 0.5),
        event(DetectionEventType.ADVERTISEMENT_CHANGED, 1.0),
        event(DetectionEventType.LINK_INSTABILITY, 1.5),
        event(DetectionEventType.MPR_REPLACED, 2.0),
    ]
    assert signature.match(events).complete


def test_matcher_matches_all_and_filters_complete():
    matcher = SignatureMatcher([link_spoofing_event_signature(), broadcast_storm_signature(3)])
    events = [event(DetectionEventType.MPR_REPLACED, 1.0)]
    results = matcher.match_all(events)
    assert len(results) == 2
    complete = matcher.complete_matches(events)
    assert [m.signature_name for m in complete] == ["link-spoofing-preliminary"]


def test_broadcast_storm_signature_needs_threshold():
    matcher = SignatureMatcher([broadcast_storm_signature(threshold=3)])
    events = [event(DetectionEventType.ADVERTISEMENT_CHANGED, float(i)) for i in range(3)]
    assert matcher.complete_matches(events)


def test_matcher_add_signature():
    matcher = SignatureMatcher()
    assert matcher.match_all([]) == []
    matcher.add(link_spoofing_event_signature())
    assert len(matcher.signatures) == 1


# ----------------------------------------------------- spoofing expressions
NETWORK = {"i", "s", "a", "b", "c"}


def test_expression_1_detects_phantom_node():
    indicator = evaluate_expression_1("i", {"a", "ghost"}, NETWORK)
    assert indicator is not None
    assert indicator.variant == LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR
    assert indicator.offending_addresses == frozenset({"ghost"})
    assert "ghost" in indicator.describe()


def test_expression_1_no_phantom_returns_none():
    assert evaluate_expression_1("i", {"a", "b"}, NETWORK) is None


def test_expression_2_detects_false_existing_link():
    indicator = evaluate_expression_2("i", {"a", "b"}, actual_neighbors_of_suspect={"a"},
                                      known_network_nodes=NETWORK)
    assert indicator is not None
    assert indicator.variant == LinkSpoofingVariant.FALSE_EXISTING_LINK
    assert indicator.offending_addresses == frozenset({"b"})


def test_expression_2_ignores_phantom_addresses():
    # A phantom address is expression 1 material, not expression 2.
    indicator = evaluate_expression_2("i", {"ghost"}, actual_neighbors_of_suspect=set(),
                                      known_network_nodes=NETWORK)
    assert indicator is None


def test_expression_3_detects_omitted_neighbor():
    indicator = evaluate_expression_3("i", {"a"}, actual_neighbors_of_suspect={"a", "b"})
    assert indicator is not None
    assert indicator.variant == LinkSpoofingVariant.OMITTED_NEIGHBOR
    assert indicator.offending_addresses == frozenset({"b"})


def test_expression_3_no_omission_returns_none():
    assert evaluate_expression_3("i", {"a", "b"}, {"a", "b"}) is None


def test_evaluate_link_spoofing_all_variants_at_once():
    indicators = evaluate_link_spoofing(
        suspect="i",
        advertised_symmetric={"a", "ghost"},      # claims a (false) + ghost (phantom)
        actual_neighbors_of_suspect={"b"},        # omits b
        known_network_nodes=NETWORK,
    )
    variants = {ind.variant for ind in indicators}
    assert variants == {
        LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR,
        LinkSpoofingVariant.FALSE_EXISTING_LINK,
        LinkSpoofingVariant.OMITTED_NEIGHBOR,
    }


def test_evaluate_link_spoofing_without_ground_truth_limits_to_expression1():
    indicators = evaluate_link_spoofing(
        suspect="i",
        advertised_symmetric={"ghost"},
        known_network_nodes=NETWORK,
    )
    assert len(indicators) == 1
    assert indicators[0].variant == LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR


def test_honest_advertisement_raises_no_indicator():
    indicators = evaluate_link_spoofing(
        suspect="i",
        advertised_symmetric={"a", "b"},
        actual_neighbors_of_suspect={"a", "b"},
        known_network_nodes=NETWORK,
    )
    assert indicators == []
