"""End-to-end tests for the DetectorNode on the canonical simulated scenario.

These exercise the whole pipeline: OLSR message exchange, audit-log analysis
(E1/E2 triggers), Algorithm 1 over network paths that avoid the suspect, the
trust-weighted aggregate and the decision rule.
"""

from __future__ import annotations

import pytest

from repro.core.decision import DecisionOutcome
from repro.core.detector_node import DetectionConfig, DetectorNode
from repro.experiments.scenario import build_canonical_scenario
from tests.conftest import make_network


@pytest.fixture(scope="module")
def attacked_scenario():
    """The canonical scenario run well past the attack start, with detection cycles."""
    scenario = build_canonical_scenario(seed=11, attack_start=40.0)
    scenario.warm_up(35.0)
    scenario.victim.detection_round()  # consume convergence-era log records
    results = []
    for _ in range(12):
        results.extend(scenario.run_detection_cycle(10.0))
    return scenario, results


def test_detector_node_requires_transport_before_investigating():
    network = make_network({"a": (0, 0), "b": (100, 0)})
    node = DetectorNode("a", network)
    node.start()
    with pytest.raises(RuntimeError):
        node.open_investigations_from_triggers([])
    node.bind_default_transport({"a": node})
    assert node.open_investigations_from_triggers([]) == []


def test_no_attack_no_investigation():
    scenario = build_canonical_scenario(seed=11, attack_start=10_000.0)
    scenario.warm_up(35.0)
    scenario.victim.detection_round()
    results = []
    for _ in range(4):
        results.extend(scenario.run_detection_cycle(10.0))
    suspects = {r.suspect for r in results}
    # The attacker never spoofs, so it is never flagged as an intruder.
    attacker_decisions = [r for r in results if r.suspect == "attacker"]
    assert all(r.decision.outcome != DecisionOutcome.INTRUDER for r in attacker_decisions)
    assert scenario.victim.trust.trust_of("attacker") >= 0.3 or "attacker" not in suspects


def test_attack_triggers_investigation_of_attacker(attacked_scenario):
    scenario, results = attacked_scenario
    suspects = {r.suspect for r in results}
    assert "attacker" in suspects


def test_spoofed_link_endpoints_deny_and_witness_confirms(attacked_scenario):
    scenario, results = attacked_scenario
    attacker_rounds = [r for r in results if r.suspect == "attacker"]
    last = attacker_rounds[-1]
    assert last.answers.get("edge1") == -1.0
    assert last.answers.get("edge2") == -1.0


def test_detect_value_converges_toward_minus_one(attacked_scenario):
    scenario, results = attacked_scenario
    trajectory = [r.decision.detect_value for r in results if r.suspect == "attacker"]
    assert trajectory[0] <= -0.3
    assert trajectory[-1] <= trajectory[0]
    assert trajectory[-1] < -0.8


def test_final_verdict_is_intruder(attacked_scenario):
    scenario, results = attacked_scenario
    attacker_rounds = [r for r in results if r.suspect == "attacker"]
    assert attacker_rounds[-1].decision.outcome == DecisionOutcome.INTRUDER


def test_attacker_trust_collapses_at_victim(attacked_scenario):
    scenario, results = attacked_scenario
    trust = scenario.victim.trust
    assert trust.trust_of("attacker") < 0.1
    # The honest relay keeps a reasonable trust value.
    assert trust.trust_of("edge1") > trust.trust_of("attacker")


def test_innocent_relay_not_condemned(attacked_scenario):
    scenario, results = attacked_scenario
    relay_rounds = [r for r in results if r.suspect == "relay"]
    assert all(r.decision.outcome != DecisionOutcome.INTRUDER for r in relay_rounds)


def test_decision_history_and_describe(attacked_scenario):
    scenario, results = attacked_scenario
    victim = scenario.victim
    assert len(victim.decision_history) == len(results) + 1  # +1 pre-attack cycle round
    description = victim.describe()
    assert description["node"] == "victim"
    assert "attacker" in description["trust"]
    assert description["decisions"] == len(victim.decision_history)


def test_answer_link_query_semantics(attacked_scenario):
    scenario, _ = attacked_scenario
    relay = scenario.nodes["relay"]
    # Own-link question: relay genuinely neighbours the attacker.
    assert relay.answer_link_query("attacker", "victim") is True
    # Contested-link question about a spoofed link: edge1 does not advertise
    # the attacker, and relay neighbours edge1, so it denies.
    assert relay.answer_link_query("attacker", "victim", link_peer="edge1") is False
    # No knowledge about a contested peer that is not a neighbour.
    edge1 = scenario.nodes["edge1"]
    assert edge1.answer_link_query("attacker", "relay", link_peer="victim") is None


def test_detection_config_defaults():
    config = DetectionConfig()
    assert config.gamma == pytest.approx(0.6)
    assert config.confidence_level == pytest.approx(0.95)
    assert config.use_trust_weighting
