"""Golden tests of the AODV backend on hand-checked topologies."""

from __future__ import annotations

import pytest

from repro.logs.records import LogCategory
from repro.routing.aodv import AodvConfig, AodvNode
from tests.conftest import CHAIN_POSITIONS, make_network

#: Long enough for HELLO-based neighbour sensing to converge on any of the
#: hand-checked topologies (hello interval 2 s + jitter).
SENSING_TIME = 10.0


def make_aodv_network(positions, radio_range: float = 250.0, seed: int = 0,
                      config: AodvConfig | None = None):
    """Build a network plus one started AODV node per position."""
    network = make_network(positions, radio_range=radio_range, seed=seed)
    nodes = {}
    for index, node_id in enumerate(positions):
        nodes[node_id] = AodvNode(node_id, network, config=config,
                                  seed=seed + index)
    for node in nodes.values():
        node.start()
    return network, nodes


@pytest.fixture
def aodv_chain():
    """The 4-node chain A - B - C - D with started AODV nodes."""
    return make_aodv_network(CHAIN_POSITIONS)


def test_hello_neighbor_sensing(aodv_chain):
    network, nodes = aodv_chain
    network.run(until=SENSING_TIME)
    assert nodes["A"].symmetric_neighbors() == {"B"}
    assert nodes["B"].symmetric_neighbors() == {"A", "C"}
    assert nodes["C"].symmetric_neighbors() == {"B", "D"}
    assert nodes["D"].symmetric_neighbors() == {"C"}


def test_no_proactive_multi_hop_routes(aodv_chain):
    """AODV is reactive: before any traffic, only 1-hop HELLO routes exist."""
    network, nodes = aodv_chain
    network.run(until=SENSING_TIME)
    assert nodes["A"].next_hop("D") is None
    assert nodes["A"].known_destinations() == {"B"}


def test_route_discovery_delivers_and_installs_routes(aodv_chain):
    network, nodes = aodv_chain
    delivered = []
    nodes["D"].data_handlers.append(
        lambda packet, last_hop: delivered.append((packet.payload, packet.hops)))
    network.run(until=SENSING_TIME)

    # send_data returns True: the packet is buffered while discovery runs.
    assert nodes["A"].send_data("D", "ping") is True
    network.run(until=SENSING_TIME + 5.0)

    assert delivered == [("ping", ["A", "B", "C"])]
    # Forward route at the originator, hop count 3 via B.  (C answers the
    # RREQ from its HELLO-installed 1-hop route to D — the RFC 3561 §6.6
    # intermediate reply — so the flood need not reach D itself.)
    assert nodes["A"].next_hop("D") == "B"
    assert nodes["A"].route_distance("D") == 3
    assert nodes["B"].next_hop("D") == "C"
    # Reverse routes toward the originator, built from the RREQ flood.
    assert nodes["B"].next_hop("A") == "A"
    assert nodes["C"].next_hop("A") == "B"


def test_rreq_duplicate_suppression(aodv_chain):
    """Each node relays a given (originator, rreq_id) flood at most once."""
    network, nodes = aodv_chain
    network.run(until=SENSING_TIME)
    nodes["A"].send_data("D", "ping")
    network.run(until=SENSING_TIME + 5.0)
    for node in nodes.values():
        seen = set()
        for record in node.log.by_category(LogCategory.FORWARD):
            if record.event != "RELAYED" or record.get("seq") is None:
                continue
            key = (record.get("origin"), record.get("seq"))
            assert key not in seen, f"{node.node_id} relayed {key} twice"
            seen.add(key)


def test_route_expiry_without_traffic(aodv_chain):
    network, nodes = aodv_chain
    network.run(until=SENSING_TIME)
    nodes["A"].send_data("D", "ping")
    network.run(until=SENSING_TIME + 5.0)
    assert nodes["A"].routes["D"].valid

    # No traffic for longer than active_route_timeout: housekeeping expires
    # the route (HELLOs keep only the 1-hop neighbour routes alive).
    config = nodes["A"].config
    network.run(until=network.now + config.active_route_timeout + 5.0)
    assert nodes["A"].next_hop("D") is None
    expirations = [
        record for record in nodes["A"].log.by_category(LogCategory.ROUTE)
        if record.event == "ROUTE_EXPIRED" and record.get("destination") == "D"
    ]
    assert expirations, "route expiry was not logged"


def test_rerr_invalidates_routes_upstream(aodv_chain):
    network, nodes = aodv_chain
    network.run(until=SENSING_TIME)
    nodes["A"].send_data("D", "ping")
    network.run(until=SENSING_TIME + 5.0)
    assert nodes["A"].routes["D"].valid
    old_seq = nodes["A"].routes["D"].destination_seq

    # D dies.  C notices the lost neighbour after neighbor_hold_time,
    # invalidates its route and broadcasts a RERR that propagates through
    # B (whose route to D runs via C) up to A (whose route runs via B).
    nodes["D"].stop()
    nodes["A"].send_data("D", "keepalive")  # refresh A's route before loss
    network.run(until=network.now + nodes["C"].config.neighbor_hold_time + 3.0)

    assert not nodes["A"].routes["D"].valid
    assert nodes["A"].next_hop("D") is None
    # The invalidation bumped the destination sequence number (freshness).
    assert nodes["A"].routes["D"].destination_seq > old_seq
    rerrs = [
        record for record in nodes["A"].log.by_category(LogCategory.MESSAGE_RX)
        if record.event == "RERR"
    ]
    assert rerrs, "A never received the propagated RERR"


def test_discovery_failure_drops_buffered_packets(aodv_chain):
    """An unreachable destination exhausts the retries and drops the queue."""
    network, nodes = aodv_chain
    network.run(until=SENSING_TIME)
    assert nodes["A"].send_data("nowhere", "lost") is True
    config = nodes["A"].config
    retry_budget = (config.rreq_retries + 2) * config.rreq_retry_interval
    network.run(until=network.now + retry_budget + 3.0)

    assert "nowhere" not in nodes["A"].describe()["pending_discoveries"]
    drops = [
        record for record in nodes["A"].log.by_category(LogCategory.DROP)
        if record.get("reason") == "route_discovery_failed"
    ]
    assert drops, "buffered packets were not dropped after failed discovery"


def test_intermediate_node_answers_with_fresh_route(aodv_chain):
    """RFC 3561 §6.6: an intermediate node with a fresh route replies itself."""
    from repro.routing.aodv import RouteRequest

    network, nodes = aodv_chain
    network.run(until=SENSING_TIME)
    nodes["A"].send_data("D", "warm")  # installs a D-route at B and C
    network.run(until=SENSING_TIME + 5.0)
    assert nodes["B"].routes["D"].valid

    # Inject a fresh discovery for D at B: B's cached route satisfies it,
    # so B replies itself instead of re-flooding the request.
    nodes["B"].handle_control(
        RouteRequest(originator="A", rreq_id=99, originator_seq=5,
                     destination="D", destination_seq=None),
        last_hop="A",
    )
    replies = [
        record for record in nodes["B"].log.by_category(LogCategory.MESSAGE_TX)
        if record.event == "RREP" and record.get("destination") == "D"
        and record.get("requester") == "A"
    ]
    assert replies, "B did not answer the RREQ from its route cache"
    relays = [
        record for record in nodes["B"].log.by_category(LogCategory.FORWARD)
        if record.event == "RELAYED" and record.get("seq") == 99
    ]
    assert not relays, "B relayed a RREQ it should have answered"


def test_destination_answers_with_incremented_sequence(aodv_chain):
    """The destination itself answers a RREQ with a fresh sequence number."""
    from repro.routing.aodv import RouteRequest

    network, nodes = aodv_chain
    network.run(until=SENSING_TIME)
    before = nodes["D"].sequence_number
    nodes["D"].handle_control(
        RouteRequest(originator="C", rreq_id=7, originator_seq=2,
                     destination="D", destination_seq=before),
        last_hop="C",
    )
    assert nodes["D"].sequence_number == before + 1
    replies = [
        record for record in nodes["D"].log.by_category(LogCategory.MESSAGE_TX)
        if record.event == "RREP" and record.get("requester") == "C"
    ]
    # Log fields are stringified by the audit store.
    assert replies and replies[-1].get("seq") == str(before + 1)
    # The reverse route toward the requester was installed first (§6.5).
    assert nodes["D"].next_hop("C") == "C"
