"""Tests for the extension experiments: mobility study, gravity ablation,
and the offline log-replay analysis."""

from __future__ import annotations

import pytest

from repro.core.offline import analyze_log_store, analyze_log_text
from repro.experiments.config import ScenarioConfig
from repro.experiments.gravity_ablation import run_gravity_ablation
from repro.experiments.mobility import run_mobility_study
from repro.experiments.scenario import build_canonical_scenario
from repro.logs.records import LogCategory
from repro.logs.store import LogStore


# ----------------------------------------------------------------- mobility
@pytest.fixture(scope="module")
def mobility_study():
    return run_mobility_study(speeds=(0.0, 8.0), node_count=12, liar_count=2,
                              cycles=5, seed=23)


def test_mobility_study_one_row_per_speed(mobility_study):
    rows = mobility_study.as_rows()
    assert [row["max_speed_m_s"] for row in rows] == [0.0, 8.0]
    for row in rows:
        assert 0.0 <= row["missing_answer_ratio"] <= 1.0
        assert 0.0 <= row["unreached_ratio"] <= 1.0


def test_mobility_static_network_detects_the_attacker(mobility_study):
    static = mobility_study.runs[0]
    assert static.attacker_investigated
    assert static.final_detect is not None
    assert static.final_detect < 0.0
    assert static.final_attacker_trust < 0.4


def test_mobility_ratios_well_formed(mobility_study):
    for run in mobility_study.runs:
        # Unreached responders are a subset of the missing answers.
        assert run.unreached_ratio <= run.missing_answer_ratio + 1e-9


# ----------------------------------------------------------------- gravity
@pytest.fixture(scope="module")
def gravity():
    return run_gravity_ablation(harmful_alphas=(0.02, 0.08, 0.16),
                                base_config=ScenarioConfig(seed=7, rounds=15))


def test_gravity_ablation_rows(gravity):
    rows = gravity.as_rows()
    assert len(rows) == 3
    assert [row["alpha_harmful"] for row in rows] == [0.02, 0.08, 0.16]
    assert all(row["asymmetry"] == pytest.approx(row["alpha_harmful"] / 0.04)
               for row in rows)


def test_gravity_more_asymmetry_punishes_liars_harder(gravity):
    assert gravity.liar_punishment_increases_with_asymmetry()
    first, last = gravity.rows[0], gravity.rows[-1]
    assert last.mean_final_liar_trust <= first.mean_final_liar_trust


def test_gravity_detection_still_converges_for_all_settings(gravity):
    for row in gravity.rows:
        assert row.final_detect < -0.5


def test_gravity_honest_collateral_is_bounded(gravity):
    for row in gravity.rows:
        assert row.honest_collateral < 0.2


# ----------------------------------------------------------------- offline
def _store_with_replacement() -> LogStore:
    store = LogStore("victim")
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["relay"], previous=[])
    store.log(2.0, LogCategory.MESSAGE_RX, "HELLO", origin="relay",
              sym_neighbors=["edge1", "edge2"])
    store.log(10.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["attacker"],
              previous=["relay"])
    return store


def test_offline_analysis_from_store_finds_trigger():
    report = analyze_log_store(_store_with_replacement())
    assert report.records_parsed == 3
    assert report.suspects == ["attacker"]
    assert "link-spoofing-preliminary" in report.matched_signatures
    rows = report.as_rows()
    assert rows[0]["suspect"] == "attacker"
    assert rows[0]["evidence_count"] >= 1
    assert "E1" in report.evidence_summary()["attacker"]


def test_offline_analysis_from_text_roundtrip():
    text = _store_with_replacement().dump_text()
    report = analyze_log_text("victim", text)
    assert report.suspects == ["attacker"]
    assert report.records_parsed == 3


def test_offline_analysis_skips_malformed_lines():
    text = _store_with_replacement().dump_text() + "\nthis is not a log line\n"
    report = analyze_log_text("victim", text)
    assert report.records_parsed == 3
    assert report.suspects == ["attacker"]


def test_offline_analysis_clean_log_produces_no_suspect():
    store = LogStore("victim")
    store.log(1.0, LogCategory.MESSAGE_RX, "HELLO", origin="relay", sym_neighbors=["a"])
    store.log(2.0, LogCategory.ROUTE, "TABLE_RECOMPUTED", size=3)
    report = analyze_log_store(store)
    assert report.suspects == []
    assert report.as_rows() == []


def test_offline_analysis_of_simulated_victim_log():
    # Replay the canonical scenario's victim log offline: the attacker must be
    # identified as a suspect from the captured text alone.
    scenario = build_canonical_scenario(seed=11, attack_start=40.0)
    scenario.warm_up(80.0)
    text = scenario.victim.log.dump_text()
    report = analyze_log_text("victim", text)
    assert "attacker" in report.suspects
