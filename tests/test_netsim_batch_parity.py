"""Batch vs. scalar medium parity: the batched broadcast path is a pure
performance optimisation.

The batched delivery path of :class:`repro.netsim.medium.WirelessMedium`
must be observably indistinguishable from the per-receiver scalar path:
identical delivery traces, identical experiment results, identical stored
row JSON.  These tests sweep node count × loss model × mobility and compare
the two paths event for event, plus the supporting numeric kernels
(vectorised MPR selection, distance-loss probabilities, vectorised trust
updates) against their scalar references.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.experiments.backends import (
    build_netsim_scenario,
    drive_netsim_scenario,
    scenario_config_from_params,
)
from repro.experiments.campaign import CampaignSpec, execute_spec
from repro.netsim.medium import DistanceLossModel
from repro.netsim.trace import TraceRecorder
from repro.numerics import numpy_or_none
from repro.olsr.constants import Willingness
from repro.olsr.mpr import select_mprs

#: (node_count, loss_model, loss_probability, max_speed) sweep: static
#: perfect channel, lossy static, mobile lossy, mobile distance-loss.
SWEEP = [
    (8, "bernoulli", 0.0, 0.0),
    (16, "bernoulli", 0.3, 0.0),
    (16, "bernoulli", 0.2, 6.0),
    (24, "distance", 0.8, 8.0),
]


def _run(node_count, loss_model, loss_probability, max_speed, batch):
    params = {
        "loss_model": loss_model,
        "loss_probability": loss_probability,
        "max_speed": max_speed,
        "warmup": 15.0,
        "cycles": 2,
        "batch_delivery": batch,
    }
    config = scenario_config_from_params(
        {"total_nodes": node_count, "liar_count": 2, "rounds": 2}, seed=7)
    scenario = build_netsim_scenario(config, params)
    recorder = TraceRecorder()
    scenario.network.medium.trace_recorder = recorder
    result = drive_netsim_scenario(scenario, config, params)
    return result, recorder


@pytest.mark.parametrize("node_count,loss_model,loss_probability,max_speed",
                         SWEEP)
def test_batch_and_scalar_runs_are_identical(node_count, loss_model,
                                             loss_probability, max_speed):
    batch_result, batch_trace = _run(
        node_count, loss_model, loss_probability, max_speed, batch=True)
    scalar_result, scalar_trace = _run(
        node_count, loss_model, loss_probability, max_speed, batch=False)

    # Delivery traces: same events in the same order, payload included
    # (TraceEvent.__eq__ skips ``data``, so compare it explicitly).
    assert len(batch_trace.events) == len(scalar_trace.events)
    for got, want in zip(batch_trace.events, scalar_trace.events):
        assert got == want
        assert got.data == want.data

    # Experiment outcome: every observable field matches.  Raw scheduler
    # counters (``engine``) are the one legitimately path-dependent entry:
    # batching exists precisely to push fewer delivery events.
    batch_stats = dict(batch_result.stats)
    scalar_stats = dict(scalar_result.stats)
    assert batch_stats.pop("engine")["pushes"] <= scalar_stats.pop("engine")["pushes"]
    assert batch_stats == scalar_stats
    assert batch_result.initial_trust == scalar_result.initial_trust
    assert len(batch_result.rounds) == len(scalar_result.rounds)
    for got, want in zip(batch_result.rounds, scalar_result.rounds):
        assert got.detect_value == want.detect_value
        assert got.outcome == want.outcome
        assert got.margin == want.margin
        assert got.answers == want.answers
        assert got.trust_snapshot == want.trust_snapshot


def test_campaign_row_json_identical_between_paths(monkeypatch):
    """The JSON text a ResultsStore would persist is byte-identical.

    ``json.dumps`` serialises NaN/±inf as ``NaN``/``Infinity`` tokens, so
    comparing the dumped text covers non-finite metric values too.
    """
    import repro.experiments.campaign as campaign_module
    from repro.experiments.scenario import build_manet_scenario

    spec = CampaignSpec(
        run_id="parity", seed=11, node_count=16, liar_fraction=0.25,
        loss_model="distance", loss_probability=0.8, max_speed=6.0,
        attack_variant="false_existing_link", warmup=15.0, cycles=2,
    )

    rows = {}
    for batch in (True, False):
        def _build(*args, _batch=batch, **kwargs):
            kwargs["batch_delivery"] = _batch
            return build_manet_scenario(*args, **kwargs)

        monkeypatch.setattr(campaign_module, "build_manet_scenario", _build)
        rows[batch] = json.dumps(execute_spec(spec).as_row(), sort_keys=True)
    assert rows[True] == rows[False]


def test_mpr_numpy_matches_scalar_on_random_topologies():
    np = numpy_or_none()
    if np is None:
        pytest.skip("numpy unavailable")
    rng = random.Random(42)
    wills = [Willingness.WILL_NEVER, Willingness.WILL_LOW,
             Willingness.WILL_DEFAULT, Willingness.WILL_HIGH,
             Willingness.WILL_ALWAYS]
    for _ in range(150):
        n = rng.randint(1, 40)
        t = rng.randint(0, 50)
        neighbors = [f"n{i:02d}" for i in range(n)]
        two_hops = [f"t{j:02d}" for j in range(t)]
        coverage = {
            nb: {th for th in two_hops if rng.random() < 0.2}
            for nb in neighbors
        }
        willingness = {nb: rng.choice(wills) for nb in neighbors
                       if rng.random() < 0.7}
        degree = {nb: rng.randint(0, 10) for nb in neighbors
                  if rng.random() < 0.7}
        kwargs = dict(
            symmetric_neighbors=set(neighbors),
            coverage=coverage,
            willingness=willingness,
            neighbor_degree=degree,
            local_address="self",
            prune_redundant=rng.random() < 0.7,
            redundancy=rng.choice([0, 0, 1, 2]),
        )
        scalar = select_mprs(use_numpy=False, **kwargs)
        vector = select_mprs(use_numpy=True, **kwargs)
        assert scalar.mprs == vector.mprs
        # The pruning step's stable sort observes set iteration order, so
        # even the insertion sequence must match.
        assert list(scalar.mprs) == list(vector.mprs)
        assert scalar.uncovered == vector.uncovered
        assert scalar.isolated_two_hops == vector.isolated_two_hops
        assert scalar.coverage == vector.coverage


def test_distance_loss_probabilities_elementwise_exact():
    model = DistanceLossModel(radio_range=250.0, max_loss=0.8, exponent=2.0,
                              reliable_fraction=0.5)
    rng = random.Random(3)
    distances = [rng.uniform(0.0, 300.0) for _ in range(200)]
    distances += [0.0, 125.0, 125.0000001, 250.0, 300.0]
    vectorised = model.loss_probabilities(distances)
    for d, p in zip(distances, vectorised):
        assert float(p) == model.loss_probability(d)


def test_trust_update_all_vector_matches_scalar():
    import repro.trust.manager as manager_module
    from repro.trust.evidence import EvidenceKind, TrustEvidence
    from repro.trust.manager import TrustManager, TrustParameters

    kinds = list(EvidenceKind)

    def build():
        manager = TrustManager("A", TrustParameters(beta_recovery=0.98))
        evidences = {}
        local = random.Random(77)
        for i in range(40):
            subject = f"n{i}"
            if local.random() < 0.7:
                manager.set_initial_trust(subject, local.random())
            if local.random() < 0.6:
                evidences[subject] = [
                    TrustEvidence(observer="A", subject=subject,
                                  kind=local.choice(kinds),
                                  value=local.uniform(-1, 1),
                                  firsthand=local.random() < 0.5,
                                  imminent=local.random() < 0.3)
                    for _ in range(local.randint(1, 4))
                ]
        return manager, evidences

    scalar_manager, scalar_evidences = build()
    vector_manager, vector_evidences = build()

    original = manager_module.numpy_or_none
    manager_module.numpy_or_none = lambda: None
    try:
        scalar_results = scalar_manager.update_all(scalar_evidences, now=2.0)
    finally:
        manager_module.numpy_or_none = original
    vector_results = vector_manager.update_all(vector_evidences, now=2.0)

    assert scalar_results == vector_results
    assert list(scalar_results) == list(vector_results)
    assert scalar_manager.as_dict() == vector_manager.as_dict()
    for subject in scalar_results:
        assert (scalar_manager.history_of(subject)
                == vector_manager.history_of(subject))


def test_batch_multipath_trust_matches_scalar():
    from repro.trust.propagation import batch_multipath_trust, multipath_trust

    rng = random.Random(5)
    pairs_by_subject = {
        f"s{i}": [(rng.choice([0.0, 1e-13, rng.random()]), rng.uniform(-1, 1))
                  for _ in range(rng.randint(0, 6))]
        for i in range(40)
    }
    batch = batch_multipath_trust(pairs_by_subject)
    assert batch == {s: multipath_trust(p) for s, p in pairs_by_subject.items()}
