"""Tests for trust propagation (Eqs. 6 and 7) and recommendation bookkeeping."""

from __future__ import annotations

import pytest

from repro.trust.propagation import (
    Recommendation,
    blended_trust,
    combine_recommendations,
    concatenated_trust,
    multipath_trust,
    normalised_weights,
    recommendation_matrix_trust,
    transitive_trust_chain,
)
from repro.trust.recommendation import RecommendationManager


def test_concatenated_trust_is_product():
    assert concatenated_trust(0.5, 0.8) == pytest.approx(0.4)
    assert concatenated_trust(0.0, 0.9) == 0.0


def test_concatenated_trust_never_exceeds_inputs():
    assert concatenated_trust(0.7, 0.9) <= 0.7
    assert concatenated_trust(0.7, 0.9) <= 0.9


def test_normalised_weights_sum_times_trust_is_mean_like():
    weights = normalised_weights([0.5, 0.5])
    assert weights == [1.0, 1.0]
    assert sum(w * t for w, t in zip(weights, [0.5, 0.5])) == pytest.approx(1.0)


def test_normalised_weights_zero_when_no_trust():
    assert normalised_weights([0.0, 0.0]) == [0.0, 0.0]
    assert normalised_weights([]) == []


def test_multipath_trust_equal_recommenders():
    # Two equally trusted recommenders reporting the same value yield that value.
    result = multipath_trust([(0.5, 0.8), (0.5, 0.8)])
    assert result == pytest.approx(0.8)


def test_multipath_trust_weighted_by_recommendation_trust():
    trusted_says_good = multipath_trust([(0.9, 1.0), (0.1, -1.0)])
    trusted_says_bad = multipath_trust([(0.9, -1.0), (0.1, 1.0)])
    assert trusted_says_good > 0
    assert trusted_says_bad < 0


def test_multipath_trust_empty_is_uncertain():
    assert multipath_trust([]) == 0.0


def test_combine_recommendations_uses_default_for_unknown():
    recommendations = [
        Recommendation("s1", "target", 0.9),
        Recommendation("s2", "target", -0.5),
    ]
    result = combine_recommendations(recommendations, {"s1": 0.8},
                                     default_recommendation_trust=0.2)
    expected = multipath_trust([(0.8, 0.9), (0.2, -0.5)])
    assert result == pytest.approx(expected)


def test_blended_trust_prefers_first_hand():
    blended = blended_trust(direct_trust=0.9, propagated_trust=0.1, direct_weight=0.7)
    assert blended == pytest.approx(0.7 * 0.9 + 0.3 * 0.1)
    with pytest.raises(ValueError):
        blended_trust(0.5, 0.5, direct_weight=1.5)


def test_transitive_chain_shrinks_with_length():
    short = transitive_trust_chain([0.8, 0.8])
    long = transitive_trust_chain([0.8, 0.8, 0.8, 0.8])
    assert long < short


def test_recommendation_matrix_trust_skips_missing_opinions():
    recommenders = {
        "s1": {"target": 0.9},
        "s2": {"other": -1.0},
    }
    result = recommendation_matrix_trust("target", recommenders, {"s1": 0.5, "s2": 0.5})
    assert result == pytest.approx(multipath_trust([(0.5, 0.9)]))


# ------------------------------------------------------- recommendation trust
def test_recommendation_manager_defaults_and_updates():
    manager = RecommendationManager("me", default_value=0.4, reward=0.1, penalty=0.2)
    assert manager.recommendation_trust("s") == pytest.approx(0.4)
    manager.record_agreement("s")
    assert manager.recommendation_trust("s") == pytest.approx(0.5)
    manager.record_disagreement("s")
    assert manager.recommendation_trust("s") == pytest.approx(0.3)


def test_recommendation_manager_penalty_exceeds_reward_by_default():
    manager = RecommendationManager("me")
    assert manager.penalty > manager.reward


def test_recommendation_manager_bounds():
    manager = RecommendationManager("me", default_value=0.9, reward=0.5, penalty=0.5)
    manager.record_agreement("s")
    assert manager.recommendation_trust("s") == 1.0
    for _ in range(5):
        manager.record_disagreement("s")
    assert manager.recommendation_trust("s") == 0.0


def test_recommendation_manager_record_outcome_none_is_noop():
    manager = RecommendationManager("me")
    before = manager.recommendation_trust("s")
    manager.record_outcome("s", None)
    assert manager.recommendation_trust("s") == before


def test_recommendation_manager_accuracy():
    manager = RecommendationManager("me")
    manager.record_agreement("s")
    manager.record_agreement("s")
    manager.record_disagreement("s")
    assert manager.accuracy_of("s") == pytest.approx(2 / 3)
    assert manager.accuracy_of("unknown") == 0.0


def test_recommendation_manager_set_initial_and_as_dict():
    manager = RecommendationManager("me")
    manager.set_initial("s", 0.7)
    manager.set_initial("t", 2.0)  # clamped
    assert manager.as_dict() == {"s": 0.7, "t": 1.0}
    assert manager.known_recommenders() == ["s", "t"]


def test_recommendation_manager_validates_configuration():
    with pytest.raises(ValueError):
        RecommendationManager("me", minimum=1.0, maximum=0.0)
    with pytest.raises(ValueError):
        RecommendationManager("me", default_value=5.0)
