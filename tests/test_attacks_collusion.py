"""Tests for threat compositions: periodic schedules, coordinated liar
cliques and multi-attack stacks."""

from __future__ import annotations

import random

import pytest

from repro.attacks import (
    AttackSchedule,
    GrayholeAttack,
    LiarBehavior,
    LiarClique,
    OnOffDroppingAttack,
    PeriodicSchedule,
    ThreatStack,
    grayhole_liar_stack,
)
from repro.attacks.scenario import AttackScenario
from repro.experiments.scenario import build_manet_scenario


# ---------------------------------------------------------- PeriodicSchedule
def test_periodic_schedule_alternates_on_and_off():
    schedule = PeriodicSchedule(start_time=10.0, on_duration=5.0, off_duration=3.0)
    assert not schedule.is_active(9.9)         # before start
    assert schedule.is_active(10.0)            # first on-window
    assert schedule.is_active(14.9)
    assert not schedule.is_active(15.0)        # off-window
    assert not schedule.is_active(17.9)
    assert schedule.is_active(18.0)            # second period
    assert schedule.is_active(22.9)
    assert not schedule.is_active(23.5)


def test_periodic_schedule_honours_stop_time_and_validates():
    schedule = PeriodicSchedule(start_time=0.0, stop_time=12.0,
                                on_duration=5.0, off_duration=5.0)
    assert schedule.is_active(11.0)
    assert not schedule.is_active(12.0)
    with pytest.raises(ValueError):
        PeriodicSchedule(on_duration=0.0)
    with pytest.raises(ValueError):
        PeriodicSchedule(off_duration=-1.0)


def test_onoff_dropping_describe_includes_windows():
    attack = OnOffDroppingAttack(drop_probability=1.0, on_duration=4.0,
                                 off_duration=6.0, start_time=2.0)
    data = attack.describe()
    assert data["on_duration"] == 4.0
    assert data["off_duration"] == 6.0
    assert data["start_time"] == 2.0


# ---------------------------------------------------------------- LiarClique
def test_clique_members_always_agree():
    clique = LiarClique(protected_suspects={"attacker"}, lie_probability=0.6,
                        epoch_length=1.0, seed=13)
    members = [clique.member(f"m{i}") for i in range(4)]
    for epoch in range(20):
        answers = {m.answer(honest=False, now=float(epoch), suspect="attacker")
                   for m in members}
        assert len(answers) == 1, f"clique split at epoch {epoch}"


def test_clique_decisions_are_order_independent_and_seeded():
    clique_a = LiarClique(protected_suspects={"s"}, lie_probability=0.5, seed=3)
    clique_b = LiarClique(protected_suspects={"s"}, lie_probability=0.5, seed=3)
    # Query b in reverse epoch order: decisions must match a's.
    forward = [clique_a.decision("s", float(e)) for e in range(10)]
    backward = [clique_b.decision("s", float(e)) for e in reversed(range(10))]
    assert forward == list(reversed(backward))
    # A different seed gives a different decision sequence.
    clique_c = LiarClique(protected_suspects={"s"}, lie_probability=0.5, seed=4)
    assert forward != [clique_c.decision("s", float(e)) for e in range(10)]


def test_clique_intermittent_lying_actually_mixes():
    clique = LiarClique(protected_suspects={"s"}, lie_probability=0.5, seed=7)
    verdicts = {clique.decision("s", float(e)) for e in range(40)}
    assert verdicts == {"lie", "honest"}


def test_clique_member_ignores_unprotected_suspects():
    clique = LiarClique(protected_suspects={"attacker"}, lie_probability=1.0)
    member = clique.member("m0")
    assert member.answer(honest=False, now=0.0, suspect="innocent") is False
    assert member.honest_answers == 1
    assert member.answer(honest=False, now=0.0, suspect="attacker") is True
    assert member.lies_told == 1


def test_clique_counts_as_liar_in_scenario_ground_truth():
    clique = LiarClique(protected_suspects={"a"})
    scenario = AttackScenario()
    scenario.add("m0", clique.member("m0"))
    assert scenario.liars() == {"m0"}
    assert scenario.attackers() == set()


def test_clique_validates_parameters():
    with pytest.raises(ValueError):
        LiarClique(lie_probability=1.5)
    with pytest.raises(ValueError):
        LiarClique(epoch_length=0.0)


# --------------------------------------------------------------- ThreatStack
def test_threat_stack_installs_and_mirrors_controls():
    class Recorder(LiarBehavior):
        pass

    grayhole = GrayholeAttack(drop_probability=0.5, rng=random.Random(1),
                              schedule=AttackSchedule(start_time=5.0))
    liar = Recorder(protected_suspects={"self"},
                    schedule=AttackSchedule(start_time=5.0))
    stack = ThreatStack([grayhole, liar], schedule=AttackSchedule(start_time=5.0))

    class Node:
        node_id = "evil"
        answer_mutators = []

        class olsr:
            node_id = "evil"
            forward_filters = []

    node = Node()
    stack.install(node)
    assert stack.installed_on == ["evil"]
    assert grayhole.installed_on == ["evil"]
    assert liar.installed_on == ["evil"]

    stack.deactivate()
    assert not grayhole.is_active(100.0) and not liar.is_active(100.0)
    stack.activate()
    assert grayhole.is_active(0.0) and liar.is_active(0.0)
    stack.follow_schedule()
    assert not grayhole.is_active(0.0) and grayhole.is_active(5.0)

    layers = stack.describe()["layers"]
    assert [layer["name"] for layer in layers] == ["grayhole", "liar"]


def test_threat_stack_schedule_gates_every_layer():
    """Regression: ``ThreatStack(schedule=...)`` used to be dead state — the
    layers consulted only their own schedules.  The stack window now ANDs
    into each layer's activation."""
    grayhole = GrayholeAttack(drop_probability=1.0, rng=random.Random(1))
    liar = LiarBehavior(protected_suspects={"self"})
    stack = ThreatStack([grayhole, liar],
                        schedule=AttackSchedule(start_time=50.0, stop_time=100.0))
    # The layers' own schedules say "always"; the stack window still gates.
    assert not grayhole.is_active(10.0) and not liar.is_active(10.0)
    assert grayhole.is_active(60.0) and liar.is_active(60.0)
    assert not grayhole.is_active(100.0) and not liar.is_active(100.0)
    # A layer's own (narrower) schedule still applies inside the window.
    narrow = GrayholeAttack(drop_probability=1.0, rng=random.Random(2),
                            schedule=AttackSchedule(start_time=70.0))
    ThreatStack([narrow], schedule=AttackSchedule(start_time=50.0, stop_time=100.0))
    assert not narrow.is_active(60.0) and narrow.is_active(80.0)
    # Manual overrides keep winning over both windows.
    stack.activate()
    assert grayhole.is_active(10.0)
    stack.deactivate()
    assert not grayhole.is_active(60.0)
    stack.follow_schedule()
    assert grayhole.is_active(60.0)


def test_threat_stack_requires_at_least_one_attack():
    with pytest.raises(ValueError):
        ThreatStack([])


def test_grayhole_liar_stack_composition():
    stack = grayhole_liar_stack(protected_suspects={"evil"}, drop_probability=0.9,
                                start_time=3.0)
    kinds = {type(a).__name__ for a in stack.attacks}
    assert kinds == {"GrayholeAttack", "LiarBehavior"}
    for attack in stack.attacks:
        assert attack.schedule.start_time == 3.0


# -------------------------------------------------- scenario-level wiring
def test_manet_scenario_threat_compositions_install_expected_payloads():
    clique_scenario = build_manet_scenario(node_count=10, liar_count=3, seed=5,
                                           threat="liar-clique")
    liar_attacks = [
        attacks for node, attacks
        in clique_scenario.attack_scenario.attacks_by_node.items()
        if node in clique_scenario.liar_ids
    ]
    assert len(liar_attacks) == 3
    cliques = {id(a[0].clique) for a in liar_attacks}
    assert len(cliques) == 1  # one shared clique coordinator

    stacked = build_manet_scenario(node_count=10, liar_count=2, seed=5,
                                   threat="grayhole-liar")
    attacker_payloads = stacked.attack_scenario.attacks_by_node[stacked.attacker_id]
    assert {type(a).__name__ for a in attacker_payloads} == {
        "LinkSpoofingAttack", "ThreatStack"}

    onoff = build_manet_scenario(node_count=10, liar_count=2, seed=5,
                                 threat="onoff-grayhole")
    attacker_payloads = onoff.attack_scenario.attacks_by_node[onoff.attacker_id]
    assert {type(a).__name__ for a in attacker_payloads} == {
        "LinkSpoofingAttack", "OnOffDroppingAttack"}

    with pytest.raises(ValueError):
        build_manet_scenario(node_count=10, liar_count=2, seed=5, threat="nope")


def test_manet_scenario_adaptive_threat_compositions():
    riding = build_manet_scenario(node_count=10, liar_count=2, seed=5,
                                  threat="throttling-grayhole")
    payloads = riding.attack_scenario.attacks_by_node[riding.attacker_id]
    assert {type(a).__name__ for a in payloads} == {
        "LinkSpoofingAttack", "ThresholdRidingGrayhole"}
    rider = next(a for a in payloads
                 if type(a).__name__ == "ThresholdRidingGrayhole")
    # The feedback loop is wired: a probe on the victim's trust manager,
    # and the scenario exposes the layer for per-cycle observe() calls.
    assert rider.probe is not None
    assert rider.probe.subject == riding.attacker_id
    assert riding.adaptive_attacks == [rider]

    rotating = build_manet_scenario(node_count=10, liar_count=3, seed=5,
                                    threat="rotating-clique")
    cliques = {
        id(attacks[0].clique) for node, attacks
        in rotating.attack_scenario.attacks_by_node.items()
        if node in rotating.liar_ids
    }
    assert len(cliques) == 1
    member = next(
        attacks[0] for node, attacks
        in rotating.attack_scenario.attacks_by_node.items()
        if node in rotating.liar_ids)
    assert type(member.clique).__name__ == "RotatingLiarClique"
    assert rotating.adaptive_attacks == []     # rotation needs no probe


def test_onoff_grayhole_drops_only_in_on_windows():
    attack = OnOffDroppingAttack(drop_probability=1.0, on_duration=10.0,
                                 off_duration=10.0, start_time=0.0,
                                 rng=random.Random(0))

    class Node:
        now = 0.0

    node = Node()
    message = object()
    # On-window: everything eligible is dropped.
    node.now = 5.0
    assert attack._filter(message, "last", node) is False
    # Off-window: the very same node relays faithfully.
    node.now = 15.0
    assert attack._filter(message, "last", node) is True
    # Next on-window drops again.
    node.now = 25.0
    assert attack._filter(message, "last", node) is False
    assert attack.dropped_count == 2
    # Off-window relays are not "eligible" traffic: the ratio counts only
    # the windows where the attack was live.
    assert attack.relayed_count == 0
    assert attack.observed_drop_ratio == 1.0
