"""Tests for the unified experiment engine (spec / registry / runner).

The golden-parity block asserts that every migrated experiment produces
row-identical output to its legacy driver — the guarantee the multi-layer
migration rests on: same scenario construction, same seeds, same row
assembly, merely executed through the shared runtime.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablation import run_ablation
from repro.experiments.confidence_sweep import run_confidence_sweep
from repro.experiments.engine import (
    ExperimentDefinition,
    ExperimentSpec,
    execute_cell,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
)
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.gravity_ablation import run_gravity_ablation
from repro.experiments.mobility import run_mobility_study
from repro.experiments.results import ResultsStore, spec_content_hash
from repro.seeding import stable_seed


# ----------------------------------------------------------------- registry
def test_all_seven_legacy_experiments_are_registered():
    names = {definition.name for definition in list_experiments()}
    assert {"figure1", "figure2", "figure3", "ablation", "confidence_sweep",
            "gravity_ablation", "mobility"} <= names


def test_get_experiment_unknown_name_is_a_clear_error():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("no_such_experiment")


def test_definition_validates_backend_and_seed_mode():
    with pytest.raises(ValueError):
        ExperimentDefinition(name="x", description="", rows_from_result=None,
                             default_backend="quantum")
    with pytest.raises(ValueError):
        ExperimentDefinition(name="x", description="", rows_from_result=None,
                             seed_mode="random")


# ---------------------------------------------------------------- expansion
def test_expand_cross_product_order_and_ids():
    specs = get_experiment("confidence_sweep").expand()
    assert len(specs) == 9
    assert [spec.cell_id for spec in specs][:3] == [
        "confidence_level=0.9-gamma=0.4",
        "confidence_level=0.9-gamma=0.6",
        "confidence_level=0.9-gamma=0.8",
    ]
    assert all(spec.run_id == f"confidence_sweep/{spec.cell_id}" for spec in specs)
    assert specs == get_experiment("confidence_sweep").expand()  # deterministic


def test_expand_axis_and_param_overrides():
    definition = get_experiment("figure3")
    specs = definition.expand(axes={"liar_ratio": ("6.7%",)},
                              params={"rounds": 5})
    assert len(specs) == 1
    assert specs[0].param("rounds") == 5
    # A fixed parameter can be promoted to an axis.
    single = get_experiment("figure1")
    swept = single.expand(axes={"liar_count": (2, 4, 6)})
    assert [spec.param("liar_count") for spec in swept] == [2, 4, 6]


def test_expand_rejects_unknown_override_names():
    definition = get_experiment("figure3")
    with pytest.raises(ValueError, match="unknown parameter 'cycels'"):
        definition.expand(params={"cycels": 4})  # typo of "cycles"
    with pytest.raises(ValueError, match="unknown axis"):
        definition.expand(axes={"liar_ration": ("6.7%",)})


def test_expand_rejects_param_override_shadowed_by_an_axis():
    with pytest.raises(ValueError, match="swept axis"):
        get_experiment("figure3").expand(params={"liar_ratio": "50%"})


def test_shared_vs_per_cell_seed_modes():
    shared = get_experiment("confidence_sweep").expand()
    assert len({spec.seed for spec in shared}) == 1  # legacy drivers share

    per_cell = ExperimentDefinition(
        name="__per_cell__", description="", rows_from_result=lambda s, r: [],
        axes={"x": (1, 2, 3)}, seed_mode="per-cell", base_seed=7,
    )
    specs = per_cell.expand()
    assert len({spec.seed for spec in specs}) == 3
    assert specs[0].seed == stable_seed(7, "__per_cell__/x=1")


def test_spec_content_hash_covers_backend_seed_and_params():
    base = get_experiment("figure1").expand()[0]
    assert base.content_hash() == spec_content_hash(base)
    variants = (
        get_experiment("figure1").expand(backend="netsim")[0],
        get_experiment("figure1").expand(base_seed=99)[0],
        get_experiment("figure1").expand(params={"rounds": 9})[0],
    )
    hashes = {base.content_hash()} | {spec.content_hash() for spec in variants}
    assert len(hashes) == 4


# ------------------------------------------------------------ golden parity
def test_parity_figure1_rows_identical_to_legacy_driver():
    assert run_experiment("figure1").rows() == run_figure1().rows()


def test_parity_figure2_rows_identical_to_legacy_driver():
    assert run_experiment("figure2").rows() == run_figure2().rows()


def test_parity_figure3_rows_identical_to_legacy_driver():
    assert run_experiment("figure3").rows() == run_figure3().rows()


def test_parity_ablation_rows_identical_to_legacy_driver():
    assert run_experiment("ablation").rows() == run_ablation().as_rows()


def test_parity_confidence_sweep_rows_identical_to_legacy_driver():
    assert run_experiment("confidence_sweep").rows() == run_confidence_sweep().as_rows()


def test_parity_gravity_ablation_rows_identical_to_legacy_driver():
    assert run_experiment("gravity_ablation").rows() == run_gravity_ablation().as_rows()


def test_parity_mobility_rows_identical_to_legacy_driver():
    # Reduced configuration (the full paper sweep is a bench); both paths run
    # the identical netsim scenario.
    legacy = run_mobility_study(speeds=(0.0, 8.0), node_count=12, liar_count=2,
                                cycles=4, seed=23)
    engine = run_experiment("mobility", axes={"max_speed": (0.0, 8.0)},
                            params={"total_nodes": 12, "liar_count": 2,
                                    "cycles": 4})
    assert engine.rows() == legacy.as_rows()


# ----------------------------------------------------- runtime + parallelism
def test_parallel_run_matches_serial_report():
    serial = run_experiment("confidence_sweep")
    parallel = run_experiment("confidence_sweep", workers=2)
    assert parallel.format_report() == serial.format_report()
    assert parallel.rows() == serial.rows()


def test_rows_stream_in_expansion_order_not_completion_order():
    result = run_experiment("figure3", workers=2)
    assert [row["liar_ratio"] for row in result.rows()] == ["6.7%", "26.3%", "43.2%"]


def test_interrupted_run_resumes_and_report_is_byte_identical(tmp_path):
    reference = run_experiment("confidence_sweep").format_report()

    path = str(tmp_path / "sweep.sqlite")
    with ResultsStore(path) as store:
        # "Kill" the sweep after 4 of 9 cells.
        partial = run_experiment("confidence_sweep", store=store, max_new_runs=4)
        assert len(partial.executed_run_ids) == 4
        assert partial.skipped_run_ids == []
        assert len(store) == 4

    # Resume: only the 5 missing cells execute; the report matches the
    # uninterrupted run byte for byte.
    with ResultsStore(path) as store:
        resumed = run_experiment("confidence_sweep", store=store, workers=2)
        assert len(resumed.skipped_run_ids) == 4
        assert len(resumed.executed_run_ids) == 5
        assert resumed.format_report() == reference

    # A pure replay executes nothing and still reports identically.
    with ResultsStore(path) as store:
        replay = run_experiment("confidence_sweep", store=store)
        assert replay.executed_run_ids == []
        assert replay.format_report() == reference


def test_multi_row_cells_round_trip_through_the_store(tmp_path):
    reference = run_experiment("figure1")
    with ResultsStore(str(tmp_path / "f1.sqlite")) as store:
        run_experiment("figure1", store=store)
        stored = run_experiment("figure1", store=store)  # replay from store
        assert stored.executed_run_ids == []
        assert stored.rows() == reference.rows()
        # The flattened stream matches too (one row per node).
        assert list(store.iter_rows()) == reference.rows()


def test_max_new_runs_zero_reports_without_executing(tmp_path):
    with ResultsStore(str(tmp_path / "f3.sqlite")) as store:
        run_experiment("figure3", store=store)
        result = run_experiment("figure3", store=store, max_new_runs=0)
        assert result.executed_run_ids == []
        assert len(result.rows()) == 3


# ---------------------------------------------------------------- backends
def test_every_figure_also_runs_full_stack():
    result = run_experiment(
        "figure3",
        backend="netsim",
        axes={"liar_ratio": ("26.3%",)},
        params={"total_nodes": 8, "liar_count": 2, "cycles": 2,
                "warmup": 25.0, "attack_start": 20.0},
    )
    rows = result.rows()
    assert len(rows) == 1
    assert rows[0]["liar_ratio"] == "26.3%"
    assert rows[0]["responders"] == 6


def test_backend_choice_is_rejected_when_unknown():
    with pytest.raises(ValueError):
        run_experiment("figure1", backend="quantum")


def test_execute_cell_resolves_registry_in_process():
    spec = get_experiment("figure3").expand(axes={"liar_ratio": ("6.7%",)},
                                            params={"rounds": 3})[0]
    rows = execute_cell(spec)
    assert rows[0]["liar_count"] == 1


# -------------------------------------------------------------- campaign axis
def test_campaign_scenario_axes_apply_to_figures():
    # The campaign's liar-fraction axis, promoted onto figure1.
    result = run_experiment("figure1", axes={"liar_fraction": (0.0, 0.25)},
                            params={"rounds": 5, "liar_count": 0})
    assert result.cells() == 2
    rows = result.rows()
    assert len(rows) == 2 * 15  # one row per node per cell


def test_register_replaces_existing_definition():
    definition = ExperimentDefinition(
        name="__replaceme__", description="first", rows_from_result=lambda s, r: [])
    register(definition)
    replacement = ExperimentDefinition(
        name="__replaceme__", description="second", rows_from_result=lambda s, r: [])
    register(replacement)
    assert get_experiment("__replaceme__").description == "second"


# ----------------------------------------------------- graceful interruption
def _interruptible_execute(payload):
    """Module-level (picklable) worker: sleep, then succeed or interrupt."""
    import time as _time

    name, duration = payload
    _time.sleep(duration)
    if name == "boom":
        raise KeyboardInterrupt
    return name


def test_keyboard_interrupt_commits_completed_and_cancels_pending():
    """Ctrl-C mid-fan-out must keep finished cells and drop queued ones.

    Four cells on two workers: ``fast`` completes before ``boom`` raises
    KeyboardInterrupt (standing in for Ctrl-C hitting a worker); ``slow2``
    is still queued and must be cancelled rather than executed.  The
    interrupt itself must propagate so the CLI can report the resume path.
    """
    import time as _time

    from repro.experiments.engine import execute_pending_cells

    committed = []
    pending = [(("fast", 0.0), "h-fast"), (("boom", 0.5), "h-boom"),
               (("slow1", 1.5), "h-slow1"), (("slow2", 1.5), "h-slow2")]

    start = _time.perf_counter()
    with pytest.raises(KeyboardInterrupt):
        execute_pending_cells(pending, _interruptible_execute,
                              lambda payload, digest, result: committed.append(digest),
                              workers=2)
    elapsed = _time.perf_counter() - start
    assert "h-fast" in committed
    assert "h-boom" not in committed
    assert "h-slow2" not in committed  # cancelled, never executed
    # Had both slow cells run to completion serially the loop would take
    # >3s; cancellation keeps the exit prompt.
    assert elapsed < 10.0


def test_serial_interrupt_keeps_earlier_commits():
    from repro.experiments.engine import execute_pending_cells

    committed = []
    with pytest.raises(KeyboardInterrupt):
        execute_pending_cells(
            [(("fast", 0.0), "h1"), (("boom", 0.0), "h2"), (("late", 0.0), "h3")],
            _interruptible_execute,
            lambda payload, digest, result: committed.append(digest),
            workers=1)
    assert committed == ["h1"]


# -------------------------------------------------------- fabric-facing API
def test_expand_experiment_matches_run_expansion():
    from repro.experiments.engine import expand_experiment

    definition, specs, hashes = expand_experiment(
        "confidence_sweep", params={"rounds": 5})
    assert definition.name == "confidence_sweep"
    assert len(specs) == len(hashes) == 9
    assert hashes == [spec.content_hash() for spec in specs]
    assert specs == get_experiment("confidence_sweep").expand(
        params={"rounds": 5})
