"""Tests for drop and active-forge attacks."""

from __future__ import annotations

import random

import pytest

from repro.attacks.dropping import BlackholeAttack, GrayholeAttack, SelectiveDropFilter
from repro.attacks.forge import (
    BroadcastStormAttack,
    IdentitySpoofingAttack,
    TcTamperingAttack,
    WillingnessManipulationAttack,
)
from repro.logs.records import LogCategory
from repro.olsr.constants import MessageType, Willingness
from tests.conftest import CHAIN_POSITIONS, make_olsr_network


def converged_chain():
    network, nodes = make_olsr_network(CHAIN_POSITIONS)
    network.run(until=30.0)
    return network, nodes


# ------------------------------------------------------------------ blackhole
def test_blackhole_stops_tc_relaying():
    network, nodes = converged_chain()
    # B relays A's and C's TC traffic (it is their MPR).  Install a blackhole.
    attack = BlackholeAttack()
    attack.install(nodes["B"])
    before = nodes["B"].stats.messages_forwarded
    network.run(until=network.now + 40.0)
    assert nodes["B"].stats.messages_forwarded == before
    assert attack.dropped_count > 0
    # The node logs the filtered forwards, which the detector can read (E2).
    drops = [r for r in nodes["B"].log.by_category(LogCategory.DROP)
             if r.get("reason") == "forward_filter"]
    assert drops


def test_blackhole_prevents_topology_propagation():
    network, nodes = converged_chain()
    BlackholeAttack().install(nodes["B"])
    BlackholeAttack().install(nodes["C"])
    network.run(until=network.now + 60.0)
    # With both relays black-holing, A cannot learn a route to D any more
    # once the old topology entries expire.
    assert "D" not in nodes["A"].routing_table.destinations()


def test_blackhole_respects_schedule_deactivation():
    network, nodes = converged_chain()
    attack = BlackholeAttack()
    attack.install(nodes["B"])
    attack.deactivate()
    forwarded_before = nodes["B"].stats.messages_forwarded
    network.run(until=network.now + 30.0)
    assert nodes["B"].stats.messages_forwarded > forwarded_before
    assert attack.dropped_count == 0


# ------------------------------------------------------------------ grayhole
def test_grayhole_drop_probability_validated():
    with pytest.raises(ValueError):
        GrayholeAttack(drop_probability=1.5)


def test_grayhole_partial_dropping():
    network, nodes = converged_chain()
    attack = GrayholeAttack(drop_probability=0.5, rng=random.Random(3))
    attack.install(nodes["B"])
    network.run(until=network.now + 120.0)
    assert attack.dropped_count > 0
    assert attack.relayed_count > 0
    assert 0.2 < attack.observed_drop_ratio < 0.8


def test_grayhole_message_type_filter():
    network, nodes = converged_chain()
    attack = GrayholeAttack(drop_probability=1.0, message_types={MessageType.MID},
                            rng=random.Random(3))
    attack.install(nodes["B"])
    network.run(until=network.now + 60.0)
    # Only MID messages would be dropped; none are emitted, so nothing is dropped
    # and TC relaying continues.
    assert attack.dropped_count == 0
    assert nodes["A"].routing_table.distance("D") == 3


def test_grayhole_victim_filter_only_drops_victim_traffic():
    network, nodes = converged_chain()
    # In the chain, the only flooded traffic B relays originates from C
    # (C is the MPR of D).  Targeting C drops it; targeting an uninvolved
    # originator drops nothing and relaying continues.
    targeting_c = GrayholeAttack(drop_probability=1.0, victim_originators={"C"},
                                 rng=random.Random(3))
    targeting_c.install(nodes["B"])
    network.run(until=network.now + 90.0)
    assert targeting_c.dropped_count > 0

    network2, nodes2 = converged_chain()
    targeting_nobody = GrayholeAttack(drop_probability=1.0, victim_originators={"ghost"},
                                      rng=random.Random(3))
    targeting_nobody.install(nodes2["B"])
    network2.run(until=network2.now + 90.0)
    assert targeting_nobody.dropped_count == 0
    assert targeting_nobody.relayed_count > 0


def test_selective_drop_filter_predicate():
    network, nodes = converged_chain()
    attack = SelectiveDropFilter(predicate=lambda message, last_hop: message.originator == "C")
    attack.install(nodes["B"])
    network.run(until=network.now + 60.0)
    assert attack.dropped_count > 0


# --------------------------------------------------------------- storm/forge
def test_broadcast_storm_floods_forged_tc():
    network, nodes = converged_chain()
    attack = BroadcastStormAttack(burst_size=5, period=1.0)
    attack.install(nodes["B"])
    rx_before = nodes["A"].stats.tc_received
    network.run(until=network.now + 10.0)
    assert attack.forged_count >= 40
    assert nodes["A"].stats.tc_received > rx_before + 20


def test_broadcast_storm_parameter_validation():
    with pytest.raises(ValueError):
        BroadcastStormAttack(burst_size=0)
    with pytest.raises(ValueError):
        BroadcastStormAttack(period=0.0)


def test_broadcast_storm_with_spoofed_originator():
    network, nodes = converged_chain()
    attack = BroadcastStormAttack(burst_size=3, period=1.0, spoofed_originator="D")
    attack.install(nodes["B"])
    network.run(until=network.now + 5.0)
    forged_from_d = [r for r in nodes["A"].log.by_category(LogCategory.MESSAGE_RX)
                     if r.event == "TC" and r.get("origin") == "D" and r.get("last_hop") == "B"]
    assert forged_from_d


def test_identity_spoofing_emits_hellos_with_victim_identity():
    network, nodes = converged_chain()
    attack = IdentitySpoofingAttack(spoofed_identity="D", period=1.0)
    attack.install(nodes["B"])
    network.run(until=network.now + 10.0)
    assert attack.forged_count > 0
    spoofed = [r for r in nodes["A"].log.by_category(LogCategory.MESSAGE_RX)
               if r.event == "HELLO" and r.get("origin") == "D"]
    # A is not in range of the real D, so any HELLO "from D" is the spoofed one.
    assert spoofed


def test_willingness_manipulation_changes_advertised_willingness():
    network, nodes = converged_chain()
    WillingnessManipulationAttack(Willingness.WILL_ALWAYS).install(nodes["C"])
    network.run(until=network.now + 10.0)
    hello_from_c = [r for r in nodes["B"].log.by_category(LogCategory.MESSAGE_RX)
                    if r.event == "HELLO" and r.get("origin") == "C"]
    assert hello_from_c[-1].get("willingness") == str(int(Willingness.WILL_ALWAYS))


def test_tc_tampering_adds_and_removes_advertised_neighbors():
    network, nodes = converged_chain()
    TcTamperingAttack(added_neighbors={"ghost"}, removed_neighbors={"A"}).install(nodes["B"])
    network.run(until=network.now + 30.0)
    tc_from_b = [r for r in nodes["D"].log.by_category(LogCategory.MESSAGE_RX)
                 if r.event == "TC" and r.get("origin") == "B"]
    assert tc_from_b, "D never received a TC from B"
    advertised = set(tc_from_b[-1].get_list("advertised"))
    assert "ghost" in advertised
    assert "A" not in advertised


def test_tc_tampering_requires_some_change():
    with pytest.raises(ValueError):
        TcTamperingAttack()
