"""Tests for the entropy-based trust mapping."""

from __future__ import annotations

import pytest

from repro.trust.entropy import (
    binary_entropy,
    clamp_unit_interval,
    entropy_trust_from_probability,
    normalised_trust_to_unit,
    probability_from_entropy_trust,
    shannon_entropy,
    trust_from_observations,
    uncertainty,
    unit_to_normalised_trust,
)


def test_binary_entropy_extremes_and_midpoint():
    assert binary_entropy(0.0) == 0.0
    assert binary_entropy(1.0) == 0.0
    assert binary_entropy(0.5) == pytest.approx(1.0)


def test_binary_entropy_symmetric():
    assert binary_entropy(0.3) == pytest.approx(binary_entropy(0.7))


def test_binary_entropy_rejects_invalid_probability():
    with pytest.raises(ValueError):
        binary_entropy(-0.1)
    with pytest.raises(ValueError):
        binary_entropy(1.1)


def test_entropy_trust_reference_points():
    assert entropy_trust_from_probability(1.0) == pytest.approx(1.0)
    assert entropy_trust_from_probability(0.0) == pytest.approx(-1.0)
    assert entropy_trust_from_probability(0.5) == pytest.approx(0.0)


def test_entropy_trust_sign_follows_probability():
    assert entropy_trust_from_probability(0.9) > 0
    assert entropy_trust_from_probability(0.1) < 0


def test_entropy_trust_antisymmetric():
    assert entropy_trust_from_probability(0.8) == pytest.approx(
        -entropy_trust_from_probability(0.2))


def test_entropy_trust_monotone_in_probability():
    values = [entropy_trust_from_probability(p / 20.0) for p in range(21)]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


def test_probability_inverse_roundtrip():
    for p in (0.05, 0.3, 0.5, 0.72, 0.99):
        trust = entropy_trust_from_probability(p)
        assert probability_from_entropy_trust(trust) == pytest.approx(p, abs=1e-6)


def test_probability_from_trust_validates_range():
    with pytest.raises(ValueError):
        probability_from_entropy_trust(1.5)


def test_trust_from_observations_smoothing():
    # No observations: maximal uncertainty.
    assert trust_from_observations(0, 0) == pytest.approx(0.0)
    assert trust_from_observations(10, 0) > 0.5
    assert trust_from_observations(0, 10) < -0.5
    with pytest.raises(ValueError):
        trust_from_observations(-1, 0)


def test_shannon_entropy_uniform_maximal():
    assert shannon_entropy([0.25] * 4) == pytest.approx(2.0)
    assert shannon_entropy([1.0, 0.0]) == pytest.approx(0.0)


def test_shannon_entropy_validates_distribution():
    with pytest.raises(ValueError):
        shannon_entropy([0.5, 0.2])
    with pytest.raises(ValueError):
        shannon_entropy([-0.1, 1.1])


def test_uncertainty_decreases_with_trust_magnitude():
    assert uncertainty(0.0) == 1.0
    assert uncertainty(1.0) == 0.0
    assert uncertainty(-1.0) == 0.0
    assert uncertainty(0.5) == pytest.approx(0.5)


def test_clamp_and_rescaling_helpers():
    assert clamp_unit_interval(2.0) == 1.0
    assert clamp_unit_interval(-2.0) == -1.0
    assert normalised_trust_to_unit(-1.0) == 0.0
    assert normalised_trust_to_unit(1.0) == 1.0
    assert unit_to_normalised_trust(0.5) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        unit_to_normalised_trust(1.5)
