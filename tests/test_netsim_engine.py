"""Tests for the discrete-event engine."""

from __future__ import annotations

import random

import pytest

from repro.netsim.engine import HeapSimulator, SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "late")
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(3.0, seen.append, "last")
    sim.run()
    assert seen == ["early", "late", "last"]


def test_simultaneous_events_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, label)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.5]
    assert sim.now == 1.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(5.0, seen.append, "b")
    sim.run(until=2.0)
    assert seen == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert seen == ["a", "b"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "cancelled")
    sim.schedule(2.0, seen.append, "kept")
    handle.cancel()
    sim.run()
    assert seen == ["kept"]
    assert handle.cancelled


def test_step_executes_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    assert sim.step() is True
    assert seen == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert seen == ["a", "b"]


def test_stop_interrupts_run():
    sim = Simulator()
    seen = []

    def stopper():
        seen.append("stop")
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, seen.append, "never")
    sim.run()
    assert seen == ["stop"]
    assert sim.pending_events == 1


def test_periodic_schedule_repeats():
    sim = Simulator()
    ticks = []
    sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
    sim.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_periodic_schedule_with_start_delay():
    sim = Simulator()
    ticks = []
    sim.schedule_periodic(2.0, lambda: ticks.append(sim.now), start_delay=0.5)
    sim.run(until=6.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_cancel_stops_future_occurrences():
    sim = Simulator()
    ticks = []
    handle = sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
    sim.run(until=2.5)
    handle.cancel()
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]


def test_periodic_with_jitter_requires_rng():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_periodic(1.0, lambda: None, jitter=0.2)


def test_periodic_with_jitter_fires_no_later_than_interval():
    sim = Simulator()
    ticks = []
    sim.schedule_periodic(1.0, lambda: ticks.append(sim.now),
                          jitter=0.25, rng=random.Random(3))
    sim.run(until=10.0)
    assert len(ticks) >= 10
    gaps = [b - a for a, b in zip(ticks, ticks[1:])]
    assert all(0.74 <= gap <= 1.0 + 1e-9 for gap in gaps)


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_next_time() == 2.0


def test_peek_next_time_empty_queue():
    sim = Simulator()
    assert sim.peek_next_time() is None


def test_processed_events_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(float(i), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_drain_returns_pending_events_without_running():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    drained = list(sim.drain())
    assert len(drained) == 2
    assert sim.pending_events == 0


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def chain(depth: int):
        seen.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_stop_does_not_jump_clock_past_pending_events():
    """Regression: run(until=...) interrupted by stop() must not advance the
    clock beyond events still pending before ``until`` — doing so made a
    subsequent run execute events at event.time < now (time moving backwards).
    """
    sim = Simulator()
    times = []

    def stopper():
        times.append(sim.now)
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, lambda: times.append(sim.now))
    sim.run(until=10.0)
    assert sim.now == 1.0  # not jumped to 10.0
    sim.run(until=10.0)
    assert times == [1.0, 2.0]
    assert sim.now == 10.0


def test_max_events_does_not_jump_clock_past_pending_events():
    sim = Simulator()
    times = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, times.append, t)
    sim.run(until=5.0, max_events=1)
    assert sim.now == 1.0
    sim.run(until=5.0)
    assert times == [1.0, 2.0, 3.0]
    assert sim.now == 5.0


def test_run_until_still_advances_clock_when_drained():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0


# ------------------------------------------------- timer-wheel scheduler core

def test_post_is_equivalent_to_schedule_without_handle():
    sim = Simulator()
    seen = []
    sim.post(2.0, seen.append, "late")
    sim.post(1.0, seen.append, "early")
    sim.run()
    assert seen == ["early", "late"]
    assert sim.processed_events == 2


def test_pending_events_excludes_cancelled():
    """Regression: ``pending_events`` used to count cancelled-but-unpopped
    events, overstating remaining work to stats and ``peek_next_time``
    callers."""
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    for handle in handles[:7]:
        handle.cancel()
    assert sim.pending_events == 3
    assert sim.live_events == 3
    assert sim.queued_entries == 10  # cancelled records await compaction


def test_compaction_bounds_cancelled_backlog():
    sim = Simulator(compaction_threshold=64)
    handles = [sim.schedule(float(i % 50) + 1.0, lambda: None)
               for i in range(1000)]
    for handle in handles[:999]:
        handle.cancel()
    assert sim.counters()["compactions"] >= 1
    # The cancelled backlog was dropped from the queue, not just flagged.
    assert sim.queued_entries < 200
    assert sim.live_events == 1


def test_counters_track_wheel_hits_and_cancelled_skips():
    sim = Simulator(wheel_quantum=1.0, wheel_slots=16,
                    compaction_threshold=1 << 30)
    kept = [sim.schedule(float(i + 1), lambda: None) for i in range(8)]
    doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(8)]
    for handle in doomed:
        handle.cancel()
    sim.run()
    counters = sim.counters()
    assert counters["pushes"] == 16
    assert counters["pops"] == 8
    assert counters["cancelled_skipped"] == 8
    assert counters["wheel_hits"] == 16  # all within the wheel horizon
    assert sim.processed_events == 8


def test_equal_timestamp_fifo_across_wheel_and_overflow_boundary():
    """An event parked in the overflow heap and a same-time event scheduled
    later straight into the wheel must still run in scheduling order."""
    sim = Simulator(wheel_quantum=0.05, wheel_slots=256)  # horizon 12.8 s
    seen = []
    sim.schedule_at(20.0, seen.append, "overflow-first")   # beyond horizon
    sim.run(until=10.0)                                    # horizon now 22.8 s
    sim.schedule_at(20.0, seen.append, "wheel-second")     # same timestamp
    sim.schedule_at(20.0, seen.append, "wheel-third")
    sim.run()
    assert seen == ["overflow-first", "wheel-second", "wheel-third"]
    assert sim.now == 20.0


def test_until_and_max_events_interplay_after_wheel_rollover():
    sim = Simulator(wheel_quantum=1.0, wheel_slots=8)  # horizon 8 s
    times = []
    for i in range(1, 31):                             # wraps the wheel 3×
        sim.schedule_at(float(i), times.append, i)
    sim.run(until=15.5, max_events=10)
    assert times == list(range(1, 11))
    assert sim.now == 10.0                             # not jumped to until
    sim.run(until=15.5)
    assert times == list(range(1, 16))
    assert sim.now == 15.5
    sim.run()
    assert times == list(range(1, 31))
    assert sim.now == 30.0


def test_drain_is_deterministic_across_wheel_and_overflow():
    sim = Simulator(wheel_quantum=1.0, wheel_slots=4)  # horizon 4 s
    labels = {}
    order = [2.5, 0.5, 9.0, 2.5, 6.0, 0.5, 30.0]       # wheel + overflow mix
    handles = []
    for i, t in enumerate(order):
        handles.append(sim.schedule_at(t, lambda: None))
        labels[handles[-1]._event.sequence] = (t, i)
    handles[3].cancel()                                # drop one duplicate
    drained = [(event.time, event.sequence) for event in sim.drain()]
    assert drained == sorted(drained)                  # (time, seq) order
    assert len(drained) == 6                           # cancelled one skipped
    assert sim.pending_events == 0
    assert sim.peek_next_time() is None


def test_periodic_handle_time_tracks_next_firing():
    """Regression for the chain re-pointing bug: ``EventHandle.time`` on a
    periodic handle must always report the *next* firing."""
    sim = Simulator()
    handle = sim.schedule_periodic(1.0, lambda: None)
    assert handle.time == 1.0
    sim.run(until=3.5)
    assert handle.time == 4.0
    sim.run(until=7.2)
    assert handle.time == 8.0
    assert not handle.cancelled


def test_periodic_cancel_after_n_firings_leaves_no_ghost_event():
    """Cancelling from inside the Nth firing used to leave one live no-op
    event queued (and the handle claiming a phantom next firing)."""
    sim = Simulator()
    ticks = []
    handles = {}

    def tick():
        ticks.append(sim.now)
        if len(ticks) == 3:
            handles["chain"].cancel()

    handles["chain"] = sim.schedule_periodic(1.0, tick)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]
    assert handles["chain"].cancelled
    assert sim.live_events == 0
    assert sim.peek_next_time() is None


def test_periodic_cancel_between_firings_on_heap_reference_engine():
    sim = HeapSimulator()
    ticks = []
    handle = sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
    sim.run(until=2.5)
    assert handle.time == 3.0
    handle.cancel()
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert handle.cancelled


def test_heap_reference_engine_matches_basic_semantics():
    sim = HeapSimulator()
    seen = []
    sim.post(2.0, seen.append, "late")
    handle = sim.schedule(1.0, seen.append, "early")
    doomed = sim.schedule(1.5, seen.append, "never")
    doomed.cancel()
    sim.run()
    assert seen == ["early", "late"]
    assert handle.time == 1.0
    assert sim.pending_events == 0
