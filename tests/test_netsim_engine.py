"""Tests for the discrete-event engine."""

from __future__ import annotations

import random

import pytest

from repro.netsim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "late")
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(3.0, seen.append, "last")
    sim.run()
    assert seen == ["early", "late", "last"]


def test_simultaneous_events_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, label)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.5]
    assert sim.now == 1.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(5.0, seen.append, "b")
    sim.run(until=2.0)
    assert seen == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert seen == ["a", "b"]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "cancelled")
    sim.schedule(2.0, seen.append, "kept")
    handle.cancel()
    sim.run()
    assert seen == ["kept"]
    assert handle.cancelled


def test_step_executes_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    assert sim.step() is True
    assert seen == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert seen == ["a", "b"]


def test_stop_interrupts_run():
    sim = Simulator()
    seen = []

    def stopper():
        seen.append("stop")
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, seen.append, "never")
    sim.run()
    assert seen == ["stop"]
    assert sim.pending_events == 1


def test_periodic_schedule_repeats():
    sim = Simulator()
    ticks = []
    sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
    sim.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_periodic_schedule_with_start_delay():
    sim = Simulator()
    ticks = []
    sim.schedule_periodic(2.0, lambda: ticks.append(sim.now), start_delay=0.5)
    sim.run(until=6.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_periodic_cancel_stops_future_occurrences():
    sim = Simulator()
    ticks = []
    handle = sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
    sim.run(until=2.5)
    handle.cancel()
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]


def test_periodic_with_jitter_requires_rng():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_periodic(1.0, lambda: None, jitter=0.2)


def test_periodic_with_jitter_fires_no_later_than_interval():
    sim = Simulator()
    ticks = []
    sim.schedule_periodic(1.0, lambda: ticks.append(sim.now),
                          jitter=0.25, rng=random.Random(3))
    sim.run(until=10.0)
    assert len(ticks) >= 10
    gaps = [b - a for a, b in zip(ticks, ticks[1:])]
    assert all(0.74 <= gap <= 1.0 + 1e-9 for gap in gaps)


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_next_time() == 2.0


def test_peek_next_time_empty_queue():
    sim = Simulator()
    assert sim.peek_next_time() is None


def test_processed_events_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_max_events_limit():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(float(i), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_drain_returns_pending_events_without_running():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    drained = list(sim.drain())
    assert len(drained) == 2
    assert sim.pending_events == 0


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def chain(depth: int):
        seen.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_stop_does_not_jump_clock_past_pending_events():
    """Regression: run(until=...) interrupted by stop() must not advance the
    clock beyond events still pending before ``until`` — doing so made a
    subsequent run execute events at event.time < now (time moving backwards).
    """
    sim = Simulator()
    times = []

    def stopper():
        times.append(sim.now)
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, lambda: times.append(sim.now))
    sim.run(until=10.0)
    assert sim.now == 1.0  # not jumped to 10.0
    sim.run(until=10.0)
    assert times == [1.0, 2.0]
    assert sim.now == 10.0


def test_max_events_does_not_jump_clock_past_pending_events():
    sim = Simulator()
    times = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, times.append, t)
    sim.run(until=5.0, max_events=1)
    assert sim.now == 1.0
    sim.run(until=5.0)
    assert times == [1.0, 2.0, 3.0]
    assert sim.now == 5.0


def test_run_until_still_advances_clock_when_drained():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
