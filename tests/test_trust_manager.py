"""Tests for the direct-trust manager (Eq. 5)."""

from __future__ import annotations

import pytest

from repro.trust.evidence import EvidenceKind, beneficial, harmful
from repro.trust.manager import TrustManager, TrustParameters


def make_manager(**overrides) -> TrustManager:
    params = TrustParameters(**overrides) if overrides else TrustParameters()
    return TrustManager("observer", params)


def test_unknown_subject_has_default_trust():
    manager = make_manager(default_trust=0.4)
    assert manager.trust_of("stranger") == pytest.approx(0.4)


def test_set_initial_trust_clamped():
    manager = make_manager(minimum=0.0, maximum=1.0)
    manager.set_initial_trust("a", 5.0)
    assert manager.trust_of("a") == 1.0
    manager.set_initial_trust("b", -5.0)
    assert manager.trust_of("b") == 0.0


def test_parameters_validation():
    with pytest.raises(ValueError):
        TrustParameters(beta=1.5).validate()
    with pytest.raises(ValueError):
        TrustParameters(minimum=0.9, maximum=0.1).validate()
    with pytest.raises(ValueError):
        TrustParameters(default_trust=2.0).validate()
    with pytest.raises(ValueError):
        TrustParameters(alpha_beneficial=-1.0).validate()
    with pytest.raises(ValueError):
        TrustParameters(beta_recovery=2.0).validate()


def test_harmful_evidence_decreases_trust():
    manager = make_manager()
    manager.set_initial_trust("liar", 0.7)
    evidence = harmful("observer", "liar", EvidenceKind.INCORRECT_ANSWER, timestamp=1.0)
    new_value = manager.update("liar", [evidence], now=1.0)
    assert new_value < 0.7


def test_beneficial_evidence_increases_trust():
    manager = make_manager()
    manager.set_initial_trust("good", 0.4)
    evidence = beneficial("observer", "good", EvidenceKind.CORRECT_ANSWER, timestamp=1.0)
    new_value = manager.update("good", [evidence], now=1.0)
    assert new_value > 0.4


def test_defensive_asymmetry_harm_outweighs_benefit():
    manager = make_manager()
    manager.set_initial_trust("a", 0.5)
    manager.set_initial_trust("b", 0.5)
    drop = 0.5 - manager.update(
        "a", [harmful("observer", "a", EvidenceKind.INCORRECT_ANSWER)], now=1.0)
    gain = manager.update(
        "b", [beneficial("observer", "b", EvidenceKind.CORRECT_ANSWER)], now=1.0) - 0.5
    assert drop > gain


def test_trust_clamped_to_bounds():
    manager = make_manager(minimum=0.0, maximum=1.0)
    manager.set_initial_trust("liar", 0.1)
    for round_index in range(50):
        manager.update("liar", [harmful("observer", "liar", EvidenceKind.LINK_SPOOFING)],
                       now=float(round_index))
    assert manager.trust_of("liar") == 0.0
    manager.set_initial_trust("saint", 0.9)
    for round_index in range(200):
        manager.update("saint", [beneficial("observer", "saint", EvidenceKind.CORRECT_ANSWER)],
                       now=float(round_index))
    assert manager.trust_of("saint") <= 1.0


def test_no_evidence_decays_toward_default_from_above():
    manager = make_manager(default_trust=0.4, beta=0.9)
    manager.set_initial_trust("a", 0.9)
    for round_index in range(100):
        manager.update("a", [], now=float(round_index))
    assert manager.trust_of("a") == pytest.approx(0.4, abs=0.02)


def test_no_evidence_recovers_toward_default_from_below():
    manager = make_manager(default_trust=0.4, beta=0.9)
    manager.set_initial_trust("a", 0.0)
    for round_index in range(100):
        manager.update("a", [], now=float(round_index))
    assert manager.trust_of("a") == pytest.approx(0.4, abs=0.02)


def test_beta_recovery_slows_upward_recovery_only():
    fast = make_manager(default_trust=0.4, beta=0.9, beta_recovery=None)
    slow = make_manager(default_trust=0.4, beta=0.9, beta_recovery=0.99)
    fast.set_initial_trust("former-liar", 0.0)
    slow.set_initial_trust("former-liar", 0.0)
    fast.set_initial_trust("trusted", 0.9)
    slow.set_initial_trust("trusted", 0.9)
    for round_index in range(10):
        fast.decay_all(now=float(round_index))
        slow.decay_all(now=float(round_index))
    assert slow.trust_of("former-liar") < fast.trust_of("former-liar")
    # Decay from above the default is unaffected by beta_recovery.
    assert slow.trust_of("trusted") == pytest.approx(fast.trust_of("trusted"))


def test_without_decay_to_default_trust_decays_toward_zero():
    manager = make_manager(decay_to_default=False, beta=0.5, default_trust=0.4)
    manager.set_initial_trust("a", 0.8)
    manager.update("a", [], now=1.0)
    assert manager.trust_of("a") == pytest.approx(0.4)
    manager.update("a", [], now=2.0)
    assert manager.trust_of("a") == pytest.approx(0.2)


def test_update_ignores_evidence_about_other_subjects():
    manager = make_manager()
    manager.set_initial_trust("a", 0.4)
    foreign = harmful("observer", "someone-else", EvidenceKind.INCORRECT_ANSWER)
    value = manager.update("a", [foreign], now=1.0)
    # Treated as a no-evidence slot: stays at/near the default.
    assert value == pytest.approx(0.4, abs=0.01)


def test_update_all_applies_forgetting_to_missing_subjects():
    manager = make_manager()
    manager.set_initial_trust("quiet", 0.9)
    manager.set_initial_trust("active", 0.4)
    results = manager.update_all(
        {"active": [beneficial("observer", "active", EvidenceKind.CORRECT_ANSWER)]},
        now=1.0,
    )
    assert results["active"] > 0.4
    assert results["quiet"] < 0.9  # forgetting pulled it toward the default


def test_history_tracks_one_value_per_slot():
    manager = make_manager()
    manager.set_initial_trust("a", 0.4)
    for round_index in range(5):
        manager.update("a", [], now=float(round_index))
    assert len(manager.history_of("a")) == 5
    assert manager.history_of("unknown") == []


def test_record_metadata_updated():
    manager = make_manager()
    manager.update("a", [beneficial("observer", "a", EvidenceKind.CORRECT_ANSWER)], now=3.5)
    record = manager.record_of("a")
    assert record.updates == 1
    assert record.last_update_time == 3.5


def test_known_subjects_and_as_dict():
    manager = make_manager()
    manager.set_initial_trust("b", 0.2)
    manager.set_initial_trust("a", 0.6)
    assert manager.known_subjects() == ["a", "b"]
    snapshot = manager.as_dict()
    assert snapshot == {"a": 0.6, "b": 0.2}


def test_normalised_trust_respects_custom_bounds():
    manager = make_manager(minimum=-1.0, maximum=1.0, default_trust=0.0)
    manager.set_initial_trust("a", 0.0)
    assert manager.normalised_trust("a") == pytest.approx(0.5)
