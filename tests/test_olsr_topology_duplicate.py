"""Tests for the topology set (TC processing) and the duplicate set."""

from __future__ import annotations

from repro.olsr.duplicate import DuplicateSet
from repro.olsr.topology import TopologySet, _ansn_older


def test_process_tc_adds_edges():
    topology = TopologySet()
    changed = topology.process_tc("mpr1", ansn=1, advertised={"a", "b"}, now=0.0, hold_time=15.0)
    assert changed
    assert topology.destinations() == {"a", "b"}
    assert topology.last_hops_for("a") == {"mpr1"}
    assert topology.advertised_by("mpr1") == {"a", "b"}
    assert len(topology) == 2


def test_process_tc_older_ansn_ignored():
    topology = TopologySet()
    topology.process_tc("mpr1", ansn=5, advertised={"a"}, now=0.0, hold_time=15.0)
    changed = topology.process_tc("mpr1", ansn=3, advertised={"b"}, now=1.0, hold_time=15.0)
    assert not changed
    assert topology.destinations() == {"a"}


def test_process_tc_newer_ansn_replaces_old_edges():
    topology = TopologySet()
    topology.process_tc("mpr1", ansn=1, advertised={"a", "b"}, now=0.0, hold_time=15.0)
    topology.process_tc("mpr1", ansn=2, advertised={"c"}, now=1.0, hold_time=15.0)
    assert topology.advertised_by("mpr1") == {"c"}


def test_process_tc_same_ansn_refreshes():
    topology = TopologySet()
    topology.process_tc("mpr1", ansn=1, advertised={"a"}, now=0.0, hold_time=10.0)
    changed = topology.process_tc("mpr1", ansn=1, advertised={"a"}, now=5.0, hold_time=10.0)
    assert not changed  # nothing new, just refreshed
    assert topology.purge_expired(12.0) == []  # expiry pushed to 15


def test_multiple_originators_coexist():
    topology = TopologySet()
    topology.process_tc("m1", ansn=1, advertised={"a"}, now=0.0, hold_time=15.0)
    topology.process_tc("m2", ansn=7, advertised={"a", "b"}, now=0.0, hold_time=15.0)
    assert topology.last_hops_for("a") == {"m1", "m2"}
    assert set(topology.edges()) == {("m1", "a"), ("m2", "a"), ("m2", "b")}


def test_remove_for_originator():
    topology = TopologySet()
    topology.process_tc("m1", ansn=1, advertised={"a"}, now=0.0, hold_time=15.0)
    topology.process_tc("m2", ansn=1, advertised={"b"}, now=0.0, hold_time=15.0)
    topology.remove_for_originator("m1")
    assert topology.destinations() == {"b"}


def test_topology_purge_expired():
    topology = TopologySet()
    topology.process_tc("m1", ansn=1, advertised={"a"}, now=0.0, hold_time=5.0)
    topology.process_tc("m2", ansn=1, advertised={"b"}, now=0.0, hold_time=50.0)
    expired = topology.purge_expired(10.0)
    assert len(expired) == 1
    assert topology.destinations() == {"b"}


def test_topology_get_specific_tuple():
    topology = TopologySet()
    topology.process_tc("m1", ansn=4, advertised={"a"}, now=0.0, hold_time=15.0)
    record = topology.get("a", "m1")
    assert record is not None and record.ansn == 4
    assert topology.get("a", "ghost") is None


def test_ansn_wraparound_comparison():
    assert _ansn_older(5, 10)
    assert not _ansn_older(10, 5)
    # Wrap-around: 65530 is "older" than 2 in 16-bit sequence space.
    assert _ansn_older(65530, 2) is True
    assert _ansn_older(2, 65530) is False


# ------------------------------------------------------------ duplicate set
def test_duplicate_seen_and_forwarded_tracking():
    duplicates = DuplicateSet(hold_time=30.0)
    assert not duplicates.seen("a", 1)
    duplicates.record("a", 1, now=0.0, received_from="x")
    assert duplicates.seen("a", 1)
    assert not duplicates.already_forwarded("a", 1)
    duplicates.mark_forwarded("a", 1)
    assert duplicates.already_forwarded("a", 1)


def test_duplicate_record_accumulates_receivers():
    duplicates = DuplicateSet()
    duplicates.record("a", 1, now=0.0, received_from="x")
    record = duplicates.record("a", 1, now=1.0, received_from="y")
    assert record.received_from == {"x", "y"}


def test_duplicate_purge_expired():
    duplicates = DuplicateSet(hold_time=10.0)
    duplicates.record("a", 1, now=0.0, received_from="x")
    duplicates.record("b", 2, now=20.0, received_from="x")
    expired = duplicates.purge_expired(15.0)
    assert len(expired) == 1
    assert not duplicates.seen("a", 1)
    assert duplicates.seen("b", 2)


def test_duplicate_refresh_extends_expiry():
    duplicates = DuplicateSet(hold_time=10.0)
    duplicates.record("a", 1, now=0.0, received_from="x")
    duplicates.record("a", 1, now=8.0, received_from="x")
    assert duplicates.purge_expired(15.0) == []
    assert duplicates.seen("a", 1)


def test_mark_forwarded_on_unknown_message_is_noop():
    duplicates = DuplicateSet()
    duplicates.mark_forwarded("ghost", 99)
    assert not duplicates.already_forwarded("ghost", 99)
