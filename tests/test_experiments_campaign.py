"""Tests for the scenario-campaign runner and its determinism guarantees."""

from __future__ import annotations

import pytest

from repro.experiments.campaign import (
    SYSTEMS,
    CampaignGrid,
    CampaignSpec,
    _parse_loss,
    build_parser,
    execute_spec,
    main,
    run_campaign,
)
from repro.experiments.report import aggregate_rows
from repro.seeding import stable_digest, stable_seed


# ------------------------------------------------------------------ seeding
def test_stable_digest_is_process_independent_known_values():
    # CRC32 values are fixed by the algorithm, not by PYTHONHASHSEED.
    assert stable_digest("n00") == 1150761319
    assert stable_digest("n07") == 3673402564


def test_stable_seed_distinct_per_label_and_repeatable():
    seeds = {stable_seed(7, f"cell-{i}") for i in range(50)}
    assert len(seeds) == 50
    assert stable_seed(7, "cell-3") == stable_seed(7, "cell-3")
    assert stable_seed(7, "cell-3") != stable_seed(8, "cell-3")


# --------------------------------------------------------------------- grid
def test_grid_expands_full_cross_product_with_stable_seeds():
    grid = CampaignGrid(
        node_counts=(8, 16),
        liar_fractions=(0.0, 0.25),
        loss_models=("bernoulli:0.0", "bernoulli:0.2"),
        max_speeds=(0.0, 5.0),
        repetitions=1,
        base_seed=7,
    )
    specs = grid.expand()
    assert grid.size() == 16
    assert len(specs) == 16
    assert len({spec.run_id for spec in specs}) == 16
    assert specs == grid.expand()  # expansion is deterministic
    assert specs == sorted(specs, key=lambda s: s.run_id)
    for spec in specs:
        # The seed is derived from the scenario axes only (run id minus the
        # trailing system token), so every system replays the same scenario.
        scenario_id = spec.run_id[: -(len(spec.system) + 1)]
        assert spec.run_id == f"{scenario_id}-{spec.system}"
        assert spec.seed == stable_seed(7, scenario_id)


def test_grid_repetitions_get_distinct_seeds():
    grid = CampaignGrid(node_counts=(8,), liar_fractions=(0.0,), repetitions=3)
    specs = grid.expand()
    assert len(specs) == 3
    assert len({spec.seed for spec in specs}) == 3


def test_grid_validates_axes():
    with pytest.raises(ValueError):
        CampaignGrid(liar_fractions=(1.5,))
    with pytest.raises(ValueError):
        CampaignGrid(loss_models=("gaussian:0.1",))
    with pytest.raises(ValueError):
        CampaignGrid(attack_variants=("no_such_variant",))
    with pytest.raises(ValueError):
        CampaignGrid(repetitions=0)
    with pytest.raises(ValueError):
        CampaignGrid(systems=("no_such_system",))


def test_grid_system_axis_multiplies_cells_and_shares_seeds():
    grid = CampaignGrid(node_counts=(8,), liar_fractions=(0.25,), systems=SYSTEMS)
    specs = grid.expand()
    assert grid.size() == len(SYSTEMS)
    assert sorted(spec.system for spec in specs) == sorted(SYSTEMS)
    # Same scenario cell under every system → one shared seed.
    assert len({spec.seed for spec in specs}) == 1


def test_parse_loss_entries():
    assert _parse_loss("bernoulli:0.2") == ("bernoulli", 0.2)
    assert _parse_loss("distance:0.8") == ("distance", 0.8)
    assert _parse_loss("bernoulli") == ("bernoulli", 0.0)
    with pytest.raises(ValueError):
        _parse_loss("bernoulli:1.5")


def test_spec_liar_count_scales_with_responders():
    spec = CampaignSpec(run_id="x", seed=1, node_count=10, liar_fraction=0.25,
                        loss_model="bernoulli", loss_probability=0.0,
                        max_speed=0.0, attack_variant="false_existing_link")
    assert spec.liar_count() == 2  # 25 % of 8 responders


# ---------------------------------------------------------------- execution
def _tiny_grid(**overrides) -> CampaignGrid:
    settings = dict(
        node_counts=(8,),
        liar_fractions=(0.0, 0.25),
        loss_models=("bernoulli:0.0",),
        max_speeds=(0.0,),
        base_seed=7,
        warmup=20.0,
        cycles=1,
    )
    settings.update(overrides)
    return CampaignGrid(**settings)


def test_execute_spec_produces_metrics():
    spec = _tiny_grid().expand()[0]
    result = execute_spec(spec)
    assert result.spec is spec
    assert result.frames_sent > 0
    assert result.events_processed > 0
    row = result.as_row()
    assert row["run_id"] == spec.run_id
    assert row["nodes"] == 8


def test_run_campaign_serial_is_deterministic():
    first = run_campaign(_tiny_grid())
    second = run_campaign(_tiny_grid())
    assert first.format_report() == second.format_report()
    assert first.as_rows() == second.as_rows()


def test_run_campaign_parallel_matches_serial():
    serial = run_campaign(_tiny_grid())
    parallel = run_campaign(_tiny_grid(), workers=2)
    assert parallel.format_report() == serial.format_report()


def test_campaign_aggregate_groups_rows():
    result = run_campaign(_tiny_grid())
    aggregate = result.aggregate(("variant", "liar_fraction"))
    assert len(aggregate) == 2
    assert all(row["runs"] == 1 for row in aggregate)


# ---------------------------------------------------------------------- CLI
def test_cli_two_invocations_byte_identical(tmp_path, capsys):
    argv = ["--node-counts", "8", "--liar-fractions", "0.0,0.25",
            "--loss", "bernoulli:0.0", "--speeds", "0",
            "--warmup", "20", "--cycles", "1"]
    outputs = []
    for name in ("a.txt", "b.txt"):
        path = tmp_path / name
        assert main(argv + ["--output", str(path)]) == 0
        outputs.append(path.read_bytes())
    assert outputs[0] == outputs[1]
    assert b"Campaign" in outputs[0]
    capsys.readouterr()  # swallow the printed reports


def test_cli_parser_defaults():
    args = build_parser().parse_args([])
    assert args.node_counts == [16]
    assert args.workers == 1
    assert args.loss == ["bernoulli:0.0"]
    assert args.systems == ["detector"]
    assert args.db is None and not args.resume


def test_as_row_keeps_raw_precision():
    # Aggregates must be computed from raw per-run metrics; rounding happens
    # only in the formatter.  (A pre-rounded 4-digit row biases group means.)
    from repro.experiments.campaign import CampaignRunResult

    spec = CampaignSpec(run_id="x", seed=1, node_count=8, liar_fraction=0.0,
                        loss_model="bernoulli", loss_probability=0.0,
                        max_speed=0.0, attack_variant="false_existing_link")
    result = CampaignRunResult(
        spec=spec, attacker_investigated=True, detection_cycles=1,
        final_detect=-0.123456789, attacker_trust=0.987654321,
        mean_liar_trust=None, mean_honest_trust=0.5,
        frames_sent=1, frames_delivered=1, events_processed=1,
    )
    row = result.as_row()
    assert row["final_detect"] == -0.123456789
    assert row["attacker_trust"] == 0.987654321


# ---------------------------------------------------------------- reporting
def test_aggregate_rows_means_and_sorting():
    rows = [
        {"group": "b", "value": 2.0, "flag": True},
        {"group": "a", "value": 1.0, "flag": False},
        {"group": "b", "value": 4.0, "flag": True},
        {"group": "a", "value": None, "flag": False},
    ]
    aggregated = aggregate_rows(rows, ("group",), ("value",))
    assert [row["group"] for row in aggregated] == ["a", "b"]
    assert aggregated[0]["runs"] == 2
    assert aggregated[0]["value"] == 1.0  # None skipped
    assert aggregated[1]["value"] == 3.0
