"""Tests for audit-log records and the text parser."""

from __future__ import annotations

import pytest

from repro.logs.parser import (
    LogParseError,
    dump_records,
    format_record,
    load_records,
    parse_line,
    parse_lines,
)
from repro.logs.records import LogCategory, LogRecord, make_record


def test_make_record_converts_values_to_strings():
    record = make_record(1.5, "n1", LogCategory.MPR, "MPR_SELECTED",
                         mpr="n2", covered=["b", "a"], count=3, ratio=0.25)
    assert record.fields["mpr"] == "n2"
    assert record.fields["covered"] == "a,b"
    assert record.fields["count"] == "3"
    assert record.fields["ratio"].startswith("0.25")


def test_make_record_skips_none_values():
    record = make_record(0.0, "n1", LogCategory.SYSTEM, "CONFIG", nothing=None, some=1)
    assert "nothing" not in record.fields
    assert "some" in record.fields


def test_record_get_and_get_list():
    record = make_record(0.0, "n1", LogCategory.MPR, "MPR_SET_CHANGED",
                         mprs=["a", "b"], empty=[])
    assert record.get("mprs") == "a,b"
    assert record.get_list("mprs") == ["a", "b"]
    assert record.get_list("empty") == []
    assert record.get_list("absent") == []
    assert record.get("absent", "fallback") == "fallback"


def test_record_with_fields_returns_copy():
    record = make_record(0.0, "n1", LogCategory.SYSTEM, "CONFIG", a="1")
    extended = record.with_fields(b="2")
    assert "b" not in record.fields
    assert extended.fields["b"] == "2"
    assert extended.fields["a"] == "1"


def test_format_and_parse_roundtrip():
    record = make_record(12.345678, "n3", LogCategory.MPR, "MPR_SELECTED",
                         mpr="n7", covered=["n9", "n12"])
    line = format_record(record)
    parsed = parse_line(line)
    assert parsed.time == pytest.approx(record.time)
    assert parsed.node == record.node
    assert parsed.category == record.category
    assert parsed.event == record.event
    assert parsed.fields == record.fields


def test_format_quotes_values_with_spaces():
    record = make_record(1.0, "n1", LogCategory.SYSTEM, "CONFIG", note="two words")
    line = format_record(record)
    assert '"two words"' in line
    assert parse_line(line).get("note") == "two words"


def test_format_quotes_empty_values():
    record = LogRecord(1.0, "n1", LogCategory.SYSTEM, "CONFIG", {"empty": ""})
    line = format_record(record)
    parsed = parse_line(line)
    assert parsed.get("empty") == ""


def test_parse_line_missing_mandatory_key_raises():
    with pytest.raises(LogParseError):
        parse_line("t=1.0 cat=MPR event=X")


def test_parse_line_invalid_category_raises():
    with pytest.raises(LogParseError):
        parse_line("t=1.0 node=n1 cat=NOPE event=X")


def test_parse_line_invalid_timestamp_raises():
    with pytest.raises(LogParseError):
        parse_line("t=abc node=n1 cat=MPR event=X")


def test_parse_empty_line_raises():
    with pytest.raises(LogParseError):
        parse_line("   ")


def test_parse_lines_skip_errors():
    lines = [
        "t=1.0 node=n1 cat=MPR event=MPR_SELECTED",
        "garbage line",
        "t=2.0 node=n1 cat=LINK event=LINK_SYM neighbor=n2",
    ]
    with pytest.raises(LogParseError):
        list(parse_lines(lines))
    parsed = list(parse_lines(lines, skip_errors=True))
    assert len(parsed) == 2


def test_dump_and_load_many_records():
    records = [
        make_record(float(i), "n1", LogCategory.LINK, "LINK_SYM", neighbor=f"n{i}")
        for i in range(10)
    ]
    text = dump_records(records)
    loaded = load_records(text)
    assert len(loaded) == 10
    assert loaded[3].get("neighbor") == "n3"


def test_category_str_is_wire_value():
    assert str(LogCategory.MESSAGE_RX) == "MSG_RX"
    assert LogCategory("MSG_RX") is LogCategory.MESSAGE_RX
