"""Tests for the cooperative investigation (Algorithm 1)."""

from __future__ import annotations

import random

import pytest

from repro.core.decision import ANSWER_CONFIRM, ANSWER_DENY, ANSWER_MISSING, DecisionOutcome
from repro.core.investigation import (
    CallableTransport,
    CooperativeInvestigator,
    NetworkPathTransport,
    OracleTransport,
    common_two_hop_neighbors,
    path_avoiding,
)
from repro.trust.manager import TrustManager, TrustParameters
from repro.trust.recommendation import RecommendationManager


class StubResponder:
    """Responder returning a fixed answer."""

    def __init__(self, answer):
        self._answer = answer
        self.queries = []

    def answer_link_query(self, suspect, requester, link_peer=None):
        self.queries.append((suspect, requester, link_peer))
        return self._answer


def make_investigator(transport, **kwargs) -> CooperativeInvestigator:
    trust = TrustManager("inv", TrustParameters(minimum=0.05))
    return CooperativeInvestigator(
        owner="inv",
        transport=transport,
        trust_manager=trust,
        recommendation_manager=RecommendationManager("inv"),
        **kwargs,
    )


# ----------------------------------------------------------- helper functions
def test_common_two_hop_neighbors_intersection():
    coverage = {"suspect": {"x", "y", "z"}, "old": {"y", "z", "w"}}
    common = common_two_hop_neighbors(lambda n: coverage.get(n, set()), "suspect", ["old"])
    assert common == {"y", "z"}


def test_common_two_hop_neighbors_falls_back_to_suspect_coverage():
    coverage = {"suspect": {"x"}, "old": {"w"}}
    common = common_two_hop_neighbors(lambda n: coverage.get(n, set()), "suspect", ["old"])
    assert common == {"x"}


def test_common_two_hop_neighbors_no_replaced_mpr():
    coverage = {"suspect": {"x", "y"}}
    common = common_two_hop_neighbors(lambda n: coverage.get(n, set()), "suspect", [])
    assert common == {"x", "y"}


def test_common_two_hop_neighbors_excludes_investigator_and_suspect():
    coverage = {"suspect": {"me", "suspect", "x"}}
    common = common_two_hop_neighbors(lambda n: coverage.get(n, set()), "suspect", [],
                                      exclude={"me"})
    assert common == {"x"}


def test_path_avoiding_finds_detour():
    connectivity = {
        "a": ["b", "i"],
        "b": ["a", "c"],
        "c": ["b", "i"],
        "i": ["a", "c"],
    }
    path = path_avoiding(connectivity, "a", "c", avoid={"i"})
    assert path == ["a", "b", "c"]


def test_path_avoiding_returns_none_when_only_route_is_suspect():
    connectivity = {"a": ["i"], "i": ["a", "c"], "c": ["i"]}
    assert path_avoiding(connectivity, "a", "c", avoid={"i"}) is None


def test_path_avoiding_same_node():
    assert path_avoiding({}, "a", "a", avoid=set()) == ["a"]


def test_path_avoiding_target_in_avoid_set():
    assert path_avoiding({"a": ["b"]}, "a", "b", avoid={"b"}) is None


# -------------------------------------------------------------- transports
def test_oracle_transport_queries_responders():
    transport = OracleTransport({"s1": StubResponder(True), "s2": StubResponder(False)})
    assert transport.verify_link("inv", "s1", "i") is True
    assert transport.verify_link("inv", "s2", "i") is False
    assert transport.verify_link("inv", "ghost", "i") is None


def test_oracle_transport_loss():
    transport = OracleTransport({"s1": StubResponder(True)}, loss_probability=1.0,
                                rng=random.Random(0))
    assert transport.verify_link("inv", "s1", "i") is None
    with pytest.raises(ValueError):
        OracleTransport({}, loss_probability=2.0)


def test_default_transport_rngs_are_per_owner():
    # The old default seeded every transport with random.Random(0), so all
    # nodes drew the identical loss sequence; the per-owner derivation must
    # decorrelate owners while staying deterministic per owner.
    draws = {}
    for owner in ("n00", "n01"):
        transport = OracleTransport({}, owner=owner)
        repeat = OracleTransport({}, owner=owner)
        draws[owner] = [transport.rng.random() for _ in range(4)]
        assert draws[owner] == [repeat.rng.random() for _ in range(4)]
    assert draws["n00"] != draws["n01"]
    # The two transport kinds do not share sequences for the same owner either.
    network = NetworkPathTransport(lambda: {}, {}, owner="n00")
    assert [network.rng.random() for _ in range(4)] != draws["n00"]


def test_oracle_transport_passes_link_peer():
    responder = StubResponder(True)
    transport = OracleTransport({"s1": responder})
    transport.verify_link("inv", "s1", "i", link_peer="x")
    assert responder.queries[-1] == ("i", "inv", "x")


def test_callable_transport_both_signatures():
    four_arg = CallableTransport(lambda req, res, sus, peer: True)
    three_arg = CallableTransport(lambda req, res, sus: False)
    assert four_arg.verify_link("a", "b", "c", link_peer="d") is True
    assert three_arg.verify_link("a", "b", "c") is False


def test_network_path_transport_avoids_suspect():
    connectivity = {"inv": ["i"], "i": ["inv", "s1"], "s1": ["i"]}
    transport = NetworkPathTransport(
        connectivity_oracle=lambda: connectivity,
        responders={"s1": StubResponder(False)},
    )
    # The only path to s1 goes through the suspect: no answer.
    assert transport.verify_link("inv", "s1", "i") is None


def test_network_path_transport_uses_detour_and_colluder_avoidance():
    connectivity = {
        "inv": ["i", "b"],
        "i": ["inv", "s1"],
        "b": ["inv", "s1"],
        "s1": ["i", "b"],
    }
    responder = StubResponder(False)
    transport = NetworkPathTransport(
        connectivity_oracle=lambda: connectivity,
        responders={"s1": responder},
    )
    assert transport.verify_link("inv", "s1", "i") is False
    # Now the detour node is a known colluder: unreachable again.
    transport_colluded = NetworkPathTransport(
        connectivity_oracle=lambda: connectivity,
        responders={"s1": responder},
        colluders={"b"},
    )
    assert transport_colluded.verify_link("inv", "s1", "i") is None


# ------------------------------------------------------------- investigator
def test_open_investigation_and_round_all_denials():
    transport = OracleTransport({f"s{i}": StubResponder(False) for i in range(6)})
    investigator = make_investigator(transport)
    investigator.open_investigation("i", [f"s{i}" for i in range(6)])
    result = investigator.run_round("i", now=0.0)
    assert result.decision.detect_value == pytest.approx(-1.0)
    assert set(result.answers.values()) == {ANSWER_DENY}
    assert result.responders_unreached == []


def test_round_records_missing_answers():
    responders = {"s0": StubResponder(False), "s1": StubResponder(None)}
    investigator = make_investigator(OracleTransport(responders))
    investigator.open_investigation("i", ["s0", "s1"])
    result = investigator.run_round("i")
    assert result.answers["s1"] == ANSWER_MISSING
    assert "s1" in result.responders_unreached


def test_round_requires_open_investigation():
    investigator = make_investigator(OracleTransport({}))
    with pytest.raises(KeyError):
        investigator.run_round("nobody")


def test_open_investigation_merges_responders():
    investigator = make_investigator(OracleTransport({}))
    investigator.open_investigation("i", ["a"])
    state = investigator.open_investigation("i", ["b"])
    assert state.responders == ["a", "b"]


def test_empty_responder_set_marks_unverified():
    investigator = make_investigator(OracleTransport({}))
    state = investigator.open_investigation("i", [])
    assert state.unverified


def test_trust_updates_after_round():
    responders = {f"h{i}": StubResponder(False) for i in range(4)}
    responders["liar"] = StubResponder(True)
    investigator = make_investigator(OracleTransport(responders))
    trust = investigator.trust
    investigator.open_investigation("i", list(responders))
    before_liar = trust.trust_of("liar")
    before_honest = trust.trust_of("h0")
    before_suspect = trust.trust_of("i")
    investigator.run_round("i", now=1.0)
    assert trust.trust_of("liar") < before_liar
    assert trust.trust_of("h0") >= before_honest
    assert trust.trust_of("i") < before_suspect


def test_recommendation_trust_tracks_agreement():
    responders = {"h0": StubResponder(False), "h1": StubResponder(False),
                  "liar": StubResponder(True)}
    investigator = make_investigator(OracleTransport(responders))
    investigator.open_investigation("i", list(responders))
    investigator.run_round("i")
    recs = investigator.recommendations
    assert recs.accuracy_of("h0") == 1.0
    assert recs.accuracy_of("liar") == 0.0


def test_repeated_rounds_converge_and_track_trajectory():
    responders = {f"h{i}": StubResponder(False) for i in range(10)}
    responders.update({f"l{i}": StubResponder(True) for i in range(4)})
    investigator = make_investigator(OracleTransport(responders))
    investigator.open_investigation("i", list(responders))
    for round_index in range(15):
        investigator.run_round("i", now=float(round_index))
    state = investigator.state_of("i")
    trajectory = state.detect_trajectory
    assert len(trajectory) == 15
    assert trajectory[-1] < trajectory[0]
    assert trajectory[-1] < -0.8
    assert state.disagreeing == {f"h{i}" for i in range(10)}
    assert state.agreeing == {f"l{i}" for i in range(4)}


def test_close_on_decision_terminates_investigation():
    responders = {f"s{i}": StubResponder(False) for i in range(8)}
    investigator = make_investigator(OracleTransport(responders), close_on_decision=True)
    investigator.open_investigation("i", list(responders))
    result = investigator.run_round("i")
    assert result.decision.outcome == DecisionOutcome.INTRUDER
    state = investigator.state_of("i")
    assert state.closed
    assert state.final_outcome == DecisionOutcome.INTRUDER
    with pytest.raises(RuntimeError):
        investigator.run_round("i")


def test_manual_close_returns_last_outcome():
    responders = {"s0": StubResponder(False)}
    investigator = make_investigator(OracleTransport(responders))
    investigator.open_investigation("i", ["s0"])
    investigator.run_round("i")
    outcome = investigator.close("i")
    assert outcome is not None
    assert investigator.close("unknown") is None
    assert "i" not in investigator.open_investigations()


def test_contested_link_mode_single_denial_is_damning():
    class PerLinkResponder:
        def answer_link_query(self, suspect, requester, link_peer=None):
            if link_peer == "spoofed":
                return False
            if link_peer == "genuine":
                return True
            return None

    transport = OracleTransport({"w": PerLinkResponder()})
    investigator = make_investigator(transport)
    investigator.open_investigation("i", ["w"], contested_links=["genuine", "spoofed"])
    result = investigator.run_round("i")
    assert result.answers["w"] == ANSWER_DENY


def test_contested_link_mode_no_knowledge_is_missing():
    transport = OracleTransport({"w": StubResponder(None)})
    investigator = make_investigator(transport)
    investigator.open_investigation("i", ["w"], contested_links=["x"])
    result = investigator.run_round("i")
    assert result.answers["w"] == ANSWER_MISSING


def test_contested_link_mode_confirm_only_is_confirm():
    transport = OracleTransport({"w": StubResponder(True)})
    investigator = make_investigator(transport)
    investigator.open_investigation("i", ["w"], contested_links=["x", "y"])
    result = investigator.run_round("i")
    assert result.answers["w"] == ANSWER_CONFIRM


def test_open_investigation_merges_contested_links_and_drops_suspect():
    investigator = make_investigator(OracleTransport({}))
    investigator.open_investigation("i", ["a"], contested_links=["x"])
    state = investigator.open_investigation("i", ["a"], contested_links=["y", "i"])
    assert state.contested_links == ["x", "y"]
