"""Shared pytest fixtures."""

from __future__ import annotations

import random

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.medium import UnitDiskPropagation, WirelessMedium
from repro.netsim.mobility import StaticPlacement
from repro.netsim.network import Network
from repro.olsr.node import OlsrConfig, OlsrNode


@pytest.fixture
def simulator() -> Simulator:
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A seeded random generator for deterministic tests."""
    return random.Random(1234)


def make_network(positions, radio_range: float = 250.0, seed: int = 0,
                 loss_model=None) -> Network:
    """Build a network with static positions and a unit-disk medium."""
    simulator = Simulator()
    medium = WirelessMedium(
        simulator,
        propagation=UnitDiskPropagation(radio_range=radio_range),
        loss_model=loss_model,
    )
    network = Network(
        simulator=simulator,
        medium=medium,
        mobility=StaticPlacement(dict(positions)),
        seed=seed,
    )
    network.add_nodes(list(positions))
    return network


def make_olsr_network(positions, radio_range: float = 250.0, seed: int = 0,
                      config: OlsrConfig | None = None):
    """Build a network plus one started OLSR node per position."""
    network = make_network(positions, radio_range=radio_range, seed=seed)
    nodes = {}
    for index, node_id in enumerate(positions):
        nodes[node_id] = OlsrNode(node_id, network, config=config, seed=seed + index)
    for node in nodes.values():
        node.start()
    return network, nodes


#: Chain topology A - B - C - D (each link 200 m, radio range 250 m).
CHAIN_POSITIONS = {
    "A": (0.0, 0.0),
    "B": (200.0, 0.0),
    "C": (400.0, 0.0),
    "D": (600.0, 0.0),
}

#: Star topology: HUB reaches everyone, leaves only reach the hub.
STAR_POSITIONS = {
    "HUB": (0.0, 0.0),
    "L1": (0.0, 200.0),
    "L2": (200.0, 0.0),
    "L3": (0.0, -200.0),
    "L4": (-200.0, 0.0),
}


@pytest.fixture
def chain_network():
    """A 4-node chain network with started OLSR nodes."""
    return make_olsr_network(CHAIN_POSITIONS)


@pytest.fixture
def star_network():
    """A 5-node star network with started OLSR nodes."""
    return make_olsr_network(STAR_POSITIONS)
