"""Tests for detection and trust-trajectory metrics."""

from __future__ import annotations

import pytest

from repro.core.decision import DecisionOutcome
from repro.metrics.detection import (
    ConfusionMatrix,
    DetectionReport,
    classification_matrix,
    convergence_round,
    rounds_to_stable_verdict,
)
from repro.metrics.trust_metrics import (
    TrustTrajectoryReport,
    first_round_above,
    first_round_below,
    is_monotonic,
    recovery_gap,
    separation,
    total_change,
)


# ------------------------------------------------------------------ confusion
def test_confusion_matrix_derived_metrics():
    matrix = ConfusionMatrix(true_positives=8, false_positives=2,
                             true_negatives=85, false_negatives=5)
    assert matrix.total == 100
    assert matrix.accuracy == pytest.approx(0.93)
    assert matrix.precision == pytest.approx(0.8)
    assert matrix.recall == pytest.approx(8 / 13)
    assert matrix.false_positive_rate == pytest.approx(2 / 87)
    assert 0.0 < matrix.f1_score < 1.0


def test_confusion_matrix_empty_is_zero():
    matrix = ConfusionMatrix()
    assert matrix.accuracy == 0.0
    assert matrix.precision == 0.0
    assert matrix.recall == 0.0
    assert matrix.f1_score == 0.0


def test_classification_matrix_counts():
    verdicts = {
        "attacker": DecisionOutcome.INTRUDER,
        "honest1": DecisionOutcome.WELL_BEHAVING,
        "honest2": DecisionOutcome.INTRUDER,        # false positive
        "missed": DecisionOutcome.WELL_BEHAVING,    # false negative
        "pending": DecisionOutcome.UNRECOGNIZED,    # counted as not flagged
    }
    matrix = classification_matrix(verdicts, true_intruders={"attacker", "missed"})
    assert matrix.true_positives == 1
    assert matrix.false_positives == 1
    assert matrix.false_negatives == 1
    assert matrix.true_negatives == 2


def test_classification_matrix_can_skip_unrecognized():
    verdicts = {"pending": DecisionOutcome.UNRECOGNIZED}
    matrix = classification_matrix(verdicts, true_intruders=set(),
                                   treat_unrecognized_as_negative=False)
    assert matrix.total == 0


# ----------------------------------------------------------------- convergence
def test_convergence_round_below_threshold():
    trajectory = [0.1, -0.2, -0.5, -0.9]
    assert convergence_round(trajectory, -0.4) == 2
    assert convergence_round(trajectory, -0.95) is None


def test_convergence_round_above_threshold():
    trajectory = [0.1, 0.3, 0.7]
    assert convergence_round(trajectory, 0.6, below=False) == 2


def test_rounds_to_stable_verdict():
    outcomes = [
        DecisionOutcome.UNRECOGNIZED,
        DecisionOutcome.INTRUDER,
        DecisionOutcome.UNRECOGNIZED,
        DecisionOutcome.INTRUDER,
        DecisionOutcome.INTRUDER,
        DecisionOutcome.INTRUDER,
    ]
    assert rounds_to_stable_verdict(outcomes, DecisionOutcome.INTRUDER, stability=2) == 3
    assert rounds_to_stable_verdict(outcomes, DecisionOutcome.WELL_BEHAVING) is None


def test_detection_report_rows():
    report = DetectionReport(
        scenario_name="paper",
        matrix=ConfusionMatrix(true_positives=1),
        convergence_rounds={"attacker": 5},
        final_detect_values={"attacker": -0.9},
    )
    rows = report.as_rows()
    assert rows[0]["suspect"] == "attacker"
    assert rows[0]["convergence_round"] == 5


# ------------------------------------------------------------------ trust
def test_is_monotonic():
    assert is_monotonic([0.1, 0.2, 0.2, 0.5], increasing=True)
    assert not is_monotonic([0.1, 0.2, 0.15], increasing=True)
    assert is_monotonic([0.9, 0.5, 0.5, 0.1], increasing=False)
    assert not is_monotonic([0.9, 0.95], increasing=False)


def test_total_change():
    assert total_change([0.4, 0.6]) == pytest.approx(0.2)
    assert total_change([0.4]) == 0.0
    assert total_change([]) == 0.0


def test_first_round_below_and_above():
    values = [0.5, 0.3, 0.1, 0.05]
    assert first_round_below(values, 0.2) == 2
    assert first_round_below(values, 0.01) is None
    assert first_round_above([0.1, 0.5, 0.9], 0.8) == 2


def test_recovery_gap():
    assert recovery_gap([0.0, 0.1, 0.25], target=0.4) == pytest.approx(0.15)
    assert recovery_gap([], target=0.4) == pytest.approx(0.4)


def test_separation_between_groups():
    trajectories = {
        "h1": [0.4, 0.6], "h2": [0.4, 0.7],
        "l1": [0.4, 0.1], "l2": [0.4, 0.2],
    }
    value = separation(trajectories, {"h1", "h2"}, {"l1", "l2"})
    assert value == pytest.approx(0.5)
    assert separation({}, {"h1"}, {"l1"}) == 0.0


def test_trajectory_report_checks():
    report = TrustTrajectoryReport(
        observer="victim",
        trajectories={
            "h1": [0.3, 0.4, 0.5],
            "h2": [0.2, 0.2, 0.25],
            "l1": [0.7, 0.4, 0.1],
            "attacker": [0.5, 0.2, 0.0],
        },
        liars={"l1"},
        honest={"h1", "h2"},
        attacker="attacker",
    )
    assert report.liars_all_decreasing()
    assert report.honest_all_non_decreasing()
    assert report.final_separation() > 0.2
    rows = report.as_rows()
    roles = {row["node"]: row["role"] for row in rows}
    assert roles == {"h1": "honest", "h2": "honest", "l1": "liar", "attacker": "attacker"}
    assert report.liar_trajectories().keys() == {"l1"}
    assert set(report.honest_trajectories()) == {"h1", "h2"}
