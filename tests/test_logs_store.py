"""Tests for the per-node log store."""

from __future__ import annotations

from repro.logs.records import LogCategory
from repro.logs.store import LogStore


def make_store_with_records(count: int = 5) -> LogStore:
    store = LogStore("n1")
    for i in range(count):
        store.log(float(i), LogCategory.LINK, "LINK_SYM", neighbor=f"n{i}")
    return store


def test_log_appends_records():
    store = make_store_with_records(3)
    assert len(store) == 3
    assert store.records[0].node == "n1"


def test_by_category_and_event():
    store = LogStore("n1")
    store.log(0.0, LogCategory.LINK, "LINK_SYM", neighbor="a")
    store.log(1.0, LogCategory.MPR, "MPR_SELECTED", mpr="a")
    store.log(2.0, LogCategory.MPR, "MPR_REMOVED", mpr="a")
    assert len(store.by_category(LogCategory.MPR)) == 2
    assert len(store.by_event("MPR_SELECTED")) == 1


def test_between_and_where():
    store = make_store_with_records(10)
    assert len(store.between(2.0, 4.0)) == 3
    assert len(store.where(lambda r: r.get("neighbor") == "n7")) == 1


def test_last_records():
    store = make_store_with_records(5)
    assert [r.time for r in store.last(2)] == [3.0, 4.0]
    assert store.last(0) == []
    assert len(store.last(100)) == 5


def test_since_mark_and_advance():
    store = make_store_with_records(3)
    assert len(store.since_mark()) == 3
    store.advance_mark()
    assert store.since_mark() == []
    store.log(10.0, LogCategory.MPR, "MPR_SELECTED", mpr="x")
    assert len(store.since_mark()) == 1


def test_multiple_named_marks_are_independent():
    store = make_store_with_records(2)
    store.advance_mark("detector")
    store.log(5.0, LogCategory.LINK, "LINK_LOST", neighbor="a")
    assert len(store.since_mark("detector")) == 1
    assert len(store.since_mark("other")) == 3


def test_max_records_discards_oldest_and_shifts_marks():
    store = LogStore("n1", max_records=3)
    for i in range(3):
        store.log(float(i), LogCategory.LINK, "LINK_SYM", neighbor=f"n{i}")
    store.advance_mark()
    store.log(3.0, LogCategory.LINK, "LINK_SYM", neighbor="n3")
    store.log(4.0, LogCategory.LINK, "LINK_SYM", neighbor="n4")
    assert len(store) == 3
    # Only the records appended after the mark should be reported as new.
    new = store.since_mark()
    assert [r.get("neighbor") for r in new] == ["n3", "n4"]


def test_dump_and_reload_text():
    store = make_store_with_records(4)
    text = store.dump_text()
    reloaded = LogStore.from_text("n1", text)
    assert len(reloaded) == 4
    assert reloaded.records[2].get("neighbor") == "n2"


def test_clear_resets_everything():
    store = make_store_with_records(4)
    store.advance_mark()
    store.clear()
    assert len(store) == 0
    assert store.since_mark() == []


def test_extend_preserves_order():
    source = make_store_with_records(3)
    target = LogStore("n1")
    target.extend(source.records)
    assert [r.time for r in target] == [0.0, 1.0, 2.0]
