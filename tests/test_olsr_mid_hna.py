"""Tests for MID/HNA support: association sets, node integration, HNA spoofing."""

from __future__ import annotations

import pytest

from repro.attacks.forge import HnaSpoofingAttack
from repro.logs.records import LogCategory
from repro.olsr.association import HnaAssociationSet, InterfaceAssociationSet
from repro.olsr.node import OlsrConfig, OlsrNode
from tests.conftest import CHAIN_POSITIONS, make_network


# ------------------------------------------------------------- association sets
def test_interface_association_mapping_and_expiry():
    associations = InterfaceAssociationSet()
    changed = associations.process_mid("main", ["ifaceA", "ifaceB"], now=0.0, hold_time=10.0)
    assert changed
    assert associations.main_address_of("ifaceA") == "main"
    assert associations.main_address_of("unknown") == "unknown"
    assert associations.interfaces_of("main") == {"ifaceA", "ifaceB"}
    assert len(associations) == 2
    expired = associations.purge_expired(20.0)
    assert len(expired) == 2
    assert associations.main_address_of("ifaceA") == "ifaceA"


def test_interface_association_skips_main_address_and_detects_no_change():
    associations = InterfaceAssociationSet()
    associations.process_mid("main", ["main", "ifaceA"], now=0.0, hold_time=10.0)
    assert associations.interfaces_of("main") == {"ifaceA"}
    changed = associations.process_mid("main", ["ifaceA"], now=1.0, hold_time=10.0)
    assert not changed  # refresh only


def test_hna_association_set_gateways_and_networks():
    hna = HnaAssociationSet()
    hna.process_hna("gw1", [("10.0.0.0", "255.0.0.0")], now=0.0, hold_time=10.0)
    hna.process_hna("gw2", [("10.0.0.0", "255.0.0.0"), ("192.168.0.0", "255.255.0.0")],
                    now=0.0, hold_time=10.0)
    assert hna.gateways_for("10.0.0.0") == {"gw1", "gw2"}
    assert ("192.168.0.0", "255.255.0.0") in hna.networks()
    assert hna.announcements_of("gw1") == {("10.0.0.0", "255.0.0.0")}
    assert len(hna) == 3


def test_hna_best_gateway_prefers_closest():
    hna = HnaAssociationSet()
    hna.process_hna("far", [("10.0.0.0", "255.0.0.0")], now=0.0, hold_time=10.0)
    hna.process_hna("near", [("10.0.0.0", "255.0.0.0")], now=0.0, hold_time=10.0)
    distances = {"far": 4, "near": 1}
    assert hna.best_gateway("10.0.0.0", distances.get) == "near"
    assert hna.best_gateway("unknown", distances.get) is None
    # Unreachable gateways are skipped entirely.
    assert hna.best_gateway("10.0.0.0", {"far": None, "near": None}.get) is None


def test_hna_purge_expired():
    hna = HnaAssociationSet()
    hna.process_hna("gw", [("10.0.0.0", "255.0.0.0")], now=0.0, hold_time=5.0)
    assert len(hna.purge_expired(10.0)) == 1
    assert hna.networks() == set()


# ----------------------------------------------------------- node integration
def build_mid_hna_chain():
    network = make_network(CHAIN_POSITIONS)
    nodes = {}
    for node_id in CHAIN_POSITIONS:
        if node_id == "D":
            config = OlsrConfig(
                extra_interface_addresses=("D-eth1", "D-eth2"),
                hna_networks=(("203.0.113.0", "255.255.255.0"),),
            )
        else:
            config = OlsrConfig()
        nodes[node_id] = OlsrNode(node_id, network, config=config, seed=3)
    for node in nodes.values():
        node.start()
    network.run(until=60.0)
    return network, nodes


def test_mid_floods_interface_associations_across_the_chain():
    network, nodes = build_mid_hna_chain()
    assert nodes["A"].interface_associations.main_address_of("D-eth1") == "D"
    assert nodes["A"].interface_associations.interfaces_of("D") == {"D-eth1", "D-eth2"}
    mid_tx = [r for r in nodes["D"].log.by_category(LogCategory.MESSAGE_TX)
              if r.event == "MID"]
    assert mid_tx


def test_hna_floods_external_routes_across_the_chain():
    network, nodes = build_mid_hna_chain()
    assert nodes["A"].hna_associations.gateways_for("203.0.113.0") == {"D"}
    # A routes traffic for the external network toward D via its next hop B.
    assert nodes["A"].external_route_for("203.0.113.0") == "B"
    assert nodes["A"].external_route_for("198.51.100.0") is None


def test_nodes_without_configuration_send_no_mid_or_hna():
    network, nodes = build_mid_hna_chain()
    for node_id in ("A", "B", "C"):
        assert not [r for r in nodes[node_id].log.by_category(LogCategory.MESSAGE_TX)
                    if r.event in ("MID", "HNA")]


def test_hna_spoofing_attack_installs_bogus_gateway():
    network, nodes = build_mid_hna_chain()
    attack = HnaSpoofingAttack(spoofed_networks=[("198.51.100.0", "255.255.255.0")],
                               period=5.0)
    attack.install(nodes["B"])
    network.run(until=network.now + 30.0)
    assert attack.forged_count > 0
    # A now believes B is a gateway for the spoofed network and routes to it.
    assert "B" in nodes["A"].hna_associations.gateways_for("198.51.100.0")
    assert nodes["A"].external_route_for("198.51.100.0") == "B"


def test_hna_spoofing_requires_networks():
    with pytest.raises(ValueError):
        HnaSpoofingAttack(spoofed_networks=[])
