"""Tests for the re-implemented baselines (Watchdog, CAP-OLSR, Beta, averaging)."""

from __future__ import annotations

import pytest

from repro.baselines.averaging import AveragingTrustSystem, TrustReport
from repro.baselines.beta_reputation import BetaReputation, BetaReputationSystem
from repro.baselines.cap_olsr import CapOlsrDetector, CapOlsrTrust, RelayObservation
from repro.baselines.watchdog import Pathrater, Watchdog, WatchdogPathrater


# ------------------------------------------------------------------ watchdog
def test_watchdog_flags_after_threshold_misses():
    watchdog = Watchdog("me", miss_threshold=3, miss_ratio_threshold=0.5)
    for _ in range(5):
        watchdog.expect_forward("dropper")
        watchdog.observe_miss("dropper")
    assert watchdog.is_misbehaving("dropper")
    assert watchdog.misbehaving_nodes() == {"dropper"}


def test_watchdog_does_not_flag_good_relay():
    watchdog = Watchdog("me", miss_threshold=3)
    for _ in range(20):
        watchdog.expect_forward("relay")
        watchdog.observe_forward("relay")
    watchdog.expect_forward("relay")
    watchdog.observe_miss("relay")
    assert not watchdog.is_misbehaving("relay")
    assert watchdog.record_of("relay").miss_ratio < 0.1


def test_watchdog_requires_both_thresholds():
    watchdog = Watchdog("me", miss_threshold=5, miss_ratio_threshold=0.5)
    # Many misses but also many successes: ratio below threshold.
    for _ in range(6):
        watchdog.expect_forward("relay")
        watchdog.observe_miss("relay")
    for _ in range(20):
        watchdog.expect_forward("relay")
        watchdog.observe_forward("relay")
    assert not watchdog.is_misbehaving("relay")


def test_pathrater_rating_evolution():
    pathrater = Pathrater("me", neutral_rating=0.5, increment=0.1, decrement=0.2, maximum=0.8)
    pathrater.actively_used("relay")
    assert pathrater.rating_of("relay") == pytest.approx(0.6)
    for _ in range(10):
        pathrater.actively_used("relay")
    assert pathrater.rating_of("relay") == pytest.approx(0.8)
    pathrater.negative_event("relay")
    assert pathrater.rating_of("relay") == pytest.approx(0.6)


def test_pathrater_flagged_node_gets_misbehaving_rating():
    watchdog = Watchdog("me", miss_threshold=1, miss_ratio_threshold=0.0)
    watchdog.expect_forward("bad")
    watchdog.observe_miss("bad")
    pathrater = Pathrater("me", watchdog=watchdog)
    assert pathrater.rating_of("bad") == pathrater.misbehaving_rating


def test_pathrater_best_path_avoids_misbehaving_nodes():
    watchdog = Watchdog("me", miss_threshold=1, miss_ratio_threshold=0.0)
    watchdog.expect_forward("bad")
    watchdog.observe_miss("bad")
    pathrater = Pathrater("me", watchdog=watchdog)
    good_path = ["me", "a", "b", "dest"]
    bad_path = ["me", "bad", "dest"]
    assert pathrater.best_path([bad_path, good_path]) == good_path
    assert pathrater.best_path([bad_path]) is None
    assert pathrater.path_rating(["me"]) == pathrater.neutral_rating


def test_watchdog_pathrater_bundle():
    bundle = WatchdogPathrater("me")
    for _ in range(10):
        bundle.watchdog.expect_forward("dropper")
        bundle.watchdog.observe_miss("dropper")
    assert bundle.detected_attackers() == {"dropper"}


def test_watchdog_round_interface_flags_unanimous_denials():
    bundle = WatchdogPathrater("me")
    # Five responders deny the suspect's advertised behaviour twice: every
    # answer is one overheard forwarding opportunity, denials count as misses.
    answers = {f"s{i}": False for i in range(5)}
    bundle.process_round("attacker", answers)
    score = bundle.process_round("attacker", answers)
    assert score == -1.0
    assert bundle.classify("attacker") == "intruder"
    assert bundle.score_of("attacker") == -1.0


def test_watchdog_round_interface_ignores_missing_answers():
    bundle = WatchdogPathrater("me")
    score = bundle.process_round("suspect", {"s1": True, "s2": None})
    assert score == 1.0
    assert bundle.watchdog.record_of("suspect").expected == 1
    assert bundle.classify("suspect") == "well-behaving"


# ------------------------------------------------------------------ CAP-OLSR
def test_cap_olsr_trust_from_observations():
    trust = CapOlsrTrust("me")
    trust.add_observations([RelayObservation("s1", "mpr", True) for _ in range(10)])
    assert trust.trust_of("mpr") > 0.5
    trust2 = CapOlsrTrust("me")
    trust2.add_observations([RelayObservation("s1", "mpr", False) for _ in range(10)])
    assert trust2.trust_of("mpr") < -0.5


def test_cap_olsr_unknown_relay_is_uncertain():
    trust = CapOlsrTrust("me")
    assert trust.trust_of("unknown") == pytest.approx(0.0)
    assert trust.relay_probability("unknown") == pytest.approx(0.5)


def test_cap_olsr_exclusion():
    trust = CapOlsrTrust("me", exclusion_threshold=0.0)
    trust.add_observations([RelayObservation("s", "bad", False) for _ in range(5)])
    trust.add_observations([RelayObservation("s", "good", True) for _ in range(5)])
    assert trust.excluded_mprs({"bad", "good"}) == {"bad"}
    assert trust.filtered_mpr_set({"bad", "good"}) == {"good"}
    assert trust.observation_counts("bad") == {"positive": 0, "negative": 5}


def test_cap_olsr_detector_round_interface():
    detector = CapOlsrDetector(owner="me")
    score = detector.process_round("suspect", {"s1": False, "s2": False, "s3": None})
    assert score < 0
    assert detector.classify("suspect") == "intruder"
    detector2 = CapOlsrDetector(owner="me")
    detector2.process_round("suspect", {"s1": True, "s2": True})
    assert detector2.classify("suspect") == "well-behaving"


def test_cap_olsr_vulnerable_to_liar_majority():
    # Unlike the paper's system, CAP-OLSR weighs every answer equally, so a
    # liar majority keeps the attacker's trust positive.
    detector = CapOlsrDetector(owner="me")
    for _ in range(10):
        detector.process_round("attacker", {"h1": False, "l1": True, "l2": True})
    assert detector.classify("attacker") == "well-behaving"


# ------------------------------------------------------------- Beta reputation
def test_beta_reputation_expectation_updates():
    reputation = BetaReputation()
    assert reputation.expectation == pytest.approx(0.5)
    reputation.update(positive=8, negative=2)
    assert reputation.expectation == pytest.approx(9 / 12)
    with pytest.raises(ValueError):
        reputation.update(positive=-1)


def test_beta_reputation_fade():
    reputation = BetaReputation(alpha=11.0, beta=1.0)
    reputation.fade(0.5)
    assert reputation.alpha == pytest.approx(6.0)
    assert reputation.beta == pytest.approx(1.0)
    with pytest.raises(ValueError):
        reputation.fade(2.0)


def test_beta_system_first_hand_and_classification():
    system = BetaReputationSystem("me", misbehavior_threshold=0.35)
    for _ in range(10):
        system.first_hand("dropper", negative=1.0)
    assert system.classify("dropper") == "intruder"
    assert "dropper" in system.misbehaving_nodes()
    for _ in range(10):
        system.first_hand("good", positive=1.0)
    assert system.classify("good") == "well-behaving"


def test_beta_system_deviation_test_rejects_outliers():
    system = BetaReputationSystem("me", deviation_threshold=0.2)
    for _ in range(20):
        system.first_hand("node", positive=1.0)
    # A wildly negative report deviates too much from the current belief.
    negative_report = BetaReputation(alpha=1.0, beta=20.0)
    assert system.second_hand("node", negative_report) is None
    assert system.rejected_reports == 1
    # A mildly positive report is accepted.
    positive_report = BetaReputation(alpha=5.0, beta=1.0)
    assert system.second_hand("node", positive_report) is not None
    assert system.accepted_reports == 1


def test_beta_system_fade_all_moves_toward_prior():
    system = BetaReputationSystem("me", fading_factor=0.5)
    system.first_hand("node", positive=10.0)
    before = system.expectation_of("node")
    system.fade_all()
    after = system.expectation_of("node")
    assert abs(after - 0.5) < abs(before - 0.5)


def test_beta_system_round_interface():
    system = BetaReputationSystem("me")
    score = system.process_round("suspect", {"s1": False, "s2": False, "s3": None})
    assert score < 0.5


# ------------------------------------------------------------------ averaging
def test_averaging_trust_is_mean_of_reports():
    system = AveragingTrustSystem("me")
    system.add_report(TrustReport("s1", "target", 1.0))
    system.add_report(TrustReport("s2", "target", -1.0))
    system.add_report(TrustReport("s3", "target", -1.0))
    assert system.trust_of("target") == pytest.approx(-1 / 3)
    assert system.report_count("target") == 3
    assert system.trust_of("unknown") == 0.0


def test_averaging_report_value_validated():
    system = AveragingTrustSystem("me")
    with pytest.raises(ValueError):
        system.add_report(TrustReport("s", "t", 2.0))
    with pytest.raises(ValueError):
        AveragingTrustSystem("me", distance_discount=1.0)


def test_averaging_distance_discount():
    system = AveragingTrustSystem("me", distance_discount=0.5)
    system.add_report(TrustReport("near", "t", 1.0, hop_distance=1))
    system.add_report(TrustReport("far", "t", -1.0, hop_distance=4))
    # The distant negative report is discounted, so the average stays positive.
    assert system.trust_of("t") > 0


def test_averaging_freshness_discount():
    system = AveragingTrustSystem("me", freshness_halflife=10.0)
    system.add_report(TrustReport("old", "t", 1.0, age=100.0))
    system.add_report(TrustReport("new", "t", -1.0, age=0.0))
    assert system.trust_of("t") < 0


def test_averaging_classification_and_round_interface():
    system = AveragingTrustSystem("me", misbehavior_threshold=-0.2)
    system.process_round("suspect", {"s1": False, "s2": False, "s3": True, "s4": None})
    assert system.classify("suspect") == "intruder"
    assert system.report_count("suspect") == 3


def test_averaging_is_fooled_by_liar_majority():
    system = AveragingTrustSystem("me")
    system.process_round("attacker", {"h1": False, "l1": True, "l2": True})
    assert system.classify("attacker") == "well-behaving"
