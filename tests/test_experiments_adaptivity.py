"""Tests for the adaptivity experiment (time-to-detect vs adversary
adaptivity) and the adaptive ScenarioConfig fields behind it."""

from __future__ import annotations

import pytest

from repro.experiments.adaptivity import (
    ADAPTIVITY_THREATS,
    resolve_adaptivity_params,
    time_to_distrust,
)
from repro.experiments.config import ADAPTIVITY_MODES, ScenarioConfig
from repro.experiments.engine import get_experiment, run_experiment
from repro.experiments.results import ResultsStore
from repro.experiments.rounds import RoundBasedExperiment


# ------------------------------------------------------------- config fields
def test_scenario_config_validates_adaptivity_fields():
    assert ScenarioConfig().adaptivity == "static"
    for mode in ADAPTIVITY_MODES:
        assert ScenarioConfig(adaptivity=mode).adaptivity == mode
    with pytest.raises(ValueError):
        ScenarioConfig(adaptivity="clever")
    with pytest.raises(ValueError):
        ScenarioConfig(riding_threshold=0.4, riding_resume=0.3)


def test_resolve_adaptivity_params_maps_modes_to_threats():
    for mode, threat in ADAPTIVITY_THREATS.items():
        resolved = resolve_adaptivity_params({"adaptivity": mode})
        assert resolved["threat"] == threat
    explicit = resolve_adaptivity_params(
        {"adaptivity": "throttling", "threat": "link-spoofing"})
    assert explicit["threat"] == "link-spoofing"    # explicit threat wins
    with pytest.raises(ValueError):
        resolve_adaptivity_params({"adaptivity": "clever"})


# ------------------------------------------------------- oracle round dynamics
def test_throttling_adversary_outlives_static_2x_in_the_round_loop():
    """The tentpole's flagship number on the experiment's own defaults: the
    threshold rider survives at least twice as long as the paper's static
    adversary (here: the whole horizon, never distrusted)."""
    rounds = 40
    static = RoundBasedExperiment(
        ScenarioConfig(rounds=rounds, adaptivity="static",
                       random_initial_trust=False)).run()
    throttling = RoundBasedExperiment(
        ScenarioConfig(rounds=rounds, adaptivity="throttling",
                       random_initial_trust=False)).run()

    static_ttd = time_to_distrust(static)
    throttling_ttd = time_to_distrust(throttling)
    assert static_ttd is not None
    horizon = rounds if throttling_ttd is None else throttling_ttd
    assert horizon >= 2 * static_ttd

    # The rider paused (some rounds ran without an investigation) but did
    # attack first — this is riding, not abstinence.
    investigated = [r for r in throttling.rounds if r.detect_value is not None]
    assert 0 < len(investigated) < rounds
    assert investigated[0].round_index == 0


def test_rotating_adversary_keeps_its_liars_alive():
    rounds = 30
    config = dict(rounds=rounds, liar_count=4, random_initial_trust=False)
    static = RoundBasedExperiment(
        ScenarioConfig(adaptivity="static", **config)).run()
    rotating = RoundBasedExperiment(
        ScenarioConfig(adaptivity="rotating", **config)).run()

    def min_final_liar_trust(result):
        final = result.rounds[-1].trust_snapshot
        return min(final[liar] for liar in result.liars)

    assert min_final_liar_trust(rotating) > min_final_liar_trust(static)


def test_static_adaptivity_reproduces_the_legacy_round_loop_exactly():
    """The adaptivity machinery must be invisible at adaptivity='static':
    bit-identical rounds to a config that never mentions it."""
    legacy = RoundBasedExperiment(ScenarioConfig(rounds=12)).run()
    static = RoundBasedExperiment(
        ScenarioConfig(rounds=12, adaptivity="static")).run()
    assert [r.trust_snapshot for r in static.rounds] == \
        [r.trust_snapshot for r in legacy.rounds]
    assert [r.detect_value for r in static.rounds] == \
        [r.detect_value for r in legacy.rounds]


# ------------------------------------------------------------- the experiment
def test_adaptivity_experiment_is_registered_with_three_modes():
    definition = get_experiment("adaptivity")
    assert definition.axes["adaptivity"] == ("static", "throttling", "rotating")
    assert definition.default_backend == "oracle"
    assert len(definition.expand()) == 3


def test_adaptivity_experiment_rows_report_detection_delays():
    result = run_experiment("adaptivity")
    rows = {row["adaptivity"]: row for row in result.rows()}
    assert set(rows) == {"static", "throttling", "rotating"}

    static_ttd = rows["static"]["time_to_distrust"]
    assert static_ttd is not None
    throttling_ttd = rows["throttling"]["time_to_distrust"]
    horizon = rows["throttling"]["rounds"] if throttling_ttd is None else throttling_ttd
    assert horizon >= 2 * static_ttd
    # The rotating clique's payoff is liar survival, not attacker survival.
    assert rows["rotating"]["liars_distrusted"] < rows["static"]["liars_distrusted"]


def test_adaptivity_experiment_resumes_byte_identically(tmp_path):
    reference = run_experiment("adaptivity").format_report()

    path = str(tmp_path / "adaptivity.sqlite")
    with ResultsStore(path) as store:
        partial = run_experiment("adaptivity", store=store, max_new_runs=2)
        assert len(partial.executed_run_ids) == 2

    with ResultsStore(path) as store:
        resumed = run_experiment("adaptivity", store=store)
        assert len(resumed.skipped_run_ids) == 2
        assert len(resumed.executed_run_ids) == 1
        assert resumed.format_report() == reference

    with ResultsStore(path) as store:
        replay = run_experiment("adaptivity", store=store)
        assert replay.executed_run_ids == []
        assert replay.format_report() == reference
