"""Tests for the link-spoofing attack and the attack framework basics."""

from __future__ import annotations

import pytest

from repro.attacks.base import AttackSchedule
from repro.attacks.link_spoofing import (
    LinkSpoofingAttack,
    spoof_false_link,
    spoof_non_existent,
    spoof_omit_neighbor,
)
from repro.core.signatures import LinkSpoofingVariant, evaluate_link_spoofing
from repro.olsr.node import OlsrNode
from tests.conftest import CHAIN_POSITIONS, make_olsr_network


def converged_chain():
    network, nodes = make_olsr_network(CHAIN_POSITIONS)
    network.run(until=30.0)
    return network, nodes


# ------------------------------------------------------------------ schedule
def test_attack_schedule_window():
    schedule = AttackSchedule(start_time=10.0, stop_time=20.0)
    assert not schedule.is_active(5.0)
    assert schedule.is_active(10.0)
    assert schedule.is_active(19.9)
    assert not schedule.is_active(20.0)
    open_ended = AttackSchedule(start_time=0.0)
    assert open_ended.is_active(1e9)


def test_manual_override_beats_schedule():
    attack = LinkSpoofingAttack(LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR, ["ghost"],
                                schedule=AttackSchedule(start_time=100.0))
    assert not attack.is_active(0.0)
    attack.activate()
    assert attack.is_active(0.0)
    attack.deactivate()
    assert not attack.is_active(1000.0)
    attack.follow_schedule()
    assert attack.is_active(150.0)


def test_attack_requires_targets():
    with pytest.raises(ValueError):
        LinkSpoofingAttack(LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR, [])


# --------------------------------------------------------------- variant 1/2
def test_spoofed_hello_contains_phantom_neighbor():
    network, nodes = converged_chain()
    attack = spoof_non_existent(nodes["B"], ["ghost1", "ghost2"])
    hello = nodes["B"].build_hello()
    for mutator in nodes["B"].hello_mutators:
        hello = mutator(hello, nodes["B"])
    assert {"ghost1", "ghost2"} <= hello.symmetric_neighbors()
    assert attack.installed_on == ["B"]


def test_spoofing_respects_schedule():
    network, nodes = converged_chain()
    attack = LinkSpoofingAttack(
        LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR, ["ghost"],
        schedule=AttackSchedule(start_time=network.now + 1000.0),
    )
    attack.install(nodes["B"])
    hello = nodes["B"].build_hello()
    for mutator in nodes["B"].hello_mutators:
        hello = mutator(hello, nodes["B"])
    assert "ghost" not in hello.symmetric_neighbors()


def test_spoofed_existing_link_propagates_to_victims_two_hop_set():
    network, nodes = converged_chain()
    # B falsely claims D (a real node, two hops away from it) as symmetric.
    spoof_false_link(nodes["B"], ["D"])
    network.run(until=network.now + 20.0)
    # A now believes D is reachable through B (it is not).
    assert "D" in nodes["A"].two_hop_set.reachable_through("B")


def test_spoofed_phantom_becomes_visible_in_victim_topology():
    network, nodes = converged_chain()
    spoof_non_existent(nodes["B"], ["phantom"])
    network.run(until=network.now + 20.0)
    assert "phantom" in nodes["A"].two_hop_set.reachable_through("B")
    # The victim's own expression-1 check flags the advertisement, given the
    # known network membership.
    advertised = nodes["A"].two_hop_set.reachable_through("B") | {"A"}
    indicators = evaluate_link_spoofing(
        suspect="B",
        advertised_symmetric=advertised,
        known_network_nodes=set(CHAIN_POSITIONS),
    )
    assert any(i.variant == LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR for i in indicators)


def test_spoofing_does_not_duplicate_existing_links():
    network, nodes = converged_chain()
    spoof_false_link(nodes["B"], ["A"])  # A is already a genuine neighbour
    hello = nodes["B"].build_hello()
    for mutator in nodes["B"].hello_mutators:
        hello = mutator(hello, nodes["B"])
    addresses = [adv.neighbor_address for adv in hello.links]
    assert addresses.count("A") == 1


def test_spoofing_never_advertises_self():
    network, nodes = converged_chain()
    spoof_false_link(nodes["B"], ["B"])
    hello = nodes["B"].build_hello()
    for mutator in nodes["B"].hello_mutators:
        hello = mutator(hello, nodes["B"])
    assert "B" not in hello.symmetric_neighbors()


def test_advertise_as_mpr_selector_option():
    network, nodes = converged_chain()
    attack = LinkSpoofingAttack(
        LinkSpoofingVariant.FALSE_EXISTING_LINK, ["D"], advertise_as_mpr_selector=True)
    attack.install(nodes["B"])
    hello = nodes["B"].build_hello()
    for mutator in nodes["B"].hello_mutators:
        hello = mutator(hello, nodes["B"])
    assert "D" in hello.mpr_neighbors()


# ------------------------------------------------------------------ variant 3
def test_omitted_neighbor_disappears_from_hello():
    network, nodes = converged_chain()
    spoof_omit_neighbor(nodes["B"], ["C"])
    hello = nodes["B"].build_hello()
    for mutator in nodes["B"].hello_mutators:
        hello = mutator(hello, nodes["B"])
    assert "C" not in hello.all_addresses()
    assert "A" in hello.symmetric_neighbors()


def test_omission_eventually_breaks_symmetry_at_the_victim():
    network, nodes = converged_chain()
    spoof_omit_neighbor(nodes["B"], ["C"])
    network.run(until=network.now + 30.0)
    # C no longer hears itself in B's HELLOs, so the link B-C cannot stay
    # symmetric from C's point of view.
    assert "B" not in nodes["C"].symmetric_neighbors()


# --------------------------------------------------------------- ground truth
def test_spoofed_links_of_ground_truth_helper():
    add_attack = LinkSpoofingAttack(LinkSpoofingVariant.FALSE_EXISTING_LINK, ["x", "y"])
    assert add_attack.spoofed_links_of(real_symmetric={"y"}) == {"x"}
    omit_attack = LinkSpoofingAttack(LinkSpoofingVariant.OMITTED_NEIGHBOR, ["x", "y"])
    assert omit_attack.spoofed_links_of(real_symmetric={"y", "z"}) == {"y"}


def test_describe_reports_variant_and_targets():
    attack = LinkSpoofingAttack(LinkSpoofingVariant.OMITTED_NEIGHBOR, ["b", "a"])
    description = attack.describe()
    assert description["variant"] == "omitted_neighbor"
    assert description["targets"] == ["a", "b"]
