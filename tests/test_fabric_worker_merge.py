"""End-to-end fabric tests: worker groups, kill/steal recovery, merged parity.

The acceptance bar of the fabric is byte identity: a campaign sharded
across worker groups — including one whose worker dies mid-run and whose
lease is re-dispatched — must merge into a store whose report is identical
to the single-process run of the same spec.
"""

from __future__ import annotations

import pytest

from repro.experiments.engine import run_experiment
from repro.experiments.results import ResultsStore
from repro.fabric import (
    FabricQueue,
    dispatch_experiment,
    merge_shards,
    run_worker,
    shard_store_path,
)

_EXPERIMENT = "confidence_sweep"
_PARAMS = {"rounds": 5}


@pytest.fixture(scope="module")
def golden_report() -> str:
    """The single-process report every fabric run must reproduce."""
    return run_experiment(_EXPERIMENT, params=_PARAMS).format_report()


def _dispatch(tmp_path) -> str:
    queue_path = str(tmp_path / "fabric.sqlite")
    dispatch_experiment(queue_path, _EXPERIMENT, params=_PARAMS)
    return queue_path


def _merged_report(shard_paths, tmp_path, queue_path=None) -> str:
    merged_path = str(tmp_path / "merged.sqlite")
    merge_shards(list(shard_paths), merged_path, queue_path=queue_path)
    with ResultsStore(merged_path) as store:
        result = run_experiment(_EXPERIMENT, params=_PARAMS, store=store,
                                resume=True, max_new_runs=0)
        assert result.executed_run_ids == []
        return result.format_report()


def test_two_worker_groups_merge_to_byte_identical_report(tmp_path, golden_report):
    queue_path = _dispatch(tmp_path)
    shard_dir = str(tmp_path / "shards")
    a = run_worker(queue_path, "a", shard_dir, batch_size=2, max_cells=4)
    b = run_worker(queue_path, "b", shard_dir, batch_size=3)
    assert a.executed == 4 and b.executed == 5
    assert a.shard_path == shard_store_path(shard_dir, "a")
    with FabricQueue(queue_path) as queue:
        assert queue.counts() == {"pending": 0, "leased": 0, "done": 9}
    # Each group wrote only its own shard; together they cover the grid.
    with ResultsStore(a.shard_path) as shard:
        assert len(shard) == 4
    report = _merged_report([a.shard_path, b.shard_path], tmp_path,
                            queue_path=queue_path)
    assert report == golden_report


def test_killed_worker_lease_is_redispatched_and_report_identical(
        tmp_path, golden_report):
    """The acceptance scenario: one worker dies mid-run, another recovers.

    The kill is simulated at the protocol level — a worker that claimed a
    batch under a short lease and then vanished without completing or
    releasing it (exactly the state a SIGKILL leaves behind).  A live
    worker must wait out the TTL, steal the batch, and the merged report
    must still be byte-identical to the single-process run.
    """
    queue_path = _dispatch(tmp_path)
    with FabricQueue(queue_path) as queue:
        ghost_batch = queue.claim("ghost", 3, lease_ttl=0.2)
        assert len(ghost_batch) == 3
    live = run_worker(queue_path, "live", str(tmp_path / "shards"),
                      batch_size=2, lease_ttl=2.0, poll=0.05)
    assert live.executed == 9
    assert live.stolen == 3  # the ghost's whole in-flight batch, nothing more
    report = _merged_report([live.shard_path], tmp_path, queue_path=queue_path)
    assert report == golden_report


def test_duplicate_execution_after_steal_merges_once(tmp_path, golden_report):
    """A stolen cell the dead worker *had* executed merges to one record."""
    queue_path = _dispatch(tmp_path)
    shard_dir = str(tmp_path / "shards")
    # The doomed worker completes its shard write for 2 cells but "dies"
    # before marking them done: max_cells stops it, then we forcibly reset
    # its completions to simulate the crash window between the shard commit
    # and the queue update.
    doomed = run_worker(queue_path, "doomed", shard_dir, batch_size=2,
                        max_cells=2)
    assert doomed.executed == 2
    with FabricQueue(queue_path) as queue:
        queue._connection.execute(
            "UPDATE cells SET state = 'pending', owner = NULL, "
            "lease_expires = NULL WHERE state = 'done'")
    live = run_worker(queue_path, "live", shard_dir, batch_size=4)
    assert live.executed == 9  # re-executed the 2 doomed cells too
    merged_path = str(tmp_path / "merged.sqlite")
    merge_report = merge_shards([doomed.shard_path, live.shard_path],
                                merged_path, queue_path=queue_path)
    assert merge_report.merged == 9
    assert merge_report.duplicates == 2
    with ResultsStore(merged_path) as store:
        assert len(store) == 9
        result = run_experiment(_EXPERIMENT, params=_PARAMS, store=store,
                                resume=True, max_new_runs=0)
        assert result.format_report() == golden_report


def test_worker_without_wait_returns_while_leases_are_live(tmp_path):
    queue_path = _dispatch(tmp_path)
    with FabricQueue(queue_path) as queue:
        queue.claim("other", 9, lease_ttl=300.0)
    report = run_worker(queue_path, "idle", str(tmp_path / "shards"),
                        wait_for_work=False)
    assert report.executed == 0
    assert report.batches == 0


def test_worker_resumes_a_partially_done_queue(tmp_path, golden_report):
    queue_path = _dispatch(tmp_path)
    shard_dir = str(tmp_path / "shards")
    first = run_worker(queue_path, "a", shard_dir, max_cells=6)
    second = run_worker(queue_path, "a", shard_dir)  # same group, same shard
    assert first.executed + second.executed == 9
    report = _merged_report([shard_store_path(shard_dir, "a")], tmp_path,
                            queue_path=queue_path)
    assert report == golden_report
