"""Integration tests for the random MANET scenario builder."""

from __future__ import annotations

import random

import pytest

from repro.attacks.liar import LiarBehavior
from repro.experiments.scenario import build_manet_scenario


@pytest.fixture(scope="module")
def manet():
    scenario = build_manet_scenario(node_count=16, liar_count=4, seed=23)
    scenario.warm_up(35.0)
    scenario.victim.detection_round()  # absorb convergence-era triggers
    results = []
    for _ in range(10):
        results.extend(scenario.run_detection_cycle(10.0))
    return scenario, results


def test_scenario_population(manet):
    scenario, _ = manet
    assert len(scenario.nodes) == 16
    assert len(scenario.liar_ids) == 4
    assert scenario.attacker_id not in scenario.liar_ids
    assert scenario.victim_id != scenario.attacker_id
    assert scenario.attack_scenario.link_spoofers() == {scenario.attacker_id}
    assert scenario.attack_scenario.liars() == scenario.liar_ids


def test_victim_is_attacker_neighbor(manet):
    scenario, _ = manet
    assert scenario.attacker_id in scenario.victim.olsr.symmetric_neighbors()


def test_olsr_converged_before_attack(manet):
    scenario, _ = manet
    # The victim and attacker sit in the connected core and must know routes
    # to most of the network (random placement can leave a few stragglers on
    # the fringe, so we do not require full convergence of every node).
    assert len(scenario.victim.olsr.routing_table) >= 8
    assert len(scenario.attacker.olsr.routing_table) >= 5
    reachable_counts = [len(n.olsr.routing_table) for n in scenario.nodes.values()]
    assert sum(reachable_counts) / len(reachable_counts) >= 5


def test_attacker_is_investigated(manet):
    scenario, results = manet
    suspects = {r.suspect for r in results}
    assert scenario.attacker_id in suspects


def test_detection_trends_negative_despite_liars(manet):
    scenario, results = manet
    trajectory = [r.decision.detect_value for r in results
                  if r.suspect == scenario.attacker_id]
    assert trajectory, "attacker never investigated"
    assert trajectory[-1] < -0.5
    assert trajectory[-1] <= trajectory[0]


def test_attacker_trust_drops_below_honest_nodes(manet):
    scenario, results = manet
    victim = scenario.victim
    attacker_trust = victim.trust.trust_of(scenario.attacker_id)
    assert attacker_trust < 0.1
    honest = [
        nid for nid in scenario.nodes
        if nid not in scenario.liar_ids
        and nid not in (scenario.attacker_id, scenario.victim_id)
    ]
    mean_honest = sum(victim.trust.trust_of(n) for n in honest) / len(honest)
    assert mean_honest > attacker_trust + 0.2


def test_responding_liars_lose_trust(manet):
    scenario, results = manet
    victim = scenario.victim
    attacker_rounds = [r for r in results if r.suspect == scenario.attacker_id]
    queried = set()
    for r in attacker_rounds:
        queried |= set(r.answers)
    responding_liars = queried & scenario.liar_ids
    for liar in responding_liars:
        assert victim.trust.trust_of(liar) < 0.2


def test_build_validation():
    with pytest.raises(ValueError):
        build_manet_scenario(node_count=3)
    with pytest.raises(ValueError):
        build_manet_scenario(node_count=8, liar_count=7)


def test_same_seed_builds_identical_liar_rngs():
    """Regression: liar RNGs were seeded with the process-salted ``hash()``,
    so liar behaviour differed between interpreter runs.  With the stable
    CRC32 digest, two builds with the same seed draw identical sequences.
    """
    def liar_draws(scenario):
        draws = {}
        for liar_id in sorted(scenario.liar_ids):
            attacks = scenario.attack_scenario.attacks_by_node[liar_id]
            liar = next(a for a in attacks if isinstance(a, LiarBehavior))
            draws[liar_id] = [liar.rng.random() for _ in range(16)]
        return draws

    first = build_manet_scenario(node_count=12, liar_count=3, seed=23)
    second = build_manet_scenario(node_count=12, liar_count=3, seed=23)
    assert first.liar_ids == second.liar_ids
    assert liar_draws(first) == liar_draws(second)


def test_liar_rng_seeds_use_stable_seed():
    """Liar RNGs derive via ``stable_seed`` — fixed constants, no hash salt,
    and no modulus cap that could collide two liars on one stream."""
    from repro.seeding import stable_seed

    scenario = build_manet_scenario(node_count=12, liar_count=3, seed=23)
    for liar_id in scenario.liar_ids:
        attacks = scenario.attack_scenario.attacks_by_node[liar_id]
        liar = next(a for a in attacks if isinstance(a, LiarBehavior))
        expected = random.Random(stable_seed(23, f"liar:{liar_id}"))
        assert liar.rng.random() == expected.random()


def test_build_manet_scenario_campaign_axes():
    """The campaign axes (variant, loss model, mobility) build working scenarios."""
    from repro.core.signatures import LinkSpoofingVariant

    phantom = build_manet_scenario(
        node_count=8, liar_count=1, seed=5,
        attack_variant=LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR)
    attack = phantom.attack_scenario.attacks_by_node[phantom.attacker_id][0]
    assert attack.variant == LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR
    assert all(target.startswith("phantom") for target in attack.target_addresses)

    omitted = build_manet_scenario(
        node_count=8, liar_count=1, seed=5,
        attack_variant=LinkSpoofingVariant.OMITTED_NEIGHBOR)
    attack = omitted.attack_scenario.attacks_by_node[omitted.attacker_id][0]
    assert attack.variant == LinkSpoofingVariant.OMITTED_NEIGHBOR

    mobile = build_manet_scenario(node_count=8, liar_count=1, seed=5, max_speed=4.0,
                                  loss_model="distance", loss_probability=0.6)
    from repro.netsim.medium import DistanceLossModel
    from repro.netsim.mobility import RandomWaypointMobility
    assert isinstance(mobile.network.medium.loss_model, DistanceLossModel)
    assert isinstance(mobile.network.mobility, RandomWaypointMobility)
    mobile.warm_up(5.0)  # moves nodes; must not crash the spatial index
    assert mobile.network.medium.stats.frames_sent > 0

    with pytest.raises(ValueError):
        build_manet_scenario(node_count=8, loss_model="gaussian")
