"""Shard-merge edge cases: duplicates, schema refusal, hostile float rows."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.engine import ExperimentSpec
from repro.experiments.results import ResultsStore, StoreRecord
from repro.fabric import MergeConflictError, merge_shards


def _spec(run_id: str, seed: int = 1) -> ExperimentSpec:
    return ExperimentSpec(experiment="edge", cell_id=run_id,
                          run_id=f"edge/{run_id}", seed=seed,
                          backend="oracle", params=(("rounds", 3),))


def _shard(tmp_path, name: str, cells) -> str:
    path = str(tmp_path / f"shard-{name}.sqlite")
    with ResultsStore(path) as store:
        for spec, rows in cells:
            store.record(spec, rows)
    return path


def test_duplicate_hashes_across_shards_merge_once(tmp_path):
    spec_shared = _spec("shared")
    spec_a, spec_b = _spec("only-a", seed=2), _spec("only-b", seed=3)
    row_shared = [{"run_id": spec_shared.run_id, "x": 0.1 + 0.2}]
    shard_a = _shard(tmp_path, "a", [(spec_shared, row_shared),
                                     (spec_a, [{"run_id": spec_a.run_id}])])
    shard_b = _shard(tmp_path, "b", [(spec_shared, row_shared),
                                     (spec_b, [{"run_id": spec_b.run_id}])])
    dest = str(tmp_path / "merged.sqlite")
    report = merge_shards([shard_a, shard_b], dest)
    assert report.merged == 3
    assert report.duplicates == 1
    with ResultsStore(dest) as store:
        assert len(store) == 3
        assert store.has_cell(spec_shared.content_hash())


def test_conflicting_rows_under_same_hash_refuse_to_merge(tmp_path):
    spec = _spec("conflict")
    shard_a = _shard(tmp_path, "a", [(spec, [{"run_id": spec.run_id, "x": 1}])])
    shard_b = _shard(tmp_path, "b", [(spec, [{"run_id": spec.run_id, "x": 2}])])
    dest = str(tmp_path / "merged.sqlite")
    with pytest.raises(MergeConflictError, match="identical specs"):
        merge_shards([shard_a, shard_b], dest)


def test_mismatched_schema_version_shard_is_refused(tmp_path):
    good = _shard(tmp_path, "good", [(_spec("ok"), [{"run_id": "edge/ok"}])])
    stale = _shard(tmp_path, "stale", [(_spec("old"), [{"run_id": "edge/old"}])])
    with ResultsStore(stale) as store:
        store._connection.execute(
            "UPDATE meta SET value = '3' WHERE key = 'schema_version'")
    dest = str(tmp_path / "merged.sqlite")
    with pytest.raises(ValueError, match="schema version 3"):
        merge_shards([good, stale], dest)


def test_nan_and_inf_rows_survive_merge_byte_identically(tmp_path):
    spec = _spec("hostile")
    rows = [{"run_id": spec.run_id, "nan": float("nan"),
             "pos": float("inf"), "neg": float("-inf"),
             "finite": 0.1 + 0.2}]
    shard = _shard(tmp_path, "hostile", [(spec, rows)])
    digest = spec.content_hash()
    with ResultsStore(shard) as store:
        raw_shard = store.raw_row_json(digest)

    dest = str(tmp_path / "merged.sqlite")
    merge_shards([shard, shard], dest)  # same shard twice: dedup must hold
    with ResultsStore(dest) as store:
        assert store.raw_row_json(digest) == raw_shard  # byte-identical copy
        merged = store.get_row(digest)[0]
        assert math.isnan(merged["nan"])
        assert merged["pos"] == float("inf")
        assert merged["neg"] == float("-inf")
        assert merged["finite"] == 0.1 + 0.2


def test_merge_copies_raw_records_not_reencoded_json(tmp_path):
    """record_raw must not normalise stored text (key order, spacing)."""
    record = StoreRecord(spec_hash="cafe" * 16, run_id="edge/raw",
                         system="detector",
                         spec_json='{"b": 1, "a": 2}',
                         row_json='[{"z": 1.0,   "a": NaN}]')
    shard = str(tmp_path / "shard-raw.sqlite")
    with ResultsStore(shard) as store:
        assert store.record_raw(record) is True
        assert store.record_raw(record) is False  # idempotent, not replaced
    dest = str(tmp_path / "merged.sqlite")
    merge_shards([shard], dest)
    with ResultsStore(dest) as store:
        assert store.raw_row_json(record.spec_hash) == record.row_json
        assert json.loads(store.iter_records().__next__().spec_json) == \
            {"b": 1, "a": 2}
