"""Tests for the read-only results service, its cache and the thin client."""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.experiments.engine import run_experiment
from repro.experiments.results import ResultsStore
from repro.fabric import client
from repro.fabric.service import ResultsService, make_server

_EXPERIMENT = "confidence_sweep"
_PARAMS = {"rounds": 5}
_CONTEXT = json.dumps({"backend": None, "base_seed": None, "axes": {},
                       "params": _PARAMS}, sort_keys=True)


@pytest.fixture()
def store_path(tmp_path) -> str:
    """A canonical store with one completed run and its fabric context."""
    path = str(tmp_path / "canonical.sqlite")
    with ResultsStore(path) as store:
        run_experiment(_EXPERIMENT, params=_PARAMS, store=store)
        store.set_meta(f"context:{_EXPERIMENT}", _CONTEXT)
    return path


@pytest.fixture(scope="module")
def golden_report() -> str:
    return run_experiment(_EXPERIMENT, params=_PARAMS).format_report()


# ------------------------------------------------------- handle() (no HTTP)
def test_index_lists_experiments_with_counts(store_path):
    service = ResultsService(store_path)
    status, headers, body = service.handle("/experiments")
    assert status == 200
    assert headers["X-Cache"] == "MISS"
    payload = json.loads(body)
    assert payload["experiments"] == [{
        "name": _EXPERIMENT, "cells": 9, "rows": 9,
        "report": f"/experiments/{_EXPERIMENT}/report", "has_context": True,
    }]


def test_report_uses_stored_context_and_caches(store_path, golden_report):
    service = ResultsService(store_path)
    path = f"/experiments/{_EXPERIMENT}/report"
    status, headers, body = service.handle(path)
    assert status == 200
    assert body.decode("utf-8") == golden_report
    assert headers["X-Cache"] == "MISS"
    # Second request: served from the LRU, not recomputed.
    status, headers2, body2 = service.handle(path)
    assert (status, body2) == (200, body)
    assert headers2["X-Cache"] == "HIT"
    assert headers2["ETag"] == headers["ETag"]
    # ETag revalidation: matching If-None-Match yields an empty 304.
    status, headers3, body3 = service.handle(path, if_none_match=headers["ETag"])
    assert (status, body3) == (304, b"")
    assert headers3["X-Cache"] == "HIT"


def test_cache_invalidates_when_the_store_changes(store_path, golden_report):
    service = ResultsService(store_path)
    path = f"/experiments/{_EXPERIMENT}/rows"
    _, headers, body = service.handle(path)
    assert headers["X-Cache"] == "MISS"
    assert len(json.loads(body)) == 9
    # Append a foreign cell: the store generation moves, the cache misses.
    from repro.experiments.engine import ExperimentSpec

    with ResultsStore(store_path) as store:
        extra = ExperimentSpec(experiment="other", cell_id="x", run_id="other/x",
                               seed=1, backend="oracle", params=())
        store.record(extra, [{"run_id": "other/x"}])
    _, headers2, _ = service.handle(path)
    assert headers2["X-Cache"] == "MISS"
    assert headers2["ETag"] == headers["ETag"]  # same rows, same content hash


def test_unknown_paths_and_experiments_are_404(store_path):
    service = ResultsService(store_path)
    assert service.handle("/nope")[0] == 404
    status, _, body = service.handle("/experiments/no_such/report")
    assert status == 404
    assert "no stored cells" in json.loads(body)["error"]


def test_missing_store_file_is_503(tmp_path):
    service = ResultsService(str(tmp_path / "absent.sqlite"))
    assert service.handle("/experiments")[0] == 503


def test_lru_evicts_oldest_entries(store_path):
    service = ResultsService(store_path, cache_size=1)
    first = "/experiments"
    second = f"/experiments/{_EXPERIMENT}/rows"
    assert service.handle(first)[1]["X-Cache"] == "MISS"
    assert service.handle(second)[1]["X-Cache"] == "MISS"
    assert service.handle(second)[1]["X-Cache"] == "HIT"
    assert service.handle(first)[1]["X-Cache"] == "MISS"  # evicted


def test_report_without_context_falls_back_to_generic_table(tmp_path):
    path = str(tmp_path / "bare.sqlite")
    with ResultsStore(path) as store:
        run_experiment(_EXPERIMENT, params=_PARAMS, store=store)
    status, _, body = ResultsService(path).handle(
        f"/experiments/{_EXPERIMENT}/report")
    assert status == 200
    assert body.decode("utf-8").startswith(f"Stored rows — {_EXPERIMENT}")


# ----------------------------------------------------------- HTTP + client
@pytest.fixture()
def served(store_path):
    server, service = make_server(store_path)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()


def test_client_round_trip_with_etag_revalidation(served, golden_report):
    experiments = client.fetch_experiments(served)
    assert [e["name"] for e in experiments] == [_EXPERIMENT]
    first = client.fetch_report(served, _EXPERIMENT)
    assert first.status == 200
    assert first.text() == golden_report
    second = client.fetch_report(served, _EXPERIMENT)
    assert second.cache == "HIT"
    revalidated = client.fetch_report(served, _EXPERIMENT, etag=first.etag)
    assert revalidated.not_modified
    assert revalidated.body == b""
    rows = client.fetch_rows(served, _EXPERIMENT)
    assert len(rows) == 9
    with pytest.raises(RuntimeError, match="no stored cells"):
        client.fetch_rows(served, "no_such")


def test_cli_report_url_matches_local_report(served, tmp_path, capsys):
    via_url = tmp_path / "url.txt"
    via_run = tmp_path / "run.txt"
    assert experiments_main(["report", "--url", served,
                             "--experiment", _EXPERIMENT,
                             "--output", str(via_url)]) == 0
    assert experiments_main(["run", _EXPERIMENT, "--param", "rounds=5",
                             "--output", str(via_run)]) == 0
    assert via_url.read_bytes() == via_run.read_bytes()
    capsys.readouterr()


def test_cli_report_url_without_experiment_tabulates_index(served, capsys):
    assert experiments_main(["report", "--url", served]) == 0
    out = capsys.readouterr().out
    assert "Served experiments" in out
    assert _EXPERIMENT in out


def test_cli_report_url_connection_error_is_clean(capsys):
    assert experiments_main(["report", "--url", "http://127.0.0.1:9",
                             "--experiment", _EXPERIMENT]) == 1
    assert "cannot fetch report" in capsys.readouterr().err


def test_cli_report_requires_exactly_one_source(capsys):
    with pytest.raises(SystemExit):
        experiments_main(["report"])
    with pytest.raises(SystemExit):
        experiments_main(["report", "--db", "x", "--url", "http://x"])
    capsys.readouterr()
