"""Tests for the scenario-profile registry and the scenario fuzzer."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    FuzzedScenario,
    ScenarioFuzzer,
    ScenarioProfile,
    apply_profile,
    get_profile,
    list_profiles,
    register_profile,
)
from repro.scenarios.fuzzer import FUZZ_ROUNDS, NODE_COUNTS


# ------------------------------------------------------------------ registry
def test_builtin_profiles_cover_mobility_and_threat_kinds():
    profiles = {p.name: p for p in list_profiles()}
    # The acceptance floor: >= 2 mobility and >= 2 threat profiles.
    assert {"gauss-markov", "rpgm"} <= {
        p.name for p in list_profiles(kind="mobility")}
    assert {"onoff-grayhole", "liar-clique", "grayhole-liar"} <= {
        p.name for p in list_profiles(kind="threat")}
    assert "paper-static" in profiles
    # Threat compositions the oracle loop cannot express are invariant-only.
    for name in ("onoff-grayhole", "liar-clique", "grayhole-liar"):
        assert not profiles[name].differential
    for name in ("gauss-markov", "rpgm", "paper-static"):
        assert profiles[name].differential


def test_get_profile_unknown_name_lists_known_ones():
    with pytest.raises(KeyError, match="registered:"):
        get_profile("no-such-profile")


def test_profile_params_are_sorted_and_digest_is_content_based():
    a = ScenarioProfile(name="t", description="", kind="threat",
                        params=(("b", 1), ("a", 2)))
    b = ScenarioProfile(name="t", description="ignored by digest? no:", kind="threat",
                        params=(("a", 2), ("b", 1)))
    assert a.params == (("a", 2), ("b", 1))
    assert a.content_digest() == b.content_digest()
    c = ScenarioProfile(name="t", description="", kind="threat",
                        params=(("a", 2), ("b", 99)))
    assert c.content_digest() != a.content_digest()
    with pytest.raises(ValueError):
        ScenarioProfile(name="x", description="", kind="weird")


def test_register_profile_makes_it_fuzzable_and_appliable():
    profile = register_profile(ScenarioProfile(
        name="test-only-profile", description="", kind="composite",
        params=(("mobility_model", "walk"), ("max_speed", 1.5)),
        differential=False,
    ))
    try:
        assert get_profile("test-only-profile") is profile
        merged = apply_profile({"profile": "test-only-profile", "rounds": 3})
        assert merged["mobility_model"] == "walk"
        assert merged["max_speed"] == 1.5
        assert merged["rounds"] == 3
        fuzzer = ScenarioFuzzer(0, profiles=["test-only-profile"])
        sample = fuzzer.sample(0)
        assert sample.profile == "test-only-profile"
        assert not sample.differential
    finally:
        from repro.scenarios import profiles as profiles_module

        del profiles_module._PROFILES["test-only-profile"]


# ------------------------------------------------------------- apply_profile
def test_apply_profile_cell_params_win_over_profile_params():
    merged = apply_profile({"profile": "gauss-markov", "max_speed": 9.0})
    assert merged["mobility_model"] == "gauss-markov"  # from the profile
    assert merged["max_speed"] == 9.0                  # the cell's own value wins


def test_apply_profile_without_profile_is_identity():
    assert apply_profile({"rounds": 2}) == {"rounds": 2}


def test_apply_profile_unknown_name_raises_value_error():
    with pytest.raises(ValueError, match="unknown scenario profile"):
        apply_profile({"profile": "typo"})


# ------------------------------------------------------------------- fuzzer
def test_fuzzer_is_deterministic_per_base_seed_and_index():
    a = list(ScenarioFuzzer(5).corpus(10))
    b = list(ScenarioFuzzer(5).corpus(10))
    assert a == b
    c = list(ScenarioFuzzer(6).corpus(10))
    assert a != c
    # Extending a corpus never changes its prefix.
    assert list(ScenarioFuzzer(5).corpus(4)) == a[:4]


def test_fuzzer_samples_are_well_formed():
    for sample in ScenarioFuzzer(1).corpus(40):
        params = sample.params_dict()
        assert params["total_nodes"] in NODE_COUNTS
        # Liars stay a strict minority of the responders.
        assert params["liar_count"] <= (params["total_nodes"] - 2) // 4
        assert params["rounds"] == FUZZ_ROUNDS
        assert params["random_initial_trust"] is False
        if sample.differential:
            assert params["attack_variant"] == "false_existing_link"
        # The profile must be resolvable and consistent with the flag.
        assert get_profile(sample.profile).differential == sample.differential


def test_fuzzer_covers_every_registered_profile():
    seen = {sample.profile for sample in ScenarioFuzzer(0).corpus(60)}
    assert seen == {p.name for p in list_profiles()}


def test_fuzzed_scenario_cli_reproducer_mentions_every_param():
    sample = ScenarioFuzzer(0).sample(0)
    command = sample.cli_command()
    assert command.startswith("python -m repro.experiments run figure1")
    assert f"--seed {sample.seed}" in command
    for name, value in sample.params:
        assert f"--param {name}={value}" in command


def test_fuzzer_requires_known_profiles():
    with pytest.raises(KeyError):
        ScenarioFuzzer(0, profiles=["nope"])


# -------------------------------------------------------- engine integration
def test_profile_axis_sweeps_through_the_engine():
    from repro.experiments.engine import run_experiment

    result = run_experiment(
        "figure1",
        backend="netsim",
        axes={"profile": ("paper-static", "liar-clique")},
        params={"cycles": 2, "warmup": 20.0, "total_nodes": 8, "liar_count": 2,
                "rounds": 2},
    )
    assert result.cells() == 2
    assert {spec.param("profile") for spec in result.specs} == {
        "paper-static", "liar-clique"}
    # Distinct profiles hash to distinct cells (resume-safe).
    assert len(set(result.hashes)) == 2
    assert len(result.rows()) > 0


def test_unknown_profile_value_fails_at_expansion_with_value_error():
    from repro.experiments.engine import get_experiment, run_experiment

    # Fail-fast: the typo is rejected while expanding the grid, before any
    # cell simulates.
    with pytest.raises(ValueError, match="unknown scenario profile"):
        get_experiment("figure1").expand(params={"profile": "typo"})
    with pytest.raises(ValueError, match="unknown scenario profile"):
        run_experiment("figure1", backend="netsim",
                       params={"profile": "typo", "cycles": 1, "rounds": 1})


def test_profile_contents_are_part_of_the_spec_hash():
    """Editing a profile must invalidate stored cells: the expanded
    parameters (not just the profile's name) enter the content hash."""
    from repro.experiments.engine import get_experiment
    from repro.scenarios import ScenarioProfile, register_profile
    from repro.scenarios import profiles as profiles_module

    def expand_hash():
        (spec,) = get_experiment("figure1").expand(
            backend="netsim", params={"profile": "hash-probe"})
        assert spec.param("profile") == "hash-probe"
        return spec.content_hash()

    register_profile(ScenarioProfile(
        name="hash-probe", description="", kind="mobility",
        params=(("mobility_model", "walk"), ("max_speed", 2.0))))
    try:
        before = expand_hash()
        register_profile(ScenarioProfile(
            name="hash-probe", description="", kind="mobility",
            params=(("mobility_model", "walk"), ("max_speed", 5.0))))
        assert expand_hash() != before
    finally:
        del profiles_module._PROFILES["hash-probe"]
