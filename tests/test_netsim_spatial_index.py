"""Tests for the wireless medium's spatial neighbour index.

The fast path must be an invisible optimisation: every query it serves
(neighbour sets, connectivity matrices, broadcast candidate selection) has to
match the brute-force all-interfaces scan exactly — under static placements,
after teleports via ``Network.set_position``, while a mobility model moves
nodes, and with per-sender ranges (``AsymmetricRangePropagation``).
"""

from __future__ import annotations

import random

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.medium import (
    AsymmetricRangePropagation,
    UnitDiskPropagation,
    WirelessMedium,
)
from repro.netsim.mobility import RandomWaypointMobility, UniformRandomPlacement
from repro.netsim.network import Network, PositionTable
from repro.netsim.packet import BROADCAST_ADDRESS, Frame


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, frame, now):
        self.received.append((frame, now))


def build_network(node_count=30, seed=3, radio_range=250.0, area=900.0,
                  propagation=None, mobility=None, use_spatial_index=True):
    simulator = Simulator()
    medium = WirelessMedium(
        simulator,
        propagation=propagation or UnitDiskPropagation(radio_range=radio_range),
        use_spatial_index=use_spatial_index,
    )
    network = Network(
        simulator=simulator,
        medium=medium,
        mobility=mobility or UniformRandomPlacement(width=area, height=area,
                                                    rng=random.Random(seed)),
        seed=seed,
    )
    node_ids = [f"n{i:02d}" for i in range(node_count)]
    network.add_nodes(node_ids)
    return network, node_ids


def assert_matches_brute_force(network, node_ids):
    """Fast-path answers must equal the brute-force scan, order included."""
    medium = network.medium
    assert medium._current_grid() is not None, "fast path unexpectedly disabled"
    for node_id in node_ids:
        fast = medium.neighbors_of(node_id)
        brute = medium._neighbors_brute_force(node_id)
        assert fast == brute, f"neighbour mismatch for {node_id}"


def test_static_placement_matches_brute_force():
    network, node_ids = build_network()
    assert_matches_brute_force(network, node_ids)
    matrix = network.medium.connectivity_matrix()
    for node_id in node_ids:
        assert matrix[node_id] == network.medium._neighbors_brute_force(node_id)


def test_teleport_via_set_position_invalidates_index():
    network, node_ids = build_network()
    before = network.medium.neighbors_of("n00")
    # Move n01 right next to n00 (and far from where it was).
    origin = network.position_of("n00")
    network.set_position("n01", (origin[0] + 1.0, origin[1] + 1.0))
    after = network.medium.neighbors_of("n00")
    assert "n01" in after
    assert after == network.medium._neighbors_brute_force("n00")
    # Move it out of everyone's range.
    network.set_position("n01", (1e6, 1e6))
    assert "n01" not in network.medium.neighbors_of("n00")
    assert_matches_brute_force(network, node_ids)
    assert before is not None  # silence linters; the point is no staleness


def test_mobile_placement_matches_brute_force_over_time():
    mobility = RandomWaypointMobility(width=600.0, height=600.0, min_speed=20.0,
                                      max_speed=60.0, pause_time=0.5,
                                      update_interval=0.5, rng=random.Random(9))
    network, node_ids = build_network(node_count=20, area=600.0, mobility=mobility)
    for _ in range(6):
        network.run(until=network.now + 2.0)
        assert_matches_brute_force(network, node_ids)


def test_asymmetric_per_sender_ranges_match_brute_force():
    propagation = AsymmetricRangePropagation(default_range=250.0)
    network, node_ids = build_network(node_count=24, propagation=propagation)
    # A mix of short- and long-range transmitters, including one whose range
    # exceeds the default (forces the grid cell size to grow).
    propagation.register("n00", 60.0)
    propagation.register("n01", 400.0)
    propagation.register("n02", 120.0)
    assert_matches_brute_force(network, node_ids)
    # Asymmetry really happens: the long-range node reaches someone who
    # cannot reach it back.
    far = set(network.medium.neighbors_of("n01")) - set(
        nid for nid in node_ids if "n01" in network.medium.neighbors_of(nid))
    # (may be empty on this layout; the contract is only equality with brute force)
    assert far is not None


def test_broadcast_delivery_identical_with_and_without_index():
    def flood(use_spatial_index):
        network, node_ids = build_network(use_spatial_index=use_spatial_index)
        medium = network.medium
        sinks = {}
        for node_id in node_ids:
            medium.unregister(node_id)
            sink = Sink()
            medium.register(node_id, sink)
            sinks[node_id] = sink
        for node_id in node_ids:
            medium.transmit(Frame(source=node_id, destination=BROADCAST_ADDRESS,
                                  payload=node_id))
        network.simulator.run()
        received = {
            nid: sorted(frame.source for frame, _ in sink.received)
            for nid, sink in sinks.items()
        }
        return received, medium.stats

    fast_received, fast_stats = flood(True)
    brute_received, brute_stats = flood(False)
    assert fast_received == brute_received
    assert fast_stats.frames_delivered == brute_stats.frames_delivered
    assert fast_stats.frames_out_of_range == brute_stats.frames_out_of_range
    assert fast_stats.frames_sent == brute_stats.frames_sent


def test_node_arrival_and_departure_invalidate_index():
    network, node_ids = build_network(node_count=10)
    network.medium.neighbors_of("n00")  # prime the cache
    interface = network.create_interface("late", network.position_of("n00"))
    assert interface is not None
    assert "late" in network.medium.neighbors_of("n00")
    network.remove_node("late")
    assert "late" not in network.medium.neighbors_of("n00")
    assert_matches_brute_force(network, node_ids)


def test_position_table_epoch_counts_mutations():
    table = PositionTable()
    assert table.epoch == 0
    table["a"] = (0.0, 0.0)
    table["b"] = (1.0, 1.0)
    assert table.epoch == 2
    table.update({"c": (2.0, 2.0)})
    assert table.epoch == 3
    table.pop("c")
    assert table.epoch == 4
    del table["b"]
    assert table.epoch == 5
    table.clear()
    assert table.epoch == 6


def test_bare_oracle_without_epoch_falls_back_to_brute_force():
    positions = {"a": (0.0, 0.0), "b": (100.0, 0.0)}
    medium = WirelessMedium(Simulator())
    medium.bind_position_oracle(lambda nid: positions[nid])
    medium.register("a", Sink())
    medium.register("b", Sink())
    assert medium._current_grid() is None
    assert medium.neighbors_of("a") == ["b"]
    # Direct dict mutation (no epoch to observe) must still be reflected.
    positions["b"] = (1e6, 1e6)
    assert medium.neighbors_of("a") == []


def test_unknown_propagation_model_falls_back_to_brute_force():
    class EverythingReaches:
        def in_range(self, sender, receiver):
            return True

    network, node_ids = build_network(propagation=EverythingReaches(), node_count=6)
    assert network.medium._current_grid() is None
    for node_id in node_ids:
        expected = [nid for nid in node_ids if nid != node_id]
        assert network.medium.neighbors_of(node_id) == expected


def test_neighbor_cache_not_mutable_by_callers():
    network, _ = build_network(node_count=8)
    first = network.medium.neighbors_of("n00")
    first.append("bogus")
    assert "bogus" not in network.medium.neighbors_of("n00")


def test_per_node_range_change_invalidates_cache():
    """Regression: shrinking one node's range after a query must not leave the
    old (larger-range) neighbour list in the per-epoch cache.
    """
    propagation = AsymmetricRangePropagation(default_range=250.0)
    network, node_ids = build_network(node_count=24, propagation=propagation)
    before = network.medium.neighbors_of("n00")
    propagation.register("n00", 1.0)  # nearly deaf transmitter now
    after = network.medium.neighbors_of("n00")
    assert after == network.medium._neighbors_brute_force("n00")
    assert after == []
    propagation.register("n00", 250.0)
    assert network.medium.neighbors_of("n00") == before
    assert_matches_brute_force(network, node_ids)


def test_aggregate_rows_preserve_numeric_group_keys():
    """Regression: aggregate keys must keep their type and numeric order."""
    from repro.experiments.report import aggregate_rows

    rows = [{"nodes": 16, "x": 1.0}, {"nodes": 8, "x": 2.0}, {"nodes": 8, "x": 4.0}]
    aggregated = aggregate_rows(rows, ("nodes",), ("x",))
    assert [row["nodes"] for row in aggregated] == [8, 16]
    assert aggregated[0]["x"] == 3.0


def test_distance_loss_zero_probability_is_lossless():
    """Regression: an explicit 'distance:0.0' axis must mean a lossless
    channel, not silently fall back to max_loss=0.8.
    """
    from repro.experiments.scenario import _build_loss_model

    model = _build_loss_model("distance", 0.0, radio_range=250.0, seed=1)
    assert model.max_loss == 0.0
    assert model.loss_probability(249.0) == 0.0
