"""Tests for the adaptive adversary tier: trust probes, threshold riding,
rotating cliques, the closed drop-feedback loop and the per-node attack RNG
derivation."""

from __future__ import annotations

import json
import pathlib
import random
import subprocess
import sys

import pytest

from repro.attacks import (
    GrayholeAttack,
    LiarBehavior,
    RotatingLiarClique,
    ThresholdRidingGrayhole,
    TrustProbe,
    run_drop_feedback_loop,
)
from repro.seeding import stable_seed
from repro.trust.manager import TrustManager, TrustParameters


class _Router:
    """Minimal routing stub the attacks install on."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.forward_filters = []
        self.answer_mutators = []
        self.now = 0.0


# ------------------------------------------------------------------ TrustProbe
def test_trust_probe_reads_the_observers_trust_and_counts_taps():
    trust = TrustManager("victim")
    trust.set_initial_trust("attacker", 0.7)
    probe = TrustProbe(trust, "attacker")
    assert probe.read() == pytest.approx(0.7)
    assert probe.read() == pytest.approx(0.7)
    assert probe.reads == 2


def test_trust_probe_is_a_read_only_surface():
    """The probe captures only the bound ``trust_of`` accessor: it exposes
    no manager handle, and ``__slots__`` blocks smuggling one in."""
    trust = TrustManager("victim")
    probe = TrustProbe(trust, "attacker")
    assert not hasattr(probe, "manager")
    assert not hasattr(probe, "trust")
    with pytest.raises(AttributeError):
        probe.manager = trust


# ------------------------------------------------------ ThresholdRidingGrayhole
def test_threshold_rider_validates_parameters():
    with pytest.raises(ValueError):
        ThresholdRidingGrayhole(max_drop_probability=0.3, min_drop_probability=0.5)
    with pytest.raises(ValueError):
        ThresholdRidingGrayhole(ride_threshold=0.4, resume_threshold=0.3)
    with pytest.raises(ValueError):
        ThresholdRidingGrayhole(full_throttle_headroom=0.0)


def test_threshold_rider_pauses_and_resumes_with_hysteresis():
    trust = TrustManager("victim")
    trust.set_initial_trust("attacker", 0.5)
    rider = ThresholdRidingGrayhole(
        max_drop_probability=0.8, ride_threshold=0.3, resume_threshold=0.4,
        rng=random.Random(1))
    rider.bind_probe(TrustProbe(trust, "attacker"))

    rider.observe(0.0)
    assert not rider.riding_paused and rider.is_active(0.0)

    trust.set_initial_trust("attacker", 0.29)       # at/below the ride line
    rider.observe(1.0)
    assert rider.riding_paused and not rider.is_active(1.0)

    trust.set_initial_trust("attacker", 0.35)       # inside the hysteresis band
    rider.observe(2.0)
    assert rider.riding_paused                      # still waiting for headroom

    trust.set_initial_trust("attacker", 0.41)       # above the resume line
    rider.observe(3.0)
    assert not rider.riding_paused and rider.is_active(3.0)
    assert [entry[0] for entry in rider.adaptation_log] == [0.0, 1.0, 2.0, 3.0]


def test_threshold_rider_throttles_drop_probability_with_headroom():
    trust = TrustManager("victim")
    rider = ThresholdRidingGrayhole(
        max_drop_probability=0.8, min_drop_probability=0.2,
        ride_threshold=0.3, resume_threshold=0.4, full_throttle_headroom=0.2,
        rng=random.Random(1))
    rider.bind_probe(TrustProbe(trust, "attacker"))

    trust.set_initial_trust("attacker", 0.6)        # >= full headroom
    rider.observe(0.0)
    assert rider.drop_probability == pytest.approx(0.8)

    trust.set_initial_trust("attacker", 0.4)        # half the headroom
    rider.observe(1.0)
    assert rider.drop_probability == pytest.approx(0.5)


def test_threshold_rider_without_probe_behaves_like_static_grayhole():
    rider = ThresholdRidingGrayhole(max_drop_probability=0.8, rng=random.Random(1))
    rider.observe(0.0)                              # no probe bound: no-op
    assert not rider.riding_paused
    assert rider.adaptation_log == []


def test_threshold_rider_describe_reports_riding_state():
    rider = ThresholdRidingGrayhole(max_drop_probability=0.6, rng=random.Random(1))
    data = rider.describe()
    assert data["name"] == "threshold-grayhole"
    assert data["max_drop_probability"] == 0.6
    assert data["ride_threshold"] == rider.ride_threshold
    assert data["resume_threshold"] == rider.resume_threshold
    assert data["riding_paused"] is False
    assert data["observations"] == 0


# ------------------------------------------------- the 2x time-to-detect claim
def test_threshold_rider_survives_2x_longer_at_matched_drop_ratio():
    """The ISSUE's acceptance property, deterministically.

    Both attackers drop 100% of the traffic they attack (drop ratio matched
    exactly, with no RNG involvement); the rider merely *picks its windows*
    by watching its own trust.  Under a fast-learning watchdog the static
    grayhole is classified on the first cycle, while the rider survives the
    whole horizon — far beyond the required 2x.
    """
    params = TrustParameters(beta=0.8, alpha_harmful=0.2, alpha_beneficial=0.2,
                             default_trust=0.5, minimum=0.0)
    cycles = 24

    static = GrayholeAttack(drop_probability=1.0, rng=random.Random(11))
    static_run = run_drop_feedback_loop(
        static, cycles=cycles, opportunities=20,
        classification_threshold=0.25, trust_parameters=params)

    rider = ThresholdRidingGrayhole(
        max_drop_probability=1.0, min_drop_probability=1.0,
        ride_threshold=0.45, resume_threshold=0.6,
        rng=random.Random(11))
    rider_run = run_drop_feedback_loop(
        rider, cycles=cycles, opportunities=20,
        classification_threshold=0.25, trust_parameters=params)

    # Matched effective drop ratio: both drop everything while attacking.
    assert static.observed_drop_ratio == 1.0
    assert rider.observed_drop_ratio == 1.0

    assert static_run.detected_cycle is not None
    assert rider_run.detected_cycle is None          # survived the whole run
    assert rider_run.time_to_detect(cycles) >= 2 * static_run.time_to_detect(cycles)

    # The rider did attack (this is not "survive by never attacking") …
    assert sum(r.drops for r in rider_run.records) > 0
    # … and its pause windows show up as whole-run traffic it let through.
    assert rider_run.effective_drop_ratio < static_run.effective_drop_ratio
    # The feedback loop actually ran through the read-only probe.
    assert rider.probe is not None and rider.probe.reads == cycles


def test_feedback_loop_detects_static_attacker_quickly():
    params = TrustParameters(beta=0.8, alpha_harmful=0.4, alpha_beneficial=0.2,
                             default_trust=0.5, minimum=0.0)
    run = run_drop_feedback_loop(
        GrayholeAttack(drop_probability=1.0, rng=random.Random(3)),
        cycles=10, opportunities=20,
        classification_threshold=0.25, trust_parameters=params)
    assert run.detected_cycle == 0        # one full-drop cycle is enough here
    assert run.time_to_detect() == 1.0
    assert run.effective_drop_ratio == 1.0


# ------------------------------------------------------------ RotatingLiarClique
def test_rotating_clique_fields_one_active_liar_per_epoch():
    clique = RotatingLiarClique(protected_suspects={"s"}, lie_probability=1.0,
                                epoch_length=1.0, seed=3)
    members = [clique.member(f"m{i}") for i in range(3)]
    for epoch in range(9):
        decisions = {m.member_id: clique.member_decision(m.member_id, "s", float(epoch))
                     for m in members}
        liars = [mid for mid, decision in decisions.items() if decision == "lie"]
        assert liars == [f"m{epoch % 3}"], f"epoch {epoch}: {decisions}"


def test_rotating_clique_rotation_is_deterministic_and_order_independent():
    def build():
        clique = RotatingLiarClique(protected_suspects={"s"}, lie_probability=1.0,
                                    epoch_length=2.0, seed=9)
        for member_id in ("b", "a", "c"):            # registration order varies
            clique.member(member_id)
        return clique

    one, two = build(), build()
    schedule_one = [one.member_decision(m, "s", float(now))
                    for now in range(12) for m in ("a", "b", "c")]
    schedule_two = [two.member_decision(m, "s", float(now))
                    for now in range(12) for m in ("a", "b", "c")]
    assert schedule_one == schedule_two
    assert "lie" in schedule_one and "honest" in schedule_one


def test_rotating_clique_member_answers_flow_through_rotation():
    clique = RotatingLiarClique(protected_suspects={"attacker"},
                                lie_probability=1.0, epoch_length=1.0, seed=5)
    m0, m1 = clique.member("m0"), clique.member("m1")
    # Epoch 0: m0 is the active liar, m1 answers honestly.
    assert m0.answer(honest=False, now=0.0, suspect="attacker") is True
    assert m1.answer(honest=False, now=0.0, suspect="attacker") is False
    # Epoch 1: the roles swap.
    assert m0.answer(honest=False, now=1.0, suspect="attacker") is False
    assert m1.answer(honest=False, now=1.0, suspect="attacker") is True


def test_rotating_clique_without_members_falls_back_to_shared_decision():
    clique = RotatingLiarClique(protected_suspects={"s"}, lie_probability=1.0,
                                epoch_length=1.0, seed=5)
    assert clique.member_decision("ghost", "s", 0.0) == "lie"
    assert clique.describe()["name"] == "rotating-liar-clique"


# ------------------------------------------------- per-node attack RNG streams
def test_default_grayholes_on_distinct_nodes_use_independent_streams():
    first, second = GrayholeAttack(0.5), GrayholeAttack(0.5)
    first.install(_Router("n01"))
    second.install(_Router("n02"))
    draws_first = [first.rng.random() for _ in range(16)]
    draws_second = [second.rng.random() for _ in range(16)]
    assert draws_first != draws_second
    assert not set(draws_first) & set(draws_second)


def test_default_attack_streams_are_reproducible_per_node():
    """Same node id → same stream; an explicit rng is never reseeded."""
    first, second = GrayholeAttack(0.5), GrayholeAttack(0.5)
    first.install(_Router("n07"))
    second.install(_Router("n07"))
    assert [first.rng.random() for _ in range(8)] == \
        [second.rng.random() for _ in range(8)]

    supplied = random.Random(42)
    explicit = GrayholeAttack(0.5, rng=supplied)
    explicit.install(_Router("n07"))
    assert explicit.rng is supplied


def test_default_liars_on_distinct_nodes_use_independent_streams():
    first = LiarBehavior(protected_suspects={"s"}, lie_probability=0.5)
    second = LiarBehavior(protected_suspects={"s"}, lie_probability=0.5)
    first.install(_Router("n01"))
    second.install(_Router("n02"))
    assert [first.rng.random() for _ in range(16)] != \
        [second.rng.random() for _ in range(16)]


def test_attack_streams_survive_hash_randomisation():
    """Install-time derivation is PYTHONHASHSEED-independent: two fresh
    interpreters with different hash salts derive identical drop decisions
    for a default-constructed attack."""
    script = (
        "import json\n"
        "from repro.attacks import GrayholeAttack\n"
        "class R:\n"
        "    node_id = 'n05'\n"
        "    forward_filters = []\n"
        "    now = 10.0\n"
        "attack = GrayholeAttack(0.5)\n"
        "attack.install(R())\n"
        "print(json.dumps([attack._filter(None, 'prev', R) for _ in range(32)]))\n"
    )
    src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
    outputs = []
    for hash_seed in ("0", "31337"):
        process = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={"PYTHONHASHSEED": hash_seed, "PYTHONPATH": src},
        )
        assert process.returncode == 0, process.stderr
        outputs.append(json.loads(process.stdout))
    assert outputs[0] == outputs[1]
    expected_rng = random.Random(stable_seed(0, "attack:grayhole:n05"))
    expected = [not expected_rng.random() < 0.5 for _ in range(32)]
    assert outputs[0] == expected


# --------------------------------------------------------- grayhole describe()
def test_grayhole_describe_reports_drop_configuration_and_ratio():
    attack = GrayholeAttack(drop_probability=1.0,
                            victim_originators={"victim"},
                            rng=random.Random(2))
    router = _Router("evil")
    attack.install(router)

    class Message:
        message_type = "TC"

        def __init__(self, originator):
            self.originator = originator

    assert attack._filter(Message("victim"), "prev", router) is False
    assert attack._filter(Message("other"), "prev", router) is True

    data = attack.describe()
    assert data["drop_probability"] == 1.0
    assert data["message_types"] is None
    assert data["victim_originators"] == ["victim"]
    assert data["dropped"] == 1
    assert data["relayed"] == 1
    assert data["observed_drop_ratio"] == 0.5
