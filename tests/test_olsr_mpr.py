"""Tests for the MPR selection heuristic (RFC 3626 §8.3.1)."""

from __future__ import annotations

from repro.olsr.constants import Willingness
from repro.olsr.mpr import mpr_coverage_complete, select_mprs


def test_empty_two_hop_set_selects_no_mprs():
    result = select_mprs(symmetric_neighbors={"a", "b"}, coverage={"a": set(), "b": set()})
    assert result.mprs == set()
    assert result.uncovered == set()


def test_sole_provider_always_selected():
    result = select_mprs(
        symmetric_neighbors={"a", "b"},
        coverage={"a": {"x"}, "b": {"y"}},
    )
    assert result.mprs == {"a", "b"}
    assert result.isolated_two_hops == {"x": "a", "y": "b"}


def test_greedy_selects_best_coverage():
    result = select_mprs(
        symmetric_neighbors={"a", "b", "c"},
        coverage={"a": {"x", "y", "z"}, "b": {"x"}, "c": {"y"}},
    )
    assert result.mprs == {"a"}


def test_coverage_invariant_holds():
    coverage = {"a": {"x", "y"}, "b": {"y", "z"}, "c": {"z", "w"}}
    result = select_mprs(symmetric_neighbors={"a", "b", "c"}, coverage=coverage)
    two_hop = {"x", "y", "z", "w"}
    assert mpr_coverage_complete(result.mprs, coverage, two_hop)


def test_will_never_excluded_even_if_only_provider():
    result = select_mprs(
        symmetric_neighbors={"a", "b"},
        coverage={"a": {"x"}, "b": set()},
        willingness={"a": Willingness.WILL_NEVER},
    )
    assert "a" not in result.mprs
    assert result.uncovered == {"x"}


def test_will_always_selected_even_without_coverage():
    result = select_mprs(
        symmetric_neighbors={"a", "b"},
        coverage={"a": {"x"}, "b": set()},
        willingness={"b": Willingness.WILL_ALWAYS},
    )
    assert "b" in result.mprs
    assert "a" in result.mprs


def test_willingness_breaks_ties():
    # Both cover the same two 2-hop nodes; the more willing one must win.
    result = select_mprs(
        symmetric_neighbors={"low", "high"},
        coverage={"low": {"x", "y"}, "high": {"x", "y"}},
        willingness={"low": Willingness.WILL_LOW, "high": Willingness.WILL_HIGH},
    )
    assert result.mprs == {"high"}


def test_own_address_and_one_hop_neighbors_excluded_from_two_hop_set():
    result = select_mprs(
        symmetric_neighbors={"a", "b"},
        coverage={"a": {"me", "b"}, "b": {"a"}},
        local_address="me",
    )
    # Nothing is a genuine 2-hop node, so no MPR is needed.
    assert result.mprs == set()


def test_redundant_mpr_pruned():
    # "big" covers everything "small" covers and more.
    result = select_mprs(
        symmetric_neighbors={"big", "small"},
        coverage={"big": {"x", "y", "z"}, "small": {"x"}},
    )
    assert result.mprs == {"big"}


def test_prune_can_be_disabled():
    coverage = {"big": {"x", "y", "z"}, "small": {"x"}}
    pruned = select_mprs(symmetric_neighbors={"big", "small"}, coverage=coverage)
    unpruned = select_mprs(symmetric_neighbors={"big", "small"}, coverage=coverage,
                           prune_redundant=False)
    assert pruned.mprs <= unpruned.mprs
    # "small" is the sole provider of nothing, so even unpruned it is only
    # selected if the greedy pass needed it; the invariant must hold either way.
    assert mpr_coverage_complete(unpruned.mprs, coverage, {"x", "y", "z"})


def test_redundancy_parameter_keeps_extra_mprs():
    coverage = {"a": {"x", "y"}, "b": {"x", "y"}}
    default = select_mprs(symmetric_neighbors={"a", "b"}, coverage=coverage)
    redundant = select_mprs(symmetric_neighbors={"a", "b"}, coverage=coverage, redundancy=1)
    assert len(default.mprs) == 1
    assert redundant.mprs == {"a", "b"}


def test_unreachable_two_hop_reported_uncovered():
    result = select_mprs(
        symmetric_neighbors={"a"},
        coverage={"a": set()},
    )
    assert result.uncovered == set()
    result2 = select_mprs(
        symmetric_neighbors={"a", "b"},
        coverage={"a": {"x"}, "b": {"y"}},
        willingness={"a": Willingness.WILL_NEVER},
    )
    assert "x" in result2.uncovered


def test_deterministic_tie_break_is_stable():
    coverage = {"n1": {"x"}, "n2": {"x"}}
    results = {
        frozenset(select_mprs(symmetric_neighbors={"n1", "n2"}, coverage=coverage).mprs)
        for _ in range(10)
    }
    assert len(results) == 1


def test_larger_topology_coverage_invariant():
    symmetric = {f"n{i}" for i in range(6)}
    coverage = {
        "n0": {"t0", "t1"},
        "n1": {"t1", "t2"},
        "n2": {"t2", "t3"},
        "n3": {"t3", "t4"},
        "n4": {"t4", "t5"},
        "n5": {"t5", "t0"},
    }
    result = select_mprs(symmetric_neighbors=symmetric, coverage=coverage)
    assert mpr_coverage_complete(result.mprs, coverage, {f"t{i}" for i in range(6)})
    assert len(result.mprs) <= 6
