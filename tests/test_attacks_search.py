"""Tests for the detectability search loop (repro.attacks.search)."""

from __future__ import annotations

from repro.attacks.search import (
    AttackSearchResult,
    detectability_score,
    search_attack_configs,
)
from repro.core.decision import DecisionOutcome
from repro.experiments.config import ScenarioConfig
from repro.experiments.rounds import RoundBasedExperiment, RoundRecord


# --------------------------------------------------------- detectability score
def test_detected_runs_always_score_above_undetected_ones():
    config = ScenarioConfig(rounds=10)
    experiment = RoundBasedExperiment(config)
    detected = experiment.run()
    assert any(r.outcome == DecisionOutcome.INTRUDER for r in detected.rounds)
    score = detectability_score(detected)
    assert score > 1.0

    # Synthesize an undetected run: strip the INTRUDER outcomes.
    for record in detected.rounds:
        if record.outcome == DecisionOutcome.INTRUDER:
            record.outcome = DecisionOutcome.WELL_BEHAVING
    undetected_score = detectability_score(detected)
    assert undetected_score < 1.0 <= score


def test_earlier_detection_scores_as_more_detectable():
    config = ScenarioConfig(rounds=10)
    result = RoundBasedExperiment(config).run()
    early = detectability_score(result)
    # Push the first INTRUDER verdict later: detectability must drop.
    first = next(r for r in result.rounds if r.outcome == DecisionOutcome.INTRUDER)
    first.outcome = DecisionOutcome.WELL_BEHAVING
    later = detectability_score(result)
    assert later < early


def test_empty_run_scores_zero():
    config = ScenarioConfig(rounds=5)
    result = RoundBasedExperiment(config).run(rounds=0)
    assert detectability_score(result) == 0.0


# ----------------------------------------------------------------- the search
def _small_search(**overrides) -> AttackSearchResult:
    kwargs = dict(corpus_size=2, generations=2, children=2,
                  base_seed=0, rounds=8, backend="oracle", minimize=False)
    kwargs.update(overrides)
    return search_attack_configs(**kwargs)


def test_search_winner_is_never_more_detectable_than_best_static():
    """The ISSUE's acceptance property: elitism pins the winner at or below
    the stealthiest static corpus entry, and the reproducer line names the
    adaptivity experiment."""
    result = _small_search(minimize=True)
    assert result.winner is not None
    assert result.winner.score <= result.best_static.score
    assert result.minimized is not None
    assert result.minimized.score <= result.best_static.score
    assert "run adaptivity" in result.reproducer
    assert "--seed " in result.reproducer
    assert "--axis adaptivity=" in result.reproducer


def test_search_is_a_pure_function_of_its_arguments():
    first = _small_search()
    second = _small_search()
    assert first.format_report() == second.format_report()
    assert first.winner.params == second.winner.params
    assert first.evaluations == second.evaluations

    shifted = _small_search(base_seed=1)
    assert shifted.format_report() != first.format_report()


def test_search_trajectory_is_monotonically_non_increasing():
    result = _small_search(generations=3)
    scores = [entry.score for entry in result.trajectory]
    assert scores == sorted(scores, reverse=True) or all(
        later <= earlier
        for earlier, later in zip(scores, scores[1:]))
    assert len(result.trajectory) == 4      # incumbent + one per generation
    assert result.baselines[0].params_dict()["adaptivity"] == "static"


def test_search_report_is_renderable_and_names_the_baselines():
    result = _small_search()
    report = result.format_report()
    assert "Attack-detectability search" in report
    assert "static baselines" in report
    assert "winner:" in report
    assert "reproduce: python -m repro.experiments run adaptivity" in report


def test_search_rejects_empty_corpus():
    import pytest

    with pytest.raises(ValueError):
        search_attack_configs(corpus_size=0)
