"""Tests for the figure-reproduction experiments (paper Figures 1–3).

These tests assert the *qualitative shapes* the paper reports, not absolute
numbers (our substrate is a simulator, not the authors' testbed).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ScenarioConfig, figure3_configs
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3


@pytest.fixture(scope="module")
def figure1():
    return run_figure1()


@pytest.fixture(scope="module")
def figure2():
    return run_figure2()


@pytest.fixture(scope="module")
def figure3():
    return run_figure3()


# ------------------------------------------------------------------ Figure 1
def test_figure1_liars_lose_trust_regardless_of_initial_value(figure1):
    report = figure1.trajectory_report()
    assert report.liars_all_decreasing()
    for liar in figure1.liars:
        assert figure1.trajectories[liar][-1] < 0.15


def test_figure1_honest_nodes_never_lose_trust(figure1):
    report = figure1.trajectory_report()
    assert report.honest_all_non_decreasing()


def test_figure1_honest_low_trust_nodes_gain_only_moderately(figure1):
    # "the well-behaving nodes which have low initial trust values gain a
    # little of trustworthiness during the 25 rounds"
    for node in figure1.honest:
        initial = figure1.experiment.initial_trust[node]
        final = figure1.trajectories[node][-1]
        if initial < 0.3:
            assert final - initial < 0.55


def test_figure1_clear_separation_between_groups(figure1):
    report = figure1.trajectory_report()
    assert report.final_separation() > 0.3


def test_figure1_attacker_trust_collapses(figure1):
    assert figure1.trajectories[figure1.attacker][-1] < 0.1


def test_figure1_rows_structure(figure1):
    rows = figure1.rows()
    assert len(rows) == 15  # 14 responders + attacker
    roles = {row["role"] for row in rows}
    assert roles == {"attacker", "liar", "honest"}
    for row in rows:
        assert row["final_trust"] is not None


def test_figure1_forces_persistent_attack():
    result = run_figure1(ScenarioConfig(seed=9, rounds=10, attack_stop_round=3))
    # attack_stop_round is overridden to None for Figure 1.
    assert all(record.attack_active for record in result.experiment.rounds)


# ------------------------------------------------------------------ Figure 2
def test_figure2_honest_nodes_return_to_default(figure2):
    gaps = figure2.recovery_gaps()
    for node in figure2.experiment.honest_responders:
        assert abs(gaps[node]) < 0.1


def test_figure2_former_liars_recover_slowly_and_stay_below_default(figure2):
    gaps = figure2.recovery_gaps()
    honest_gap = max(abs(gaps[n]) for n in figure2.experiment.honest_responders)
    for liar in figure2.experiment.liars:
        assert gaps[liar] > 0.05
        assert gaps[liar] > honest_gap
        # Former liars recover monotonically (no new misconduct) after the stop.
        post = figure2.post_attack_trajectory(liar)
        assert post[-1] >= post[0]


def test_figure2_rows_report_gap_to_default(figure2):
    rows = figure2.rows()
    by_node = {row["node"]: row for row in rows}
    liar = next(iter(figure2.experiment.liars))
    honest = next(iter(figure2.experiment.honest_responders))
    assert by_node[liar]["gap_to_default"] > by_node[honest]["gap_to_default"]


def test_figure2_default_cutover_added_when_missing():
    result = run_figure2(ScenarioConfig(seed=9, rounds=20))
    assert result.attack_stop_round > 0


# ------------------------------------------------------------------ Figure 3
def test_figure3_more_liars_slow_down_convergence(figure3):
    convergence = figure3.convergence_rounds(threshold=-0.4)
    low, mid, high = convergence["6.7%"], convergence["26.3%"], convergence["43.2%"]
    assert low is not None and mid is not None and high is not None
    assert low <= mid <= high


def test_figure3_detection_converges_below_minus_04_by_round_10(figure3):
    # "after 10 rounds, the result of the investigation falls down to −0.4
    # even when liars represent 43.2% of the nodes"
    for label, series in figure3.detect_series().items():
        assert series[10] <= -0.4, f"{label} still at {series[10]} at round 10"


def test_figure3_final_value_strongly_negative_for_all_ratios(figure3):
    # "in the last rounds, the investigation converges and reaches −0.8
    # regardless of the percentage of liars"
    for label, value in figure3.final_values().items():
        assert value <= -0.75, f"{label} ended at {value}"


def test_figure3_early_rounds_ordered_by_liar_ratio(figure3):
    series = figure3.detect_series()
    assert series["6.7%"][0] < series["26.3%"][0] < series["43.2%"][0]


def test_figure3_rows_structure(figure3):
    rows = figure3.rows()
    assert len(rows) == 3
    assert [row["liar_ratio"] for row in rows] == ["6.7%", "26.3%", "43.2%"]
    assert all(row["final_detect"] < -0.7 for row in rows)


def test_figure3_custom_sweep():
    configs = {
        "0%": ScenarioConfig(seed=2, liar_count=0, rounds=5),
        "50%": ScenarioConfig(seed=2, liar_count=7, rounds=5),
    }
    result = run_figure3(configs)
    series = result.detect_series()
    assert series["0%"][0] == pytest.approx(-1.0)
    assert series["50%"][0] > series["0%"][0]
