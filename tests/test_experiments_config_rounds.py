"""Tests for the experiment configuration and the round-based driver."""

from __future__ import annotations

import pytest

from repro.core.decision import DecisionOutcome
from repro.experiments.config import (
    ScenarioConfig,
    figure2_config,
    figure3_configs,
    paper_default_config,
)
from repro.experiments.rounds import RoundBasedExperiment


def test_paper_default_matches_evaluation_section():
    config = paper_default_config()
    assert config.total_nodes == 16
    assert config.liar_count == 4
    assert config.rounds == 25
    assert config.trust.default_trust == pytest.approx(0.4)
    assert config.attack_stop_round is None


def test_config_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(total_nodes=2)
    with pytest.raises(ValueError):
        ScenarioConfig(rounds=0)
    with pytest.raises(ValueError):
        ScenarioConfig(liar_fraction=1.5)
    with pytest.raises(ValueError):
        ScenarioConfig(total_nodes=5, liar_count=10)


def test_liar_sizing_helpers():
    config = ScenarioConfig(total_nodes=16, liar_count=4)
    assert config.responder_count() == 14
    assert config.effective_liar_count() == 4
    assert config.liar_percentage() == pytest.approx(100 * 4 / 14)
    fraction_config = ScenarioConfig(total_nodes=16, liar_fraction=0.5)
    assert fraction_config.effective_liar_count() == 7


def test_with_overrides_copies():
    config = paper_default_config()
    other = config.with_overrides(rounds=5)
    assert other.rounds == 5
    assert config.rounds == 25


def test_figure2_config_has_attack_cutoff():
    config = figure2_config()
    assert config.attack_stop_round is not None
    assert config.rounds > config.attack_stop_round


def test_figure3_configs_sweep_liar_ratio():
    configs = figure3_configs()
    counts = [config.effective_liar_count() for config in configs.values()]
    assert len(set(counts)) == len(counts)
    assert max(counts) < min(config.responder_count() for config in configs.values())


# --------------------------------------------------------------------- driver
def test_experiment_population_split():
    experiment = RoundBasedExperiment(ScenarioConfig(seed=1))
    assert len(experiment.responder_ids) == 14
    assert len(experiment.liar_ids) == 4
    assert experiment.liar_ids <= set(experiment.responder_ids)
    assert experiment.attacker_id not in experiment.responder_ids
    assert experiment.investigator_id not in experiment.responder_ids


def test_experiment_reproducible_with_same_seed():
    a = RoundBasedExperiment(ScenarioConfig(seed=5)).run()
    b = RoundBasedExperiment(ScenarioConfig(seed=5)).run()
    assert a.liars == b.liars
    assert a.detect_trajectory() == b.detect_trajectory()
    assert a.trust_trajectories() == b.trust_trajectories()


def test_experiment_different_seeds_differ():
    a = RoundBasedExperiment(ScenarioConfig(seed=5)).run()
    b = RoundBasedExperiment(ScenarioConfig(seed=6)).run()
    assert a.initial_trust != b.initial_trust


def test_random_initial_trust_within_bounds():
    config = ScenarioConfig(seed=3, initial_trust_min=0.2, initial_trust_max=0.6)
    experiment = RoundBasedExperiment(config)
    result = experiment.run(rounds=1)
    for node, value in result.initial_trust.items():
        assert 0.2 <= value <= 0.6


def test_fixed_initial_trust_option():
    config = ScenarioConfig(seed=3, random_initial_trust=False)
    experiment = RoundBasedExperiment(config)
    result = experiment.run(rounds=1)
    assert all(v == pytest.approx(config.trust.default_trust)
               for v in result.initial_trust.values())


def test_run_produces_one_record_per_round():
    result = RoundBasedExperiment(ScenarioConfig(seed=2, rounds=10)).run()
    assert len(result.rounds) == 10
    assert all(record.round_index == i for i, record in enumerate(result.rounds))


def test_detection_trends_negative_with_minority_liars():
    result = RoundBasedExperiment(ScenarioConfig(seed=4)).run()
    detect = result.detect_values()
    assert detect[0] > detect[-1]
    assert detect[-1] < -0.8
    assert result.final_outcome() == DecisionOutcome.INTRUDER


def test_attacker_trust_collapses_and_honest_trust_grows():
    result = RoundBasedExperiment(ScenarioConfig(seed=4)).run()
    attacker_trajectory = result.trust_trajectory(result.attacker)
    assert attacker_trajectory[-1] < 0.1
    for honest in result.honest_responders:
        trajectory = result.trust_trajectory(honest)
        assert trajectory[-1] >= result.initial_trust[honest] - 1e-9


def test_liar_trust_decreases_regardless_of_initial_value():
    result = RoundBasedExperiment(ScenarioConfig(seed=4)).run()
    for liar in result.liars:
        trajectory = result.trust_trajectory(liar)
        assert trajectory[-1] < result.initial_trust[liar]
        assert trajectory[-1] < 0.1


def test_attack_stop_round_switches_to_decay():
    config = ScenarioConfig(seed=4, rounds=20, attack_stop_round=5)
    experiment = RoundBasedExperiment(config)
    result = experiment.run()
    active_rounds = [r for r in result.rounds if r.attack_active]
    decay_rounds = [r for r in result.rounds if not r.attack_active]
    assert len(active_rounds) == 5
    assert len(decay_rounds) == 15
    assert all(r.detect_value is None for r in decay_rounds)


def test_role_of_classification():
    result = RoundBasedExperiment(ScenarioConfig(seed=4)).run(rounds=1)
    assert result.role_of(result.attacker) == "attacker"
    assert result.role_of(result.investigator) == "investigator"
    liar = next(iter(result.liars))
    honest = next(iter(result.honest_responders))
    assert result.role_of(liar) == "liar"
    assert result.role_of(honest) == "honest"


def test_answer_loss_produces_missing_answers():
    config = ScenarioConfig(seed=4, answer_loss_probability=0.5, rounds=5)
    result = RoundBasedExperiment(config).run()
    missing = sum(
        1 for record in result.rounds for value in record.answers.values() if value == 0.0
    )
    assert missing > 0


def test_unweighted_ablation_converges_slower_or_not_at_all():
    weighted = RoundBasedExperiment(ScenarioConfig(seed=4)).run()
    unweighted = RoundBasedExperiment(
        ScenarioConfig(seed=4, use_trust_weighting=False)).run()
    assert weighted.detect_values()[-1] < unweighted.detect_values()[-1]


def test_close_on_decision_stops_further_investigations():
    config = ScenarioConfig(seed=4, close_on_decision=True, gamma=0.4, rounds=25)
    result = RoundBasedExperiment(config).run()
    investigated = [r for r in result.rounds if r.detect_value is not None]
    assert len(investigated) < 25
    assert investigated[-1].outcome == DecisionOutcome.INTRUDER
