"""Tests for the unified ``python -m repro.experiments`` CLI."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import (
    _parse_axis,
    _parse_param,
    _parse_value,
    main,
)


def test_parse_value_types():
    assert _parse_value("3") == 3
    assert _parse_value("0.25") == 0.25
    assert _parse_value("true") is True
    assert _parse_value("None") is None
    assert _parse_value("6.7%") == "6.7%"


def test_parse_axis_and_param():
    assert _parse_axis("gamma=0.4,0.6") == ("gamma", (0.4, 0.6))
    assert _parse_param("rounds=5") == ("rounds", 5)
    with pytest.raises(Exception):
        _parse_axis("gamma")
    with pytest.raises(Exception):
        _parse_param("rounds")


def test_cli_list_names_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("figure1", "figure2", "figure3", "ablation",
                 "confidence_sweep", "gravity_ablation", "mobility"):
        assert name in out


def test_cli_usage_and_unknown_command(capsys):
    assert main([]) == 2
    assert main(["--help"]) == 0
    assert main(["frobnicate"]) == 2
    capsys.readouterr()


def test_cli_run_is_deterministic_across_invocations(tmp_path, capsys):
    argv = ["run", "figure3", "--param", "rounds=5"]
    outputs = []
    for name in ("a.txt", "b.txt"):
        path = tmp_path / name
        assert main(argv + ["--output", str(path)]) == 0
    outputs = [(tmp_path / n).read_bytes() for n in ("a.txt", "b.txt")]
    assert outputs[0] == outputs[1]
    assert b"liar_ratio" in outputs[0]
    capsys.readouterr()


def test_cli_run_axis_override_and_workers(tmp_path, capsys):
    out = tmp_path / "sweep.txt"
    assert main(["run", "confidence_sweep", "--axis", "gamma=0.6",
                 "--param", "rounds=5", "--workers", "2",
                 "--output", str(out)]) == 0
    text = out.read_text()
    assert "0.6" in text
    assert text.count("\n") < 12  # 3 confidence levels x 1 gamma only
    capsys.readouterr()


def test_cli_run_db_resume_and_report_byte_identical(tmp_path, capsys):
    db = str(tmp_path / "sweep.sqlite")
    out_a, out_b, out_c = (tmp_path / n for n in ("a.txt", "b.txt", "c.txt"))
    argv = ["run", "confidence_sweep", "--param", "rounds=5", "--db", db]
    assert main(argv + ["--output", str(out_a)]) == 0
    assert main(argv + ["--resume", "--output", str(out_b)]) == 0
    assert out_a.read_bytes() == out_b.read_bytes()
    # The report subcommand re-renders from the store, executing nothing.
    assert main(["report", "--db", db, "--experiment", "confidence_sweep",
                 "--param", "rounds=5", "--output", str(out_c)]) == 0
    assert out_c.read_bytes() == out_a.read_bytes()
    capsys.readouterr()


def test_cli_generic_report_tabulates_stored_rows(tmp_path, capsys):
    db = str(tmp_path / "f3.sqlite")
    assert main(["run", "figure3", "--param", "rounds=5", "--db", db]) == 0
    capsys.readouterr()
    assert main(["report", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "Stored rows" in out
    assert "6.7%" in out


def test_cli_run_resume_requires_db(capsys):
    with pytest.raises(SystemExit):
        main(["run", "figure1", "--resume"])
    capsys.readouterr()


def test_cli_run_unknown_experiment_errors(capsys):
    with pytest.raises(SystemExit):
        main(["run", "no_such_experiment"])
    capsys.readouterr()


def test_cli_run_typo_in_param_fails_fast(capsys):
    assert main(["run", "figure3", "--param", "cycels=4"]) == 2
    err = capsys.readouterr().err
    assert "unknown parameter 'cycels'" in err


def test_cli_report_missing_db_is_an_error(tmp_path, capsys):
    missing = tmp_path / "nope.sqlite"
    assert main(["report", "--db", str(missing)]) == 1
    # A mistyped path must not be silently created as an empty store.
    assert not missing.exists()
    capsys.readouterr()


def test_cli_campaign_subcommand_forwards(tmp_path, capsys):
    out = tmp_path / "campaign.txt"
    assert main(["campaign", "--node-counts", "8", "--cycles", "1",
                 "--warmup", "20", "--output", str(out)]) == 0
    assert b"Campaign" in out.read_bytes()
    capsys.readouterr()


# ---------------------------------------------------------------- fabric CLI
def test_cli_fabric_pipeline_matches_single_process_report(tmp_path, capsys):
    queue = str(tmp_path / "q.sqlite")
    shards = str(tmp_path / "shards")
    merged = str(tmp_path / "merged.sqlite")
    golden = tmp_path / "golden.txt"
    fabric_out = tmp_path / "fabric.txt"
    base = ["--param", "rounds=5"]
    assert main(["run", "confidence_sweep", *base, "--output", str(golden)]) == 0
    assert main(["fabric", "dispatch", "confidence_sweep", *base,
                 "--queue", queue]) == 0
    assert main(["fabric", "work", "--queue", queue, "--group", "a",
                 "--shard-dir", shards, "--max-cells", "4"]) == 0
    assert main(["fabric", "work", "--queue", queue, "--group", "b",
                 "--shard-dir", shards]) == 0
    assert main(["fabric", "status", "--queue", queue]) == 0
    assert "done=9" in capsys.readouterr().out
    assert main(["fabric", "merge", "--into", merged, "--queue", queue,
                 f"{shards}/shard-a.sqlite", f"{shards}/shard-b.sqlite"]) == 0
    assert main(["report", "--db", merged, "--experiment", "confidence_sweep",
                 *base, "--output", str(fabric_out)]) == 0
    assert fabric_out.read_bytes() == golden.read_bytes()
    # Re-dispatching against the merged store enqueues nothing.
    queue2 = str(tmp_path / "q2.sqlite")
    assert main(["fabric", "dispatch", "confidence_sweep", *base,
                 "--queue", queue2, "--resume-from", merged]) == 0
    assert "0 enqueued" in capsys.readouterr().out


def test_cli_fabric_usage_and_unknown_command(capsys):
    assert main(["fabric"]) == 2
    assert main(["fabric", "--help"]) == 0
    assert main(["fabric", "frobnicate"]) == 2
    with pytest.raises(SystemExit):
        main(["fabric", "dispatch", "no_such_experiment", "--queue", "q"])
    capsys.readouterr()


def test_cli_fabric_merge_missing_shard_is_an_error(tmp_path, capsys):
    missing = str(tmp_path / "shard-zz.sqlite")
    assert main(["fabric", "merge", "--into", str(tmp_path / "m.sqlite"),
                 missing]) == 1
    assert "does not exist" in capsys.readouterr().err


def test_cli_report_empty_store_exits_nonzero(tmp_path, capsys):
    from repro.experiments.results import ResultsStore

    db = str(tmp_path / "empty.sqlite")
    ResultsStore(db).close()
    assert main(["report", "--db", db]) == 1
    assert "holds no completed cells" in capsys.readouterr().err
    assert main(["report", "--db", db, "--experiment", "confidence_sweep"]) == 1
    capsys.readouterr()


def test_cli_run_profile_dumps_pstats_file(tmp_path, capsys):
    import pstats

    stats_file = tmp_path / "run.pstats"
    assert main(["run", "figure3", "--param", "rounds=3",
                 "--profile", str(stats_file)]) == 0
    err = capsys.readouterr().err
    assert "pstats data written" in err
    stats = pstats.Stats(str(stats_file))
    assert stats.total_calls > 0


def test_cli_run_profile_without_file_prints_summary(capsys, tmp_path):
    out = tmp_path / "report.txt"
    assert main(["run", "figure3", "--param", "rounds=3",
                 "--profile", "--output", str(out)]) == 0
    err = capsys.readouterr().err
    assert "cumulative" in err  # pstats table header on stderr


def test_cli_validate_medium_both_audits_each_path(capsys):
    assert main(["validate", "--seeds", "1", "--medium", "both"]) == 0
    output = capsys.readouterr().out
    assert "invariant-checked:     2" in output
