"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decision import aggregate_detection, decide, DecisionOutcome
from repro.logs.parser import format_record, parse_line
from repro.logs.records import LogCategory, make_record
from repro.olsr.mpr import mpr_coverage_complete, select_mprs
from repro.trust.confidence import (
    effective_sample_size,
    margin_of_error,
    weighted_margin_of_error,
)
from repro.trust.entropy import (
    binary_entropy,
    entropy_trust_from_probability,
    probability_from_entropy_trust,
)
from repro.trust.evidence import EvidenceKind, TrustEvidence
from repro.trust.manager import TrustManager, TrustParameters
from repro.trust.propagation import multipath_trust, normalised_weights


# ---------------------------------------------------------------------- logs
# Exclude keys colliding with make_record's own parameter names (a Python
# call-level collision, not a log-format one; reserved *wire* keys like "t"
# are exercised separately and handled by the parser).
_field_keys = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10).filter(
    lambda key: key not in {"time", "node", "category", "event"}
)
_field_values = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="-_.:, "),
    max_size=20,
)


@given(
    time=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    node=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8),
    category=st.sampled_from(list(LogCategory)),
    event=st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ_", min_size=1, max_size=16),
    fields=st.dictionaries(_field_keys, _field_values, max_size=5),
)
@settings(max_examples=200)
def test_log_record_text_roundtrip(time, node, category, event, fields):
    record = make_record(time, node, category, event, **fields)
    parsed = parse_line(format_record(record))
    assert parsed.node == record.node
    assert parsed.category == record.category
    assert parsed.event == record.event
    assert abs(parsed.time - record.time) < 1e-5
    assert parsed.fields == record.fields


# ----------------------------------------------------------------------- MPR
_node_names = st.sampled_from([f"n{i}" for i in range(8)])
_two_hop_names = st.sampled_from([f"t{i}" for i in range(10)])


@given(
    coverage=st.dictionaries(
        _node_names, st.sets(_two_hop_names, max_size=6), min_size=1, max_size=8
    )
)
@settings(max_examples=200)
def test_mpr_selection_always_covers_reachable_two_hop_set(coverage):
    symmetric = set(coverage)
    result = select_mprs(symmetric_neighbors=symmetric, coverage=coverage,
                         local_address="me")
    two_hop = set().union(*coverage.values()) - symmetric - {"me"} if coverage else set()
    reachable = two_hop - result.uncovered
    assert mpr_coverage_complete(result.mprs, coverage, reachable)
    assert result.mprs <= symmetric
    assert result.uncovered == set()  # every 2-hop node has a provider here


# --------------------------------------------------------------------- trust
@given(p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_entropy_trust_bounds_and_sign(p):
    trust = entropy_trust_from_probability(p)
    assert -1.0 <= trust <= 1.0
    if p > 0.5:
        assert trust >= 0.0
    elif p < 0.5:
        assert trust <= 0.0


@given(p=st.floats(min_value=0.001, max_value=0.999, allow_nan=False))
def test_entropy_trust_inverse_roundtrip(p):
    trust = entropy_trust_from_probability(p)
    assert abs(probability_from_entropy_trust(trust) - p) < 1e-4


@given(p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_binary_entropy_bounds(p):
    assert 0.0 <= binary_entropy(p) <= 1.0 + 1e-12


@given(
    initial=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    values=st.lists(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                    min_size=0, max_size=20),
)
@settings(max_examples=200)
def test_trust_manager_always_within_bounds(initial, values):
    manager = TrustManager("me", TrustParameters())
    manager.set_initial_trust("x", initial)
    for slot, value in enumerate(values):
        kind = EvidenceKind.CORRECT_ANSWER if value >= 0 else EvidenceKind.INCORRECT_ANSWER
        evidences = []
        if value != 0.0:
            evidences.append(TrustEvidence("me", "x", kind, value=value, timestamp=float(slot)))
        manager.update("x", evidences, now=float(slot))
        assert 0.0 <= manager.trust_of("x") <= 1.0


@given(
    rec_trusts=st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                        min_size=0, max_size=10),
)
def test_normalised_weights_and_multipath_bounds(rec_trusts):
    weights = normalised_weights(rec_trusts)
    assert all(w >= 0 for w in weights)
    pairs = [(r, 1.0) for r in rec_trusts]
    value = multipath_trust(pairs)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


# ---------------------------------------------------------------- confidence
@given(samples=st.lists(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                        min_size=0, max_size=30),
       level=st.sampled_from([0.80, 0.90, 0.95, 0.99]))
def test_margin_of_error_non_negative_and_finite(samples, level):
    margin = margin_of_error(samples, level)
    assert margin >= 0.0
    assert math.isfinite(margin)


@given(
    data=st.lists(
        st.tuples(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
                  st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        min_size=1, max_size=20,
    )
)
def test_weighted_margin_non_negative(data):
    samples = [s for s, _ in data]
    weights = [w for _, w in data]
    margin = weighted_margin_of_error(samples, weights, 0.95)
    assert margin >= 0.0
    assert math.isfinite(margin)
    assert effective_sample_size(weights) <= len(weights) + 1e-9


# ------------------------------------------------------------------ decision
_answers = st.dictionaries(
    st.sampled_from([f"s{i}" for i in range(10)]),
    st.sampled_from([-1.0, 0.0, 1.0]),
    min_size=1, max_size=10,
)
_trust_values = st.dictionaries(
    st.sampled_from([f"s{i}" for i in range(10)]),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    max_size=10,
)


@given(answers=_answers, trust=_trust_values)
@settings(max_examples=300)
def test_aggregate_detection_bounded(answers, trust):
    value = aggregate_detection(answers, trust)
    assert -1.0 <= value <= 1.0


@given(answers=_answers, trust=_trust_values)
def test_aggregate_sign_matches_unanimous_answers(answers, trust):
    values = set(answers.values())
    aggregate = aggregate_detection(answers, trust)
    if values == {1.0}:
        assert aggregate >= 0.0
    if values == {-1.0}:
        assert aggregate <= 0.0


@given(
    detect=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    margin=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    gamma=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
)
@settings(max_examples=300)
def test_decision_rule_is_exhaustive_and_exclusive(detect, margin, gamma):
    outcome = decide(detect, margin, gamma=gamma)
    assert outcome in (DecisionOutcome.WELL_BEHAVING, DecisionOutcome.INTRUDER,
                       DecisionOutcome.UNRECOGNIZED)
    # The two conclusive outcomes are mutually exclusive.
    well = gamma <= detect - margin <= 1.0
    intruder = -1.0 <= detect + margin <= -gamma
    assert not (well and intruder)
    if well:
        assert outcome == DecisionOutcome.WELL_BEHAVING
    elif intruder:
        assert outcome == DecisionOutcome.INTRUDER
    else:
        assert outcome == DecisionOutcome.UNRECOGNIZED


@given(
    detect=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    gamma=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
)
def test_larger_margin_never_creates_a_conclusive_outcome(detect, gamma):
    tight = decide(detect, 0.0, gamma=gamma)
    wide = decide(detect, 1.5, gamma=gamma)
    if tight == DecisionOutcome.UNRECOGNIZED:
        assert wide == DecisionOutcome.UNRECOGNIZED
