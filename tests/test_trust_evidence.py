"""Tests for trust evidences (Properties 1–5 encoding)."""

from __future__ import annotations

import pytest

from repro.trust.evidence import (
    DEFAULT_GRAVITY,
    EvidenceKind,
    HARMFUL_KINDS,
    TrustEvidence,
    beneficial,
    harmful,
)


def test_value_range_validated():
    with pytest.raises(ValueError):
        TrustEvidence("a", "b", EvidenceKind.CORRECT_ANSWER, value=1.5)
    with pytest.raises(ValueError):
        TrustEvidence("a", "b", EvidenceKind.CORRECT_ANSWER, value=-2.0)


def test_property1_sign_encodes_harmfulness():
    good = beneficial("a", "b", EvidenceKind.CORRECT_ANSWER)
    bad = harmful("a", "b", EvidenceKind.INCORRECT_ANSWER)
    assert not good.is_harmful
    assert bad.is_harmful


def test_beneficial_and_harmful_constructors_validate_sign():
    with pytest.raises(ValueError):
        beneficial("a", "b", EvidenceKind.CORRECT_ANSWER, value=-1.0)
    with pytest.raises(ValueError):
        harmful("a", "b", EvidenceKind.INCORRECT_ANSWER, value=1.0)


def test_property2_gravity_defaults_per_kind():
    spoof = harmful("a", "b", EvidenceKind.LINK_SPOOFING)
    answer = harmful("a", "b", EvidenceKind.INCORRECT_ANSWER)
    assert spoof.effective_gravity > answer.effective_gravity
    assert spoof.effective_gravity == DEFAULT_GRAVITY[EvidenceKind.LINK_SPOOFING]


def test_explicit_gravity_overrides_default():
    evidence = TrustEvidence("a", "b", EvidenceKind.CORRECT_ANSWER, value=1.0, gravity=3.0)
    assert evidence.effective_gravity == 3.0


def test_property3_imminence_doubles_harmful_weight():
    plain = harmful("a", "b", EvidenceKind.LINK_SPOOFING)
    imminent = harmful("a", "b", EvidenceKind.LINK_SPOOFING, imminent=True)
    assert imminent.weighted(0.1) == pytest.approx(2.0 * plain.weighted(0.1))


def test_imminence_does_not_boost_beneficial_evidence():
    plain = beneficial("a", "b", EvidenceKind.CORRECT_ANSWER)
    boosted = TrustEvidence("a", "b", EvidenceKind.CORRECT_ANSWER, value=1.0, imminent=True)
    assert boosted.weighted(0.1) == pytest.approx(plain.weighted(0.1))


def test_property5_second_hand_weighs_half():
    first = beneficial("a", "b", EvidenceKind.CORRECT_ANSWER, firsthand=True)
    second = beneficial("a", "b", EvidenceKind.CORRECT_ANSWER, firsthand=False)
    assert second.weighted(0.1) == pytest.approx(0.5 * first.weighted(0.1))


def test_weighted_sign_follows_value():
    good = beneficial("a", "b", EvidenceKind.CORRECT_ANSWER)
    bad = harmful("a", "b", EvidenceKind.INCORRECT_ANSWER)
    assert good.weighted(0.1) > 0
    assert bad.weighted(0.1) < 0


def test_harmful_kinds_constant_covers_negative_kinds():
    assert EvidenceKind.LINK_SPOOFING in HARMFUL_KINDS
    assert EvidenceKind.CORRECT_ANSWER not in HARMFUL_KINDS


def test_kind_string_representation():
    assert str(EvidenceKind.LINK_SPOOFING) == "LINK_SPOOFING"
