"""Tests for the OLSR information repositories (link / neighbour / 2-hop / selector sets)."""

from __future__ import annotations

from repro.olsr.constants import Willingness
from repro.olsr.link_state import (
    LinkSet,
    LinkTuple,
    MprSelectorSet,
    MprSelectorTuple,
    NeighborSet,
    NeighborTuple,
    TwoHopNeighborSet,
    TwoHopTuple,
)


# ----------------------------------------------------------------- link set
def test_link_status_transitions():
    link = LinkTuple("me", "n1", sym_time=10.0, asym_time=10.0, expiry_time=20.0)
    assert link.is_symmetric(5.0)
    assert link.status(5.0) == "SYM"
    assert not link.is_symmetric(11.0)
    assert link.is_asymmetric(11.0) is False  # asym expired too
    link2 = LinkTuple("me", "n1", sym_time=-1.0, asym_time=10.0, expiry_time=20.0)
    assert link2.is_asymmetric(5.0)
    assert link2.status(5.0) == "ASYM"
    assert link2.status(15.0) == "LOST"


def test_link_set_upsert_and_queries():
    links = LinkSet()
    links.upsert(LinkTuple("me", "a", sym_time=10.0, asym_time=10.0, expiry_time=20.0))
    links.upsert(LinkTuple("me", "b", sym_time=-1.0, asym_time=10.0, expiry_time=20.0))
    assert links.symmetric_neighbors(5.0) == {"a"}
    assert links.asymmetric_neighbors(5.0) == {"b"}
    assert links.all_neighbors() == {"a", "b"}
    assert len(links) == 2


def test_link_set_purge_expired():
    links = LinkSet()
    links.upsert(LinkTuple("me", "a", expiry_time=5.0))
    links.upsert(LinkTuple("me", "b", expiry_time=50.0))
    expired = links.purge_expired(10.0)
    assert [l.neighbor_address for l in expired] == ["a"]
    assert links.get("a") is None
    assert links.get("b") is not None


def test_link_set_remove():
    links = LinkSet()
    links.upsert(LinkTuple("me", "a", expiry_time=5.0))
    links.remove("a")
    links.remove("ghost")  # removing absent link is a no-op
    assert len(links) == 0


# ------------------------------------------------------------- neighbour set
def test_neighbor_set_symmetric_and_willingness():
    neighbors = NeighborSet()
    neighbors.upsert(NeighborTuple("a", symmetric=True, willingness=Willingness.WILL_HIGH))
    neighbors.upsert(NeighborTuple("b", symmetric=False))
    assert neighbors.symmetric_neighbors() == {"a"}
    assert neighbors.willingness_of("a") == Willingness.WILL_HIGH
    assert neighbors.willingness_of("unknown") == Willingness.WILL_DEFAULT
    assert neighbors.addresses() == {"a", "b"}


def test_neighbor_set_remove():
    neighbors = NeighborSet()
    neighbors.upsert(NeighborTuple("a"))
    neighbors.remove("a")
    assert neighbors.get("a") is None
    assert len(neighbors) == 0


# ----------------------------------------------------------------- 2-hop set
def build_two_hop_set() -> TwoHopNeighborSet:
    two_hop = TwoHopNeighborSet()
    two_hop.upsert(TwoHopTuple("n1", "x", expiry_time=100.0))
    two_hop.upsert(TwoHopTuple("n1", "y", expiry_time=100.0))
    two_hop.upsert(TwoHopTuple("n2", "y", expiry_time=100.0))
    two_hop.upsert(TwoHopTuple("n2", "z", expiry_time=100.0))
    return two_hop


def test_two_hop_queries():
    two_hop = build_two_hop_set()
    assert two_hop.two_hop_addresses() == {"x", "y", "z"}
    assert two_hop.reachable_through("n1") == {"x", "y"}
    assert two_hop.providers_of("y") == {"n1", "n2"}
    assert two_hop.providers_of("x") == {"n1"}
    assert two_hop.coverage_map() == {"n1": {"x", "y"}, "n2": {"y", "z"}}


def test_two_hop_remove_for_neighbor():
    two_hop = build_two_hop_set()
    two_hop.remove_for_neighbor("n1")
    assert two_hop.two_hop_addresses() == {"y", "z"}
    assert two_hop.reachable_through("n1") == set()


def test_two_hop_remove_single_tuple():
    two_hop = build_two_hop_set()
    two_hop.remove("n2", "y")
    assert two_hop.providers_of("y") == {"n1"}


def test_two_hop_purge_expired():
    two_hop = TwoHopNeighborSet()
    two_hop.upsert(TwoHopTuple("n1", "x", expiry_time=5.0))
    two_hop.upsert(TwoHopTuple("n1", "y", expiry_time=50.0))
    expired = two_hop.purge_expired(10.0)
    assert len(expired) == 1
    assert two_hop.two_hop_addresses() == {"y"}


def test_two_hop_upsert_refreshes_existing():
    two_hop = TwoHopNeighborSet()
    two_hop.upsert(TwoHopTuple("n1", "x", expiry_time=5.0))
    two_hop.upsert(TwoHopTuple("n1", "x", expiry_time=50.0))
    assert len(two_hop) == 1
    assert two_hop.purge_expired(10.0) == []


# ------------------------------------------------------------- selector set
def test_mpr_selector_set_membership_and_purge():
    selectors = MprSelectorSet()
    selectors.upsert(MprSelectorTuple("a", expiry_time=5.0))
    selectors.upsert(MprSelectorTuple("b", expiry_time=50.0))
    assert selectors.contains("a")
    assert selectors.addresses() == {"a", "b"}
    expired = selectors.purge_expired(10.0)
    assert [s.selector_address for s in expired] == ["a"]
    assert not selectors.contains("a")
    assert len(selectors) == 1


def test_mpr_selector_remove():
    selectors = MprSelectorSet()
    selectors.upsert(MprSelectorTuple("a", expiry_time=50.0))
    selectors.remove("a")
    selectors.remove("ghost")
    assert selectors.addresses() == set()
