"""Tests for the differential validation harness (invariants, differential
comparisons, the fuzzing campaign and its CLI)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.backends import (
    run_netsim_cell,
    run_oracle_cell,
    scenario_config_from_params,
)
from repro.experiments.scenario import build_canonical_scenario, build_manet_scenario
from repro.netsim.trace import TraceRecorder
from repro.validation import (
    DEFAULT_TOLERANCES,
    ScenarioAuditor,
    check_delivery_range,
    check_duplicate_suppression,
    check_mpr_coverage,
    check_trust_bounds,
    compare_metrics,
    minimize_params,
    run_differential,
    summary_metrics,
    validate_corpus,
)
from repro.validation.fuzz import ValidationReport

_FAST_PARAMS = {
    "total_nodes": 8, "liar_count": 1, "rounds": 3, "cycles": 3,
    "warmup": 25.0, "random_initial_trust": False,
}


# -------------------------------------------------------------- delivery range
def test_delivery_range_checker_passes_on_clean_runs():
    scenario = build_manet_scenario(node_count=10, liar_count=2, seed=3,
                                    max_speed=3.0)
    auditor = ScenarioAuditor(scenario)
    scenario.warm_up(40.0)
    assert len(auditor.recorder) > 0  # deliveries were actually audited
    assert check_delivery_range(scenario, auditor.recorder) == []


def test_delivery_range_checker_flags_out_of_range_delivery():
    recorder = TraceRecorder()
    recorder.record(1.0, "medium", "rx", "FRAME_DELIVERED",
                    source="tx", sender_pos=(0.0, 0.0),
                    receiver_pos=(400.0, 0.0), tx_range=250.0)
    recorder.record(2.0, "medium", "rx", "FRAME_DELIVERED",
                    source="tx", sender_pos=(0.0, 0.0),
                    receiver_pos=(200.0, 0.0), tx_range=250.0)
    violations = check_delivery_range(None, recorder)
    assert len(violations) == 1
    assert violations[0].invariant == "delivery-range"
    assert "400.000" in violations[0].detail


def test_delivery_range_checker_skips_unbounded_propagation():
    recorder = TraceRecorder()
    recorder.record(1.0, "medium", "rx", "FRAME_DELIVERED",
                    source="tx", sender_pos=(0.0, 0.0),
                    receiver_pos=(1e9, 0.0), tx_range=None)
    assert check_delivery_range(None, recorder) == []


# ----------------------------------------------------------------- mpr check
def test_mpr_coverage_checker_flags_broken_selection(monkeypatch):
    scenario = build_canonical_scenario(seed=11)
    scenario.warm_up(30.0)
    assert check_mpr_coverage(scenario) == []

    from repro.olsr import mpr as mpr_module

    def broken_select(**kwargs):
        return mpr_module.MprComputationResult()  # empty set, nothing covered

    monkeypatch.setattr(mpr_module, "select_mprs", broken_select)
    violations = check_mpr_coverage(scenario)
    assert violations
    assert all(v.invariant == "mpr-coverage" for v in violations)


# --------------------------------------------------------------- trust bounds
def test_trust_bounds_checker_flags_escaped_values():
    scenario = build_canonical_scenario(seed=11)
    scenario.warm_up(30.0)
    assert check_trust_bounds(scenario) == []
    # Skip the clamp by mutating a record directly, as a buggy update would.
    scenario.victim.trust.record_of("edge1").value = 1.7
    scenario.nodes["relay"].recommendations.record_of("edge2").value = float("nan")
    violations = check_trust_bounds(scenario)
    assert {v.node for v in violations} == {"victim", "relay"}
    assert all(v.invariant == "trust-bounds" for v in violations)


# ------------------------------------------------------- duplicate suppression
def test_duplicate_suppression_checker_flags_double_relay():
    scenario = build_canonical_scenario(seed=11)
    scenario.warm_up(30.0)
    assert check_duplicate_suppression(scenario) == []
    from repro.logs.records import LogCategory

    olsr = scenario.nodes["relay"].olsr
    for _ in range(2):
        olsr.log.log(99.0, LogCategory.FORWARD, "RELAYED",
                     origin="victim", seq=1234, ttl=3, last_hop="victim")
    violations = check_duplicate_suppression(scenario)
    assert len(violations) == 1
    assert violations[0].node == "relay"
    assert "seq 1234" in violations[0].detail


# ------------------------------------------------------------------- auditor
def test_auditor_end_to_end_on_clean_scenario():
    scenario = build_canonical_scenario(seed=11)
    auditor = ScenarioAuditor(scenario)
    scenario.warm_up(45.0)
    scenario.run_detection_cycle()
    assert auditor.check_all() == []


# -------------------------------------------------------------- differential
def test_differential_run_on_paper_setting_agrees():
    result = run_differential(_FAST_PARAMS, seed=23)
    assert result.ok, [str(c.metric) for c in result.disagreements()]
    assert set(c.metric for c in result.comparisons) == set(DEFAULT_TOLERANCES)


def test_differential_reuses_provided_netsim_result():
    config = scenario_config_from_params(_FAST_PARAMS, 23)
    netsim = run_netsim_cell(config, _FAST_PARAMS)
    result = run_differential(_FAST_PARAMS, seed=23, netsim_result=netsim)
    assert result.netsim_metrics == summary_metrics(netsim)


def test_compare_metrics_flags_disagreement_and_incomparability():
    oracle = {"final_attacker_trust": 0.05, "investigated": 1.0}
    netsim = {"final_attacker_trust": 0.95, "investigated": 1.0}
    comparisons = compare_metrics(oracle, netsim,
                                  tolerances={"final_attacker_trust": 0.6})
    assert len(comparisons) == 1
    assert comparisons[0].comparable
    assert not comparisons[0].within
    assert comparisons[0].difference == pytest.approx(0.9)

    # One side never investigated: incomparable, hence not a disagreement.
    silent = {"final_attacker_trust": 0.4, "investigated": 0.0}
    comparisons = compare_metrics(oracle, silent,
                                  tolerances={"final_attacker_trust": 0.6})
    assert not comparisons[0].comparable
    assert comparisons[0].within
    assert comparisons[0].difference is None


def test_broken_trust_dynamics_cross_the_declared_tolerances():
    """The sharp end of the harness: a wrong alpha_harmful (the canonical
    refactor bug) must produce a detected disagreement."""
    from dataclasses import replace

    config = scenario_config_from_params(_FAST_PARAMS, 23)
    netsim = summary_metrics(run_netsim_cell(config, _FAST_PARAMS))
    assert netsim["first_guilty_step_attacker"] is not None
    broken = config.with_overrides(trust=replace(config.trust, alpha_harmful=0.5))
    oracle = summary_metrics(run_oracle_cell(broken))
    comparisons = compare_metrics(oracle, netsim)
    assert any(not c.within for c in comparisons)


def test_summary_metrics_first_steps_condition_on_verdict_sign():
    config = scenario_config_from_params(_FAST_PARAMS, 23)
    metrics = summary_metrics(run_oracle_cell(config))
    # The oracle investigates every round while the attack is active, and
    # the attacker's trust falls on the first guilty verdict.
    assert metrics["investigated"] == 1.0
    assert metrics["first_guilty_step_attacker"] < 0.0
    assert 0.0 <= metrics["final_attacker_trust"] <= 1.0


# -------------------------------------------------------------------- fuzzing
def test_validate_corpus_small_budget_is_clean():
    report = validate_corpus(3)
    assert report.ok
    assert report.samples == 3
    assert report.invariant_runs == 3
    assert report.differential_runs >= 0
    text = report.format_report()
    assert "issues:                0" in text
    assert "agree within tolerances" in text


def test_validation_report_formats_issues_with_reproducers():
    from repro.validation.fuzz import ValidationIssue

    report = ValidationReport(samples=1, invariant_runs=1, issues=[
        ValidationIssue(kind="invariant", sample="fuzz[0]/x/seed=1",
                        detail="[trust-bounds] n00: trust 1.5",
                        reproducer="python -m repro.experiments run ..."),
    ])
    assert not report.ok
    text = report.format_report()
    assert "invariant failure in fuzz[0]/x/seed=1" in text
    assert "reproduce: python -m repro.experiments run ..." in text


def test_minimize_params_keeps_only_failure_preserving_shrinks():
    params = {"total_nodes": 16, "liar_count": 3, "loss_probability": 0.1,
              "loss_model": "bernoulli", "mobility_model": "rpgm",
              "max_speed": 2.0, "threat": "liar-clique"}

    def still_fails(candidate):
        # The "bug" needs liars and mobility; everything else can shrink.
        return candidate["liar_count"] > 0 and candidate["mobility_model"] != "static"

    minimized = minimize_params(params, seed=1, still_fails=still_fails)
    assert minimized["loss_probability"] == 0.0      # shrunk
    assert minimized["threat"] == "link-spoofing"    # shrunk
    assert minimized["total_nodes"] == 8             # shrunk
    assert minimized["liar_count"] == 3              # kept: removal loses the bug
    assert minimized["mobility_model"] == "rpgm"     # kept


def test_minimize_params_survives_crashing_candidates():
    params = {"total_nodes": 16, "liar_count": 3}

    def still_fails(candidate):
        if candidate["total_nodes"] == 8:
            raise RuntimeError("builder exploded")
        return True

    minimized = minimize_params(params, seed=1, still_fails=still_fails)
    assert minimized["total_nodes"] == 16  # the crashing shrink was discarded
    assert minimized["liar_count"] == 0


# ------------------------------------------------------------------------ CLI
def test_cli_validate_smoke(tmp_path, capsys):
    from repro.experiments.__main__ import main

    out = tmp_path / "validate.txt"
    assert main(["validate", "--seeds", "2", "--output", str(out)]) == 0
    assert "fuzzed samples:        2" in out.read_text()
    capsys.readouterr()


def test_cli_validate_rejects_bad_arguments(capsys):
    from repro.experiments.__main__ import main

    assert main(["validate", "--seeds", "1", "--profiles", "typo"]) == 2
    assert "unknown scenario profile" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["validate", "--seeds", "0"])
    capsys.readouterr()
