"""Scheduler-swap parity: the timer-wheel engine is a pure optimisation.

The timer-wheel :class:`repro.netsim.engine.Simulator` must execute events
in exactly the order the PR 8 heap engine (kept as
:class:`repro.netsim.engine.HeapSimulator`) would — same ``(time,
sequence)`` FIFO, same clock positions, same periodic-chain behaviour —
because the whole campaign/figure pipeline's byte-identity rests on it.

Two layers of evidence:

* a property test replaying 50 seeded random schedules (one-shots, nested
  reschedules, cancellations, jittered periodic chains, varied wheel
  geometry) through both engines and comparing the full traces;
* a campaign cell executed under each engine, comparing the stored row
  JSON byte for byte.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.netsim.engine import HeapSimulator, Simulator

#: Wheel geometries cycled by seed: coarse/fine quanta, tiny wheels that
#: force frequent rollover and overflow migration, and the default.
_GEOMETRIES = [
    {},
    {"wheel_quantum": 1.0, "wheel_slots": 4},
    {"wheel_quantum": 0.25, "wheel_slots": 16},
    {"wheel_quantum": 0.01, "wheel_slots": 64},
    {"wheel_quantum": 2.0, "wheel_slots": 8, "compaction_threshold": 8},
]


def _build_ops(seed: int):
    """One frozen random schedule: engine-independent operation list."""
    rng = random.Random(seed * 7919 + 13)
    ops = []
    for i in range(50):
        kind = rng.random()
        t = rng.uniform(0.0, 40.0)
        if kind < 0.45:
            ops.append(("at", t, i))
        elif kind < 0.65:
            ops.append(("nested", t, rng.uniform(0.0, 10.0), i))
        elif kind < 0.80:
            ops.append(("periodic", rng.uniform(0.3, 4.0), t * 0.25,
                        rng.random() < 0.5, i))
        else:
            ops.append(("cancel", t, i))
    return ops


def _trace(sim, ops):
    out = []
    jitter_rng = random.Random(4242)

    def record(label):
        out.append((sim.now, label))

    def nested(label, delay):
        out.append((sim.now, label))
        sim.schedule(delay, record, ("nested-child", label))

    cancel_handles = []
    for op in ops:
        if op[0] == "at":
            sim.schedule_at(op[1], record, ("at", op[2]))
        elif op[0] == "nested":
            sim.schedule_at(op[1], nested, ("nested", op[3]), op[2])
        elif op[0] == "periodic":
            _, interval, start_delay, jittered, i = op
            if jittered:
                sim.schedule_periodic(interval, record, ("periodic", i),
                                      start_delay=start_delay,
                                      jitter=0.3 * interval, rng=jitter_rng)
            else:
                sim.schedule_periodic(interval, record, ("periodic", i),
                                      start_delay=start_delay)
        else:
            cancel_handles.append(sim.schedule_at(op[1], record,
                                                  ("cancelled", op[2])))
    # Cancel in a deterministic but scattered pattern, including some chains.
    for index, handle in enumerate(cancel_handles):
        if index % 3 != 2:
            handle.cancel()
    sim.run(until=60.0)
    out.append(("final-now", sim.now))
    out.append(("processed", sim.processed_events))
    return out


@pytest.mark.parametrize("seed", range(50))
def test_random_schedules_trace_identical_to_heap_engine(seed):
    ops = _build_ops(seed)
    wheel = Simulator(**_GEOMETRIES[seed % len(_GEOMETRIES)])
    heap = HeapSimulator()
    assert _trace(wheel, ops) == _trace(heap, ops)


def test_campaign_row_json_identical_between_engines(monkeypatch):
    """A full campaign cell run under the heap engine and the timer-wheel
    engine persists byte-identical row JSON."""
    import repro.netsim.network as network_module
    from repro.experiments.campaign import CampaignSpec, execute_spec

    spec = CampaignSpec(
        run_id="engine-parity", seed=11, node_count=16, liar_fraction=0.25,
        loss_model="distance", loss_probability=0.8, max_speed=6.0,
        attack_variant="false_existing_link", warmup=15.0, cycles=2,
    )

    rows = {}
    for engine_cls in (Simulator, HeapSimulator):
        monkeypatch.setattr(network_module, "Simulator", engine_cls)
        rows[engine_cls] = json.dumps(execute_spec(spec).as_row(),
                                      sort_keys=True)
    assert rows[Simulator] == rows[HeapSimulator]


def test_mobile_lossy_cell_rows_identical_between_engines(monkeypatch):
    """Same check on a mobile + lossy cell, where mobility ticks, collision
    windows and AODV-style cancellations stress the wheel harder."""
    import repro.netsim.network as network_module
    from repro.experiments.campaign import CampaignSpec, execute_spec

    spec = CampaignSpec(
        run_id="engine-parity-mobile", seed=23, node_count=20,
        liar_fraction=0.2, loss_model="bernoulli", loss_probability=0.2,
        max_speed=8.0, attack_variant="false_existing_link",
        warmup=12.0, cycles=2,
    )

    rows = {}
    for engine_cls in (Simulator, HeapSimulator):
        monkeypatch.setattr(network_module, "Simulator", engine_cls)
        rows[engine_cls] = json.dumps(execute_spec(spec).as_row(),
                                      sort_keys=True)
    assert rows[Simulator] == rows[HeapSimulator]
