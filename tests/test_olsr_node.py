"""Integration tests for the OLSR node state machine on simulated networks."""

from __future__ import annotations

import pytest

from repro.logs.records import LogCategory
from repro.olsr.constants import Willingness
from repro.olsr.node import OlsrConfig, OlsrNode
from tests.conftest import CHAIN_POSITIONS, STAR_POSITIONS, make_network, make_olsr_network


CONVERGENCE_TIME = 30.0


def test_chain_neighbor_discovery(chain_network):
    network, nodes = chain_network
    network.run(until=CONVERGENCE_TIME)
    assert nodes["A"].symmetric_neighbors() == {"B"}
    assert nodes["B"].symmetric_neighbors() == {"A", "C"}
    assert nodes["C"].symmetric_neighbors() == {"B", "D"}
    assert nodes["D"].symmetric_neighbors() == {"C"}


def test_chain_two_hop_discovery(chain_network):
    network, nodes = chain_network
    network.run(until=CONVERGENCE_TIME)
    assert nodes["A"].two_hop_neighbors() == {"C"}
    assert nodes["B"].two_hop_neighbors() == {"D"}


def test_chain_mpr_selection(chain_network):
    network, nodes = chain_network
    network.run(until=CONVERGENCE_TIME)
    # A must select B (its only route to C); D must select C.
    assert nodes["A"].mpr_set == {"B"}
    assert nodes["D"].mpr_set == {"C"}
    # B and C learn they were selected.
    assert "A" in nodes["B"].mpr_selector_set.addresses()
    assert "D" in nodes["C"].mpr_selector_set.addresses()


def test_chain_full_routing_convergence(chain_network):
    network, nodes = chain_network
    network.run(until=60.0)
    for node_id, node in nodes.items():
        others = set(CHAIN_POSITIONS) - {node_id}
        assert node.routing_table.destinations() >= others, (
            f"{node_id} is missing routes to {others - node.routing_table.destinations()}"
        )
    assert nodes["A"].routing_table.distance("D") == 3
    assert nodes["A"].routing_table.next_hop("D") == "B"
    assert nodes["D"].routing_table.next_hop("A") == "C"


def test_star_hub_is_sole_mpr(star_network):
    network, nodes = star_network
    network.run(until=CONVERGENCE_TIME)
    for leaf in ("L1", "L2", "L3", "L4"):
        assert nodes[leaf].mpr_set == {"HUB"}
    assert nodes["HUB"].mpr_selector_set.addresses() == {"L1", "L2", "L3", "L4"}
    # The hub needs no MPR at all: every node is its 1-hop neighbour.
    assert nodes["HUB"].mpr_set == set()


def test_star_leaf_routes_via_hub(star_network):
    network, nodes = star_network
    network.run(until=60.0)
    assert nodes["L1"].routing_table.next_hop("L3") == "HUB"
    assert nodes["L1"].routing_table.distance("L3") == 2


def test_node_emits_audit_logs(chain_network):
    network, nodes = chain_network
    network.run(until=CONVERGENCE_TIME)
    log = nodes["A"].log
    categories = {record.category for record in log}
    assert LogCategory.MESSAGE_TX in categories
    assert LogCategory.MESSAGE_RX in categories
    assert LogCategory.LINK in categories
    assert LogCategory.NEIGHBOR in categories
    assert LogCategory.MPR in categories
    assert LogCategory.ROUTE in categories


def test_hello_logs_contain_advertised_neighbors(chain_network):
    network, nodes = chain_network
    network.run(until=CONVERGENCE_TIME)
    hello_rx = [r for r in nodes["A"].log.by_category(LogCategory.MESSAGE_RX)
                if r.event == "HELLO" and r.get("origin") == "B"]
    assert hello_rx, "A never logged a HELLO from B"
    last = hello_rx[-1]
    assert set(last.get_list("sym_neighbors")) == {"A", "C"}


def test_tc_flooding_reaches_far_nodes(chain_network):
    network, nodes = chain_network
    network.run(until=60.0)
    # D's TC messages must have reached A (through the MPR chain C, B).
    tc_from_d = [r for r in nodes["A"].log.by_category(LogCategory.MESSAGE_RX)
                 if r.event == "TC" and r.get("origin") in ("C", "D")]
    assert tc_from_d


def test_forwarding_only_by_mprs(star_network):
    network, nodes = star_network
    network.run(until=60.0)
    # Leaves are nobody's MPR, so they must never relay.
    for leaf in ("L1", "L2", "L3", "L4"):
        assert nodes[leaf].stats.messages_forwarded == 0
    # The hub is everyone's MPR; when leaves emit TC (they are MPRs of nobody
    # so they may not), at least the hub's own TCs exist.  Check the hub relays
    # nothing it should not, i.e. no relayed records without being selected.
    assert nodes["HUB"].mpr_selector_set.addresses() == {"L1", "L2", "L3", "L4"}


def test_link_expiry_after_node_failure(chain_network):
    network, nodes = chain_network
    network.run(until=CONVERGENCE_TIME)
    assert "D" in nodes["C"].symmetric_neighbors()
    network.fail_node("D")
    network.run(until=CONVERGENCE_TIME + 30.0)
    assert "D" not in nodes["C"].symmetric_neighbors()
    assert "D" not in nodes["C"].routing_table.destinations()
    # A eventually loses its route to D as well.
    assert "D" not in nodes["A"].routing_table.destinations()


def test_node_restart_recovers_neighborhood(chain_network):
    network, nodes = chain_network
    network.run(until=CONVERGENCE_TIME)
    network.fail_node("B")
    network.run(until=CONVERGENCE_TIME + 30.0)
    assert nodes["A"].symmetric_neighbors() == set()
    network.recover_node("B")
    network.run(until=CONVERGENCE_TIME + 70.0)
    assert nodes["A"].symmetric_neighbors() == {"B"}


def test_data_plane_delivery_over_multiple_hops(chain_network):
    network, nodes = chain_network
    network.run(until=60.0)
    delivered = []
    nodes["D"].data_handlers.append(lambda packet, last_hop: delivered.append(packet))
    assert nodes["A"].send_data("D", {"msg": "ping"})
    network.run(until=65.0)
    assert len(delivered) == 1
    packet = delivered[0]
    assert packet.source == "A"
    assert packet.hops[0] == "A"
    assert "B" in packet.hops and "C" in packet.hops


def test_data_plane_no_route_returns_false(chain_network):
    network, nodes = chain_network
    network.run(until=10.0)
    assert nodes["A"].send_data("ghost", "x") is False


def test_willingness_never_node_not_selected_as_mpr():
    positions = dict(CHAIN_POSITIONS)
    network = make_network(positions)
    config_never = OlsrConfig(willingness=Willingness.WILL_NEVER)
    nodes = {}
    for node_id in positions:
        config = config_never if node_id == "B" else None
        nodes[node_id] = OlsrNode(node_id, network, config=config, seed=1)
    for node in nodes.values():
        node.start()
    network.run(until=60.0)
    assert "B" not in nodes["A"].mpr_set


def test_stats_track_sent_and_received(chain_network):
    network, nodes = chain_network
    network.run(until=CONVERGENCE_TIME)
    stats = nodes["B"].stats
    assert stats.hello_sent >= 10
    assert stats.hello_received >= 10
    assert stats.messages_received >= stats.hello_received


def test_describe_summarises_state(chain_network):
    network, nodes = chain_network
    network.run(until=CONVERGENCE_TIME)
    description = nodes["B"].describe()
    assert description["node"] == "B"
    assert set(description["symmetric_neighbors"]) == {"A", "C"}
    assert description["routes"] >= 2
