"""Tests for the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


@pytest.mark.parametrize("module_name", [
    "repro.core", "repro.trust", "repro.olsr", "repro.netsim", "repro.logs",
    "repro.attacks", "repro.baselines", "repro.metrics", "repro.experiments",
])
def test_subpackage_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_quickstart_snippet_from_readme_works():
    result = repro.run_figure1(repro.ScenarioConfig(seed=1, rounds=5))
    rows = result.rows()
    assert rows and all("final_trust" in row for row in rows)


def test_top_level_trust_primitives():
    manager = repro.TrustManager("me", repro.TrustParameters())
    assert 0.0 <= manager.trust_of("anyone") <= 1.0
    interval = repro.confidence_interval([1.0, -1.0], center=0.0)
    assert interval.margin > 0
    assert repro.decide(-0.95, 0.05, gamma=0.6) == repro.DecisionOutcome.INTRUDER


def test_public_docstrings_on_key_classes():
    for obj in (repro.DetectorNode, repro.TrustManager, repro.RoundBasedExperiment,
                repro.ScenarioConfig, repro.aggregate_detection, repro.decide):
        assert obj.__doc__, f"{obj!r} lacks a docstring"
