"""Tests for the detection aggregate (Eq. 8) and the decision rule (Eq. 10)."""

from __future__ import annotations

import pytest

from repro.core.decision import (
    ANSWER_CONFIRM,
    ANSWER_DENY,
    ANSWER_MISSING,
    DecisionOutcome,
    aggregate_detection,
    decide,
    detection_weights,
    evaluate_investigation,
    unweighted_vote,
)
from repro.core.evidence import (
    DetectionEvidence,
    EvidenceType,
    SuspicionLevel,
    e1,
    e2,
    e3,
    e4,
    e5,
)


# ----------------------------------------------------------------- evidences
def test_evidence_builders_and_levels():
    assert e1("a", "i", 1.0, replaced="m").level == SuspicionLevel.SUSPICIOUS
    assert e2("a", "i", 1.0, reason="drop").level == SuspicionLevel.CRITICAL
    assert e3("a", "i", 1.0, isolated_node="x").level == SuspicionLevel.INFORMATIONAL
    assert e4("a", "i", 1.0, denied_by="s").confirms_attack
    assert e5("a", "i", 1.0, advertised="x").confirms_attack


def test_triggering_vs_confirming_evidence():
    assert e1("a", "i", 1.0, "m").triggers_investigation
    assert e2("a", "i", 1.0, "drop").triggers_investigation
    assert not e3("a", "i", 1.0, "x").triggers_investigation
    assert not e4("a", "i", 1.0, "s").triggers_investigation


def test_explicit_suspicion_overrides_default():
    evidence = DetectionEvidence(
        evidence_type=EvidenceType.E3_SOLE_PROVIDER,
        observer="a", suspect="i", time=0.0,
        suspicion=SuspicionLevel.CRITICAL,
    )
    assert evidence.level == SuspicionLevel.CRITICAL


# ---------------------------------------------------------------- weights
def test_detection_weights_normalisation():
    weights = detection_weights([0.5, 0.5])
    assert weights == [1.0, 1.0]
    assert detection_weights([0.0, 0.0]) == [0.0, 0.0]
    assert detection_weights([]) == []


def test_detection_weights_subnormal_total_is_zero_trust():
    # 1/total overflows to inf for subnormal totals; such trust is
    # indistinguishable from zero and must not poison the aggregate with NaN.
    subnormal = 2.225073858507203e-309
    assert detection_weights([subnormal, 0.0]) == [0.0, 0.0]
    value = aggregate_detection({"s0": -1.0, "s1": -1.0}, {"s0": subnormal})
    assert value == 0.0


# ---------------------------------------------------------------- Eq. 8
def test_aggregate_all_deny_equal_trust_is_minus_one():
    answers = {f"s{i}": ANSWER_DENY for i in range(5)}
    trust = {f"s{i}": 0.4 for i in range(5)}
    assert aggregate_detection(answers, trust) == pytest.approx(-1.0)


def test_aggregate_all_confirm_equal_trust_is_plus_one():
    answers = {f"s{i}": ANSWER_CONFIRM for i in range(5)}
    trust = {f"s{i}": 0.4 for i in range(5)}
    assert aggregate_detection(answers, trust) == pytest.approx(1.0)


def test_aggregate_missing_answers_count_zero():
    answers = {"s1": ANSWER_DENY, "s2": ANSWER_MISSING}
    trust = {"s1": 0.5, "s2": 0.5}
    assert aggregate_detection(answers, trust) == pytest.approx(-0.5)


def test_aggregate_is_trust_weighted():
    answers = {"honest": ANSWER_DENY, "liar": ANSWER_CONFIRM}
    balanced = aggregate_detection(answers, {"honest": 0.5, "liar": 0.5})
    skewed = aggregate_detection(answers, {"honest": 0.9, "liar": 0.1})
    assert balanced == pytest.approx(0.0)
    assert skewed < -0.5


def test_aggregate_unknown_responder_trust_defaults_to_zero():
    answers = {"s1": ANSWER_DENY, "stranger": ANSWER_CONFIRM}
    assert aggregate_detection(answers, {"s1": 0.5}) == pytest.approx(-1.0)


def test_aggregate_negative_trust_clamped_to_zero_weight():
    answers = {"s1": ANSWER_DENY, "weird": ANSWER_CONFIRM}
    result = aggregate_detection(answers, {"s1": 0.5, "weird": -0.5})
    assert result == pytest.approx(-1.0)


def test_aggregate_rejects_out_of_range_answers():
    with pytest.raises(ValueError):
        aggregate_detection({"s1": 2.0}, {"s1": 0.5})


def test_aggregate_zero_total_trust_is_zero():
    answers = {"s1": ANSWER_DENY}
    assert aggregate_detection(answers, {"s1": 0.0}) == 0.0


def test_unweighted_vote_mean():
    assert unweighted_vote({"a": 1.0, "b": -1.0, "c": -1.0}) == pytest.approx(-1 / 3)
    assert unweighted_vote({}) == 0.0


# ---------------------------------------------------------------- Eq. 10
def test_decide_well_behaving():
    assert decide(0.9, margin=0.1, gamma=0.6) == DecisionOutcome.WELL_BEHAVING


def test_decide_intruder():
    assert decide(-0.9, margin=0.1, gamma=0.6) == DecisionOutcome.INTRUDER


def test_decide_unrecognized_when_interval_straddles_gamma():
    assert decide(-0.7, margin=0.3, gamma=0.6) == DecisionOutcome.UNRECOGNIZED
    assert decide(0.7, margin=0.3, gamma=0.6) == DecisionOutcome.UNRECOGNIZED
    assert decide(0.0, margin=0.0, gamma=0.6) == DecisionOutcome.UNRECOGNIZED


def test_decide_gamma_validation():
    with pytest.raises(ValueError):
        decide(0.5, 0.1, gamma=0.0)
    with pytest.raises(ValueError):
        decide(0.5, 0.1, gamma=1.5)


def test_wider_margin_requires_stronger_detect():
    assert decide(-0.7, margin=0.05, gamma=0.6) == DecisionOutcome.INTRUDER
    assert decide(-0.7, margin=0.2, gamma=0.6) == DecisionOutcome.UNRECOGNIZED


# ------------------------------------------------------ evaluate_investigation
def test_evaluate_investigation_intruder_case():
    answers = {f"s{i}": ANSWER_DENY for i in range(10)}
    trust = {f"s{i}": 0.5 for i in range(10)}
    decision = evaluate_investigation("i", answers, trust, gamma=0.6)
    assert decision.outcome == DecisionOutcome.INTRUDER
    assert decision.detect_value == pytest.approx(-1.0)
    assert decision.is_final
    assert decision.suspect == "i"


def test_evaluate_investigation_well_behaving_case():
    answers = {f"s{i}": ANSWER_CONFIRM for i in range(10)}
    trust = {f"s{i}": 0.5 for i in range(10)}
    decision = evaluate_investigation("i", answers, trust, gamma=0.6)
    assert decision.outcome == DecisionOutcome.WELL_BEHAVING


def test_evaluate_investigation_mixed_low_trust_liars_still_concludes():
    answers = {f"h{i}": ANSWER_DENY for i in range(10)}
    answers.update({f"l{i}": ANSWER_CONFIRM for i in range(4)})
    trust = {f"h{i}": 0.6 for i in range(10)}
    trust.update({f"l{i}": 0.02 for i in range(4)})
    decision = evaluate_investigation("i", answers, trust, gamma=0.6)
    assert decision.detect_value < -0.8
    assert decision.outcome == DecisionOutcome.INTRUDER


def test_evaluate_investigation_mixed_equal_trust_is_unrecognized():
    answers = {"h1": ANSWER_DENY, "h2": ANSWER_DENY, "l1": ANSWER_CONFIRM, "l2": ANSWER_CONFIRM}
    trust = {k: 0.4 for k in answers}
    decision = evaluate_investigation("i", answers, trust, gamma=0.6)
    assert decision.outcome == DecisionOutcome.UNRECOGNIZED
    assert not decision.is_final


def test_evaluate_investigation_unweighted_mode():
    answers = {"h1": ANSWER_DENY, "h2": ANSWER_DENY, "l1": ANSWER_CONFIRM}
    trust = {"h1": 0.9, "h2": 0.9, "l1": 0.0}
    weighted = evaluate_investigation("i", answers, trust, use_trust_weighting=True)
    unweighted = evaluate_investigation("i", answers, trust, use_trust_weighting=False)
    assert weighted.detect_value < unweighted.detect_value
    assert unweighted.detect_value == pytest.approx(-1 / 3)


def test_evaluate_investigation_records_inputs():
    answers = {"s1": ANSWER_DENY}
    trust = {"s1": 0.5}
    decision = evaluate_investigation("i", answers, trust)
    assert decision.answers == answers
    assert decision.trust_used == {"s1": 0.5}
    assert decision.interval.sample_size == 1
