"""Tests for placement and mobility models."""

from __future__ import annotations

import random

import pytest

from repro.netsim.mobility import (
    GaussMarkovMobility,
    GridPlacement,
    RandomWalkMobility,
    RandomWaypointMobility,
    ReferencePointGroupMobility,
    StaticPlacement,
    UniformRandomPlacement,
    chain_positions,
    ring_positions,
)
from repro.netsim.network import Network
from repro.netsim.engine import Simulator


NODE_IDS = [f"n{i}" for i in range(9)]


def test_static_placement_returns_given_positions():
    placement = StaticPlacement({"a": (1.0, 2.0), "b": (3.0, 4.0)})
    assert placement.place(["a", "b"]) == {"a": (1.0, 2.0), "b": (3.0, 4.0)}


def test_static_placement_missing_node_raises():
    placement = StaticPlacement({"a": (1.0, 2.0)})
    with pytest.raises(ValueError):
        placement.place(["a", "b"])


def test_grid_placement_spacing_and_shape():
    placement = GridPlacement(spacing=100.0)
    positions = placement.place(NODE_IDS)
    assert len(positions) == 9
    assert positions["n0"] == (0.0, 0.0)
    assert positions["n1"] == (100.0, 0.0)
    assert positions["n3"] == (0.0, 100.0)


def test_grid_placement_explicit_columns():
    placement = GridPlacement(spacing=10.0, columns=2)
    positions = placement.place(["a", "b", "c"])
    assert positions["c"] == (0.0, 10.0)


def test_uniform_random_placement_within_bounds():
    placement = UniformRandomPlacement(width=50.0, height=20.0, rng=random.Random(5))
    positions = placement.place(NODE_IDS)
    for x, y in positions.values():
        assert 0.0 <= x <= 50.0
        assert 0.0 <= y <= 20.0


def test_uniform_random_placement_deterministic_with_seed():
    a = UniformRandomPlacement(rng=random.Random(9)).place(NODE_IDS)
    b = UniformRandomPlacement(rng=random.Random(9)).place(NODE_IDS)
    assert a == b


def test_random_waypoint_moves_nodes_over_time():
    mobility = RandomWaypointMobility(width=500.0, height=500.0, min_speed=10.0,
                                      max_speed=20.0, rng=random.Random(3))
    network = Network(simulator=Simulator(), mobility=mobility, seed=3)
    network.add_nodes(["a", "b"])
    before = dict(network.positions)
    network.run(until=20.0)
    after = dict(network.positions)
    assert any(before[n] != after[n] for n in before)


def test_random_waypoint_stays_within_bounds():
    mobility = RandomWaypointMobility(width=100.0, height=100.0, min_speed=20.0,
                                      max_speed=40.0, rng=random.Random(11))
    network = Network(simulator=Simulator(), mobility=mobility, seed=11)
    network.add_nodes(NODE_IDS)
    network.run(until=60.0)
    for x, y in network.positions.values():
        assert -1e-6 <= x <= 100.0 + 1e-6
        assert -1e-6 <= y <= 100.0 + 1e-6


def test_random_walk_moves_and_stays_in_bounds():
    mobility = RandomWalkMobility(width=50.0, height=50.0, max_step=5.0,
                                  rng=random.Random(2))
    network = Network(simulator=Simulator(), mobility=mobility, seed=2)
    network.add_nodes(["a", "b", "c"])
    before = dict(network.positions)
    network.run(until=30.0)
    after = dict(network.positions)
    assert any(before[n] != after[n] for n in before)
    for x, y in after.values():
        assert 0.0 <= x <= 50.0
        assert 0.0 <= y <= 50.0


def test_ring_positions_equidistant_from_center():
    positions = ring_positions(["a", "b", "c", "d"], radius=100.0, center=(10.0, 10.0))
    for x, y in positions.values():
        assert ((x - 10.0) ** 2 + (y - 10.0) ** 2) ** 0.5 == pytest.approx(100.0)


def test_chain_positions_spacing():
    positions = chain_positions(["a", "b", "c"], spacing=75.0)
    assert positions == {"a": (0.0, 0.0), "b": (75.0, 0.0), "c": (150.0, 0.0)}


def test_gauss_markov_moves_and_stays_in_bounds():
    mobility = GaussMarkovMobility(width=200.0, height=200.0, mean_speed=5.0,
                                   rng=random.Random(4))
    network = Network(simulator=Simulator(), mobility=mobility, seed=4)
    network.add_nodes(NODE_IDS)
    before = dict(network.positions)
    network.run(until=60.0)
    after = dict(network.positions)
    assert any(before[n] != after[n] for n in before)
    for x, y in after.values():
        assert 0.0 <= x <= 200.0
        assert 0.0 <= y <= 200.0


def test_gauss_markov_is_deterministic_with_seed():
    def run():
        mobility = GaussMarkovMobility(width=300.0, height=300.0,
                                       rng=random.Random(17))
        network = Network(simulator=Simulator(), mobility=mobility, seed=17)
        network.add_nodes(NODE_IDS)
        network.run(until=25.0)
        return dict(network.positions)

    assert run() == run()


def test_gauss_markov_motion_is_temporally_correlated():
    """With alpha close to 1, consecutive steps point the same way —
    the property that distinguishes Gauss-Markov from a random walk."""
    mobility = GaussMarkovMobility(width=10_000.0, height=10_000.0,
                                   mean_speed=5.0, alpha=0.95,
                                   speed_stddev=0.1, direction_stddev=0.05,
                                   rng=random.Random(6))
    network = Network(simulator=Simulator(), mobility=mobility, seed=6)
    network.add_nodes(["a"])
    # Re-centre so edge reflections cannot interfere with the measurement.
    network.set_position("a", (5_000.0, 5_000.0))
    positions = []
    for step in range(1, 11):
        network.run(until=float(step))
        positions.append(network.positions["a"])
    steps = [(x2 - x1, y2 - y1) for (x1, y1), (x2, y2)
             in zip(positions, positions[1:])]
    dots = [
        ax * bx + ay * by
        for (ax, ay), (bx, by) in zip(steps, steps[1:])
    ]
    assert all(dot > 0.0 for dot in dots)  # never reverses within 10 steps


def test_rpgm_members_follow_their_reference_point():
    mobility = ReferencePointGroupMobility(width=1000.0, height=1000.0,
                                           group_count=2, member_radius=80.0,
                                           min_speed=5.0, max_speed=10.0,
                                           rng=random.Random(8))
    network = Network(simulator=Simulator(), mobility=mobility, seed=8)
    network.add_nodes(NODE_IDS)
    network.run(until=40.0)
    # Every member sits inside its group's disc (clamped at the edges).
    for node_id, (x, y) in network.positions.items():
        group = mobility._group_of[node_id]
        rx, ry = mobility._references[group]
        ex = min(max(rx + mobility._offsets[node_id][0], 0.0), 1000.0)
        ey = min(max(ry + mobility._offsets[node_id][1], 0.0), 1000.0)
        assert (x, y) == (ex, ey)
        assert 0.0 <= x <= 1000.0 and 0.0 <= y <= 1000.0


def test_rpgm_groups_stay_clustered_while_moving():
    mobility = ReferencePointGroupMobility(width=2000.0, height=2000.0,
                                           group_count=3, member_radius=50.0,
                                           min_speed=2.0, max_speed=6.0,
                                           rng=random.Random(12))
    network = Network(simulator=Simulator(), mobility=mobility, seed=12)
    network.add_nodes([f"m{i}" for i in range(12)])
    before = dict(network.positions)
    network.run(until=50.0)
    after = dict(network.positions)
    assert any(before[n] != after[n] for n in before)
    # Intra-group spread is bounded by the disc diameter.
    groups = {}
    for node_id, position in after.items():
        groups.setdefault(mobility._group_of[node_id], []).append(position)
    for members in groups.values():
        xs = [p[0] for p in members]
        ys = [p[1] for p in members]
        assert max(xs) - min(xs) <= 100.0 + 1e-6
        assert max(ys) - min(ys) <= 100.0 + 1e-6


def test_static_install_is_noop():
    placement = StaticPlacement({"a": (0.0, 0.0)})
    network = Network(simulator=Simulator(), mobility=placement)
    network.add_nodes(["a"])
    network.run(until=10.0)
    assert network.positions["a"] == (0.0, 0.0)
