"""Tests for placement and mobility models."""

from __future__ import annotations

import random

import pytest

from repro.netsim.mobility import (
    GaussMarkovMobility,
    GridPlacement,
    RandomWalkMobility,
    RandomWaypointMobility,
    ReferencePointGroupMobility,
    StaticPlacement,
    UniformRandomPlacement,
    chain_positions,
    ring_positions,
)
from repro.netsim.network import Network
from repro.netsim.engine import Simulator


NODE_IDS = [f"n{i}" for i in range(9)]


def test_static_placement_returns_given_positions():
    placement = StaticPlacement({"a": (1.0, 2.0), "b": (3.0, 4.0)})
    assert placement.place(["a", "b"]) == {"a": (1.0, 2.0), "b": (3.0, 4.0)}


def test_static_placement_missing_node_raises():
    placement = StaticPlacement({"a": (1.0, 2.0)})
    with pytest.raises(ValueError):
        placement.place(["a", "b"])


def test_grid_placement_spacing_and_shape():
    placement = GridPlacement(spacing=100.0)
    positions = placement.place(NODE_IDS)
    assert len(positions) == 9
    assert positions["n0"] == (0.0, 0.0)
    assert positions["n1"] == (100.0, 0.0)
    assert positions["n3"] == (0.0, 100.0)


def test_grid_placement_explicit_columns():
    placement = GridPlacement(spacing=10.0, columns=2)
    positions = placement.place(["a", "b", "c"])
    assert positions["c"] == (0.0, 10.0)


def test_uniform_random_placement_within_bounds():
    placement = UniformRandomPlacement(width=50.0, height=20.0, rng=random.Random(5))
    positions = placement.place(NODE_IDS)
    for x, y in positions.values():
        assert 0.0 <= x <= 50.0
        assert 0.0 <= y <= 20.0


def test_uniform_random_placement_deterministic_with_seed():
    a = UniformRandomPlacement(rng=random.Random(9)).place(NODE_IDS)
    b = UniformRandomPlacement(rng=random.Random(9)).place(NODE_IDS)
    assert a == b


def test_random_waypoint_moves_nodes_over_time():
    mobility = RandomWaypointMobility(width=500.0, height=500.0, min_speed=10.0,
                                      max_speed=20.0, rng=random.Random(3))
    network = Network(simulator=Simulator(), mobility=mobility, seed=3)
    network.add_nodes(["a", "b"])
    before = dict(network.positions)
    network.run(until=20.0)
    after = dict(network.positions)
    assert any(before[n] != after[n] for n in before)


def test_random_waypoint_stays_within_bounds():
    mobility = RandomWaypointMobility(width=100.0, height=100.0, min_speed=20.0,
                                      max_speed=40.0, rng=random.Random(11))
    network = Network(simulator=Simulator(), mobility=mobility, seed=11)
    network.add_nodes(NODE_IDS)
    network.run(until=60.0)
    for x, y in network.positions.values():
        assert -1e-6 <= x <= 100.0 + 1e-6
        assert -1e-6 <= y <= 100.0 + 1e-6


def test_random_walk_moves_and_stays_in_bounds():
    mobility = RandomWalkMobility(width=50.0, height=50.0, max_step=5.0,
                                  rng=random.Random(2))
    network = Network(simulator=Simulator(), mobility=mobility, seed=2)
    network.add_nodes(["a", "b", "c"])
    before = dict(network.positions)
    network.run(until=30.0)
    after = dict(network.positions)
    assert any(before[n] != after[n] for n in before)
    for x, y in after.values():
        assert 0.0 <= x <= 50.0
        assert 0.0 <= y <= 50.0


def test_ring_positions_equidistant_from_center():
    positions = ring_positions(["a", "b", "c", "d"], radius=100.0, center=(10.0, 10.0))
    for x, y in positions.values():
        assert ((x - 10.0) ** 2 + (y - 10.0) ** 2) ** 0.5 == pytest.approx(100.0)


def test_chain_positions_spacing():
    positions = chain_positions(["a", "b", "c"], spacing=75.0)
    assert positions == {"a": (0.0, 0.0), "b": (75.0, 0.0), "c": (150.0, 0.0)}


def test_gauss_markov_moves_and_stays_in_bounds():
    mobility = GaussMarkovMobility(width=200.0, height=200.0, mean_speed=5.0,
                                   rng=random.Random(4))
    network = Network(simulator=Simulator(), mobility=mobility, seed=4)
    network.add_nodes(NODE_IDS)
    before = dict(network.positions)
    network.run(until=60.0)
    after = dict(network.positions)
    assert any(before[n] != after[n] for n in before)
    for x, y in after.values():
        assert 0.0 <= x <= 200.0
        assert 0.0 <= y <= 200.0


def test_gauss_markov_is_deterministic_with_seed():
    def run():
        mobility = GaussMarkovMobility(width=300.0, height=300.0,
                                       rng=random.Random(17))
        network = Network(simulator=Simulator(), mobility=mobility, seed=17)
        network.add_nodes(NODE_IDS)
        network.run(until=25.0)
        return dict(network.positions)

    assert run() == run()


def test_gauss_markov_motion_is_temporally_correlated():
    """With alpha close to 1, consecutive steps point the same way —
    the property that distinguishes Gauss-Markov from a random walk."""
    mobility = GaussMarkovMobility(width=10_000.0, height=10_000.0,
                                   mean_speed=5.0, alpha=0.95,
                                   speed_stddev=0.1, direction_stddev=0.05,
                                   rng=random.Random(6))
    network = Network(simulator=Simulator(), mobility=mobility, seed=6)
    network.add_nodes(["a"])
    # Re-centre so edge reflections cannot interfere with the measurement.
    network.set_position("a", (5_000.0, 5_000.0))
    positions = []
    for step in range(1, 11):
        network.run(until=float(step))
        positions.append(network.positions["a"])
    steps = [(x2 - x1, y2 - y1) for (x1, y1), (x2, y2)
             in zip(positions, positions[1:])]
    dots = [
        ax * bx + ay * by
        for (ax, ay), (bx, by) in zip(steps, steps[1:])
    ]
    assert all(dot > 0.0 for dot in dots)  # never reverses within 10 steps


def test_rpgm_members_follow_their_reference_point():
    mobility = ReferencePointGroupMobility(width=1000.0, height=1000.0,
                                           group_count=2, member_radius=80.0,
                                           min_speed=5.0, max_speed=10.0,
                                           rng=random.Random(8))
    network = Network(simulator=Simulator(), mobility=mobility, seed=8)
    network.add_nodes(NODE_IDS)
    network.run(until=40.0)
    # Every member sits inside its group's disc (clamped at the edges).
    for node_id, (x, y) in network.positions.items():
        group = mobility._group_of[node_id]
        rx, ry = mobility._references[group]
        ex = min(max(rx + mobility._offsets[node_id][0], 0.0), 1000.0)
        ey = min(max(ry + mobility._offsets[node_id][1], 0.0), 1000.0)
        assert (x, y) == (ex, ey)
        assert 0.0 <= x <= 1000.0 and 0.0 <= y <= 1000.0


def test_rpgm_groups_stay_clustered_while_moving():
    mobility = ReferencePointGroupMobility(width=2000.0, height=2000.0,
                                           group_count=3, member_radius=50.0,
                                           min_speed=2.0, max_speed=6.0,
                                           rng=random.Random(12))
    network = Network(simulator=Simulator(), mobility=mobility, seed=12)
    network.add_nodes([f"m{i}" for i in range(12)])
    before = dict(network.positions)
    network.run(until=50.0)
    after = dict(network.positions)
    assert any(before[n] != after[n] for n in before)
    # Intra-group spread is bounded by the disc diameter.
    groups = {}
    for node_id, position in after.items():
        groups.setdefault(mobility._group_of[node_id], []).append(position)
    for members in groups.values():
        xs = [p[0] for p in members]
        ys = [p[1] for p in members]
        assert max(xs) - min(xs) <= 100.0 + 1e-6
        assert max(ys) - min(ys) <= 100.0 + 1e-6


def test_static_install_is_noop():
    placement = StaticPlacement({"a": (0.0, 0.0)})
    network = Network(simulator=Simulator(), mobility=placement)
    network.add_nodes(["a"])
    network.run(until=10.0)
    assert network.positions["a"] == (0.0, 0.0)


# ----------------------------------------------- vector vs. scalar bit parity

class _TickNetwork:
    """Minimal network stand-in for driving ``_advance`` directly."""

    class _Clock:
        now = 0.0

    def __init__(self, positions):
        self.positions = dict(positions)
        self.simulator = self._Clock()


_MODEL_FACTORIES = [
    lambda rng: RandomWaypointMobility(width=300.0, height=300.0,
                                       min_speed=1.0, max_speed=8.0,
                                       pause_time=1.5, rng=rng),
    lambda rng: RandomWalkMobility(width=300.0, height=300.0,
                                   max_step=12.0, rng=rng),
    lambda rng: GaussMarkovMobility(width=300.0, height=300.0,
                                    mean_speed=4.0, alpha=0.6, rng=rng),
    lambda rng: ReferencePointGroupMobility(width=300.0, height=300.0,
                                            group_count=3, rng=rng),
]


@pytest.mark.parametrize("factory", _MODEL_FACTORIES,
                         ids=["waypoint", "walk", "gauss_markov", "rpgm"])
@pytest.mark.parametrize("node_count", [8, 40])
def test_vector_advance_bit_identical_to_scalar(factory, node_count):
    """The numpy tick path must be indistinguishable from the scalar loop:
    bit-identical trajectories AND an identical RNG stream afterwards (one
    extra or reordered draw would diverge every later tick of a run).

    ``_advance_vector`` is invoked directly rather than through the
    ``_advance`` dispatcher so the parity contract holds even for models
    (waypoint) whose production tick stays scalar by measured choice."""
    np = pytest.importorskip("numpy")

    def run(mode):
        model = factory(random.Random(97))
        ids = [f"v{i}" for i in range(node_count)]
        network = _TickNetwork(model.place(ids))
        for tick in range(120):
            network.simulator.now = (tick + 1) * model.update_interval
            if mode == "scalar":
                model._advance_scalar(network)
            else:
                model._advance_vector(network, np)
        return network.positions, model.rng.getstate()

    scalar_positions, scalar_rng = run("scalar")
    vector_positions, vector_rng = run("vector")
    assert list(scalar_positions) == list(vector_positions)
    for node_id in scalar_positions:
        sx, sy = scalar_positions[node_id]
        vx, vy = vector_positions[node_id]
        assert (sx, sy) == (vx, vy)
        assert isinstance(vx, float) and isinstance(vy, float)
    assert scalar_rng == vector_rng


def test_small_networks_fall_back_to_scalar(monkeypatch):
    """Below the vector threshold the models must not pay array overhead."""
    import repro.netsim.mobility as mobility_module

    calls = []
    model = RandomWalkMobility(rng=random.Random(1))
    original = model._advance_vector

    def spy(network, np):
        calls.append(len(network.positions))
        return original(network, np)

    monkeypatch.setattr(model, "_advance_vector", spy)
    network = _TickNetwork(model.place([f"s{i}" for i in range(4)]))
    model._advance(network)
    assert calls == []  # 4 nodes < _VECTOR_MIN_NODES: scalar path taken
    assert mobility_module._VECTOR_MIN_NODES > 4


def test_vector_paths_disabled_without_numpy(monkeypatch):
    import repro.netsim.mobility as mobility_module

    monkeypatch.setattr(mobility_module, "numpy_or_none", lambda: None)
    model = GaussMarkovMobility(rng=random.Random(2))
    network = _TickNetwork(model.place([f"g{i}" for i in range(16)]))
    before = dict(network.positions)
    network.simulator.now = model.update_interval
    model._advance(network)  # must not touch numpy
    assert network.positions != before


def test_waypoint_vector_tick_matches_scalar_through_network_run():
    """End-to-end: a Network driven by the periodic mobility event produces
    the same trajectories whether ticks run vectorised or scalar (waypoint
    dispatches scalar in production, so the vector path is forced here)."""
    np = pytest.importorskip("numpy")

    def run(force_vector):
        mobility = RandomWaypointMobility(width=200.0, height=200.0,
                                          min_speed=2.0, max_speed=6.0,
                                          rng=random.Random(31))
        if force_vector:
            mobility._advance = (  # type: ignore[method-assign]
                lambda network: mobility._advance_vector(network, np))
        network = Network(simulator=Simulator(), mobility=mobility, seed=31)
        network.add_nodes([f"w{i}" for i in range(24)])
        network.run(until=40.0)
        return dict(network.positions)

    assert run(force_vector=False) == run(force_vector=True)
