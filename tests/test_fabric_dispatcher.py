"""Tests for the fabric dispatch queue: leases, stealing, idempotency."""

from __future__ import annotations

import json

import pytest

from repro.experiments.engine import (
    expand_experiment,
    run_experiment,
    spec_from_jsonable,
    spec_to_jsonable,
)
from repro.experiments.results import ResultsStore
from repro.fabric import FabricQueue, dispatch_experiment

_PARAMS = {"rounds": 5}


def _queue_path(tmp_path) -> str:
    return str(tmp_path / "fabric.sqlite")


def _dispatch(tmp_path, **kwargs):
    return dispatch_experiment(_queue_path(tmp_path), "confidence_sweep",
                               params=_PARAMS, **kwargs)


# ------------------------------------------------------------------ dispatch
def test_dispatch_enqueues_every_cell_with_context(tmp_path):
    report = _dispatch(tmp_path)
    assert (report.cells, report.enqueued) == (9, 9)
    assert report.already_queued == report.already_stored == 0
    with FabricQueue(_queue_path(tmp_path)) as queue:
        assert queue.counts() == {"pending": 9, "leased": 0, "done": 0}
        context = queue.get_context("confidence_sweep")
        assert context["params"] == {"rounds": 5}
        assert context["backend"] is None


def test_redispatch_is_idempotent(tmp_path):
    _dispatch(tmp_path)
    again = _dispatch(tmp_path)
    assert again.enqueued == 0
    assert again.already_queued == 9


def test_dispatch_skips_cells_stored_in_resume_store(tmp_path):
    store_path = str(tmp_path / "canonical.sqlite")
    with ResultsStore(store_path) as store:
        run_experiment("confidence_sweep", params=_PARAMS, store=store,
                       max_new_runs=4)
    with ResultsStore(store_path) as store:
        report = _dispatch(tmp_path, resume_store=store)
    assert report.already_stored == 4
    assert report.enqueued == 5


def test_queue_refuses_mismatched_schema_version(tmp_path):
    path = _queue_path(tmp_path)
    with FabricQueue(path) as queue:
        queue._connection.execute(
            "UPDATE meta SET value = '999' WHERE key = 'fabric_schema_version'")
    with pytest.raises(ValueError, match="fabric_schema_version"):
        FabricQueue(path)


# ------------------------------------------------------------------- leasing
def test_claim_hands_out_disjoint_batches_in_order(tmp_path):
    _dispatch(tmp_path)
    _, specs, hashes = expand_experiment("confidence_sweep", params=_PARAMS)
    with FabricQueue(_queue_path(tmp_path)) as queue:
        first = queue.claim("a", 4, lease_ttl=60.0)
        second = queue.claim("b", 100, lease_ttl=60.0)
        assert [cell.spec_hash for cell in first] == hashes[:4]
        assert [cell.spec_hash for cell in second] == hashes[4:]
        assert not any(cell.stolen for cell in first + second)
        assert queue.claim("c", 1, lease_ttl=60.0) == []
        # The claimed spec round-trips hash-exact through the queue.
        assert first[0].spec == specs[0]
        assert first[0].spec.content_hash() == hashes[0]


def test_complete_marks_done_and_done_cells_stay_done(tmp_path):
    _dispatch(tmp_path)
    with FabricQueue(_queue_path(tmp_path)) as queue:
        batch = queue.claim("a", 2, lease_ttl=60.0)
        assert queue.complete("a", batch[0].spec_hash) is True
        # Completing twice, or as the wrong owner, is a lost lease, not a crash.
        assert queue.complete("a", batch[0].spec_hash) is False
        assert queue.complete("z", batch[1].spec_hash) is False
        counts = queue.counts()
        assert counts["done"] == 1 and counts["leased"] == 1


def test_expired_lease_is_stolen_and_attempts_recorded(tmp_path):
    _dispatch(tmp_path)
    with FabricQueue(_queue_path(tmp_path)) as queue:
        batch = queue.claim("dead", 3, lease_ttl=10.0, now=1000.0)
        # Before expiry nothing is claimable beyond the untouched cells.
        assert queue.claimable(now=1005.0) == 6
        stolen = queue.claim("live", 9, lease_ttl=10.0, now=1011.0)
        assert len(stolen) == 9
        assert sum(cell.stolen for cell in stolen) == 3
        assert {cell.spec_hash for cell in stolen[:3]} == \
            {cell.spec_hash for cell in batch}
        # The dead worker can no longer complete its stolen cells.
        assert queue.complete("dead", batch[0].spec_hash) is False
        attempts = queue._connection.execute(
            "SELECT spec_hash, attempts FROM cells").fetchall()
        stolen_hashes = {cell.spec_hash for cell in batch}
        for spec_hash, count in attempts:
            assert count == (2 if spec_hash in stolen_hashes else 1)


def test_heartbeat_extends_only_owned_live_leases(tmp_path):
    _dispatch(tmp_path)
    with FabricQueue(_queue_path(tmp_path)) as queue:
        batch = queue.claim("a", 2, lease_ttl=10.0, now=1000.0)
        hashes = [cell.spec_hash for cell in batch]
        assert queue.heartbeat("a", hashes, lease_ttl=10.0, now=1008.0) == 2
        # The extended lease survives past the original expiry: at t=1012
        # only the 7 untouched cells are claimable, and claiming them steals
        # nothing from the heartbeating owner.
        assert queue.claimable(now=1012.0) == 7
        grabbed = queue.claim("b", 9, lease_ttl=10.0, now=1012.0)
        assert len(grabbed) == 7
        assert not any(cell.stolen for cell in grabbed)
        # A stranger's heartbeat extends nothing.
        assert queue.heartbeat("z", hashes, lease_ttl=10.0, now=1012.0) == 0
        assert queue.heartbeat("a", [], lease_ttl=10.0) == 0


def test_release_returns_unfinished_cells_to_pending(tmp_path):
    _dispatch(tmp_path)
    with FabricQueue(_queue_path(tmp_path)) as queue:
        batch = queue.claim("a", 3, lease_ttl=60.0)
        queue.complete("a", batch[0].spec_hash)
        assert queue.release("a") == 2
        counts = queue.counts()
        assert counts == {"pending": 8, "leased": 0, "done": 1}
        # Released cells are immediately claimable by anyone.
        assert len(queue.claim("b", 9, lease_ttl=60.0)) == 8


# ------------------------------------------------------------ spec wire form
def test_spec_jsonable_round_trip_is_hash_exact():
    _, specs, hashes = expand_experiment("confidence_sweep", params=_PARAMS)
    for spec, digest in zip(specs, hashes):
        wire = json.loads(json.dumps(spec_to_jsonable(spec)))
        rebuilt = spec_from_jsonable(wire)
        assert rebuilt == spec
        assert rebuilt.content_hash() == digest
