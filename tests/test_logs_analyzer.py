"""Tests for the log analyzer (detection-event extraction)."""

from __future__ import annotations

from repro.logs.analyzer import DetectionEventType, LogAnalyzer, merge_events
from repro.logs.records import LogCategory
from repro.logs.store import LogStore


def make_analyzer() -> tuple[LogStore, LogAnalyzer]:
    store = LogStore("me")
    return store, LogAnalyzer(store)


def test_hello_rx_builds_snapshot():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.MESSAGE_RX, "HELLO", origin="n1",
              sym_neighbors=["a", "b"], willingness=3)
    analyzer.analyze()
    snapshot = analyzer.snapshot_of("n1")
    assert snapshot is not None
    assert snapshot.advertised_symmetric == {"a", "b"}
    assert snapshot.willingness == 3
    assert analyzer.advertised_symmetric_neighbors("n1") == {"a", "b"}
    assert analyzer.advertised_symmetric_neighbors("unknown") == set()


def test_advertisement_change_event_emitted():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.MESSAGE_RX, "HELLO", origin="n1", sym_neighbors=["a"])
    store.log(2.0, LogCategory.MESSAGE_RX, "HELLO", origin="n1", sym_neighbors=["a", "b"])
    events = analyzer.analyze()
    changes = [e for e in events if e.event_type == DetectionEventType.ADVERTISEMENT_CHANGED]
    assert len(changes) == 1
    assert changes[0].subject == "n1"
    assert changes[0].details["added"] == "b"
    assert changes[0].details["removed"] == ""


def test_identical_hello_does_not_emit_change():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.MESSAGE_RX, "HELLO", origin="n1", sym_neighbors=["a"])
    store.log(2.0, LogCategory.MESSAGE_RX, "HELLO", origin="n1", sym_neighbors=["a"])
    events = analyzer.analyze()
    assert not [e for e in events if e.event_type == DetectionEventType.ADVERTISEMENT_CHANGED]


def test_mpr_replacement_emits_e1_event():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["old"], previous=[])
    analyzer.analyze()
    store.log(5.0, LogCategory.MPR, "MPR_SELECTED", mpr="new")
    store.log(5.0, LogCategory.MPR, "MPR_REMOVED", mpr="old")
    store.log(5.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["new"], previous=["old"])
    events = analyzer.analyze()
    replacements = [e for e in events if e.event_type == DetectionEventType.MPR_REPLACED]
    assert len(replacements) == 1
    assert replacements[0].details["replaced"] == "old"
    assert replacements[0].details["replacing"] == "new"
    assert analyzer.current_mprs == {"new"}


def test_mpr_addition_without_removal_is_not_replacement():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["a"], previous=[])
    store.log(2.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["a", "b"], previous=["a"])
    events = analyzer.analyze()
    assert not [e for e in events if e.event_type == DetectionEventType.MPR_REPLACED]


def test_mpr_removal_without_addition_is_not_replacement():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["a", "b"], previous=[])
    store.log(2.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["a"], previous=["a", "b"])
    events = analyzer.analyze()
    assert not [e for e in events if e.event_type == DetectionEventType.MPR_REPLACED]


def test_neighbor_appeared_and_disappeared():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.NEIGHBOR, "NEIGHBOR_ADDED", neighbor="n1")
    store.log(2.0, LogCategory.NEIGHBOR, "NEIGHBOR_REMOVED", neighbor="n1")
    events = analyzer.analyze()
    types = [e.event_type for e in events]
    assert DetectionEventType.NEIGHBOR_APPEARED in types
    assert DetectionEventType.NEIGHBOR_DISAPPEARED in types


def test_duplicate_neighbor_added_only_reported_once():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.NEIGHBOR, "NEIGHBOR_ADDED", neighbor="n1")
    store.log(2.0, LogCategory.NEIGHBOR, "NEIGHBOR_SYM", neighbor="n1")
    events = analyzer.analyze()
    appeared = [e for e in events if e.event_type == DetectionEventType.NEIGHBOR_APPEARED]
    assert len(appeared) == 1


def test_drop_by_current_mpr_is_misbehavior():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["m"], previous=[])
    store.log(2.0, LogCategory.DROP, "FILTERED", culprit="m", reason="x")
    events = analyzer.analyze()
    misbehavior = [e for e in events if e.event_type == DetectionEventType.MPR_MISBEHAVIOR]
    assert len(misbehavior) == 1
    assert misbehavior[0].subject == "m"


def test_drop_by_non_mpr_is_not_misbehavior():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.DROP, "FILTERED", culprit="stranger")
    events = analyzer.analyze()
    assert not [e for e in events if e.event_type == DetectionEventType.MPR_MISBEHAVIOR]


def test_not_relayed_by_mpr_is_misbehavior():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["m"], previous=[])
    store.log(2.0, LogCategory.FORWARD, "NOT_RELAYED", culprit="m")
    events = analyzer.analyze()
    assert [e for e in events if e.event_type == DetectionEventType.MPR_MISBEHAVIOR]


def test_link_instability_detected_after_repeated_flaps():
    store, analyzer = make_analyzer()
    for i in range(4):
        store.log(float(i), LogCategory.LINK, "LINK_LOST", neighbor="n1")
    events = analyzer.analyze()
    instability = [e for e in events if e.event_type == DetectionEventType.LINK_INSTABILITY]
    assert len(instability) == 1


def test_link_flaps_outside_window_do_not_trigger():
    store, analyzer = make_analyzer()
    for i in range(4):
        store.log(float(i) * 100.0, LogCategory.LINK, "LINK_LOST", neighbor="n1")
    events = analyzer.analyze()
    assert not [e for e in events if e.event_type == DetectionEventType.LINK_INSTABILITY]


def test_analyze_is_incremental():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.NEIGHBOR, "NEIGHBOR_ADDED", neighbor="n1")
    first = analyzer.analyze()
    second = analyzer.analyze()
    assert len(first) == 1
    assert second == []


def test_analyze_all_processes_whole_log():
    store, analyzer = make_analyzer()
    store.log(1.0, LogCategory.NEIGHBOR, "NEIGHBOR_ADDED", neighbor="n1")
    analyzer.analyze()
    events = analyzer.analyze_all()
    # NEIGHBOR_ADDED already known, so no new event, but no crash either.
    assert isinstance(events, list)


def test_merge_events_sorted_by_time():
    store, analyzer = make_analyzer()
    store.log(5.0, LogCategory.NEIGHBOR, "NEIGHBOR_ADDED", neighbor="late")
    events_a = analyzer.analyze()
    store2 = LogStore("me2")
    analyzer2 = LogAnalyzer(store2)
    store2.log(1.0, LogCategory.NEIGHBOR, "NEIGHBOR_ADDED", neighbor="early")
    events_b = analyzer2.analyze()
    merged = merge_events([events_a, events_b])
    assert [e.subject for e in merged] == ["early", "late"]
