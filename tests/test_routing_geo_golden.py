"""Golden tests of the greedy-geo backend on hand-checked topologies."""

from __future__ import annotations

import pytest

from repro.logs.records import LogCategory
from repro.routing.geo import GeoConfig, GreedyGeoNode
from tests.conftest import CHAIN_POSITIONS, make_network

#: Beacons go out every 2 s (plus jitter); 8 s covers several rounds.
BEACON_TIME = 8.0

#: A "void" topology: S's only neighbour U is *farther* from the target T
#: than S itself, so greedy forwarding dead-ends at S and must fall back to
#: the perimeter stub; from U onward greedy progress resumes via V.
#: Distances (range 250): S-U 200, U-V 200, V-T ~236; S-T 340 (out of range),
#: U-T ~389 > S-T 340 (no greedy progress at S).
VOID_POSITIONS = {
    "S": (0.0, 0.0),
    "U": (0.0, 200.0),
    "V": (200.0, 200.0),
    "T": (340.0, 10.0),
}


def make_geo_network(positions, radio_range: float = 250.0, seed: int = 0,
                     config: GeoConfig | None = None):
    """Build a network plus one started greedy-geo node per position."""
    network = make_network(positions, radio_range=radio_range, seed=seed)
    nodes = {}
    for index, node_id in enumerate(positions):
        nodes[node_id] = GreedyGeoNode(node_id, network, config=config,
                                       seed=seed + index)
    for node in nodes.values():
        node.start()
    return network, nodes


@pytest.fixture
def geo_chain():
    """The 4-node chain A - B - C - D with started greedy-geo nodes."""
    return make_geo_network(CHAIN_POSITIONS)


def test_beacons_build_neighbor_position_tables(geo_chain):
    network, nodes = geo_chain
    network.run(until=BEACON_TIME)
    assert nodes["A"].symmetric_neighbors() == {"B"}
    assert nodes["B"].symmetric_neighbors() == {"A", "C"}
    position, _expiry = nodes["B"].neighbor_positions["C"]
    assert position == CHAIN_POSITIONS["C"]


def test_greedy_progress_along_chain(geo_chain):
    network, nodes = geo_chain
    network.run(until=BEACON_TIME)
    # B is A's only neighbour and strictly closer to D: pure greedy, no
    # fallback.
    assert nodes["A"].next_hop("D") == "B"
    assert nodes["B"].next_hop("D") == "C"

    delivered = []
    nodes["D"].data_handlers.append(
        lambda packet, last_hop: delivered.append((packet.payload, packet.hops)))
    assert nodes["A"].send_data("D", "geo-ping") is True
    network.run(until=BEACON_TIME + 2.0)
    assert delivered == [("geo-ping", ["A", "B", "C"])]
    assert nodes["A"].perimeter_fallbacks == 0


def test_perimeter_fallback_escapes_void(geo_chain):
    network, nodes = make_geo_network(VOID_POSITIONS)
    network.run(until=BEACON_TIME)

    delivered = []
    nodes["T"].data_handlers.append(
        lambda packet, last_hop: delivered.append((packet.payload, packet.hops)))
    assert nodes["S"].send_data("T", "void-ping") is True
    network.run(until=BEACON_TIME + 2.0)

    # The packet escaped the void via the fallback hop S -> U, then resumed
    # greedy progress U -> V -> T.
    assert delivered == [("void-ping", ["S", "U", "V"])]
    assert nodes["S"].perimeter_fallbacks == 1
    fallbacks = [
        record for record in nodes["S"].log.by_category(LogCategory.ROUTE)
        if record.event == "PERIMETER_FALLBACK"
    ]
    assert fallbacks and fallbacks[0].get("via") == "U"
    # Downstream nodes forwarded greedily.
    assert nodes["U"].perimeter_fallbacks == 0
    assert nodes["V"].perimeter_fallbacks == 0


def test_fallback_never_revisits_packet_path(geo_chain):
    """The perimeter stub excludes nodes already on the packet's path."""
    network, nodes = make_geo_network(VOID_POSITIONS)
    network.run(until=BEACON_TIME)
    from repro.routing.base import DataPacket

    # A packet that already visited U must not be bounced back to it.
    packet = DataPacket(source="S", destination="T", payload="x",
                        hops=["U", "S"])
    assert nodes["S"].next_hop_for(packet) is None


def test_unknown_destination_is_unroutable(geo_chain):
    network, nodes = geo_chain
    network.run(until=BEACON_TIME)
    # No position service entry -> no next hop -> the base class reports an
    # unrecoverable no-route drop.
    assert nodes["A"].send_data("ghost", "lost") is False
    drops = [
        record for record in nodes["A"].log.by_category(LogCategory.DROP)
        if record.get("reason") == "no_route"
    ]
    assert drops


def test_neighbor_expiry_after_node_failure(geo_chain):
    network, nodes = geo_chain
    network.run(until=BEACON_TIME)
    assert "B" in nodes["A"].symmetric_neighbors()
    nodes["B"].stop()
    hold = nodes["A"].config.neighbor_hold_time
    network.run(until=network.now + hold + 2.0)
    assert "B" not in nodes["A"].symmetric_neighbors()
    removed = [
        record for record in nodes["A"].log.by_category(LogCategory.NEIGHBOR)
        if record.event == "NEIGHBOR_REMOVED" and record.get("neighbor") == "B"
    ]
    assert removed
    # With its only neighbour gone, A cannot route anywhere.
    assert nodes["A"].next_hop("D") is None
