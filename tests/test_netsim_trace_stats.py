"""Tests for the trace recorder and statistics containers."""

from __future__ import annotations

import pytest

from repro.netsim.stats import MediumStatistics, NodeStatistics
from repro.netsim.trace import TraceEvent, TraceRecorder


def test_trace_records_and_iterates():
    trace = TraceRecorder()
    trace.record(1.0, "MSG", "a", "sent hello")
    trace.record(2.0, "MSG", "b", "received hello")
    assert len(trace) == 2
    assert [e.node for e in trace] == ["a", "b"]


def test_trace_by_category_and_node():
    trace = TraceRecorder()
    trace.record(1.0, "MSG", "a", "x")
    trace.record(2.0, "DETECT", "a", "y")
    trace.record(3.0, "MSG", "b", "z")
    assert len(trace.by_category("MSG")) == 2
    assert len(trace.by_node("a")) == 2


def test_trace_between_time_window():
    trace = TraceRecorder()
    for t in (1.0, 2.0, 3.0, 4.0):
        trace.record(t, "C", "n", "e")
    assert len(trace.between(2.0, 3.0)) == 2


def test_trace_filter_predicate():
    trace = TraceRecorder()
    trace.record(1.0, "C", "n", "e", value=10)
    trace.record(2.0, "C", "n", "e", value=20)
    big = trace.filter(lambda e: e.data.get("value", 0) > 15)
    assert len(big) == 1


def test_trace_counts_by_category():
    trace = TraceRecorder()
    trace.record(1.0, "A", "n", "e")
    trace.record(2.0, "A", "n", "e")
    trace.record(3.0, "B", "n", "e")
    assert trace.counts_by_category() == {"A": 2, "B": 1}


def test_trace_bounded_drops_oldest():
    trace = TraceRecorder(max_events=3)
    for t in range(5):
        trace.record(float(t), "C", "n", str(t))
    assert len(trace) == 3
    assert trace.events[0].description == "2"


def test_trace_subscribers_notified():
    trace = TraceRecorder()
    seen = []
    trace.subscribe(seen.append)
    event = trace.record(1.0, "C", "n", "e")
    assert seen == [event]


def test_trace_clear_and_extend():
    trace = TraceRecorder()
    trace.record(1.0, "C", "n", "e")
    trace.clear()
    assert len(trace) == 0
    trace.extend([TraceEvent(1.0, "C", "n", "e"), TraceEvent(2.0, "C", "n", "e")])
    assert len(trace) == 2


def test_medium_stats_ratios_zero_when_empty():
    stats = MediumStatistics()
    assert stats.delivery_ratio == 0.0
    assert stats.loss_ratio == 0.0


def test_medium_stats_ratios():
    stats = MediumStatistics(frames_delivered=8, frames_lost=1, frames_collided=1)
    assert stats.delivery_ratio == pytest.approx(0.8)
    assert stats.loss_ratio == pytest.approx(0.2)


def test_medium_stats_reset():
    stats = MediumStatistics(frames_sent=5, bytes_sent=100)
    stats.reset()
    assert stats.frames_sent == 0
    assert stats.bytes_sent == 0


def test_node_stats_per_type_counters():
    stats = NodeStatistics()
    stats.record_sent("HELLO")
    stats.record_sent("TC")
    stats.record_received("HELLO")
    stats.record_received("HELLO")
    assert stats.hello_sent == 1
    assert stats.tc_sent == 1
    assert stats.hello_received == 2
    assert stats.per_type_sent == {"HELLO": 1, "TC": 1}
    assert stats.per_type_received == {"HELLO": 2}
    assert stats.messages_sent == 2
    assert stats.messages_received == 2
