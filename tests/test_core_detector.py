"""Tests for the local (log-based) detector."""

from __future__ import annotations

from repro.core.detector import LocalDetector
from repro.core.evidence import EvidenceType, SuspicionLevel
from repro.logs.analyzer import LogAnalyzer
from repro.logs.records import LogCategory
from repro.logs.store import LogStore


def make_detector(sole_provider_oracle=None, **kwargs):
    store = LogStore("me")
    analyzer = LogAnalyzer(store)
    detector = LocalDetector(analyzer, sole_provider_oracle=sole_provider_oracle, **kwargs)
    return store, detector


def log_mpr_replacement(store, old="old", new="new", time=5.0):
    store.log(time, LogCategory.MPR, "MPR_SET_CHANGED", mprs=[new], previous=[old])


def test_mpr_replacement_triggers_investigation_with_e1():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["old"], previous=[])
    detector.scan()
    log_mpr_replacement(store)
    triggers = detector.scan()
    assert len(triggers) == 1
    trigger = triggers[0]
    assert trigger.suspect == "new"
    assert trigger.replaced_mprs == ["old"]
    assert any(e.evidence_type == EvidenceType.E1_MPR_REPLACED for e in trigger.evidences)
    assert detector.has_triggering_evidence("new")


def test_mpr_misbehavior_triggers_investigation_with_e2():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["m"], previous=[])
    detector.scan()
    store.log(2.0, LogCategory.FORWARD, "NOT_RELAYED", culprit="m")
    triggers = detector.scan()
    assert len(triggers) == 1
    assert triggers[0].suspect == "m"
    assert any(e.evidence_type == EvidenceType.E2_MPR_MISBEHAVIOR
               for e in triggers[0].evidences)


def test_mpr_advertisement_change_treated_as_e2():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["m"], previous=[])
    store.log(1.5, LogCategory.MESSAGE_RX, "HELLO", origin="m", sym_neighbors=["a"])
    detector.scan()
    store.log(2.0, LogCategory.MESSAGE_RX, "HELLO", origin="m", sym_neighbors=["a", "victim2"])
    triggers = detector.scan()
    assert len(triggers) == 1
    assert triggers[0].suspect == "m"
    assert triggers[0].contested_links == ["victim2"]


def test_advertisement_change_by_non_mpr_is_ignored():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MESSAGE_RX, "HELLO", origin="stranger", sym_neighbors=["a"])
    detector.scan()
    store.log(2.0, LogCategory.MESSAGE_RX, "HELLO", origin="stranger", sym_neighbors=["a", "b"])
    assert detector.scan() == []


def test_advertisement_trigger_can_be_disabled():
    store, detector = make_detector(mpr_advertisement_change_is_e2=False)
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["m"], previous=[])
    store.log(1.5, LogCategory.MESSAGE_RX, "HELLO", origin="m", sym_neighbors=["a"])
    detector.scan()
    store.log(2.0, LogCategory.MESSAGE_RX, "HELLO", origin="m", sym_neighbors=["a", "b"])
    assert detector.scan() == []


def test_e3_attached_when_oracle_reports_isolated_nodes():
    store, detector = make_detector(sole_provider_oracle=lambda suspect: {"lonely"})
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["old"], previous=[])
    detector.scan()
    log_mpr_replacement(store)
    triggers = detector.scan()
    e3 = [e for e in triggers[0].evidences if e.evidence_type == EvidenceType.E3_SOLE_PROVIDER]
    assert len(e3) == 1
    assert e3[0].details["isolated_node"] == "lonely"


def test_min_trigger_level_filters_informational_triggers():
    # With the threshold raised to CRITICAL, an E1 (SUSPICIOUS) trigger is dropped.
    store, detector = make_detector(min_trigger_level=SuspicionLevel.CRITICAL)
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["old"], previous=[])
    detector.scan()
    log_mpr_replacement(store)
    assert detector.scan() == []


def test_no_trigger_without_relevant_events():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MESSAGE_RX, "HELLO", origin="n1", sym_neighbors=["a"])
    store.log(2.0, LogCategory.LINK, "LINK_SYM", neighbor="n1")
    assert detector.scan() == []


def test_scan_is_incremental():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["old"], previous=[])
    detector.scan()
    log_mpr_replacement(store)
    assert len(detector.scan()) == 1
    assert detector.scan() == []  # nothing new


def test_evidence_about_accumulates_across_scans():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["old"], previous=[])
    detector.scan()
    log_mpr_replacement(store, time=5.0)
    detector.scan()
    store.log(6.0, LogCategory.FORWARD, "NOT_RELAYED", culprit="new")
    detector.scan()
    evidences = detector.evidence_about("new")
    types = {e.evidence_type for e in evidences}
    assert EvidenceType.E1_MPR_REPLACED in types
    assert EvidenceType.E2_MPR_MISBEHAVIOR in types


def test_signature_matching_reports_complete_signatures():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["old"], previous=[])
    detector.scan()
    log_mpr_replacement(store)
    detector.scan()
    assert "link-spoofing-preliminary" in detector.match_signatures()


def test_reset_clears_accumulated_state():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["old"], previous=[])
    detector.scan()
    log_mpr_replacement(store)
    detector.scan()
    detector.reset()
    assert detector.evidence_about("new") == []
    assert detector.match_signatures() == []


def test_trigger_strongest_level():
    store, detector = make_detector()
    store.log(1.0, LogCategory.MPR, "MPR_SET_CHANGED", mprs=["m"], previous=[])
    detector.scan()
    store.log(2.0, LogCategory.FORWARD, "NOT_RELAYED", culprit="m")
    triggers = detector.scan()
    assert triggers[0].strongest_level == SuspicionLevel.CRITICAL
