"""Tests for the wireless medium: propagation, loss, collisions, delivery."""

from __future__ import annotations

import random

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.medium import (
    AsymmetricRangePropagation,
    BernoulliLossModel,
    CollisionModel,
    CompositeLossModel,
    DistanceLossModel,
    PerfectChannel,
    UnitDiskPropagation,
    WirelessMedium,
    distance,
)
from repro.netsim.packet import BROADCAST_ADDRESS, Frame


class Sink:
    """Records received frames."""

    def __init__(self):
        self.received = []

    def receive(self, frame, now):
        self.received.append((frame, now))


def build_medium(positions, propagation=None, loss_model=None, collision_model=None):
    sim = Simulator()
    medium = WirelessMedium(
        sim,
        propagation=propagation or UnitDiskPropagation(radio_range=250.0),
        loss_model=loss_model or PerfectChannel(),
        collision_model=collision_model,
    )
    medium.bind_position_oracle(lambda nid: positions[nid])
    sinks = {}
    for node_id in positions:
        sink = Sink()
        medium.register(node_id, sink)
        sinks[node_id] = sink
    return sim, medium, sinks


def test_distance_euclidean():
    assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)


def test_unit_disk_in_range_boundary():
    model = UnitDiskPropagation(radio_range=100.0)
    assert model.in_range((0, 0), (100, 0))
    assert not model.in_range((0, 0), (100.1, 0))


def test_broadcast_reaches_only_nodes_in_range():
    positions = {"a": (0, 0), "b": (200, 0), "c": (600, 0)}
    sim, medium, sinks = build_medium(positions)
    medium.transmit(Frame(source="a", destination=BROADCAST_ADDRESS, payload="x"))
    sim.run()
    assert len(sinks["b"].received) == 1
    assert len(sinks["c"].received) == 0
    assert medium.stats.frames_out_of_range == 1


def test_unicast_only_reaches_destination():
    positions = {"a": (0, 0), "b": (100, 0), "c": (150, 0)}
    sim, medium, sinks = build_medium(positions)
    medium.transmit(Frame(source="a", destination="b", payload="x"))
    sim.run()
    assert len(sinks["b"].received) == 1
    assert len(sinks["c"].received) == 0


def test_unicast_to_unknown_destination_counts_unroutable():
    positions = {"a": (0, 0)}
    sim, medium, sinks = build_medium(positions)
    medium.transmit(Frame(source="a", destination="ghost", payload="x"))
    sim.run()
    assert medium.stats.frames_unroutable == 1


def test_transmit_from_unknown_source_rejected():
    positions = {"a": (0, 0)}
    sim, medium, _ = build_medium(positions)
    with pytest.raises(ValueError):
        medium.transmit(Frame(source="ghost", destination=BROADCAST_ADDRESS, payload="x"))


def test_sender_never_receives_its_own_broadcast():
    positions = {"a": (0, 0), "b": (50, 0)}
    sim, medium, sinks = build_medium(positions)
    medium.transmit(Frame(source="a", destination=BROADCAST_ADDRESS, payload="x"))
    sim.run()
    assert len(sinks["a"].received) == 0
    assert len(sinks["b"].received) == 1


def test_delivery_applies_propagation_delay():
    positions = {"a": (0, 0), "b": (50, 0)}
    sim, medium, sinks = build_medium(positions)
    medium.propagation_delay = 0.01
    medium.transmit(Frame(source="a", destination="b", payload="x"))
    sim.run()
    _, received_at = sinks["b"].received[0]
    assert received_at == pytest.approx(0.01)


def test_bernoulli_loss_all_or_nothing():
    positions = {"a": (0, 0), "b": (50, 0)}
    sim, medium, sinks = build_medium(
        positions, loss_model=BernoulliLossModel(1.0, rng=random.Random(0)))
    for _ in range(10):
        medium.transmit(Frame(source="a", destination="b", payload="x"))
    sim.run()
    assert len(sinks["b"].received) == 0
    assert medium.stats.frames_lost == 10


def test_bernoulli_loss_probability_validated():
    with pytest.raises(ValueError):
        BernoulliLossModel(1.5)


def test_bernoulli_loss_statistical_behaviour():
    model = BernoulliLossModel(0.3, rng=random.Random(42))
    losses = sum(model.is_lost(Frame("a", "b", None), (0, 0), (1, 1)) for _ in range(5000))
    assert 0.25 < losses / 5000 < 0.35


def test_distance_loss_increases_with_distance():
    model = DistanceLossModel(radio_range=100.0, max_loss=0.8, reliable_fraction=0.5)
    assert model.loss_probability(40.0) == 0.0
    assert model.loss_probability(60.0) < model.loss_probability(90.0)
    assert model.loss_probability(100.0) == pytest.approx(0.8)


def test_composite_loss_any_model_loses():
    always = BernoulliLossModel(1.0, rng=random.Random(0))
    never = PerfectChannel()
    composite = CompositeLossModel(models=[never, always])
    assert composite.is_lost(Frame("a", "b", None), (0, 0), (1, 1))


def test_collision_model_airtime():
    model = CollisionModel(bitrate_bps=1_000_000)
    frame = Frame("a", "b", None, size_bytes=125)
    assert model.airtime(frame) == pytest.approx(0.001)


def test_collisions_drop_overlapping_frames():
    positions = {"a": (0, 0), "b": (10, 0), "r": (5, 5)}
    sim, medium, sinks = build_medium(
        positions, collision_model=CollisionModel(bitrate_bps=1_000))
    # Two large frames sent at the same instant overlap at the receiver.
    medium.transmit(Frame(source="a", destination=BROADCAST_ADDRESS, payload="x", size_bytes=500))
    medium.transmit(Frame(source="b", destination=BROADCAST_ADDRESS, payload="y", size_bytes=500))
    sim.run()
    assert medium.stats.frames_collided >= 1


def test_no_collision_when_transmissions_are_spaced():
    positions = {"a": (0, 0), "r": (5, 5)}
    sim, medium, sinks = build_medium(
        positions, collision_model=CollisionModel(bitrate_bps=1_000_000))
    medium.transmit(Frame(source="a", destination=BROADCAST_ADDRESS, payload="x"))
    sim.run()
    sim.schedule(1.0, lambda: medium.transmit(
        Frame(source="a", destination=BROADCAST_ADDRESS, payload="y")))
    sim.run()
    assert medium.stats.frames_collided == 0
    assert len(sinks["r"].received) == 2


def test_neighbors_of_uses_current_positions():
    positions = {"a": (0, 0), "b": (200, 0), "c": (600, 0)}
    sim, medium, _ = build_medium(positions)
    assert medium.neighbors_of("a") == ["b"]
    positions["c"] = (100, 0)
    assert set(medium.neighbors_of("a")) == {"b", "c"}


def test_connectivity_matrix_symmetric_for_unit_disk():
    positions = {"a": (0, 0), "b": (200, 0), "c": (400, 0)}
    _, medium, _ = build_medium(positions)
    matrix = medium.connectivity_matrix()
    assert matrix["a"] == ["b"]
    assert set(matrix["b"]) == {"a", "c"}
    assert matrix["c"] == ["b"]


def test_asymmetric_propagation_creates_one_way_links():
    prop = AsymmetricRangePropagation(default_range=250.0)
    prop.register("weak", 100.0)
    positions = {"weak": (0, 0), "strong": (200, 0)}
    sim, medium, sinks = build_medium(positions, propagation=prop)
    # strong -> weak reaches (default 250 range); weak -> strong does not.
    medium.transmit(Frame(source="strong", destination=BROADCAST_ADDRESS, payload="x"))
    medium.transmit(Frame(source="weak", destination=BROADCAST_ADDRESS, payload="y"))
    sim.run()
    assert len(sinks["weak"].received) == 1
    assert len(sinks["strong"].received) == 0


def test_unregister_stops_delivery():
    positions = {"a": (0, 0), "b": (50, 0)}
    sim, medium, sinks = build_medium(positions)
    medium.unregister("b")
    medium.transmit(Frame(source="a", destination=BROADCAST_ADDRESS, payload="x"))
    sim.run()
    assert len(sinks["b"].received) == 0


def test_duplicate_registration_rejected():
    positions = {"a": (0, 0)}
    _, medium, _ = build_medium(positions)
    with pytest.raises(ValueError):
        medium.register("a", Sink())


def test_stats_delivery_and_loss_ratios():
    positions = {"a": (0, 0), "b": (50, 0)}
    sim, medium, _ = build_medium(
        positions, loss_model=BernoulliLossModel(0.5, rng=random.Random(7)))
    for _ in range(200):
        medium.transmit(Frame(source="a", destination="b", payload="x"))
    sim.run()
    stats = medium.stats
    assert stats.frames_sent == 200
    assert stats.frames_delivered + stats.frames_lost == 200
    assert 0.3 < stats.delivery_ratio < 0.7
    assert stats.as_dict()["loss_ratio"] == pytest.approx(stats.loss_ratio)


def test_frame_copy_for_preserves_payload_and_changes_id():
    frame = Frame(source="a", destination=BROADCAST_ADDRESS, payload={"k": 1}, size_bytes=99)
    copy = frame.copy_for("b")
    assert copy.destination == "b"
    assert copy.payload is frame.payload
    assert copy.size_bytes == 99
    assert copy.frame_id != frame.frame_id


def test_collision_drops_both_overlapping_frames():
    """The documented semantics: *both* frames of an overlapping pair are
    dropped at the receiver — the earlier frame's already-scheduled delivery
    is cancelled, not just the later arrival.
    """
    # a and b cannot hear each other; r hears both.
    positions = {"a": (0, 0), "b": (400, 0), "r": (200, 0)}
    sim, medium, sinks = build_medium(
        positions, collision_model=CollisionModel(bitrate_bps=1_000))
    medium.transmit(Frame(source="a", destination=BROADCAST_ADDRESS, payload="x", size_bytes=500))
    medium.transmit(Frame(source="b", destination=BROADCAST_ADDRESS, payload="y", size_bytes=500))
    sim.run()
    assert len(sinks["r"].received) == 0
    assert medium.stats.frames_collided == 2
    assert medium.stats.frames_delivered == 0


def test_collision_does_not_retract_already_delivered_frame():
    """A frame delivered before the overlapping transmission starts stays
    delivered; only the newcomer is dropped (and counted) then.
    """
    positions = {"a": (0, 0), "b": (400, 0), "r": (200, 0)}
    sim, medium, sinks = build_medium(
        positions, collision_model=CollisionModel(bitrate_bps=1_000))
    # Airtime of 500 bytes at 1 kbit/s is 4 s; delivery happens after 0.1 ms.
    medium.transmit(Frame(source="a", destination=BROADCAST_ADDRESS, payload="x", size_bytes=500))
    sim.run()
    assert len(sinks["r"].received) == 1
    sim.schedule(1.0, lambda: medium.transmit(
        Frame(source="b", destination=BROADCAST_ADDRESS, payload="y", size_bytes=500)))
    sim.run()
    assert len(sinks["r"].received) == 1
    assert medium.stats.frames_collided == 1
    assert medium.stats.frames_delivered == 1


def test_loss_models_default_rngs_are_deterministic():
    """Omitting ``rng`` must not silently break run-to-run determinism."""
    frame = Frame("a", "b", None)
    bernoulli_a, bernoulli_b = BernoulliLossModel(0.5), BernoulliLossModel(0.5)
    first = [bernoulli_a.is_lost(frame, (0, 0), (1, 1)) for _ in range(64)]
    second = [bernoulli_b.is_lost(frame, (0, 0), (1, 1)) for _ in range(64)]
    assert first == second
    assert True in first and False in first  # an actual random sequence
    far = ((0.0, 0.0), (240.0, 0.0))
    distance_a, distance_b = DistanceLossModel(), DistanceLossModel()
    first = [distance_a.is_lost(frame, *far) for _ in range(64)]
    second = [distance_b.is_lost(frame, *far) for _ in range(64)]
    assert first == second
