"""Tests for the Network container and NetworkInterface wiring."""

from __future__ import annotations

import pytest

from repro.netsim.network import Network
from repro.netsim.packet import BROADCAST_ADDRESS
from tests.conftest import make_network


def test_add_nodes_creates_interfaces_and_positions():
    network = make_network({"a": (0, 0), "b": (100, 0)})
    assert set(network.interfaces) == {"a", "b"}
    assert network.position_of("a") == (0, 0)


def test_position_of_unknown_node_raises():
    network = make_network({"a": (0, 0)})
    with pytest.raises(KeyError):
        network.position_of("ghost")


def test_duplicate_node_creation_rejected():
    network = make_network({"a": (0, 0)})
    with pytest.raises(ValueError):
        network.create_interface("a")


def test_set_position_moves_node():
    network = make_network({"a": (0, 0), "b": (600, 0)})
    assert network.neighbors_of("a") == []
    network.set_position("b", (100, 0))
    assert network.neighbors_of("a") == ["b"]


def test_set_position_unknown_node_raises():
    network = make_network({"a": (0, 0)})
    with pytest.raises(KeyError):
        network.set_position("ghost", (0, 0))


def test_broadcast_and_receive_through_interfaces():
    network = make_network({"a": (0, 0), "b": (100, 0)})
    received = []
    network.interfaces["b"].bind(lambda frame, now: received.append(frame.payload))
    network.interfaces["a"].broadcast("hello")
    network.run()
    assert received == ["hello"]


def test_unicast_through_interface():
    network = make_network({"a": (0, 0), "b": (100, 0), "c": (150, 0)})
    got_b, got_c = [], []
    network.interfaces["b"].bind(lambda frame, now: got_b.append(frame.payload))
    network.interfaces["c"].bind(lambda frame, now: got_c.append(frame.payload))
    frame = network.interfaces["a"].unicast("b", "direct")
    network.run()
    assert got_b == ["direct"]
    assert got_c == []
    assert frame.destination == "b"


def test_interface_down_blocks_send_and_receive():
    network = make_network({"a": (0, 0), "b": (100, 0)})
    received = []
    network.interfaces["b"].bind(lambda frame, now: received.append(frame.payload))
    network.fail_node("b")
    network.interfaces["a"].broadcast("lost")
    network.run()
    assert received == []
    network.recover_node("b")
    network.interfaces["a"].broadcast("found")
    network.run()
    assert received == ["found"]


def test_fail_node_blocks_outgoing_traffic_too():
    network = make_network({"a": (0, 0), "b": (100, 0)})
    received = []
    network.interfaces["b"].bind(lambda frame, now: received.append(frame.payload))
    network.fail_node("a")
    network.interfaces["a"].broadcast("nothing")
    network.run()
    assert received == []


def test_remove_node_detaches_everything():
    network = make_network({"a": (0, 0), "b": (100, 0)})
    network.attach_node("b", object())
    network.remove_node("b")
    assert "b" not in network.interfaces
    assert "b" not in network.positions
    assert "b" not in network.nodes
    assert network.neighbors_of("a") == []


def test_node_ids_sorted():
    network = make_network({"z": (0, 0), "a": (10, 0), "m": (20, 0)})
    assert network.node_ids() == ["a", "m", "z"]


def test_now_tracks_simulator_clock():
    network = make_network({"a": (0, 0)})
    network.run(until=4.0)
    assert network.now == 4.0


def test_broadcast_frame_metadata_passed_through():
    network = make_network({"a": (0, 0), "b": (100, 0)})
    seen = []
    network.interfaces["b"].bind(lambda frame, now: seen.append(frame.metadata))
    network.interfaces["a"].broadcast("payload", tag="probe")
    network.run()
    assert seen == [{"tag": "probe"}]


def test_broadcast_frame_is_broadcast_addressed():
    network = make_network({"a": (0, 0)})
    frame = network.interfaces["a"].broadcast("x")
    assert frame.destination == BROADCAST_ADDRESS
    assert frame.is_broadcast


def test_default_network_constructs_with_defaults():
    network = Network()
    network.add_nodes(["a", "b", "c", "d"])
    assert len(network.positions) == 4
