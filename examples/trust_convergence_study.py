#!/usr/bin/env python3
"""Trust-convergence study: liar ratio and forgetting-factor sweeps.

Reproduces Figures 2 and 3 of the paper with configurable parameters and adds
a β (forgetting factor) sweep, one of the design choices DESIGN.md calls out
for ablation:

* How fast does the detection aggregate converge as the fraction of colluding
  liars grows?
* How quickly do trust values return to the default once the attack stops,
  and how much slower do former liars recover?

The stock sweeps are also registered on the unified CLI::

    python -m repro.experiments run figure3 --axis "liar_ratio=6.7%,26.3%,43.2%"
    python -m repro.experiments run figure2

Usage::

    python examples/trust_convergence_study.py
"""

from __future__ import annotations

from repro import ScenarioConfig
from repro.experiments import (
    format_series,
    format_table,
    run_figure2,
    run_figure3,
)
from repro.experiments.config import figure2_config
from repro.trust.manager import TrustParameters


def liar_ratio_sweep() -> None:
    print("Part 1 — impact of the liar ratio on the detection (Figure 3)")
    configs = {
        f"{count} liars": ScenarioConfig(seed=7, liar_count=count)
        for count in (0, 2, 4, 6)
    }
    result = run_figure3(configs)
    print(format_series(result.detect_series(), title="Detect^{A,I} per round"))
    print()
    print(format_table(result.rows(), title="Convergence summary"))
    print()


def forgetting_factor_sweep() -> None:
    print("Part 2 — forgetting factor after the attack ceases (Figure 2)")
    rows = []
    for beta in (0.90, 0.95, 0.98):
        config = figure2_config(seed=7)
        config = config.with_overrides(
            trust=TrustParameters(
                alpha_beneficial=config.trust.alpha_beneficial,
                alpha_harmful=config.trust.alpha_harmful,
                beta=beta,
                minimum=config.trust.minimum,
                beta_recovery=config.trust.beta_recovery,
            )
        )
        result = run_figure2(config)
        gaps = result.recovery_gaps()
        honest_gap = max(abs(gaps[n]) for n in result.experiment.honest_responders)
        liar_gap = min(gaps[n] for n in result.experiment.liars)
        rows.append({
            "beta": beta,
            "rounds_after_stop": config.rounds - result.attack_stop_round,
            "max_honest_gap_to_default": round(honest_gap, 3),
            "min_former_liar_gap": round(liar_gap, 3),
        })
    print(format_table(rows, title="Recovery toward the default trust (0.4) per β"))
    print()
    print("Reading: honest nodes should end close to the default (small gap), while")
    print("former liars keep a visible gap — the defensive recovery the paper describes.")


def main() -> int:
    liar_ratio_sweep()
    forgetting_factor_sweep()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
