#!/usr/bin/env python3
"""Tour of the unified experiment engine.

Every evaluation driver — the paper's Figures 1–3, the ablation, the
confidence/γ sweep, the gravity ablation and the mobility study — is a
declarative spec executed by one runtime (:mod:`repro.experiments.engine`),
so all of them get parallel fan-out, SQLite resume and axis overrides for
free.  This example:

1. lists the registry,
2. runs the Figure 3 liar-ratio sweep across worker processes,
3. "kills" a confidence/γ sweep mid-way, then resumes it from the results
   store and shows the report is byte-identical to an uninterrupted run,
4. re-runs Figure 1 on the full netsim MANET stack (backend swap).

Everything here is also available from the shell::

    python -m repro.experiments list
    python -m repro.experiments run figure3 --workers 4
    python -m repro.experiments run confidence_sweep --db sweep.sqlite --resume
    python -m repro.experiments run figure1 --backend netsim --param cycles=6
    python -m repro.experiments report --db sweep.sqlite --experiment confidence_sweep

Usage::

    python examples/unified_experiments.py
"""

from __future__ import annotations

import os
import tempfile

from repro.experiments import (
    ResultsStore,
    format_table,
    list_experiments,
    run_experiment,
)


def main() -> int:
    print("Registered experiments:")
    for definition in list_experiments():
        cells = len(definition.expand())
        print(f"  {definition.name:<18} {cells:>2} cells  "
              f"[{definition.default_backend}]  {definition.description}")
    print()

    workers = min(4, os.cpu_count() or 1)
    print(f"Figure 3 sweep across {workers} worker process(es)...")
    figure3 = run_experiment("figure3", workers=workers)
    print(figure3.format_report())
    print()

    print("Confidence sweep, killed after 4 of 9 cells, then resumed...")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "sweep.sqlite")
        with ResultsStore(path) as store:
            partial = run_experiment("confidence_sweep", store=store,
                                     max_new_runs=4)
            print(f"  first invocation executed "
                  f"{len(partial.executed_run_ids)} cells, then 'died'")
        with ResultsStore(path) as store:
            resumed = run_experiment("confidence_sweep", store=store,
                                     workers=workers)
            print(f"  resume skipped {len(resumed.skipped_run_ids)} stored "
                  f"cells, executed {len(resumed.executed_run_ids)}")
            reference = run_experiment("confidence_sweep").format_report()
            print(f"  byte-identical to an uninterrupted run: "
                  f"{resumed.format_report() == reference}")
    print()

    print("Figure 1 on the full netsim MANET stack (backend swap)...")
    netsim = run_experiment("figure1", backend="netsim",
                            params={"total_nodes": 10, "cycles": 4,
                                    "warmup": 30.0, "attack_start": 25.0})
    print(format_table(netsim.rows(),
                       title="Figure 1 rows, measured on the simulated MANET"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
