#!/usr/bin/env python3
"""A 16-node random MANET under a combined attack.

Builds a random MANET (uniform placement, unit-disk radio), compromises one
node with a link-spoofing attack plus a blackhole, recruits colluding liars,
and lets every node run the full detector stack.  The example then reports:

* the victim's investigation of the attacker (Detect trajectory and verdict),
* the victim's trust table (attacker and responding liars collapse),
* substrate statistics (events, frames, OLSR messages) showing what the
  detection cost on top of routing.

Usage::

    python examples/manet_under_attack.py [node_count] [liar_count] [seed]
"""

from __future__ import annotations

import sys

from repro.attacks import BlackholeAttack
from repro.experiments import build_manet_scenario, format_table, sparkline


def main() -> int:
    node_count = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    liar_count = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 23

    scenario = build_manet_scenario(node_count=node_count, liar_count=liar_count,
                                    seed=seed, attack_start=40.0)
    # The spoofing attacker also black-holes the traffic it attracts.
    blackhole = BlackholeAttack()
    blackhole.schedule.start_time = 40.0
    blackhole.install(scenario.attacker)

    print(f"MANET: {node_count} nodes, attacker={scenario.attacker_id}, "
          f"victim={scenario.victim_id}, liars={sorted(scenario.liar_ids)}\n")

    scenario.warm_up(35.0)
    scenario.victim.detection_round()  # absorb convergence-era triggers

    trajectory = []
    rows = []
    for cycle in range(12):
        for result in scenario.run_detection_cycle(10.0):
            if result.suspect != scenario.attacker_id:
                continue
            trajectory.append(result.decision.detect_value)
            rows.append({
                "cycle": cycle,
                "answers": len([v for v in result.answers.values() if v != 0.0]),
                "unreached": len(result.responders_unreached),
                "detect": round(result.decision.detect_value, 3),
                "outcome": str(result.decision.outcome),
            })

    print(format_table(rows, title=f"Investigation of {scenario.attacker_id} by {scenario.victim_id}"))
    print()
    if trajectory:
        print("Detect trajectory: " + sparkline(trajectory, low=-1.0, high=1.0)
              + f"   ({trajectory[0]:+.2f} -> {trajectory[-1]:+.2f})")
        print()

    trust_rows = []
    victim_trust = scenario.victim.trust
    for node_id in sorted(victim_trust.known_subjects()):
        role = ("attacker" if node_id == scenario.attacker_id
                else "liar" if node_id in scenario.liar_ids else "honest")
        trust_rows.append({"node": node_id, "role": role,
                           "trust": round(victim_trust.trust_of(node_id), 3)})
    print(format_table(trust_rows, title=f"Trust table of {scenario.victim_id}"))
    print()

    stats = scenario.network.medium.stats
    olsr_rx = sum(n.olsr.stats.messages_received for n in scenario.nodes.values())
    print(f"Substrate: {scenario.network.simulator.processed_events} simulated events, "
          f"{stats.frames_sent} frames sent, {olsr_rx} OLSR messages processed, "
          f"{blackhole.dropped_count} messages black-holed by the attacker.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
