#!/usr/bin/env python3
"""Compare the paper's trust-weighted detection against the related-work baselines.

All methods receive the exact same stream of investigation answers produced by
the paper's 16-node scenario (10 honest responders denying the spoofed link,
4 colluding liars confirming it):

* ``trust-weighted``  — the paper's Eq. 8 aggregate + entropy trust system,
* ``unweighted-vote`` — plain majority voting (no trust),
* ``cap-olsr``        — entropy trust over raw observation counts,
* ``beta-reputation`` — Bayesian Beta reputation with deviation test,
* ``report-averaging``— cumulative average of the reports.

The same comparison runs from the unified CLI (with ``--workers``/``--db``
available like every registered experiment)::

    python -m repro.experiments run ablation --param liar_count=4

Usage::

    python examples/baseline_comparison.py [liar_count]
"""

from __future__ import annotations

import sys

from repro import ScenarioConfig
from repro.experiments import (
    format_series,
    format_table,
    run_ablation,
    run_experiment,
)


def main() -> int:
    liar_count = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    config = ScenarioConfig(seed=7, liar_count=liar_count)
    print(f"Scenario: {config.total_nodes} nodes, {liar_count} liars "
          f"({config.liar_percentage():.1f}% of responders), {config.rounds} rounds\n")

    # The summary table comes from the engine (the registered "ablation"
    # spec); the per-round trajectories below use the library API directly.
    engine_run = run_experiment("ablation", params={"liar_count": liar_count})
    result = run_ablation(config)
    assert engine_run.rows() == result.as_rows()  # one runtime, same rows

    print(format_table(engine_run.rows(),
                       title="Detection round and final score per method"))
    print()
    print(format_series({name: t.scores for name, t in result.methods.items()},
                        title="Score trajectory per method (lower = attacker flagged)"))
    print()

    ours = result.methods["trust-weighted"]
    vote = result.methods["unweighted-vote"]
    print("Reading:")
    print(f"  * the trust-weighted aggregate ends at {ours.final_score:+.3f}; the liars'")
    print("    weight shrinks every round, so their influence fades (paper Figure 3).")
    print(f"  * the plain vote stays at {vote.final_score:+.3f}: without a trust system the")
    print("    colluders keep their full voting power forever.")
    print("  * CAP-OLSR / Beta / averaging treat every report equally, so their score")
    print("    improves only as slowly as the honest majority accumulates.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
