#!/usr/bin/env python3
"""Scenario-campaign sweep across the paper's evaluation axes.

This example shows the campaign runner (:mod:`repro.experiments.campaign`)
exploring a small grid of full-stack MANET runs in parallel worker
processes: node count × loss model × mobility × liar fraction, each cell
seeded stably so the sweep is reproducible run-to-run.  The same sweep is
available from the shell::

    python -m repro.experiments.campaign \
        --node-counts 8,16 --liar-fractions 0.0,0.25 \
        --loss bernoulli:0.0,bernoulli:0.2 --speeds 0,4 --workers 4

Usage::

    python examples/campaign_sweep.py
"""

from __future__ import annotations

import os

from repro.experiments import CampaignGrid, run_campaign


def main() -> int:
    grid = CampaignGrid(
        node_counts=(8, 16),
        liar_fractions=(0.0, 0.25),
        loss_models=("bernoulli:0.0", "bernoulli:0.2"),
        max_speeds=(0.0, 4.0),
        base_seed=7,
        warmup=25.0,
        cycles=3,
    )
    print(f"Expanding the grid into {grid.size()} seeded scenario cells...")
    workers = min(4, os.cpu_count() or 1)
    print(f"Running on {workers} worker processes (results are identical "
          f"whatever the worker count).\n")
    result = run_campaign(grid, workers=workers)
    print(result.format_report())

    detected = sum(1 for run in result.runs
                   if run.final_detect is not None and run.final_detect < 0)
    print(f"\n{detected}/{len(result.runs)} cells ended with a negative Detect "
          f"value (attacker exposed); cells with liars or heavy loss shield "
          f"the attacker, exactly the axis the paper's Figure 3 sweeps.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
