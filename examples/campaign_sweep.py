#!/usr/bin/env python3
"""Detector-vs-baselines scenario campaign with a resumable results store.

This example shows the campaign runner (:mod:`repro.experiments.campaign`)
sweeping the paper's detector *and* the related-work baselines
(:mod:`repro.baselines`) over the same grid of full-stack MANET runs, with
every completed cell committed to an SQLite results store
(:mod:`repro.experiments.results`).  The second invocation of the identical
grid resumes from the store: nothing is re-simulated, the report is
re-aggregated from the database and is byte-identical to the first one.

The same sweep is available from the unified experiments CLI::

    python -m repro.experiments campaign \
        --node-counts 12 --liar-fractions 0.0,0.25 \
        --systems detector,watchdog,beta,cap-olsr,averaging \
        --warmup 25 --cycles 3 --workers 4 --db campaign.sqlite --resume

    python -m repro.experiments campaign report --db campaign.sqlite

Usage::

    python examples/campaign_sweep.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.experiments import CampaignGrid, ResultsStore, SYSTEMS, run_campaign


def main() -> int:
    grid = CampaignGrid(
        node_counts=(12,),
        liar_fractions=(0.0, 0.25),
        loss_models=("bernoulli:0.0",),
        max_speeds=(0.0,),
        systems=SYSTEMS,
        base_seed=7,
        warmup=25.0,
        cycles=3,
    )
    print(f"Expanding the grid into {grid.size()} seeded scenario cells "
          f"({len(SYSTEMS)} systems x 2 liar fractions)...")
    workers = min(4, os.cpu_count() or 1)

    with tempfile.TemporaryDirectory() as tmp:
        db_path = os.path.join(tmp, "campaign.sqlite")

        with ResultsStore(db_path) as store:
            started = time.perf_counter()
            result = run_campaign(grid, workers=workers, store=store)
            cold = time.perf_counter() - started
            report = result.format_report()
            rows = result.as_rows()  # materialise before the store closes
        print(f"\nCold campaign: executed {len(result.executed_run_ids)} cells "
              f"in {cold:.1f} s on {workers} workers.\n")
        print(report)

        # Re-invoking the identical grid resumes from the store: zero cells
        # execute and the report is rebuilt from SQLite, byte for byte.
        with ResultsStore(db_path) as store:
            started = time.perf_counter()
            resumed = run_campaign(grid, workers=workers, store=store)
            warm = time.perf_counter() - started
            resumed_report = resumed.format_report()
        print(f"\nResumed campaign: skipped {len(resumed.skipped_run_ids)} stored "
              f"cells in {warm * 1000:.0f} ms; report byte-identical: "
              f"{resumed_report == report}.")

    flagged = {}
    for row in rows:
        if row["flagged"]:
            flagged[row["system"]] = flagged.get(row["system"], 0) + 1
    print("\nCells where each system flagged the attacker as an intruder:")
    for system in SYSTEMS:
        print(f"  {system:<10} {flagged.get(system, 0)}/{grid.size() // len(SYSTEMS)}")

    detects = {row["liar_fraction"]: row["final_detect"]
               for row in rows if row["system"] == "detector"}
    print("\nReading: the liar axis shows the shielding effect — the detector's "
          "aggregate (Eq. 8) is")
    for fraction in sorted(detects):
        value = detects[fraction]
        rendered = f"{value:+.3f}" if value is not None else "n/a"
        print(f"  Detect = {rendered} at liar fraction {fraction:g}")
    print("and the unweighted baselines swing the same way but without the "
          "detector's confidence gate (Eq. 10): they flag on raw counts, while "
          "the paper's decision rule only convicts once the confidence "
          "interval clears gamma — fewer false alarms at the price of needing "
          "more responders per round.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
