#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline experiment in a few lines.

Runs the 16-node scenario of the evaluation section (1 link-spoofing
attacker, 4 colluding liars, random initial trust, 25 investigation rounds)
and prints the Figure 1 trust trajectories plus the detection trajectory.

The same experiment is one command away on the unified CLI (with parallel
fan-out and resumable storage)::

    python -m repro.experiments run figure1

Usage::

    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import ScenarioConfig, run_figure1
from repro.experiments import format_table, format_trajectories, sparkline


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    config = ScenarioConfig(seed=seed)

    print(f"Scenario: {config.total_nodes} nodes, 1 attacker, "
          f"{config.effective_liar_count()} liars "
          f"({config.liar_percentage():.1f}% of responders), {config.rounds} rounds\n")

    result = run_figure1(config)
    experiment = result.experiment

    roles = {node: experiment.role_of(node) for node in result.trajectories}
    print(format_trajectories(result.trajectories, roles=roles,
                              title="Trust assigned by the attacked node (per round)"))
    print()
    print(format_table(result.rows(), title="Initial vs final trust"))
    print()

    detect = experiment.detect_values()
    print("Detection aggregate Detect^{A,I} per round "
          "(-1 = the advertised link is spoofed):")
    print("  " + sparkline(detect, low=-1.0, high=1.0))
    print("  first round: %+.3f   round 10: %+.3f   last round: %+.3f"
          % (detect[0], detect[min(10, len(detect) - 1)], detect[-1]))
    print(f"  final verdict on the attacker: {experiment.final_outcome()}")

    report = result.trajectory_report()
    print()
    print("Paper-shape checks:")
    print(f"  liars monotonically losing trust ........ {report.liars_all_decreasing()}")
    print(f"  honest nodes never losing trust ......... {report.honest_all_non_decreasing()}")
    print(f"  honest-vs-liar separation at round 25 ... {report.final_separation():.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
