#!/usr/bin/env python3
"""Full-stack link-spoofing campaign on a simulated MANET.

This example exercises the complete pipeline of the paper on the canonical
6-node topology:

1. OLSR converges (HELLO/TC exchange, MPR selection, routing tables).
2. At t = 40 s the ``attacker`` node starts advertising spoofed symmetric
   links to two nodes it cannot actually reach, and — thanks to its inflated
   coverage and high willingness — replaces the honest ``relay`` as the
   victim's MPR.
3. The victim's log analyzer observes the MPR replacement (evidence E1) and
   opens a cooperative investigation: the 2-hop neighbours covered by both
   MPRs are interrogated over paths that avoid the suspect.
4. The answers are aggregated with the trust system (Eq. 8), the confidence
   interval (Eq. 9) and the decision rule (Eq. 10) produce the verdict, and
   the trust table is updated round after round.

Usage::

    python examples/link_spoofing_campaign.py
"""

from __future__ import annotations

from repro.experiments import build_canonical_scenario, format_table
from repro.logs.records import LogCategory


def print_olsr_state(scenario, title: str) -> None:
    rows = []
    for node_id in sorted(scenario.nodes):
        node = scenario.nodes[node_id].olsr
        rows.append({
            "node": node_id,
            "symmetric_neighbors": ",".join(sorted(node.symmetric_neighbors())),
            "mprs": ",".join(sorted(node.mpr_set)) or "-",
            "routes": len(node.routing_table),
        })
    print(format_table(rows, title=title))
    print()


def main() -> int:
    scenario = build_canonical_scenario(seed=11, attack_start=40.0)
    victim, attacker = scenario.victim, scenario.attacker

    print("Phase 1 — OLSR convergence (no attack yet)")
    scenario.warm_up(35.0)
    print_olsr_state(scenario, "Protocol state at t=35s")
    victim.detection_round()  # consume convergence-era log records

    print("Phase 2 — the attacker starts spoofing links to edge1 and edge2 at t=40s")
    scenario.network.run(until=60.0)
    print_olsr_state(scenario, "Protocol state at t=60s (note the victim's MPR change)")

    mpr_records = victim.olsr.log.by_event("MPR_SET_CHANGED")[-1]
    print(f"Victim audit log: MPR set changed from "
          f"{mpr_records.get_list('previous')} to {mpr_records.get_list('mprs')}\n")

    print("Phase 3 — log-driven detection and cooperative investigation")
    cycles = []
    for cycle in range(12):
        for result in scenario.run_detection_cycle(10.0):
            if result.suspect != attacker.node_id:
                continue
            cycles.append({
                "cycle": cycle,
                "responders": ",".join(sorted(result.answers)),
                "denials": sum(1 for v in result.answers.values() if v < 0),
                "confirmations": sum(1 for v in result.answers.values() if v > 0),
                "detect": round(result.decision.detect_value, 3),
                "outcome": str(result.decision.outcome),
            })
    print(format_table(cycles, title="Investigation of the attacker, cycle by cycle"))
    print()

    print("Phase 4 — final trust table at the victim")
    trust_rows = [{"node": node, "trust": round(value, 3)}
                  for node, value in sorted(victim.trust_table().items())]
    print(format_table(trust_rows))
    print()

    hello_logs = len(victim.olsr.log.by_category(LogCategory.MESSAGE_RX))
    print(f"The victim parsed {len(victim.olsr.log)} audit-log records "
          f"({hello_logs} received-message records) without touching a single packet payload.")
    verdicts = [c["outcome"] for c in cycles]
    print(f"Final verdict on {attacker.node_id!r}: {verdicts[-1]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
