"""Figure 3 — Impact of liars on the detection.

Paper shape: the more liars, the slower Detect^{A,I} converges, but it falls
below −0.4 by round 10 even with ≈ 43 % liars and reaches ≈ −0.8 for every
liar ratio in the last rounds.
"""

from __future__ import annotations

from repro.experiments import format_series, format_table, run_figure3
from repro.experiments.config import figure3_configs




def _run():
    return run_figure3(figure3_configs())


def test_bench_figure3_liar_impact(benchmark, emit):
    result = benchmark(_run)

    series = format_series(result.detect_series(),
                           title="Figure 3 — Detect^{A,I} per round, by liar ratio")
    table = format_table(result.rows(), title="Figure 3 — convergence summary")
    emit("FIGURE 3 (Impact of liars)", series + "\n\n" + table)

    detect = result.detect_series()
    for label, values in detect.items():
        assert values[10] <= -0.4, f"{label} not below -0.4 by round 10"
        assert values[-1] <= -0.75, f"{label} did not converge"
    convergence = result.convergence_rounds(-0.4)
    assert convergence["6.7%"] <= convergence["26.3%"] <= convergence["43.2%"]

    benchmark.extra_info["final_detect"] = {
        label: round(value, 3) for label, value in result.final_values().items()
    }
    benchmark.extra_info["rounds_to_minus_0.4"] = convergence
