"""Micro-benchmarks of the trust-system primitives (Eqs. 5, 8 and 9).

The paper's future work mentions evaluating "the resource consumption that is
related to the trust system"; these micro-benchmarks record the per-operation
cost of a trust-slot update, a detection aggregation and a confidence-interval
computation so the overhead of securing the detection can be budgeted.
"""

from __future__ import annotations

import random

from repro.core.decision import aggregate_detection, evaluate_investigation
from repro.trust.confidence import margin_of_error, weighted_margin_of_error
from repro.trust.evidence import EvidenceKind, TrustEvidence
from repro.trust.manager import TrustManager, TrustParameters


def test_bench_trust_slot_update(benchmark):
    manager = TrustManager("me", TrustParameters())
    evidences = [
        TrustEvidence("me", "subject", EvidenceKind.INVESTIGATION_AGREEMENT, value=1.0),
        TrustEvidence("me", "subject", EvidenceKind.INVESTIGATION_DISAGREEMENT, value=-1.0),
        TrustEvidence("me", "subject", EvidenceKind.LINK_SPOOFING, value=-0.8,
                      firsthand=False, imminent=True),
    ]

    def update():
        return manager.update("subject", evidences, now=0.0)

    value = benchmark(update)
    assert 0.0 <= value <= 1.0


def test_bench_detection_aggregation_eq8(benchmark):
    rng = random.Random(3)
    answers = {f"s{i}": rng.choice([-1.0, 0.0, 1.0]) for i in range(50)}
    trust = {f"s{i}": rng.random() for i in range(50)}

    result = benchmark(lambda: aggregate_detection(answers, trust))
    assert -1.0 <= result <= 1.0


def test_bench_confidence_interval_eq9(benchmark):
    rng = random.Random(5)
    samples = [rng.choice([-1.0, 1.0]) for _ in range(50)]
    weights = [rng.random() for _ in range(50)]

    def compute():
        return margin_of_error(samples, 0.95), weighted_margin_of_error(samples, weights, 0.95)

    plain, weighted = benchmark(compute)
    assert plain >= 0.0 and weighted >= 0.0


def test_bench_full_round_evaluation(benchmark):
    rng = random.Random(7)
    answers = {f"s{i}": rng.choice([-1.0, 1.0]) for i in range(14)}
    trust = {f"s{i}": rng.random() for i in range(14)}

    decision = benchmark(lambda: evaluate_investigation("suspect", answers, trust))
    assert decision.suspect == "suspect"
