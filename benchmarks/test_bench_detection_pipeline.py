"""End-to-end pipeline bench — canonical full-stack scenario.

Times the complete pipeline of the paper on the deterministic 6-node
topology: OLSR convergence, link-spoofing attack, log analysis (E1/E2),
cooperative investigation over suspect-avoiding paths, trust updates and the
final verdict.
"""

from __future__ import annotations

from repro.core.decision import DecisionOutcome
from repro.experiments import format_table
from repro.experiments.scenario import build_canonical_scenario


def _run_pipeline():
    scenario = build_canonical_scenario(seed=11, attack_start=40.0)
    scenario.warm_up(35.0)
    scenario.victim.detection_round()
    results = []
    for _ in range(12):
        results.extend(scenario.run_detection_cycle(10.0))
    return scenario, results


def test_bench_full_detection_pipeline(benchmark, emit):
    scenario, results = benchmark.pedantic(_run_pipeline, rounds=1, iterations=1)

    attacker_rounds = [r for r in results if r.suspect == "attacker"]
    rows = [
        {
            "cycle": index,
            "detect": round(r.decision.detect_value, 3),
            "margin": round(r.decision.interval.margin, 3),
            "outcome": str(r.decision.outcome),
        }
        for index, r in enumerate(attacker_rounds)
    ]
    trust_rows = [
        {"node": node, "trust": round(value, 3)}
        for node, value in sorted(scenario.victim.trust_table().items())
    ]
    emit("END-TO-END PIPELINE (canonical scenario)",
         format_table(rows, title="Verdict on the attacker per detection cycle")
         + "\n\n" + format_table(trust_rows, title="Victim's final trust table"))

    assert attacker_rounds[-1].decision.outcome == DecisionOutcome.INTRUDER
    assert scenario.victim.trust.trust_of("attacker") < 0.1
    benchmark.extra_info["final_detect"] = round(attacker_rounds[-1].decision.detect_value, 3)
    benchmark.extra_info["cycles_to_verdict"] = next(
        (i for i, r in enumerate(attacker_rounds)
         if r.decision.outcome == DecisionOutcome.INTRUDER), None)
