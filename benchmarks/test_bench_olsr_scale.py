"""Table C (substrate) — OLSR / simulator scale and the medium fast path.

Documents the cost of the substrate the detection runs on: simulated events,
messages processed and wall-clock throughput for growing network sizes.  This
is not a paper figure; it records that the substitution (custom discrete-event
simulator instead of a testbed) is fast enough to regenerate every experiment
on a laptop.

``test_bench_medium_fast_path`` additionally compares the medium's spatial
neighbour index against the brute-force all-interfaces scan on identical
workloads (broadcast floods plus connectivity queries at constant node
density) and asserts the fast path wins from 64 nodes up.

``test_bench_batch_delivery_speedup`` compares the medium's batched broadcast
resolution against the per-receiver scalar path, and
``test_bench_campaign_cell_scale`` records a full campaign cell at 256 and
1,024 nodes (the latter behind ``REPRO_SCALE_BENCH=1``: it runs for several
minutes by design).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.experiments import format_table
from repro.experiments.campaign import CampaignSpec, execute_spec
from repro.experiments.scenario import build_manet_scenario
from repro.netsim.engine import HeapSimulator, Simulator
from repro.netsim.medium import (
    DistanceLossModel,
    UnitDiskPropagation,
    WirelessMedium,
)
from repro.netsim.mobility import GridPlacement
from repro.netsim.network import Network
from repro.netsim.packet import BROADCAST_ADDRESS, Frame


def _run_network(node_count: int, duration: float = 60.0):
    scenario = build_manet_scenario(node_count=node_count, liar_count=0, seed=5,
                                    attack_start=duration * 10)
    scenario.warm_up(duration)
    return scenario


@pytest.mark.parametrize("node_count", [16, 32, 64])
def test_bench_olsr_simulation_scale(benchmark, emit, node_count):
    scenario = benchmark.pedantic(_run_network, args=(node_count,), rounds=1, iterations=1)

    simulator = scenario.network.simulator
    stats = scenario.network.medium.stats
    total_rx = sum(node.olsr.stats.messages_received for node in scenario.nodes.values())
    total_tx = sum(node.olsr.stats.messages_sent for node in scenario.nodes.values())
    rows = [{
        "nodes": node_count,
        "simulated_seconds": 60.0,
        "events_processed": simulator.processed_events,
        "frames_sent": stats.frames_sent,
        "frames_delivered": stats.frames_delivered,
        "olsr_messages_sent": total_tx,
        "olsr_messages_received": total_rx,
        "mean_routes_per_node": round(
            sum(len(n.olsr.routing_table) for n in scenario.nodes.values())
            / len(scenario.nodes), 1),
    }]
    emit(f"TABLE C (Simulator scale, {node_count} nodes)",
         format_table(rows, title="Table C — 60 simulated seconds of OLSR"))

    assert simulator.processed_events > 0
    assert stats.frames_delivered > 0
    benchmark.extra_info.update(rows[0])


class _Sink:
    """Frame sink: counts deliveries without protocol processing."""

    def __init__(self):
        self.received = 0

    def receive(self, frame, now):
        self.received += 1


def _medium_workload(node_count: int, use_spatial_index: bool, rounds: int = 20) -> float:
    """Broadcast floods + connectivity queries; returns elapsed wall-clock."""
    simulator = Simulator()
    medium = WirelessMedium(
        simulator,
        propagation=UnitDiskPropagation(radio_range=250.0),
        use_spatial_index=use_spatial_index,
    )
    network = Network(simulator=simulator, medium=medium,
                      mobility=GridPlacement(spacing=180.0))
    node_ids = [f"n{i:03d}" for i in range(node_count)]
    network.add_nodes(node_ids)
    sinks = {}
    for node_id in node_ids:
        medium.unregister(node_id)
        sink = _Sink()
        medium.register(node_id, sink)
        sinks[node_id] = sink
    started = time.perf_counter()
    for _ in range(rounds):
        for node_id in node_ids:
            medium.transmit(Frame(source=node_id, destination=BROADCAST_ADDRESS,
                                  payload=None))
        simulator.run()
        medium.connectivity_matrix()
    elapsed = time.perf_counter() - started
    assert sum(sink.received for sink in sinks.values()) > 0
    return elapsed


@pytest.mark.parametrize("node_count", [64, 128, 256])
def test_bench_medium_fast_path(benchmark, emit, node_count):
    """The spatial index must beat the brute-force scan at >= 64 nodes.

    Both paths are measured best-of-3 so a scheduler hiccup during a single
    measurement cannot flip the comparison on a loaded machine.
    """
    fast = benchmark.pedantic(
        _medium_workload, args=(node_count, True), rounds=1, iterations=1)
    fast = min([fast] + [_medium_workload(node_count, True) for _ in range(2)])
    brute = min(_medium_workload(node_count, use_spatial_index=False)
                for _ in range(3))
    rows = [{
        "nodes": node_count,
        "fast_path_s": round(fast, 4),
        "brute_force_s": round(brute, 4),
        "speedup": round(brute / fast, 2) if fast else None,
    }]
    emit(f"TABLE C' (Medium fast path vs brute force, {node_count} nodes)",
         format_table(rows, title="Table C' — spatial index speedup"))
    benchmark.extra_info.update(rows[0])
    assert fast < brute, (
        f"spatial index ({fast:.4f}s) should beat brute force ({brute:.4f}s) "
        f"at {node_count} nodes"
    )


def _delivery_workload(node_count: int, batch_delivery: bool,
                       rounds: int = 10) -> float:
    """Broadcast floods through a lossy dense channel; returns wall-clock.

    Node density (grid spacing 60 m at 250 m range, ~50 receivers per
    broadcast) matches what a 1,024-node campaign cell's flooding core sees;
    no connectivity queries, so the measurement isolates delivery resolution.
    """
    simulator = Simulator()
    medium = WirelessMedium(
        simulator,
        propagation=UnitDiskPropagation(radio_range=250.0),
        loss_model=DistanceLossModel(radio_range=250.0, rng=random.Random(9)),
        batch_delivery=batch_delivery,
    )
    network = Network(simulator=simulator, medium=medium,
                      mobility=GridPlacement(spacing=60.0))
    node_ids = [f"n{i:03d}" for i in range(node_count)]
    network.add_nodes(node_ids)
    sinks = {}
    for node_id in node_ids:
        medium.unregister(node_id)
        sink = _Sink()
        medium.register(node_id, sink)
        sinks[node_id] = sink
    started = time.perf_counter()
    for _ in range(rounds):
        for node_id in node_ids:
            medium.transmit(Frame(source=node_id, destination=BROADCAST_ADDRESS,
                                  payload=None))
        simulator.run()
    elapsed = time.perf_counter() - started
    assert sum(sink.received for sink in sinks.values()) > 0
    return elapsed


@pytest.mark.parametrize("node_count", [256, 512])
def test_bench_batch_delivery_speedup(benchmark, emit, node_count):
    """Batched broadcast resolution must clearly beat the scalar path.

    Best-of-3 on both sides so one scheduler hiccup cannot flip the
    comparison; the assertion is relaxed on starved single-core runners.
    """
    batch = benchmark.pedantic(
        _delivery_workload, args=(node_count, True), rounds=1, iterations=1)
    batch = min([batch] + [_delivery_workload(node_count, True)
                           for _ in range(2)])
    scalar = min(_delivery_workload(node_count, False) for _ in range(3))
    speedup = scalar / batch if batch else float("inf")
    rows = [{
        "nodes": node_count,
        "batch_s": round(batch, 4),
        "scalar_s": round(scalar, 4),
        "speedup": round(speedup, 2),
    }]
    emit(f"TABLE C'' (Batched vs scalar delivery, {node_count} nodes)",
         format_table(rows, title="Table C'' — batched delivery speedup"))
    benchmark.extra_info.update(rows[0])
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert speedup >= 3.0, (
            f"batched delivery ({batch:.4f}s) should be >= 3x faster than "
            f"scalar ({scalar:.4f}s) at {node_count} nodes, got {speedup:.2f}x")
    else:
        assert speedup >= 1.5, (
            f"batched delivery ({batch:.4f}s) should beat scalar "
            f"({scalar:.4f}s) even on one core, got {speedup:.2f}x")


def _engine_workload(simulator, node_count: int = 256,
                     horizon: float = 120.0) -> int:
    """Campaign-shaped scheduler traffic, engine cost only.

    Replays the event mix a ``node_count``-node campaign cell pushes through
    the scheduler — per-node jittered HELLO/TC periodic chains plus plain
    housekeeping, one global mobility tick, a fan-out of delivery one-shots
    per HELLO emission, and a slice of cancelled AODV-style timers — with
    no-op callbacks, so the measurement isolates the engine itself (in the
    full cell the protocol work on top is identical for both engines).
    Returns the number of events processed.
    """
    rng = random.Random(17)
    sink = []  # pending "retry timers", half of which get cancelled

    def deliver():
        return None

    def emit_hello(fanout: int):
        for _ in range(fanout):
            simulator.post(0.001, deliver)
        handle = simulator.schedule(rng.uniform(1.0, 3.0), deliver)
        sink.append(handle)
        if len(sink) >= 64:
            for stale in sink[::2]:
                stale.cancel()
            del sink[:]

    for node in range(node_count):
        node_rng = random.Random(node)
        simulator.schedule_periodic(
            2.0, emit_hello, 18,
            start_delay=rng.uniform(0.0, 1.0),
            jitter=0.5, rng=node_rng)
        simulator.schedule_periodic(
            5.0, emit_hello, 6,
            start_delay=rng.uniform(0.0, 1.0) + 2.0,
            jitter=0.5, rng=node_rng)
        simulator.schedule_periodic(2.0, deliver, start_delay=2.0)
    simulator.schedule_periodic(1.0, deliver, start_delay=1.0)  # mobility tick
    simulator.run(until=horizon)
    return simulator.processed_events


@pytest.mark.parametrize("node_count", [256])
def test_bench_engine_throughput_vs_heap(benchmark, emit, node_count):
    """The timer-wheel engine must push >= 1.5x the events/sec of the PR 8
    heap engine on the 256-node campaign cell's scheduler workload.

    Best-of-3 on both engines so one scheduler hiccup cannot flip the
    comparison; both process the exact same event stream (the parity suite
    separately proves order identity).
    """
    def measure(engine_cls):
        simulator = engine_cls()
        started = time.perf_counter()
        processed = _engine_workload(simulator, node_count)
        return processed, time.perf_counter() - started

    events, wheel_s = benchmark.pedantic(
        measure, args=(Simulator,), rounds=1, iterations=1)
    for _ in range(2):
        _, again = measure(Simulator)
        wheel_s = min(wheel_s, again)
    heap_events, heap_s = measure(HeapSimulator)
    for _ in range(2):
        _, again = measure(HeapSimulator)
        heap_s = min(heap_s, again)
    assert events == heap_events  # identical logical work

    wheel_evps = events / wheel_s
    heap_evps = heap_events / heap_s
    speedup = wheel_evps / heap_evps
    rows = [{
        "nodes": node_count,
        "events": events,
        "wheel_events_per_s": round(wheel_evps),
        "heap_events_per_s": round(heap_evps),
        "speedup": round(speedup, 2),
    }]
    emit(f"TABLE C'''' (Engine throughput, {node_count}-node cell workload)",
         format_table(rows, title="Table C'''' — timer wheel vs heap engine"))
    benchmark.extra_info.update(rows[0])
    assert speedup >= 1.5, (
        f"timer-wheel engine ({wheel_evps:.0f} ev/s) should be >= 1.5x the "
        f"heap engine ({heap_evps:.0f} ev/s), got {speedup:.2f}x")


def _campaign_cell(node_count: int, area_size: float):
    """One reduced campaign cell (2 detection cycles) at the given scale."""
    spec = CampaignSpec(
        run_id="scale-bench", seed=1, node_count=node_count,
        liar_fraction=0.1, loss_model="bernoulli", loss_probability=0.1,
        max_speed=2.0, attack_variant="false_existing_link",
        area_size=area_size, warmup=12.0, cycles=2,
    )
    return execute_spec(spec).as_row()


@pytest.mark.parametrize("node_count,area_size", [(256, 2800.0),
                                                  (1024, 5600.0)])
def test_bench_campaign_cell_scale(benchmark, emit, node_count, area_size):
    """A full campaign cell (batch mode) completes at scale.

    The 1,024-node cell is the tentpole's target workload; it needs several
    minutes of wall-clock even on the batched core, so it only runs when
    ``REPRO_SCALE_BENCH=1`` is exported (see README "Scaling").

    Export ``REPRO_SCALE_BASELINE_S=<seconds>`` to additionally assert the
    run beats a recorded wall-clock (e.g. the heap-engine number for the
    same cell on the same machine); absolute seconds are machine-specific,
    so there is no hard-coded floor.
    """
    if node_count > 256 and os.environ.get("REPRO_SCALE_BENCH") != "1":
        pytest.skip("set REPRO_SCALE_BENCH=1 to run the 1,024-node cell")
    started = time.perf_counter()
    row = benchmark.pedantic(_campaign_cell, args=(node_count, area_size),
                             rounds=1, iterations=1)
    elapsed = time.perf_counter() - started
    rows = [{
        "nodes": node_count,
        "area_m": area_size,
        "wall_clock_s": round(elapsed, 1),
        "events": row["events"],
        "events_per_s": round(row["events"] / elapsed) if elapsed else None,
    }]
    emit(f"TABLE C''' (Campaign cell at scale, {node_count} nodes)",
         format_table(rows, title="Table C''' — campaign cell wall-clock"))
    benchmark.extra_info.update(rows[0])
    assert row["events"] > 0
    baseline = os.environ.get("REPRO_SCALE_BASELINE_S")
    if baseline:
        assert elapsed < float(baseline), (
            f"{node_count}-node cell took {elapsed:.1f}s, expected to beat "
            f"the recorded baseline of {baseline}s")
