"""Table C (substrate) — OLSR / simulator scale.

Documents the cost of the substrate the detection runs on: simulated events,
messages processed and wall-clock throughput for growing network sizes.  This
is not a paper figure; it records that the substitution (custom discrete-event
simulator instead of a testbed) is fast enough to regenerate every experiment
on a laptop.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table
from repro.experiments.scenario import build_manet_scenario


def _run_network(node_count: int, duration: float = 60.0):
    scenario = build_manet_scenario(node_count=node_count, liar_count=0, seed=5,
                                    attack_start=duration * 10)
    scenario.warm_up(duration)
    return scenario


@pytest.mark.parametrize("node_count", [16, 32, 64])
def test_bench_olsr_simulation_scale(benchmark, emit, node_count):
    scenario = benchmark.pedantic(_run_network, args=(node_count,), rounds=1, iterations=1)

    simulator = scenario.network.simulator
    stats = scenario.network.medium.stats
    total_rx = sum(node.olsr.stats.messages_received for node in scenario.nodes.values())
    total_tx = sum(node.olsr.stats.messages_sent for node in scenario.nodes.values())
    rows = [{
        "nodes": node_count,
        "simulated_seconds": 60.0,
        "events_processed": simulator.processed_events,
        "frames_sent": stats.frames_sent,
        "frames_delivered": stats.frames_delivered,
        "olsr_messages_sent": total_tx,
        "olsr_messages_received": total_rx,
        "mean_routes_per_node": round(
            sum(len(n.olsr.routing_table) for n in scenario.nodes.values())
            / len(scenario.nodes), 1),
    }]
    emit(f"TABLE C (Simulator scale, {node_count} nodes)",
         format_table(rows, title="Table C — 60 simulated seconds of OLSR"))

    assert simulator.processed_events > 0
    assert stats.frames_delivered > 0
    benchmark.extra_info.update(rows[0])
