"""Table D (extension) — scenario-campaign throughput and determinism.

Times a 12-cell campaign (node count × loss model × liar fraction) running
end to end through :func:`repro.experiments.campaign.run_campaign` and checks
the two properties the campaign subsystem promises: every cell completes with
a usable detection row, and re-running the same grid reproduces the formatted
report byte for byte (stable per-cell seeds, no wall-clock in the output).
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table
from repro.experiments.campaign import CampaignGrid, run_campaign


def _small_grid() -> CampaignGrid:
    return CampaignGrid(
        node_counts=(8, 12),
        liar_fractions=(0.0, 0.25),
        loss_models=("bernoulli:0.0", "bernoulli:0.2", "distance:0.8"),
        max_speeds=(0.0,),
        base_seed=7,
        warmup=25.0,
        cycles=2,
    )


def test_bench_campaign_runs_grid(benchmark, emit):
    grid = _small_grid()
    assert grid.size() == 12
    result = benchmark.pedantic(run_campaign, args=(grid,), rounds=1, iterations=1)

    rows = result.as_rows()
    assert len(rows) == 12
    assert all(row["frames_sent"] > 0 for row in rows)
    emit("TABLE D (Campaign, 12 cells)",
         format_table(result.aggregate(("nodes", "loss")),
                      title="Table D — campaign aggregate by node count × loss"))

    # Determinism: a second pass over the same grid is byte-identical.
    again = run_campaign(_small_grid())
    assert again.format_report() == result.format_report()

    benchmark.extra_info.update({
        "cells": len(rows),
        "events_total": sum(row["events"] for row in rows),
    })
