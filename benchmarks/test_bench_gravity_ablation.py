"""Extension bench — evidence-gravity weighting ablation.

The paper's future work proposes "different weighting of the evidences
according to their gravity/reputability"; this bench sweeps the harmful
evidence weight α and reports detection speed, liar punishment and honest
collateral for each asymmetry level.
"""

from __future__ import annotations

from repro.experiments import format_table, run_gravity_ablation
from repro.experiments.config import paper_default_config


def _run():
    return run_gravity_ablation(harmful_alphas=(0.02, 0.04, 0.08, 0.16),
                                base_config=paper_default_config())


def test_bench_gravity_weighting_ablation(benchmark, emit):
    result = benchmark(_run)

    emit("EXTENSION (Evidence gravity ablation)",
         format_table(result.as_rows(),
                      title="Harmful-evidence weight α vs detection speed and punishment"))

    assert result.liar_punishment_increases_with_asymmetry()
    for row in result.rows:
        assert row.final_detect < -0.5
    benchmark.extra_info["rows"] = result.as_rows()
