"""Table E (extension) — resumable results store vs cold campaign re-runs.

Runs a detector-vs-baselines campaign grid once into an SQLite
:class:`~repro.experiments.results.ResultsStore`, then times a *resumed*
invocation of the identical grid: every cell's content hash is already
stored, so the resume executes zero simulations and only streams the stored
rows into the report.  The bench asserts the two properties the store
promises: the resumed report is byte-identical to the cold one, and the
resume is decisively faster than re-running the grid (the whole point of
persisting campaign results).

Like every file in this directory the test carries the ``bench`` marker
(applied by ``conftest.py``), so ``-m "not bench"`` keeps the fast tier-1
loop fast.
"""

from __future__ import annotations

import time

from repro.experiments.campaign import CampaignGrid, run_campaign
from repro.experiments.results import ResultsStore


def _grid() -> CampaignGrid:
    return CampaignGrid(
        node_counts=(8, 12),
        liar_fractions=(0.0, 0.25),
        loss_models=("bernoulli:0.0",),
        max_speeds=(0.0,),
        systems=("detector", "averaging"),
        base_seed=7,
        warmup=25.0,
        cycles=2,
    )


def test_bench_resume_from_store_beats_cold_rerun(benchmark, emit, tmp_path):
    grid = _grid()
    assert grid.size() == 8

    started = time.perf_counter()
    cold = run_campaign(grid)
    cold_seconds = time.perf_counter() - started
    cold_report = cold.format_report()

    db_path = str(tmp_path / "campaign.sqlite")
    with ResultsStore(db_path) as store:
        populated = run_campaign(grid, store=store)
        assert len(populated.executed_run_ids) == grid.size()

    def resumed_run() -> str:
        with ResultsStore(db_path) as store:
            result = run_campaign(grid, store=store)
            assert result.executed_run_ids == []
            assert len(result.skipped_run_ids) == grid.size()
            return result.format_report()

    resumed_report = benchmark.pedantic(resumed_run, rounds=3, iterations=1)
    assert resumed_report == cold_report

    resumed_seconds = benchmark.stats.stats.mean
    emit(
        "TABLE E (Results store, 8 cells)",
        f"cold run    : {cold_seconds:8.3f} s\n"
        f"resumed run : {resumed_seconds:8.3f} s  "
        f"(x{cold_seconds / max(resumed_seconds, 1e-9):.0f} faster, byte-identical report)",
    )
    # The resume replays stored rows instead of simulating; anything less
    # than a 5x win would mean the store is broken.
    assert resumed_seconds < cold_seconds / 5.0

    benchmark.extra_info.update({
        "cells": grid.size(),
        "cold_seconds": round(cold_seconds, 3),
    })
