"""Table F — control-plane cost of the routing backends at scale.

Runs the same warm-up workload (static uniform placement, no attack) on
every registered routing backend at 64 and 128 nodes and reports wall
clock, simulator events and control-message overhead side by side.  The
table documents the protocols' expected cost structure: proactive OLSR
pays continuous HELLO+TC flooding, reactive AODV and beacon-only geo stay
near-silent until data flows.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table
from repro.experiments.scenario import build_manet_scenario

PROTOCOLS = ("olsr", "aodv", "geo")
WARMUP_SECONDS = 30.0


def _run_warmup(protocol: str, node_count: int):
    scenario = build_manet_scenario(
        node_count=node_count,
        liar_count=0,
        seed=5,
        attack_start=WARMUP_SECONDS * 10,  # never fires during the bench
        protocol=protocol,
    )
    scenario.warm_up(WARMUP_SECONDS)
    return scenario


@pytest.mark.parametrize("node_count", [64, 128])
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bench_routing_protocol_scale(benchmark, emit, protocol, node_count):
    scenario = benchmark.pedantic(
        _run_warmup, args=(protocol, node_count), rounds=1, iterations=1)

    network = scenario.network
    routers = [node.router for node in scenario.nodes.values()]
    total_tx = sum(router.stats.messages_sent for router in routers)
    total_rx = sum(router.stats.messages_received for router in routers)
    rows = [{
        "protocol": protocol,
        "nodes": node_count,
        "simulated_seconds": WARMUP_SECONDS,
        "events_processed": network.simulator.processed_events,
        "frames_sent": network.medium.stats.frames_sent,
        "frames_delivered": network.medium.stats.frames_delivered,
        "control_messages_sent": total_tx,
        "control_messages_received": total_rx,
        "control_tx_per_node_per_s": round(
            total_tx / (node_count * WARMUP_SECONDS), 2),
    }]
    emit(f"TABLE F (routing control overhead, {protocol} @ {node_count})",
         format_table(rows, title="Table F — 30 simulated seconds, no attack"))

    assert network.simulator.processed_events > 0
    assert total_tx > 0, f"{protocol} emitted no control traffic"
    benchmark.extra_info.update(rows[0])
