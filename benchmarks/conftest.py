"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or one of the
extension tables listed in DESIGN.md), times it with pytest-benchmark and
prints the same rows/series the paper reports so the output can be compared
side by side with the publication (see EXPERIMENTS.md).

Every benchmark in this directory carries the ``bench`` marker (applied
automatically below), so the default tier-1 run collects and executes them
while a quick iteration loop can skip them with ``-m "not bench"``.
"""

from __future__ import annotations

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items) -> None:
    """Tag every test in this directory with the ``bench`` marker.

    The hook receives the whole session's item list, so filter by path —
    tests under ``tests/`` must stay unmarked.
    """
    for item in items:
        try:
            item_path = pathlib.Path(str(item.fspath)).resolve()
        except OSError:
            continue
        if _BENCH_DIR in item_path.parents:
            item.add_marker(pytest.mark.bench)


def _emit(title: str, body: str) -> None:
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture
def emit():
    """Print a clearly delimited report block (visible with ``pytest -s``)."""
    return _emit
