"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or one of the
extension tables listed in DESIGN.md), times it with pytest-benchmark and
prints the same rows/series the paper reports so the output can be compared
side by side with the publication (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def _emit(title: str, body: str) -> None:
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture
def emit():
    """Print a clearly delimited report block (visible with ``pytest -s``)."""
    return _emit
