"""Figure 1 — Trustworthiness (trust of every node as seen by the attacked node).

Paper shape: the trust assigned to liars decreases, largely and monotonically,
regardless of the initial value; well-behaving nodes gain a little; the groups
separate clearly after 25 rounds.
"""

from __future__ import annotations

from repro.experiments import format_table, format_trajectories, run_figure1
from repro.experiments.config import paper_default_config




def _run():
    return run_figure1(paper_default_config())


def test_bench_figure1_trust_trajectories(benchmark, emit):
    result = benchmark(_run)

    roles = {node: result.experiment.role_of(node) for node in result.trajectories}
    series = format_trajectories(result.trajectories, roles=roles,
                                 title="Figure 1 — trust per node across 25 rounds")
    table = format_table(result.rows(), title="Figure 1 — initial vs final trust")
    emit("FIGURE 1 (Trustworthiness)", series + "\n\n" + table)

    report = result.trajectory_report()
    assert report.liars_all_decreasing()
    assert report.honest_all_non_decreasing()
    assert report.final_separation() > 0.3

    benchmark.extra_info["separation"] = round(report.final_separation(), 4)
    benchmark.extra_info["attacker_final_trust"] = round(
        result.trajectories[result.attacker][-1], 4)
    benchmark.extra_info["liar_count"] = len(result.liars)
