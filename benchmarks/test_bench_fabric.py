"""Fabric throughput — the same campaign dispatched to 1, 2 and 4 worker groups.

Each worker group is a real ``python -m repro.experiments fabric work``
subprocess draining the shared work-stealing queue into its own shard store,
exactly as on a multi-host deployment.  The bench records the wall-clock for
each group count and checks the merged 4-group report stays byte-identical
to the single-process run — distribution must never change the science.

Scaling assertions are gated on the machine's core count: subprocess workers
only beat one worker when there are cores to run them on, so a single-core
runner merely has to keep the fan-out overhead bounded.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

from repro.experiments.engine import run_experiment
from repro.experiments.results import ResultsStore
from repro.fabric import FabricQueue, dispatch_experiment, merge_shards

_SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")
_EXPERIMENT = "confidence_sweep"
_AXES = {"gamma": (0.3, 0.4, 0.5, 0.6, 0.7, 0.8)}  # 6 gammas x 3 levels = 18
_PARAMS = {"total_nodes": 120, "rounds": 120}
_CELLS = 18


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    return env


def _run_groups(tmp: pathlib.Path, groups: int):
    """Dispatch a fresh queue and drain it with ``groups`` worker processes."""
    run_dir = tmp / f"groups-{groups}"
    run_dir.mkdir(parents=True, exist_ok=True)
    queue = str(run_dir / "queue.sqlite")
    shard_dir = str(run_dir / "shards")
    dispatch_experiment(queue, _EXPERIMENT, axes=_AXES, params=_PARAMS)
    env = _worker_env()
    start = time.perf_counter()
    procs = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", "fabric", "work",
             "--queue", queue, "--group", f"g{i}", "--shard-dir", shard_dir,
             "--batch", "2", "--lease-ttl", "60", "--poll", "0.05"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for i in range(groups)
    ]
    for proc in procs:
        assert proc.wait(timeout=300) == 0
    elapsed = time.perf_counter() - start
    with FabricQueue(queue) as fabric:
        assert fabric.counts()["done"] == _CELLS
    shards = [str(run_dir / "shards" / f"shard-g{i}.sqlite")
              for i in range(groups)]
    return elapsed, [s for s in shards if os.path.exists(s)], queue


def test_bench_fabric_worker_group_scaling(benchmark, emit, tmp_path):
    golden = run_experiment(_EXPERIMENT, axes=_AXES,
                            params=_PARAMS).format_report()

    one_second, _, _ = _run_groups(tmp_path, 1)
    two_seconds, _, _ = _run_groups(tmp_path, 2)

    state = {}

    def _four_groups():
        state["result"] = _run_groups(tmp_path / "bench", 4)

    benchmark.pedantic(_four_groups, rounds=1, iterations=1)
    four_seconds, shards, queue = state["result"]

    # Distribution must not change the science: merge the 4-group shards and
    # re-render — byte-identical to the single-process report.
    merged = str(tmp_path / "merged.sqlite")
    merge_shards(shards, merged, queue_path=queue)
    with ResultsStore(merged) as store:
        result = run_experiment(_EXPERIMENT, axes=_AXES, params=_PARAMS,
                                store=store, resume=True, max_new_runs=0)
        assert result.executed_run_ids == []
        assert result.format_report() == golden

    cores = os.cpu_count() or 1
    if cores >= 4:
        assert four_seconds < one_second, (
            f"4 worker groups ({four_seconds:.2f}s) should beat one "
            f"({one_second:.2f}s) on {cores} cores")
    elif cores >= 2:
        assert two_seconds < one_second * 1.2, (
            f"2 worker groups ({two_seconds:.2f}s) should roughly match or "
            f"beat one ({one_second:.2f}s) on {cores} cores")
    else:
        # One core cannot run workers concurrently; the queue/lease machinery
        # must still keep the total overhead bounded.
        assert four_seconds < one_second * 3.0, (
            f"fabric fan-out overhead too high on one core: 4 groups "
            f"{four_seconds:.2f}s vs 1 group {one_second:.2f}s")

    emit(f"FABRIC ({_CELLS}-cell confidence sweep, worker-group scaling)",
         f"1 group: {one_second:.2f}s   2 groups: {two_seconds:.2f}s   "
         f"4 groups: {four_seconds:.2f}s   cores: {cores}\n"
         f"merged 4-group report byte-identical to single-process run")
    benchmark.extra_info.update({
        "cells": _CELLS,
        "cores": cores,
        "one_group_seconds": round(one_second, 3),
        "two_group_seconds": round(two_seconds, 3),
        "four_group_seconds": round(four_seconds, 3),
    })
