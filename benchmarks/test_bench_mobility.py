"""Extension bench — impact of mobility on the trust-enabled detection.

The paper lists "the impact of mobility on trustworthiness evaluation" as
future work; this bench runs the full-stack scenario under random-waypoint
mobility at increasing speeds and reports how the investigation degrades
(missing answers / unreachable responders) and whether detection still
converges.
"""

from __future__ import annotations

from repro.experiments import format_table, run_mobility_study


def _run():
    return run_mobility_study(speeds=(0.0, 2.0, 5.0, 10.0), cycles=6, seed=23)


def test_bench_mobility_impact(benchmark, emit):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    emit("EXTENSION (Mobility impact)",
         format_table(result.as_rows(),
                      title="Detection quality vs maximum node speed (random waypoint)"))

    static = result.runs[0]
    assert static.attacker_investigated
    assert static.final_detect is not None and static.final_detect < 0.0
    benchmark.extra_info["rows"] = result.as_rows()
