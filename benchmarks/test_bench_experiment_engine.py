"""Engine throughput — a multi-cell figure sweep, parallel vs the legacy loop.

The unified engine's pitch is that every figure/sweep driver gets the
campaign's process-pool fan-out for free.  This bench quantifies it on a
scaled-up confidence/γ sweep (9 cells, each a 120-node 150-round scenario):
the engine with ``workers=4`` must beat the serial legacy driver wall-clock
while producing the exact same rows.
"""

from __future__ import annotations

import os
import time

from repro.experiments import format_table, run_experiment
from repro.experiments.config import ScenarioConfig
from repro.experiments.confidence_sweep import run_confidence_sweep

_CONFIDENCE_LEVELS = (0.90, 0.95, 0.99)
_GAMMAS = (0.4, 0.6, 0.8)
_NODES = 120
_ROUNDS = 150


def test_bench_engine_parallel_beats_serial_legacy_loop(benchmark, emit):
    def _parallel():
        return run_experiment(
            "confidence_sweep",
            workers=4,
            axes={"confidence_level": _CONFIDENCE_LEVELS, "gamma": _GAMMAS},
            params={"total_nodes": _NODES, "rounds": _ROUNDS},
        )

    start = time.perf_counter()
    legacy = run_confidence_sweep(
        confidence_levels=_CONFIDENCE_LEVELS,
        gammas=_GAMMAS,
        base_config=ScenarioConfig(total_nodes=_NODES, rounds=_ROUNDS),
    )
    serial_seconds = time.perf_counter() - start

    result = benchmark.pedantic(_parallel, rounds=1, iterations=1)
    parallel_seconds = benchmark.stats.stats.mean

    # Same rows, faster wall-clock: the whole point of the migration.
    assert result.rows() == legacy.as_rows()
    if (os.cpu_count() or 1) >= 2:
        assert parallel_seconds < serial_seconds, (
            f"engine with 4 workers ({parallel_seconds:.2f}s) should beat the "
            f"serial legacy loop ({serial_seconds:.2f}s) on a 9-cell sweep")
    else:
        # A single-core machine cannot speed up CPU-bound cells; the engine
        # must at least keep the fan-out overhead bounded.
        assert parallel_seconds < serial_seconds * 1.6, (
            f"engine fan-out overhead too high on one core: "
            f"{parallel_seconds:.2f}s vs serial {serial_seconds:.2f}s")

    emit("ENGINE (Confidence sweep, 9 cells @ 120 nodes x 150 rounds)",
         format_table(result.rows(),
                      title="Scaled confidence sweep via the unified engine")
         + f"\n\nserial legacy: {serial_seconds:.2f}s   "
           f"engine --workers 4: {parallel_seconds:.2f}s   "
           f"speed-up: {serial_seconds / parallel_seconds:.2f}x")
    benchmark.extra_info.update({
        "cells": 9,
        "serial_seconds": round(serial_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 2),
    })
