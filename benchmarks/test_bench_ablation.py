"""Table B (ablation) — trust-weighted detection (Eq. 8) vs baselines.

Every method is fed the exact same investigation answers produced by the
paper's 16-node / 4-liar scenario; the comparison reports the first round at
which each method classifies the attacker as an intruder and its final score.
"""

from __future__ import annotations

from repro.experiments import format_series, format_table, run_ablation
from repro.experiments.config import paper_default_config


def _run():
    return run_ablation(paper_default_config())


def test_bench_ablation_trust_weighting_vs_baselines(benchmark, emit):
    result = benchmark(_run)

    table = format_table(result.as_rows(),
                         title="Table B — detection round and final score per method")
    series = format_series(
        {name: t.scores for name, t in result.methods.items()},
        title="Score trajectory per method (same answer stream)",
    )
    emit("TABLE B (Ablation / baseline comparison)", table + "\n\n" + series)

    ours = result.methods["trust-weighted"]
    vote = result.methods["unweighted-vote"]
    assert ours.final_score < vote.final_score
    assert ours.final_score < -0.8
    assert ours.detection_round is not None

    benchmark.extra_info["final_scores"] = {
        name: round(t.final_score, 3) for name, t in result.methods.items()
    }
    benchmark.extra_info["detection_rounds"] = {
        name: t.detection_round for name, t in result.methods.items()
    }
