"""Table A (extension) — confidence level / γ sweep of the decision rule.

Section IV-C of the paper introduces the confidence interval and the γ
threshold but shows no figure; this bench quantifies the mechanism: rounds
until a conclusive verdict and final correctness for each configuration.
"""

from __future__ import annotations

from repro.experiments import format_table, run_confidence_sweep
from repro.experiments.config import paper_default_config


def _run():
    return run_confidence_sweep(
        confidence_levels=(0.90, 0.95, 0.99),
        gammas=(0.4, 0.6, 0.8),
        base_config=paper_default_config(),
    )


def test_bench_confidence_gamma_sweep(benchmark, emit):
    result = benchmark(_run)

    table = format_table(result.as_rows(),
                         title="Table A — decision rule vs confidence level and γ")
    emit("TABLE A (Confidence interval sweep)", table)

    # Every configuration with γ ≤ 0.6 must identify the intruder.
    for row in result.rows:
        if row.gamma <= 0.6:
            assert row.verdict_correct
    assert result.correct_fraction() >= 0.5

    benchmark.extra_info["correct_fraction"] = round(result.correct_fraction(), 3)
    benchmark.extra_info["configurations"] = len(result.rows)
