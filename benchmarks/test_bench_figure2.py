"""Figure 2 — Impact of the forgetting factor on the trustworthiness.

Paper shape: after the attack ceases, nodes with a high or medium trust value
return to the default (0.4) in the last rounds, while former liars recover
slowly and may not reach it.
"""

from __future__ import annotations

from repro.experiments import format_table, format_trajectories, run_figure2
from repro.experiments.config import figure2_config




def _run():
    return run_figure2(figure2_config())


def test_bench_figure2_forgetting_factor(benchmark, emit):
    result = benchmark(_run)

    roles = {node: result.experiment.role_of(node) for node in result.trajectories}
    series = format_trajectories(
        result.trajectories, roles=roles,
        title=f"Figure 2 — trust with attack stopping at round {result.attack_stop_round}")
    table = format_table(result.rows(), title="Figure 2 — recovery toward the default trust")
    emit("FIGURE 2 (Forgetting factor)", series + "\n\n" + table)

    gaps = result.recovery_gaps()
    honest_gaps = [abs(gaps[n]) for n in result.experiment.honest_responders]
    liar_gaps = [gaps[n] for n in result.experiment.liars]
    assert max(honest_gaps) < 0.1
    assert min(liar_gaps) > 0.05

    benchmark.extra_info["attack_stop_round"] = result.attack_stop_round
    benchmark.extra_info["max_honest_gap"] = round(max(honest_gaps), 4)
    benchmark.extra_info["min_liar_gap"] = round(min(liar_gaps), 4)
