"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can also be installed in environments without the
``wheel`` package (legacy editable installs fall back to ``setup.py develop``).
"""

from setuptools import setup

setup()
