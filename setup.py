"""Setuptools entry point.

Kept as an executable ``setup.py`` (rather than declarative metadata only)
so the package installs in minimal environments without the ``wheel``
package (legacy editable installs fall back to ``setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-manet-trust",
    version="0.8.0",
    description=(
        "Reproduction of an OLSR link-spoofing detection paper: discrete-"
        "event MANET simulator, RFC 3626 OLSR, trust-based detection"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        # The netsim batch-delivery path, vectorised MPR selection and the
        # vectorised trust updates use numpy; every import site keeps a
        # pure-Python fallback (repro.numerics.numpy_or_none), so the
        # simulator still runs — scalar and slower — without it.
        "numpy",
    ],
)
