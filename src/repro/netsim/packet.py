"""Link-layer frame model used by the wireless medium.

A :class:`Frame` carries an opaque ``payload`` (for OLSR this is an
:class:`repro.olsr.packet.OlsrPacket`).  Frames are addressed either to the
link-layer broadcast address or to a specific node identifier.

Frame ids
---------
Every frame gets a monotonically increasing ``frame_id`` so traces and the
collision model's busy windows can tell transmissions apart.  Ids are
allocated lazily: :meth:`repro.netsim.medium.WirelessMedium.transmit` stamps
each frame from the *medium's own* counter, so two networks running in one
process (the differential validation harness runs oracle and netsim side by
side) never interleave their id streams.  A frame whose id is read before it
ever touches a medium (unit tests, reprs) falls back to a module-level pool.
Nothing derives hashes or seeds from frame ids — they are trace labels only —
so no ``stable_seed`` derivation is needed for them.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

#: Link-layer broadcast destination; every node within radio range receives it.
BROADCAST_ADDRESS = "ff:ff"

#: Fallback id pool for frames inspected before any medium stamped them.
_frame_ids = itertools.count(1)


class Frame:
    """A link-layer transmission unit.

    Attributes
    ----------
    source:
        Identifier of the transmitting node.
    destination:
        Identifier of the intended receiver, or :data:`BROADCAST_ADDRESS`.
    payload:
        Arbitrary upper-layer content.
    size_bytes:
        Nominal on-air size used by statistics and (optionally) collision
        windows.
    frame_id:
        Monotonically increasing identifier, stamped by the transmitting
        medium (or lazily from a module pool when read before transmission).
    created_at:
        Simulated time at which the frame was handed to the medium (filled in
        by the medium).
    metadata:
        Free-form dictionary for attack modules and traces (e.g. replay
        markers, wormhole tunnel ids).
    """

    __slots__ = ("source", "destination", "payload", "size_bytes",
                 "_frame_id", "created_at", "metadata")

    def __init__(
        self,
        source: str,
        destination: str,
        payload: Any,
        size_bytes: int = 64,
        frame_id: Optional[int] = None,
        created_at: Optional[float] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        self.source = source
        self.destination = destination
        self.payload = payload
        self.size_bytes = size_bytes
        self._frame_id = frame_id
        self.created_at = created_at
        self.metadata = {} if metadata is None else metadata

    @property
    def frame_id(self) -> int:
        """The frame's id, drawn from the fallback pool on first access."""
        if self._frame_id is None:
            self._frame_id = next(_frame_ids)
        return self._frame_id

    @frame_id.setter
    def frame_id(self, value: int) -> None:
        self._frame_id = value

    @property
    def is_broadcast(self) -> bool:
        """Whether the frame is addressed to every node in range."""
        return self.destination == BROADCAST_ADDRESS

    def copy_for(self, destination: str) -> "Frame":
        """Return a copy of the frame re-addressed to ``destination``.

        The payload object is shared (frames are treated as immutable once
        transmitted); the copy carries no id yet, so the next medium (or the
        fallback pool) assigns a fresh ``frame_id`` and traces can tell the
        copies apart.
        """
        return Frame(
            source=self.source,
            destination=destination,
            payload=self.payload,
            size_bytes=self.size_bytes,
            created_at=self.created_at,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "bcast" if self.is_broadcast else f"to={self.destination}"
        return f"Frame(#{self.frame_id} {self.source} {kind} {self.size_bytes}B)"
