"""Link-layer frame model used by the wireless medium.

A :class:`Frame` carries an opaque ``payload`` (for OLSR this is an
:class:`repro.olsr.packet.OlsrPacket`).  Frames are addressed either to the
link-layer broadcast address or to a specific node identifier.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Link-layer broadcast destination; every node within radio range receives it.
BROADCAST_ADDRESS = "ff:ff"

_frame_ids = itertools.count(1)


@dataclass
class Frame:
    """A link-layer transmission unit.

    Attributes
    ----------
    source:
        Identifier of the transmitting node.
    destination:
        Identifier of the intended receiver, or :data:`BROADCAST_ADDRESS`.
    payload:
        Arbitrary upper-layer content.
    size_bytes:
        Nominal on-air size used by statistics and (optionally) collision
        windows.
    frame_id:
        Monotonically increasing identifier assigned at creation.
    created_at:
        Simulated time at which the frame was handed to the medium (filled in
        by the medium).
    metadata:
        Free-form dictionary for attack modules and traces (e.g. replay
        markers, wormhole tunnel ids).
    """

    source: str
    destination: str
    payload: Any
    size_bytes: int = 64
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    created_at: Optional[float] = None
    metadata: dict = field(default_factory=dict)

    @property
    def is_broadcast(self) -> bool:
        """Whether the frame is addressed to every node in range."""
        return self.destination == BROADCAST_ADDRESS

    def copy_for(self, destination: str) -> "Frame":
        """Return a copy of the frame re-addressed to ``destination``.

        The payload object is shared (frames are treated as immutable once
        transmitted); a new ``frame_id`` is assigned so traces can tell the
        copies apart.
        """
        return Frame(
            source=self.source,
            destination=destination,
            payload=self.payload,
            size_bytes=self.size_bytes,
            created_at=self.created_at,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "bcast" if self.is_broadcast else f"to={self.destination}"
        return f"Frame(#{self.frame_id} {self.source} {kind} {self.size_bytes}B)"
