"""Simulation event tracing.

Traces record what happened during a run (frame deliveries, protocol events,
detection decisions) in a uniform, filterable format.  They are mainly used
by tests and by the experiment report generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence."""

    time: float
    category: str
    node: str
    description: str
    data: dict = field(default_factory=dict, hash=False, compare=False)


class TraceRecorder:
    """Append-only trace with simple querying.

    The recorder can be bounded (``max_events``) to keep long simulations from
    exhausting memory; when full, the oldest events are discarded.
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        self._events: List[TraceEvent] = []
        self._max_events = max_events
        self._subscribers: List[Callable[[TraceEvent], None]] = []

    def record(
        self,
        time: float,
        category: str,
        node: str,
        description: str,
        **data,
    ) -> TraceEvent:
        """Append an event and notify subscribers."""
        event = TraceEvent(time=time, category=category, node=node,
                           description=description, data=data)
        self._events.append(event)
        if self._max_events is not None and len(self._events) > self._max_events:
            del self._events[: len(self._events) - self._max_events]
        for callback in self._subscribers:
            callback(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every future event."""
        self._subscribers.append(callback)

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events (oldest first)."""
        return list(self._events)

    def by_category(self, category: str) -> List[TraceEvent]:
        """Events whose category matches exactly."""
        return [e for e in self._events if e.category == category]

    def by_node(self, node: str) -> List[TraceEvent]:
        """Events emitted by ``node``."""
        return [e for e in self._events if e.node == node]

    def between(self, start: float, end: float) -> List[TraceEvent]:
        """Events with ``start <= time <= end``."""
        return [e for e in self._events if start <= e.time <= end]

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """Events satisfying an arbitrary predicate."""
        return [e for e in self._events if predicate(e)]

    def counts_by_category(self) -> Dict[str, int]:
        """Histogram of event categories."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def clear(self) -> None:
        """Discard every recorded event."""
        self._events.clear()

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Bulk-append already constructed events (used when merging traces)."""
        for event in events:
            self._events.append(event)
        if self._max_events is not None and len(self._events) > self._max_events:
            del self._events[: len(self._events) - self._max_events]
