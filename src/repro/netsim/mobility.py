"""Node placement and mobility models.

Placement models assign initial coordinates; mobility models additionally
update coordinates over simulated time.  Models operate on a mutable mapping
``positions: dict[node_id, (x, y)]`` owned by the network, so the medium
always sees the current coordinates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

Position = Tuple[float, float]


class MobilityModel(Protocol):
    """Protocol implemented by all placement / mobility models."""

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        """Return the initial position of every node."""
        ...

    def install(self, network) -> None:
        """Attach the model to the network (schedule periodic moves if mobile)."""
        ...


@dataclass
class StaticPlacement:
    """Fixed, caller-supplied coordinates."""

    positions: Dict[str, Position]

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        missing = [nid for nid in node_ids if nid not in self.positions]
        if missing:
            raise ValueError(f"no position supplied for nodes: {missing}")
        return {nid: self.positions[nid] for nid in node_ids}

    def install(self, network) -> None:  # static: nothing to schedule
        return None


@dataclass
class GridPlacement:
    """Place nodes on a regular grid with the given ``spacing``.

    The grid is as square as possible; spacing is chosen relative to the radio
    range so that the resulting topology is multi-hop (important for the
    2-hop-neighbour investigations of the paper).
    """

    spacing: float = 180.0
    origin: Position = (0.0, 0.0)
    columns: Optional[int] = None

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        n = len(node_ids)
        cols = self.columns or max(1, int(math.ceil(math.sqrt(n))))
        ox, oy = self.origin
        positions: Dict[str, Position] = {}
        for index, nid in enumerate(node_ids):
            row, col = divmod(index, cols)
            positions[nid] = (ox + col * self.spacing, oy + row * self.spacing)
        return positions

    def install(self, network) -> None:
        return None


@dataclass
class UniformRandomPlacement:
    """Uniform random placement in a ``width`` × ``height`` rectangle."""

    width: float = 1000.0
    height: float = 1000.0
    rng: random.Random = field(default_factory=random.Random)

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        return {
            nid: (self.rng.uniform(0.0, self.width), self.rng.uniform(0.0, self.height))
            for nid in node_ids
        }

    def install(self, network) -> None:
        return None


@dataclass
class RandomWaypointMobility:
    """Random-waypoint mobility.

    Each node picks a random destination and speed in ``[min_speed, max_speed]``,
    moves there in straight line, pauses ``pause_time`` seconds, then repeats.
    Positions are updated every ``update_interval`` seconds of simulated time.
    """

    width: float = 1000.0
    height: float = 1000.0
    min_speed: float = 1.0
    max_speed: float = 5.0
    pause_time: float = 2.0
    update_interval: float = 1.0
    rng: random.Random = field(default_factory=random.Random)
    _targets: Dict[str, Position] = field(default_factory=dict)
    _speeds: Dict[str, float] = field(default_factory=dict)
    _pause_until: Dict[str, float] = field(default_factory=dict)

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        positions = {
            nid: (self.rng.uniform(0.0, self.width), self.rng.uniform(0.0, self.height))
            for nid in node_ids
        }
        for nid in node_ids:
            self._pick_new_target(nid)
        return positions

    def install(self, network) -> None:
        network.simulator.schedule_periodic(
            self.update_interval,
            self._advance,
            network,
            start_delay=self.update_interval,
        )

    # internal ------------------------------------------------------------
    def _pick_new_target(self, node_id: str) -> None:
        self._targets[node_id] = (
            self.rng.uniform(0.0, self.width),
            self.rng.uniform(0.0, self.height),
        )
        self._speeds[node_id] = self.rng.uniform(self.min_speed, self.max_speed)

    def _advance(self, network) -> None:
        now = network.simulator.now
        for node_id, position in list(network.positions.items()):
            if self._pause_until.get(node_id, 0.0) > now:
                continue
            target = self._targets.get(node_id)
            if target is None:
                self._pick_new_target(node_id)
                target = self._targets[node_id]
            speed = self._speeds.get(node_id, self.min_speed)
            step = speed * self.update_interval
            dx, dy = target[0] - position[0], target[1] - position[1]
            dist = math.hypot(dx, dy)
            if dist <= step:
                network.positions[node_id] = target
                self._pause_until[node_id] = now + self.pause_time
                self._pick_new_target(node_id)
            else:
                network.positions[node_id] = (
                    position[0] + dx / dist * step,
                    position[1] + dy / dist * step,
                )


@dataclass
class RandomWalkMobility:
    """Brownian-style random walk: each update, move a random small step."""

    width: float = 1000.0
    height: float = 1000.0
    max_step: float = 10.0
    update_interval: float = 1.0
    rng: random.Random = field(default_factory=random.Random)

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        return {
            nid: (self.rng.uniform(0.0, self.width), self.rng.uniform(0.0, self.height))
            for nid in node_ids
        }

    def install(self, network) -> None:
        network.simulator.schedule_periodic(
            self.update_interval,
            self._advance,
            network,
            start_delay=self.update_interval,
        )

    def _advance(self, network) -> None:
        for node_id, (x, y) in list(network.positions.items()):
            nx = x + self.rng.uniform(-self.max_step, self.max_step)
            ny = y + self.rng.uniform(-self.max_step, self.max_step)
            network.positions[node_id] = (
                min(max(nx, 0.0), self.width),
                min(max(ny, 0.0), self.height),
            )


def ring_positions(node_ids: Sequence[str], radius: float, center: Position = (0.0, 0.0)) -> Dict[str, Position]:
    """Place nodes evenly on a circle (useful for fully controlled topologies)."""
    n = len(node_ids)
    positions: Dict[str, Position] = {}
    for index, nid in enumerate(node_ids):
        angle = 2.0 * math.pi * index / max(n, 1)
        positions[nid] = (
            center[0] + radius * math.cos(angle),
            center[1] + radius * math.sin(angle),
        )
    return positions


def chain_positions(node_ids: Sequence[str], spacing: float, origin: Position = (0.0, 0.0)) -> Dict[str, Position]:
    """Place nodes on a straight horizontal chain (multi-hop line topology)."""
    ox, oy = origin
    return {nid: (ox + index * spacing, oy) for index, nid in enumerate(node_ids)}
