"""Node placement and mobility models.

Placement models assign initial coordinates; mobility models additionally
update coordinates over simulated time.  Models operate on a mutable mapping
``positions: dict[node_id, (x, y)]`` owned by the network, so the medium
always sees the current coordinates.

Vectorised ticks
----------------
Each mobility model advances *all* nodes inside one periodic engine event.
With numpy available (``repro.numerics.numpy_or_none``) and enough nodes to
amortise array setup, the per-tick ``_advance`` runs over position arrays
instead of a per-node Python loop, and the surviving writes land in the
position table through a single bulk ``update`` (one position-epoch bump
instead of N).  The vector paths are **bit-identical** to the scalar
reference loops, which stay in place as the numpy-less fallback:

* random draws are consumed from the model's ``random.Random`` in exactly
  the scalar per-node order (numpy never draws; draws are taken flat and
  split back with strided views);
* elementwise float64 arithmetic mirrors the scalar expressions operation
  for operation (`numpy` rounds identically for ``+ - * /``, ``minimum``/
  ``maximum`` and — on every platform we test — ``cos``/``sin``);
* Euclidean norms keep calling ``math.hypot`` per node: ``np.hypot`` is
  *not* bit-identical to ``math.hypot`` (~0.6 % of draws differ in the last
  ulp on glibc), and one flipped arrival decision would diverge a whole
  campaign.  ``tests/test_netsim_mobility.py`` pins vector-vs-scalar
  trajectory equality per model.

Which models actually dispatch to the array path is a measured decision:
random walk, Gauss–Markov and RPGM ticks are draw/trig-bound and win
(~1.3–1.8× at 1,024 nodes); random waypoint's mover tick is gather-bound
(three dict lookups plus one exact hypot per node, no draws), measured
slower vectorised at every population, so its production tick stays on the
scalar loop while the vector implementation remains parity-tested.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.numerics import numpy_or_none

Position = Tuple[float, float]

#: Below this many nodes the array setup outweighs the vector win.
_VECTOR_MIN_NODES = 8


class MobilityModel(Protocol):
    """Protocol implemented by all placement / mobility models."""

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        """Return the initial position of every node."""
        ...

    def install(self, network) -> None:
        """Attach the model to the network (schedule periodic moves if mobile)."""
        ...


@dataclass
class StaticPlacement:
    """Fixed, caller-supplied coordinates."""

    positions: Dict[str, Position]

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        missing = [nid for nid in node_ids if nid not in self.positions]
        if missing:
            raise ValueError(f"no position supplied for nodes: {missing}")
        return {nid: self.positions[nid] for nid in node_ids}

    def install(self, network) -> None:  # static: nothing to schedule
        return None


@dataclass
class GridPlacement:
    """Place nodes on a regular grid with the given ``spacing``.

    The grid is as square as possible; spacing is chosen relative to the radio
    range so that the resulting topology is multi-hop (important for the
    2-hop-neighbour investigations of the paper).
    """

    spacing: float = 180.0
    origin: Position = (0.0, 0.0)
    columns: Optional[int] = None

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        n = len(node_ids)
        cols = self.columns or max(1, int(math.ceil(math.sqrt(n))))
        ox, oy = self.origin
        positions: Dict[str, Position] = {}
        for index, nid in enumerate(node_ids):
            row, col = divmod(index, cols)
            positions[nid] = (ox + col * self.spacing, oy + row * self.spacing)
        return positions

    def install(self, network) -> None:
        return None


@dataclass
class UniformRandomPlacement:
    """Uniform random placement in a ``width`` × ``height`` rectangle."""

    width: float = 1000.0
    height: float = 1000.0
    rng: random.Random = field(default_factory=random.Random)

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        return {
            nid: (self.rng.uniform(0.0, self.width), self.rng.uniform(0.0, self.height))
            for nid in node_ids
        }

    def install(self, network) -> None:
        return None


@dataclass
class RandomWaypointMobility:
    """Random-waypoint mobility.

    Each node picks a random destination and speed in ``[min_speed, max_speed]``,
    moves there in straight line, pauses ``pause_time`` seconds, then repeats.
    Positions are updated every ``update_interval`` seconds of simulated time.
    """

    width: float = 1000.0
    height: float = 1000.0
    min_speed: float = 1.0
    max_speed: float = 5.0
    pause_time: float = 2.0
    update_interval: float = 1.0
    rng: random.Random = field(default_factory=random.Random)
    _targets: Dict[str, Position] = field(default_factory=dict)
    _speeds: Dict[str, float] = field(default_factory=dict)
    _pause_until: Dict[str, float] = field(default_factory=dict)

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        positions = {
            nid: (self.rng.uniform(0.0, self.width), self.rng.uniform(0.0, self.height))
            for nid in node_ids
        }
        for nid in node_ids:
            self._pick_new_target(nid)
        return positions

    def install(self, network) -> None:
        network.simulator.schedule_periodic(
            self.update_interval,
            self._advance,
            network,
            start_delay=self.update_interval,
        )

    # internal ------------------------------------------------------------
    def _pick_new_target(self, node_id: str) -> None:
        self._targets[node_id] = (
            self.rng.uniform(0.0, self.width),
            self.rng.uniform(0.0, self.height),
        )
        self._speeds[node_id] = self.rng.uniform(self.min_speed, self.max_speed)

    def _advance(self, network) -> None:
        # Measured choice: the waypoint mover tick is gather-bound — three
        # dict lookups and one exact ``math.hypot`` per node, *zero* RNG
        # draws — and the array path's marshalling costs more than the
        # handful of flops it vectorises at every population we bench.
        # Production ticks therefore stay scalar; ``_advance_vector`` is
        # kept bit-identical and parity-tested so the dispatch remains a
        # pure performance decision (see tests/test_netsim_mobility.py).
        self._advance_scalar(network)

    def _advance_scalar(self, network) -> None:
        now = network.simulator.now
        for node_id, position in list(network.positions.items()):
            if self._pause_until.get(node_id, 0.0) > now:
                continue
            target = self._targets.get(node_id)
            if target is None:
                self._pick_new_target(node_id)
                target = self._targets[node_id]
            speed = self._speeds.get(node_id, self.min_speed)
            step = speed * self.update_interval
            dx, dy = target[0] - position[0], target[1] - position[1]
            dist = math.hypot(dx, dy)
            if dist <= step:
                network.positions[node_id] = target
                self._pause_until[node_id] = now + self.pause_time
                self._pick_new_target(node_id)
            else:
                network.positions[node_id] = (
                    position[0] + dx / dist * step,
                    position[1] + dy / dist * step,
                )

    def _advance_vector(self, network, np) -> None:
        now = network.simulator.now
        positions = network.positions
        pause_until = self._pause_until
        targets = self._targets
        active = [nid for nid in positions if not pause_until.get(nid, 0.0) > now]
        if not active:
            return
        if any(nid not in targets for nid in active):
            # Lazily-targeted nodes interleave target draws with arrival
            # draws mid-tick; the reference loop keeps that order exact.
            self._advance_scalar(network)
            return
        pts = [positions[nid] for nid in active]
        tgt = [targets[nid] for nid in active]
        speeds_map = self._speeds
        min_speed = self.min_speed
        steps = np.array([speeds_map.get(nid, min_speed) for nid in active])
        steps *= self.update_interval
        px = np.array([p[0] for p in pts])
        py = np.array([p[1] for p in pts])
        dxs = np.array([t[0] for t in tgt]) - px
        dys = np.array([t[1] for t in tgt]) - py
        # math.hypot, not np.hypot: the latter differs in the last ulp on
        # ~0.6 % of inputs, enough to flip an arrival comparison.
        dists = np.array(list(map(math.hypot, dxs.tolist(), dys.tolist())))
        arrived = dists <= steps
        with np.errstate(divide="ignore", invalid="ignore"):
            # dist == 0 only on arrivals, which never read these lanes.
            nxs = (px + dxs / dists * steps).tolist()
            nys = (py + dys / dists * steps).tolist()
        if not arrived.any():
            # Common tick shape: everyone still in transit, no draws due.
            positions.update(zip(active, zip(nxs, nys)))
            return
        arrived = arrived.tolist()
        updates = {}
        for i, nid in enumerate(active):
            if arrived[i]:
                updates[nid] = tgt[i]
                pause_until[nid] = now + self.pause_time
                self._pick_new_target(nid)
            else:
                updates[nid] = (nxs[i], nys[i])
        positions.update(updates)


@dataclass
class RandomWalkMobility:
    """Brownian-style random walk: each update, move a random small step."""

    width: float = 1000.0
    height: float = 1000.0
    max_step: float = 10.0
    update_interval: float = 1.0
    rng: random.Random = field(default_factory=random.Random)

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        return {
            nid: (self.rng.uniform(0.0, self.width), self.rng.uniform(0.0, self.height))
            for nid in node_ids
        }

    def install(self, network) -> None:
        network.simulator.schedule_periodic(
            self.update_interval,
            self._advance,
            network,
            start_delay=self.update_interval,
        )

    def _advance(self, network) -> None:
        np = numpy_or_none()
        if np is None or len(network.positions) < _VECTOR_MIN_NODES:
            self._advance_scalar(network)
        else:
            self._advance_vector(network, np)

    def _advance_scalar(self, network) -> None:
        for node_id, (x, y) in list(network.positions.items()):
            nx = x + self.rng.uniform(-self.max_step, self.max_step)
            ny = y + self.rng.uniform(-self.max_step, self.max_step)
            network.positions[node_id] = (
                min(max(nx, 0.0), self.width),
                min(max(ny, 0.0), self.height),
            )

    def _advance_vector(self, network, np) -> None:
        positions = network.positions
        ids = list(positions)
        pts = [positions[nid] for nid in ids]
        m = self.max_step
        u = self.rng.uniform
        # Flat (dx, dy, dx, dy, …) draws in scalar per-node order; strided
        # views split them back without a list-of-tuples array build.
        delta = np.array([u(-m, m) for _ in range(2 * len(ids))])
        nxs = np.array([p[0] for p in pts])
        nxs += delta[0::2]
        nys = np.array([p[1] for p in pts])
        nys += delta[1::2]
        nxs = np.minimum(np.maximum(nxs, 0.0), self.width)
        nys = np.minimum(np.maximum(nys, 0.0), self.height)
        positions.update(zip(ids, zip(nxs.tolist(), nys.tolist())))


@dataclass
class GaussMarkovMobility:
    """Gauss–Markov mobility (temporally correlated speed and heading).

    Each node carries a speed and a direction updated every
    ``update_interval`` seconds by the Gauss–Markov recurrence::

        s_t = α·s_{t−1} + (1−α)·s̄ + √(1−α²)·N(0, σ_s)
        d_t = α·d_{t−1} + (1−α)·d̄ + √(1−α²)·N(0, σ_d)

    with memory factor ``alpha`` ∈ [0, 1]: 1 keeps the previous velocity
    forever (linear motion), 0 degenerates to a memoryless random walk.
    Unlike random waypoint, movement has no pause/teleport discontinuities
    and no density concentration at the area centre, so neighbourhoods churn
    smoothly — a better model for vehicles and patrols.  Nodes bounce off the
    area edges by reflecting their mean direction.
    """

    width: float = 1000.0
    height: float = 1000.0
    mean_speed: float = 3.0
    alpha: float = 0.75
    speed_stddev: float = 1.0
    direction_stddev: float = 0.6
    update_interval: float = 1.0
    rng: random.Random = field(default_factory=random.Random)
    _speeds: Dict[str, float] = field(default_factory=dict)
    _directions: Dict[str, float] = field(default_factory=dict)
    _mean_directions: Dict[str, float] = field(default_factory=dict)

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        positions = {
            nid: (self.rng.uniform(0.0, self.width), self.rng.uniform(0.0, self.height))
            for nid in node_ids
        }
        for nid in node_ids:
            self._speeds[nid] = max(0.0, self.rng.gauss(self.mean_speed, self.speed_stddev))
            direction = self.rng.uniform(0.0, 2.0 * math.pi)
            self._directions[nid] = direction
            self._mean_directions[nid] = direction
        return positions

    def install(self, network) -> None:
        network.simulator.schedule_periodic(
            self.update_interval,
            self._advance,
            network,
            start_delay=self.update_interval,
        )

    def _advance(self, network) -> None:
        np = numpy_or_none()
        if np is None or len(network.positions) < _VECTOR_MIN_NODES:
            self._advance_scalar(network)
        else:
            self._advance_vector(network, np)

    def _advance_scalar(self, network) -> None:
        a = min(max(self.alpha, 0.0), 1.0)
        noise = math.sqrt(max(0.0, 1.0 - a * a))
        for node_id, (x, y) in list(network.positions.items()):
            speed = self._speeds.get(node_id, self.mean_speed)
            direction = self._directions.get(node_id, 0.0)
            mean_direction = self._mean_directions.get(node_id, direction)
            speed = (a * speed + (1.0 - a) * self.mean_speed
                     + noise * self.rng.gauss(0.0, self.speed_stddev))
            direction = (a * direction + (1.0 - a) * mean_direction
                         + noise * self.rng.gauss(0.0, self.direction_stddev))
            speed = max(0.0, speed)
            step = speed * self.update_interval
            nx = x + step * math.cos(direction)
            ny = y + step * math.sin(direction)
            # Reflect off the edges and flip the mean direction so the
            # recurrence keeps pulling the node back into the area.
            if nx < 0.0 or nx > self.width:
                nx = min(max(nx, 0.0), self.width)
                direction = math.pi - direction
                mean_direction = math.pi - mean_direction
            if ny < 0.0 or ny > self.height:
                ny = min(max(ny, 0.0), self.height)
                direction = -direction
                mean_direction = -mean_direction
            self._speeds[node_id] = speed
            self._directions[node_id] = direction
            self._mean_directions[node_id] = mean_direction
            network.positions[node_id] = (nx, ny)

    def _advance_vector(self, network, np) -> None:
        positions = network.positions
        ids = list(positions)
        a = min(max(self.alpha, 0.0), 1.0)
        noise = math.sqrt(max(0.0, 1.0 - a * a))
        pts = [positions[nid] for nid in ids]
        speeds_map = self._speeds
        dirs_map = self._directions
        means_map = self._mean_directions
        mean_speed = self.mean_speed
        speed = np.array([speeds_map.get(nid, mean_speed) for nid in ids])
        dir_list = [dirs_map.get(nid, 0.0) for nid in ids]
        direction = np.array(dir_list)
        mean_direction = np.array(
            [means_map.get(nid, d) for nid, d in zip(ids, dir_list)]
        )
        g = self.rng.gauss
        # Per node: speed noise then direction noise, exactly as the scalar
        # loop draws them (gauss caches a spare deviate, so order matters);
        # drawn flat and split by strided views.
        stddevs = (self.speed_stddev, self.direction_stddev)
        draws = np.array([g(0.0, stddevs[k & 1]) for k in range(2 * len(ids))])
        speed = a * speed + (1.0 - a) * mean_speed + noise * draws[0::2]
        direction = a * direction + (1.0 - a) * mean_direction + noise * draws[1::2]
        speed = np.maximum(speed, 0.0)
        step = speed * self.update_interval
        nx = np.array([p[0] for p in pts]) + step * np.cos(direction)
        ny = np.array([p[1] for p in pts]) + step * np.sin(direction)
        out_x = (nx < 0.0) | (nx > self.width)
        nx = np.where(out_x, np.minimum(np.maximum(nx, 0.0), self.width), nx)
        direction = np.where(out_x, math.pi - direction, direction)
        mean_direction = np.where(out_x, math.pi - mean_direction, mean_direction)
        out_y = (ny < 0.0) | (ny > self.height)
        ny = np.where(out_y, np.minimum(np.maximum(ny, 0.0), self.height), ny)
        direction = np.where(out_y, -direction, direction)
        mean_direction = np.where(out_y, -mean_direction, mean_direction)
        speeds_map.update(zip(ids, speed.tolist()))
        dirs_map.update(zip(ids, direction.tolist()))
        means_map.update(zip(ids, mean_direction.tolist()))
        positions.update(zip(ids, zip(nx.tolist(), ny.tolist())))


@dataclass
class ReferencePointGroupMobility:
    """Reference-point group mobility (RPGM).

    Nodes are partitioned into ``group_count`` groups.  Each group has a
    *reference point* performing random-waypoint motion; every member
    follows its group's reference point while wandering inside a disc of
    radius ``member_radius`` around it.  This produces the clustered,
    platoon-like topologies of tactical MANETs — the setting the source
    paper targets — where whole neighbourhoods move together and inter-group
    links are the scarce, churning resource.
    """

    width: float = 1000.0
    height: float = 1000.0
    group_count: int = 3
    member_radius: float = 120.0
    min_speed: float = 1.0
    max_speed: float = 5.0
    update_interval: float = 1.0
    rng: random.Random = field(default_factory=random.Random)
    _group_of: Dict[str, int] = field(default_factory=dict)
    _references: Dict[int, Position] = field(default_factory=dict)
    _targets: Dict[int, Position] = field(default_factory=dict)
    _speeds: Dict[int, float] = field(default_factory=dict)
    _offsets: Dict[str, Position] = field(default_factory=dict)

    def place(self, node_ids: Sequence[str]) -> Dict[str, Position]:
        groups = max(1, min(self.group_count, len(node_ids)))
        positions: Dict[str, Position] = {}
        for group in range(groups):
            self._references[group] = (
                self.rng.uniform(0.0, self.width),
                self.rng.uniform(0.0, self.height),
            )
            self._pick_group_target(group)
        for index, nid in enumerate(node_ids):
            group = index % groups
            self._group_of[nid] = group
            self._offsets[nid] = self._random_offset()
            positions[nid] = self._member_position(group, nid)
        return positions

    def install(self, network) -> None:
        network.simulator.schedule_periodic(
            self.update_interval,
            self._advance,
            network,
            start_delay=self.update_interval,
        )

    # internal ------------------------------------------------------------
    def _random_offset(self) -> Position:
        angle = self.rng.uniform(0.0, 2.0 * math.pi)
        radius = self.member_radius * math.sqrt(self.rng.random())
        return (radius * math.cos(angle), radius * math.sin(angle))

    def _pick_group_target(self, group: int) -> None:
        self._targets[group] = (
            self.rng.uniform(0.0, self.width),
            self.rng.uniform(0.0, self.height),
        )
        self._speeds[group] = self.rng.uniform(self.min_speed, self.max_speed)

    def _member_position(self, group: int, node_id: str) -> Position:
        rx, ry = self._references[group]
        ox, oy = self._offsets[node_id]
        return (
            min(max(rx + ox, 0.0), self.width),
            min(max(ry + oy, 0.0), self.height),
        )

    def _advance(self, network) -> None:
        np = numpy_or_none()
        if np is None or len(network.positions) < _VECTOR_MIN_NODES:
            self._advance_scalar(network)
        else:
            self._advance_vector(network, np)

    def _advance_references(self) -> None:
        for group, reference in list(self._references.items()):
            target = self._targets[group]
            speed = self._speeds[group]
            step = speed * self.update_interval
            dx, dy = target[0] - reference[0], target[1] - reference[1]
            dist = math.hypot(dx, dy)
            if dist <= step:
                self._references[group] = target
                self._pick_group_target(group)
            else:
                self._references[group] = (
                    reference[0] + dx / dist * step,
                    reference[1] + dy / dist * step,
                )

    def _advance_scalar(self, network) -> None:
        self._advance_references()
        for node_id in list(network.positions):
            group = self._group_of.get(node_id)
            if group is None:
                continue
            # Members drift within the disc: small random perturbation of the
            # offset, clamped back to member_radius.
            ox, oy = self._offsets[node_id]
            ox += self.rng.uniform(-2.0, 2.0)
            oy += self.rng.uniform(-2.0, 2.0)
            norm = math.hypot(ox, oy)
            if norm > self.member_radius:
                scale = self.member_radius / norm
                ox, oy = ox * scale, oy * scale
            self._offsets[node_id] = (ox, oy)
            network.positions[node_id] = self._member_position(group, node_id)

    def _advance_vector(self, network, np) -> None:
        # Reference points stay scalar: a handful of groups, and the loop
        # keeps the group-order target draws obvious.
        self._advance_references()
        positions = network.positions
        group_of = self._group_of
        ids = [nid for nid in positions if nid in group_of]
        if not ids:
            return
        u = self.rng.uniform
        offs = [self._offsets[nid] for nid in ids]
        delta = np.array([u(-2.0, 2.0) for _ in range(2 * len(ids))])
        ox = np.array([o[0] for o in offs]) + delta[0::2]
        oy = np.array([o[1] for o in offs]) + delta[1::2]
        radius = self.member_radius
        norms = np.array(list(map(math.hypot, ox.tolist(), oy.tolist())))
        over = norms > radius
        with np.errstate(divide="ignore", invalid="ignore"):
            # Lanes inside the disc never read the (possibly inf) scale.
            scale = radius / norms
            ox = np.where(over, ox * scale, ox)
            oy = np.where(over, oy * scale, oy)
        references = self._references
        ref_pts = [references[group_of[nid]] for nid in ids]
        px = np.minimum(np.maximum(np.array([r[0] for r in ref_pts]) + ox,
                                   0.0), self.width)
        py = np.minimum(np.maximum(np.array([r[1] for r in ref_pts]) + oy,
                                   0.0), self.height)
        self._offsets.update(zip(ids, zip(ox.tolist(), oy.tolist())))
        positions.update(zip(ids, zip(px.tolist(), py.tolist())))


def ring_positions(node_ids: Sequence[str], radius: float, center: Position = (0.0, 0.0)) -> Dict[str, Position]:
    """Place nodes evenly on a circle (useful for fully controlled topologies)."""
    n = len(node_ids)
    positions: Dict[str, Position] = {}
    for index, nid in enumerate(node_ids):
        angle = 2.0 * math.pi * index / max(n, 1)
        positions[nid] = (
            center[0] + radius * math.cos(angle),
            center[1] + radius * math.sin(angle),
        )
    return positions


def chain_positions(node_ids: Sequence[str], spacing: float, origin: Position = (0.0, 0.0)) -> Dict[str, Position]:
    """Place nodes on a straight horizontal chain (multi-hop line topology)."""
    ox, oy = origin
    return {nid: (ox + index * spacing, oy) for index, nid in enumerate(node_ids)}
