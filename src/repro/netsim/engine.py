"""Deterministic discrete-event simulation engine.

Events scheduled at the same simulated time are executed in the order they
were scheduled (FIFO on a monotonically increasing sequence number), which
keeps runs fully deterministic for a given seed and call sequence.

Two-tier scheduler
------------------
The queue behind :class:`Simulator` is a *timer wheel* (a bucketed calendar
queue) backed by an overflow heap, replacing the single global ``heapq`` of
earlier revisions while preserving its ``(time, sequence)`` order exactly:

* **Wheel** — ``wheel_slots`` buckets of ``wheel_quantum`` simulated seconds
  each, covering a rolling horizon of ``wheel_slots * wheel_quantum`` seconds
  ahead of the current slot.  An event whose timestamp falls inside the
  horizon is pushed onto the small per-slot heap for its quantised slot.
  This is where the periodic control-plane traffic (HELLO/TC emission,
  mobility ticks, detection cycles, AODV/geo housekeeping) and the
  propagation-delay deliveries land: per-slot heaps stay tiny, so each
  push/pop costs O(log slot-occupancy) with cheap C-level tuple comparisons
  instead of O(log total-queue) comparisons on a dataclass.
* **Overflow heap** — events beyond the horizon (long warm-up timers,
  far-future attack activations).  Whenever the wheel pointer advances one
  slot the horizon grows by one quantum and any overflow event that now fits
  is migrated into its wheel slot, so an overflow event and a wheel event
  with equal timestamps still pop in sequence-number order: they meet in the
  same per-slot heap before either can execute.

Ordering guarantee: every structure orders entries by ``(time, sequence)``
and the wheel pointer never passes a non-empty slot, so the merged pop
sequence is identical to the classic single-heap engine — a property pinned
by ``tests/test_netsim_engine_parity.py`` against :class:`HeapSimulator`,
the retained reference implementation.

Event records are pooled: a fixed-slot :class:`Event` is recycled through a
free list once executed (no per-event ``kwargs`` dict unless keyword
arguments are actually passed), and :class:`EventHandle` carries a
generation stamp so a handle to a recycled record never observes — or
cancels — the record's next life.  Cancelled events are skipped lazily on
pop, and a threshold-triggered compaction rewrites the queues when too many
cancelled entries accumulate, keeping cancellation-heavy runs (collision
models, torn-down periodic chains) bounded-memory.

The engine keeps throughput counters (``pushes``, ``pops``,
``cancelled_skipped``, ``wheel_hits``, ``compactions``) that the experiment
backends surface through run stats.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "Event",
    "EventHandle",
    "HeapSimulator",
    "SimulationError",
    "Simulator",
]


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


class Event:
    """A pooled event record.

    Queue entries are ``(time, sequence, event)`` tuples — the two leading
    numbers settle every comparison at C speed, the record itself never
    participates in ordering.  Records are recycled through the simulator's
    free list after execution; ``generation`` is bumped on each reuse so
    outstanding :class:`EventHandle` objects can detect that their event is
    over.  ``kwargs`` is ``None`` (not an empty dict) for the overwhelmingly
    common keyword-less case.
    """

    __slots__ = ("time", "sequence", "callback", "args", "kwargs",
                 "cancelled", "queued", "generation")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[..., None],
                 args: tuple = (), kwargs: Optional[dict] = None) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.queued = True
        self.generation = 0


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule` allowing cancellation.

    The handle snapshots the record's generation: once the event has
    executed (and the record possibly recycled for a later event), the
    handle keeps reporting the original scheduled time and its own
    cancellation state instead of leaking the record's next life.
    """

    __slots__ = ("_simulator", "_event", "_generation", "_time", "_cancelled")

    def __init__(self, simulator: "Simulator", event: Event) -> None:
        self._simulator = simulator
        self._event = event
        self._generation = event.generation
        self._time = event.time
        self._cancelled = False

    @property
    def time(self) -> float:
        """Scheduled execution time of the underlying event."""
        event = self._event
        if event.generation == self._generation:
            return event.time
        return self._time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        event = self._event
        if event.generation == self._generation:
            return event.cancelled
        return self._cancelled

    def cancel(self) -> None:
        """Cancel the event; it will be skipped when popped from the queue."""
        event = self._event
        if event.generation == self._generation and not event.cancelled:
            event.cancelled = True
            self._cancelled = True
            if event.queued:
                self._simulator._note_cancelled()
        elif event.generation == self._generation:
            self._cancelled = True


class Simulator:
    """Discrete-event simulator on a timer-wheel + overflow-heap queue.

    Parameters
    ----------
    start_time:
        Initial simulated clock value.
    wheel_quantum:
        Width of one wheel slot in simulated seconds.  The default (50 ms)
        keeps every periodic MANET interval (HELLO ~2 s, TC ~5 s, mobility
        1 s, detection cycles 10 s) comfortably inside the wheel horizon
        while propagation-delay deliveries (0.1 ms) stay in the current
        slot.
    wheel_slots:
        Number of slots; horizon = ``wheel_slots * wheel_quantum`` (12.8 s
        by default).  Events beyond the horizon wait in the overflow heap.
    compaction_threshold:
        Compact the queues once at least this many cancelled events are
        pending *and* they outnumber the live ones — bounds memory under
        cancellation-heavy workloads without ever rewriting queues on the
        steady-state path.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> sim.schedule(1.0, seen.append, "a")  # doctest: +ELLIPSIS
    <repro.netsim.engine.EventHandle object at ...>
    >>> sim.schedule(0.5, seen.append, "b")  # doctest: +ELLIPSIS
    <repro.netsim.engine.EventHandle object at ...>
    >>> sim.run()
    >>> seen
    ['b', 'a']
    """

    _POOL_LIMIT = 4096

    def __init__(
        self,
        start_time: float = 0.0,
        wheel_quantum: float = 0.05,
        wheel_slots: int = 256,
        compaction_threshold: int = 1024,
    ) -> None:
        if wheel_quantum <= 0:
            raise SimulationError("wheel_quantum must be positive")
        if wheel_slots < 2:
            raise SimulationError("wheel_slots must be at least 2")
        self._now = float(start_time)
        self._quantum = float(wheel_quantum)
        self._wheel_size = int(wheel_slots)
        self._wheel: list[list] = [[] for _ in range(self._wheel_size)]
        #: Absolute slot index (``floor(time / quantum)``) the pointer is on.
        self._wheel_slot = int(self._now // self._quantum)
        self._wheel_count = 0
        self._overflow: list = []
        self._sequence = 0
        self._queued = 0            # entries in wheel + overflow, incl. cancelled
        self._cancelled_pending = 0  # cancelled entries still queued
        self.compaction_threshold = int(compaction_threshold)
        self._pool: list[Event] = []
        self._processed = 0
        self._running = False
        self._stop_requested = False
        # ------------------------------------------------- throughput counters
        #: Events pushed (wheel or overflow) since construction.
        self.pushes = 0
        #: Live events popped and executed.
        self.pops = 0
        #: Cancelled events lazily discarded on pop.
        self.cancelled_skipped = 0
        #: Pushes that landed directly in the wheel (vs the overflow heap).
        self.wheel_hits = 0
        #: Threshold-triggered queue compactions.
        self.compactions = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of *live* (non-cancelled) events still queued.

        Earlier revisions counted cancelled-but-unpopped events too, which
        made stats and ``peek_next_time`` callers overestimate remaining
        work; this is now an alias of :attr:`live_events`.
        """
        return self._queued - self._cancelled_pending

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually execute."""
        return self._queued - self._cancelled_pending

    @property
    def queued_entries(self) -> int:
        """Raw queue occupancy including not-yet-compacted cancelled events."""
        return self._queued

    def counters(self) -> dict:
        """Engine throughput counters, for run stats and benchmarks."""
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "cancelled_skipped": self.cancelled_skipped,
            "wheel_hits": self.wheel_hits,
            "compactions": self.compactions,
        }

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = self._push(self._now + delay, callback, args, kwargs or None)
        return EventHandle(self, event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        event = self._push(time, callback, args, kwargs or None)
        return EventHandle(self, event)

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` without materialising an EventHandle.

        Hot-path variant of :meth:`schedule` for fire-and-forget events
        (frame deliveries, flood forwards) whose handle would be discarded
        anyway; scheduling semantics and ordering are identical.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        self._push(self._now + delay, callback, args, None)

    def _push(self, time: float, callback: Callable[..., None],
              args: tuple, kwargs: Optional[dict]) -> Event:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, already at t={self._now:.6f}"
            )
        time = float(time)
        sequence = self._sequence
        self._sequence = sequence + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.sequence = sequence
            event.callback = callback
            event.args = args
            event.kwargs = kwargs
            event.cancelled = False
            event.queued = True
        else:
            event = Event(time, sequence, callback, args, kwargs)
        slot = int(time // self._quantum)
        base = self._wheel_slot
        if slot < base:
            # ``time`` is inside the slot currently being drained (the clock
            # sits mid-slot); the per-slot heap restores (time, seq) order.
            slot = base
        if slot - base < self._wheel_size:
            heappush(self._wheel[slot % self._wheel_size],
                     (time, sequence, event))
            self._wheel_count += 1
            self.wheel_hits += 1
        else:
            heappush(self._overflow, (time, sequence, event))
        self._queued += 1
        self.pushes += 1
        return event

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[..., None],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback`` every ``interval`` seconds.

        ``jitter`` (if non-zero) subtracts a uniform random amount in
        ``[0, jitter)`` from every period, mimicking the emission jitter that
        OLSR applies to its control traffic.  A ``rng`` (``random.Random``)
        must be supplied when jitter is used, to keep runs deterministic.

        Returns a handle that always tracks the chain's *next* firing (its
        ``time`` advances as occurrences execute); cancelling it stops the
        whole chain, including from inside the callback itself — in that
        case no further occurrence is scheduled, so no ghost event lingers
        in the queue.
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        if jitter and rng is None:
            raise SimulationError("jitter requires an explicit rng")
        first_delay = interval if start_delay is None else start_delay

        def fire() -> None:
            if chain._chain_cancelled:
                return
            callback(*args, **kwargs)
            if chain._chain_cancelled:
                # The callback cancelled the chain: scheduling the next
                # occurrence anyway would leave a live no-op event behind
                # and make the handle report a phantom next firing.
                return
            delay = interval
            if jitter:
                delay -= rng.uniform(0.0, jitter)
                delay = max(delay, 1e-9)
            next_event = self._push(self._now + delay, fire, (), None)
            chain._retarget(next_event)

        first = self._push(self._now + max(first_delay, 0.0), fire, (), None)
        chain = _PeriodicHandle(self, first)
        return chain

    # ---------------------------------------------------------- queue internals
    def _note_cancelled(self) -> None:
        """Bookkeeping for a cancellation of a still-queued event."""
        self._cancelled_pending += 1
        if (self._cancelled_pending >= self.compaction_threshold
                and self._cancelled_pending * 2 >= self._queued):
            self._compact()

    def _discard(self, event: Event) -> None:
        """Drop a cancelled entry encountered at a queue head."""
        self._queued -= 1
        self._cancelled_pending -= 1
        self.cancelled_skipped += 1
        self._recycle(event)

    def _recycle(self, event: Event) -> None:
        event.generation += 1
        event.queued = False
        event.callback = None  # type: ignore[assignment]
        event.args = ()
        event.kwargs = None
        pool = self._pool
        if len(pool) < self._POOL_LIMIT:
            pool.append(event)

    def _compact(self) -> None:
        """Rewrite every queue without its cancelled entries."""
        removed = 0
        for index, slot in enumerate(self._wheel):
            if not slot:
                continue
            kept = [entry for entry in slot if not entry[2].cancelled]
            dropped = len(slot) - len(kept)
            if dropped:
                for entry in slot:
                    if entry[2].cancelled:
                        self._recycle(entry[2])
                heapify(kept)
                self._wheel[index] = kept
                self._wheel_count -= dropped
                removed += dropped
        if self._overflow:
            kept = [entry for entry in self._overflow if not entry[2].cancelled]
            dropped = len(self._overflow) - len(kept)
            if dropped:
                for entry in self._overflow:
                    if entry[2].cancelled:
                        self._recycle(entry[2])
                heapify(kept)
                self._overflow = kept
                removed += dropped
        self._queued -= removed
        self._cancelled_pending -= removed
        self.compactions += 1

    def _migrate_overflow(self) -> None:
        """Pull overflow events that now fit inside the wheel horizon."""
        overflow = self._overflow
        if not overflow:
            return
        horizon = (self._wheel_slot + self._wheel_size) * self._quantum
        base = self._wheel_slot
        size = self._wheel_size
        while overflow and overflow[0][0] < horizon:
            entry = heappop(overflow)
            slot = int(entry[0] // self._quantum)
            if slot < base:
                slot = base
            heappush(self._wheel[slot % size], entry)
            self._wheel_count += 1

    def _next_entry(self):
        """The globally next live ``(time, seq, event)`` entry, or ``None``.

        Advances the wheel pointer across empty slots (migrating overflow
        events as the horizon grows) and lazily discards cancelled entries
        found at slot heads.  The returned entry is left at the head of the
        current slot's heap; ``_pop_current`` removes it.
        """
        wheel = self._wheel
        size = self._wheel_size
        while True:
            if self._wheel_count:
                slot = wheel[self._wheel_slot % size]
                if slot:
                    entry = slot[0]
                    if entry[2].cancelled:
                        heappop(slot)
                        self._wheel_count -= 1
                        self._discard(entry[2])
                        continue
                    return entry
                self._wheel_slot += 1
                self._migrate_overflow()
                continue
            if self._overflow:
                # Wheel drained: jump the pointer straight to the overflow
                # head's slot instead of stepping one quantum at a time.
                target = int(self._overflow[0][0] // self._quantum)
                if target > self._wheel_slot:
                    self._wheel_slot = target
                self._migrate_overflow()
                continue
            return None

    def _pop_current(self, entry) -> None:
        """Remove ``entry`` (the value `_next_entry` just returned)."""
        slot = self._wheel[self._wheel_slot % self._wheel_size]
        heappop(slot)
        self._wheel_count -= 1
        self._queued -= 1
        self.pops += 1

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would occur strictly after this time.
            The clock is advanced to ``until`` only when no pending event at
            or before ``until`` remains — i.e. not when the loop exits early
            via :meth:`stop` or the ``max_events`` cap, which would otherwise
            leave events scheduled in the (now skipped) past and make a
            subsequent ``run`` execute them at ``event.time < now``.
        max_events:
            Safety cap on the number of executed events.
        """
        self._running = True
        self._stop_requested = False
        executed = 0
        wheel = self._wheel
        size = self._wheel_size
        pool = self._pool
        pool_limit = self._POOL_LIMIT
        try:
            while not self._stop_requested:
                # Hot path: the current slot has a live event at its head.
                slot = wheel[self._wheel_slot % size]
                if slot:
                    entry = slot[0]
                    event = entry[2]
                    if event.cancelled:
                        heappop(slot)
                        self._wheel_count -= 1
                        self._discard(event)
                        continue
                    if until is not None and entry[0] > until:
                        break
                    heappop(slot)
                    self._wheel_count -= 1
                else:
                    entry = self._next_entry()
                    if entry is None:
                        break
                    if until is not None and entry[0] > until:
                        break
                    event = entry[2]
                    heappop(wheel[self._wheel_slot % size])
                    self._wheel_count -= 1
                self._queued -= 1
                self.pops += 1
                callback = event.callback
                args = event.args
                kwargs = event.kwargs
                # Recycle before the callback runs: the generation bump means
                # any outstanding handle sees the event as over, so reuse by
                # events the callback itself schedules is safe.
                event.generation += 1
                event.queued = False
                event.callback = None  # type: ignore[assignment]
                event.args = ()
                event.kwargs = None
                if len(pool) < pool_limit:
                    pool.append(event)
                self._now = entry[0]
                if kwargs:
                    callback(*args, **kwargs)
                else:
                    callback(*args)
                self._processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._now < until:
                next_time = self.peek_next_time()
                if next_time is None or next_time > until:
                    self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event was executed, ``False`` if the queue was
        empty.
        """
        entry = self._next_entry()
        if entry is None:
            return False
        self._pop_current(entry)
        event = entry[2]
        callback = event.callback
        args = event.args
        kwargs = event.kwargs
        self._recycle(event)
        self._now = entry[0]
        if kwargs:
            callback(*args, **kwargs)
        else:
            callback(*args)
        self._processed += 1
        return True

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    def peek_next_time(self) -> Optional[float]:
        """Return the time of the next pending event, skipping cancelled ones."""
        entry = self._next_entry()
        if entry is None:
            return None
        return entry[0]

    def drain(self) -> Iterator[Event]:
        """Remove and yield every pending event without executing it.

        Yielded records leave the engine's ownership (they are not recycled
        into the pool), so callers may inspect ``time``/``callback``/``args``
        at leisure.
        """
        while True:
            entry = self._next_entry()
            if entry is None:
                return
            self._pop_current(entry)
            entry[2].queued = False
            yield entry[2]


class _PeriodicHandle(EventHandle):
    """Handle for periodic schedules; cancelling stops future occurrences.

    The handle is re-targeted at each occurrence's successor *after* the
    callback ran (scheduling order — and therefore sequence numbers and
    traces — match the one-shot chain exactly), so ``time`` always reports
    the next firing.
    """

    __slots__ = ("_chain_cancelled",)

    def __init__(self, simulator: Simulator, event: Event) -> None:
        super().__init__(simulator, event)
        self._chain_cancelled = False

    def _retarget(self, event: Event) -> None:
        self._event = event
        self._generation = event.generation
        self._time = event.time

    @property
    def cancelled(self) -> bool:
        return self._chain_cancelled

    def cancel(self) -> None:
        self._chain_cancelled = True
        super().cancel()


# ---------------------------------------------------------------------------
# Reference implementation
# ---------------------------------------------------------------------------
class _HeapEvent:
    """Event record of the classic single-heap engine (reference only)."""

    __slots__ = ("time", "sequence", "callback", "args", "kwargs", "cancelled")

    def __init__(self, time, sequence, callback, args, kwargs) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def __lt__(self, other) -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class _HeapEventHandle:
    """Cancellation handle of the reference engine."""

    __slots__ = ("_event",)

    def __init__(self, event: _HeapEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        self._event.cancelled = True


class HeapSimulator:
    """The pre-timer-wheel engine: one global ``(time, sequence)`` heap.

    Kept as the ordering reference for the parity suite
    (``tests/test_netsim_engine_parity.py`` pins :class:`Simulator`'s event
    order against it on randomised schedules) and as the baseline of the
    engine-throughput benchmark in ``benchmarks/test_bench_olsr_scale.py``.
    Not used by any production path.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_HeapEvent] = []
        self._sequence = 0
        self._processed = 0
        self._stop_requested = False

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    live_events = pending_events

    def schedule(self, delay, callback, *args, **kwargs):
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time, callback, *args, **kwargs):
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, already at t={self._now:.6f}"
            )
        event = _HeapEvent(float(time), self._sequence, callback, args, kwargs)
        self._sequence += 1
        heappush(self._queue, event)
        return _HeapEventHandle(event)

    def post(self, delay, callback, *args) -> None:
        self.schedule(delay, callback, *args)

    def schedule_periodic(self, interval, callback, *args,
                          start_delay=None, jitter=0.0, rng=None, **kwargs):
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        if jitter and rng is None:
            raise SimulationError("jitter requires an explicit rng")
        first_delay = interval if start_delay is None else start_delay
        state = {"cancelled": False}

        def fire() -> None:
            if state["cancelled"]:
                return
            callback(*args, **kwargs)
            if state["cancelled"]:
                return
            delay = interval
            if jitter:
                delay -= rng.uniform(0.0, jitter)
                delay = max(delay, 1e-9)
            handle = self.schedule(delay, fire)
            chain._event = handle._event

        first = self.schedule(max(first_delay, 0.0), fire)
        chain = _HeapPeriodicHandle(first._event, state)
        return chain

    def run(self, until=None, max_events=None) -> None:
        self._stop_requested = False
        executed = 0
        while self._queue:
            if self._stop_requested:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args, **event.kwargs)
            self._processed += 1
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and self._now < until:
            next_time = self.peek_next_time()
            if next_time is None or next_time > until:
                self._now = until

    def step(self) -> bool:
        while self._queue:
            event = heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args, **event.kwargs)
            self._processed += 1
            return True
        return False

    def stop(self) -> None:
        self._stop_requested = True

    def peek_next_time(self):
        while self._queue and self._queue[0].cancelled:
            heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def drain(self):
        while self._queue:
            event = heappop(self._queue)
            if not event.cancelled:
                yield event


class _HeapPeriodicHandle(_HeapEventHandle):
    """Periodic handle of the reference engine."""

    __slots__ = ("_state",)

    def __init__(self, event: _HeapEvent, state: dict) -> None:
        super().__init__(event)
        self._state = state

    @property
    def cancelled(self) -> bool:
        return self._state["cancelled"]

    def cancel(self) -> None:
        self._state["cancelled"] = True
        super().cancel()
