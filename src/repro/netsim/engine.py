"""Deterministic discrete-event simulation engine.

The engine is a classic priority-queue scheduler.  Events scheduled at the
same simulated time are executed in the order they were scheduled (FIFO on a
monotonically increasing sequence number), which keeps runs fully
deterministic for a given seed and call sequence.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


class SimulationError(RuntimeError):
    """Raised when the engine is used incorrectly (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, sequence)`` so that simultaneous events run
    in scheduling order.  The callback and its arguments do not participate in
    ordering.
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule` allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled execution time of the underlying event."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; it will be skipped when popped from the queue."""
        self._event.cancelled = True


class Simulator:
    """Discrete-event simulator with a simple heap-based run loop.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> sim.schedule(1.0, seen.append, "a")  # doctest: +ELLIPSIS
    <repro.netsim.engine.EventHandle object at ...>
    >>> sim.schedule(0.5, seen.append, "b")  # doctest: +ELLIPSIS
    <repro.netsim.engine.EventHandle object at ...>
    >>> sim.run()
    >>> seen
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, already at t={self._now:.6f}"
            )
        event = Event(
            time=float(time),
            sequence=next(self._sequence),
            callback=callback,
            args=args,
            kwargs=kwargs,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[..., None],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
        **kwargs: Any,
    ) -> EventHandle:
        """Schedule ``callback`` every ``interval`` seconds.

        ``jitter`` (if non-zero) subtracts a uniform random amount in
        ``[0, jitter)`` from every period, mimicking the emission jitter that
        OLSR applies to its control traffic.  A ``rng`` (``random.Random``)
        must be supplied when jitter is used, to keep runs deterministic.

        Returns the handle of the *first* occurrence; cancelling it stops the
        whole periodic chain.
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        if jitter and rng is None:
            raise SimulationError("jitter requires an explicit rng")
        first_delay = interval if start_delay is None else start_delay
        state = {"cancelled": False}

        def fire() -> None:
            if state["cancelled"]:
                return
            callback(*args, **kwargs)
            delay = interval
            if jitter:
                delay -= rng.uniform(0.0, jitter)
                delay = max(delay, 1e-9)
            handle = self.schedule(delay, fire)
            # Chain cancellation: cancelling the returned handle marks state.
            chain._event = handle._event  # type: ignore[attr-defined]

        first = self.schedule(max(first_delay, 0.0), fire)
        chain = _PeriodicHandle(first._event, state)
        return chain

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would occur strictly after this time.
            The clock is advanced to ``until`` only when no pending event at
            or before ``until`` remains — i.e. not when the loop exits early
            via :meth:`stop` or the ``max_events`` cap, which would otherwise
            leave events scheduled in the (now skipped) past and make a
            subsequent ``run`` execute them at ``event.time < now``.
        max_events:
            Safety cap on the number of executed events.
        """
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while self._queue:
                if self._stop_requested:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args, **event.kwargs)
                self._processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._now < until:
                next_time = self.peek_next_time()
                if next_time is None or next_time > until:
                    self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event was executed, ``False`` if the queue was
        empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args, **event.kwargs)
            self._processed += 1
            return True
        return False

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    def peek_next_time(self) -> Optional[float]:
        """Return the time of the next pending event, skipping cancelled ones."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def drain(self) -> Iterator[Event]:
        """Remove and yield every pending event without executing it."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                yield event


class _PeriodicHandle(EventHandle):
    """Handle for periodic schedules; cancelling stops future occurrences."""

    __slots__ = ("_state",)

    def __init__(self, event: Event, state: dict) -> None:
        super().__init__(event)
        self._state = state

    def cancel(self) -> None:
        self._state["cancelled"] = True
        super().cancel()
