"""Discrete-event MANET simulator.

This package provides the network substrate on which the OLSR protocol and
the intrusion-detection experiments run:

* :mod:`repro.netsim.engine` — a deterministic discrete-event engine.
* :mod:`repro.netsim.packet` — the link-layer frame model.
* :mod:`repro.netsim.medium` — wireless broadcast medium with configurable
  propagation, loss and collision models, served by a spatial neighbour
  index (uniform grid, position-epoch invalidation) so neighbourhood
  queries and broadcast candidate selection cost O(neighbours), not O(N).
* :mod:`repro.netsim.mobility` — node placement and mobility models.
* :mod:`repro.netsim.network` — container wiring nodes, medium and engine.
* :mod:`repro.netsim.stats` — transmission statistics.
* :mod:`repro.netsim.trace` — event trace recording.

The paper evaluates its trust system on a small ad hoc network; the authors
do not publish their simulation substrate.  This module is the substitution
documented in DESIGN.md: a unit-disk radio with Bernoulli loss and an
optional collision window reproduces the properties the detection system
depends on (broadcast neighbourhoods, lost answers, asymmetric links).
"""

from repro.netsim.engine import Event, EventHandle, Simulator
from repro.netsim.medium import (
    AsymmetricRangePropagation,
    BernoulliLossModel,
    CollisionModel,
    CompositeLossModel,
    DistanceLossModel,
    PerfectChannel,
    PropagationModel,
    UnitDiskPropagation,
    WirelessMedium,
)
from repro.netsim.mobility import (
    GridPlacement,
    MobilityModel,
    RandomWalkMobility,
    RandomWaypointMobility,
    StaticPlacement,
    UniformRandomPlacement,
)
from repro.netsim.network import Network, NetworkInterface, PositionTable
from repro.netsim.packet import BROADCAST_ADDRESS, Frame
from repro.netsim.stats import MediumStatistics
from repro.netsim.trace import TraceEvent, TraceRecorder

__all__ = [
    "AsymmetricRangePropagation",
    "BROADCAST_ADDRESS",
    "BernoulliLossModel",
    "CollisionModel",
    "CompositeLossModel",
    "DistanceLossModel",
    "Event",
    "EventHandle",
    "Frame",
    "GridPlacement",
    "MediumStatistics",
    "MobilityModel",
    "Network",
    "NetworkInterface",
    "PerfectChannel",
    "PositionTable",
    "PropagationModel",
    "RandomWalkMobility",
    "RandomWaypointMobility",
    "Simulator",
    "StaticPlacement",
    "TraceEvent",
    "TraceRecorder",
    "UniformRandomPlacement",
    "UnitDiskPropagation",
    "WirelessMedium",
]
