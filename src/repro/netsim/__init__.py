"""Discrete-event MANET simulator.

This package provides the network substrate on which the OLSR protocol and
the intrusion-detection experiments run:

* :mod:`repro.netsim.engine` — a deterministic discrete-event engine.
* :mod:`repro.netsim.packet` — the link-layer frame model.
* :mod:`repro.netsim.medium` — wireless broadcast medium with configurable
  propagation, loss and collision models, served by a spatial neighbour
  index (uniform grid, position-epoch invalidation) so neighbourhood
  queries and broadcast candidate selection cost O(neighbours), not O(N).
* :mod:`repro.netsim.mobility` — node placement and mobility models.
* :mod:`repro.netsim.network` — container wiring nodes, medium and engine.
* :mod:`repro.netsim.stats` — transmission statistics.
* :mod:`repro.netsim.trace` — event trace recording.

The paper evaluates its trust system on a small ad hoc network; the authors
do not publish their simulation substrate.  This module is the substitution
documented in DESIGN.md: a unit-disk radio with Bernoulli loss and an
optional collision window reproduces the properties the detection system
depends on (broadcast neighbourhoods, lost answers, asymmetric links).

Batched tick pipeline
---------------------
At 1,024-node scale the dominant cost is per-event Python overhead, so the
hot path is organised as a batch pipeline rather than per-receiver
callbacks:

1. **Candidate selection** — a broadcast asks the spatial grid for the
   cell ring around the sender: a conservative superset of reachable
   receivers in O(neighbours).
2. **Batch resolution** — range checks and loss probabilities are
   evaluated over numpy position/distance arrays for the whole candidate
   set; loss draws are consumed in the receivers' scalar iteration order,
   which keeps every RNG stream — and therefore every trace and stored
   row — byte-identical to the per-receiver path
   (``batch_delivery=False``).
3. **Single delivery event** — one simulator event fans the frame out to
   the surviving receivers; the per-receiver events it replaces are
   tallied in ``WirelessMedium.batched_deliveries_saved`` so reported
   event counts stay comparable across both paths.

Downstream, the OLSR node amortises its RFC recomputations the same way:
MPR selection and the routing table are version-gated on the link-state
repositories and refreshed per detection cycle (or lazily on read), not
per received message.

Scheduler core
--------------
Under the pipeline sits a two-tier event scheduler
(:class:`~repro.netsim.engine.Simulator`): a timer wheel of per-slot
min-heaps absorbs the near-future events that dominate protocol traffic
(HELLO/TC jitter, delivery delays, retry timers land O(1) in their slot),
while an overflow heap holds everything beyond the wheel horizon and
migrates forward as the wheel turns.  Execution order is exactly the
``(time, sequence)`` FIFO of the PR 8 heap engine — kept as
:class:`~repro.netsim.engine.HeapSimulator` and pinned trace-identical by
``tests/test_netsim_engine_parity.py`` — so the swap changes wall-clock,
never results.  Event records are ``__slots__``-pooled, cancellations are
skipped lazily and compacted when the dead backlog grows, and the
engine's ``counters()`` (pushes, pops, cancelled skips, wheel hits,
compactions) surface through ``Network.engine_counters()`` into
experiment run stats.  Mobility ticks ride the same event spine: one
periodic engine event advances the whole population, vectorised over
numpy arrays for the draw-bound models (see
:mod:`repro.netsim.mobility`).
"""

from repro.netsim.engine import Event, EventHandle, HeapSimulator, Simulator
from repro.netsim.medium import (
    AsymmetricRangePropagation,
    BernoulliLossModel,
    CollisionModel,
    CompositeLossModel,
    DistanceLossModel,
    PerfectChannel,
    PropagationModel,
    UnitDiskPropagation,
    WirelessMedium,
)
from repro.netsim.mobility import (
    GridPlacement,
    MobilityModel,
    RandomWalkMobility,
    RandomWaypointMobility,
    StaticPlacement,
    UniformRandomPlacement,
)
from repro.netsim.network import Network, NetworkInterface, PositionTable
from repro.netsim.packet import BROADCAST_ADDRESS, Frame
from repro.netsim.stats import MediumStatistics
from repro.netsim.trace import TraceEvent, TraceRecorder

__all__ = [
    "AsymmetricRangePropagation",
    "BROADCAST_ADDRESS",
    "BernoulliLossModel",
    "CollisionModel",
    "CompositeLossModel",
    "DistanceLossModel",
    "Event",
    "EventHandle",
    "Frame",
    "GridPlacement",
    "HeapSimulator",
    "MediumStatistics",
    "MobilityModel",
    "Network",
    "NetworkInterface",
    "PerfectChannel",
    "PositionTable",
    "PropagationModel",
    "RandomWalkMobility",
    "RandomWaypointMobility",
    "Simulator",
    "StaticPlacement",
    "TraceEvent",
    "TraceRecorder",
    "UniformRandomPlacement",
    "UnitDiskPropagation",
    "WirelessMedium",
]
