"""Wireless medium: propagation, loss and collision models.

The medium implements an idealised single-channel broadcast radio:

* A :class:`PropagationModel` decides *who can hear whom* (connectivity).
* A loss model decides, per receiver, whether an otherwise reachable frame is
  actually delivered (captures fading, noise, obstacles — the unreliability
  the paper points at when discussing evidence ``E3``).
* An optional :class:`CollisionModel` drops frames whose on-air intervals
  overlap at a receiver, modelling the "high level of collisions" mentioned
  in the paper's Section IV-C.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.netsim.packet import Frame
from repro.netsim.stats import MediumStatistics

Position = Tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two 2-D positions."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


# --------------------------------------------------------------------------
# Propagation models
# --------------------------------------------------------------------------
class PropagationModel(Protocol):
    """Decides whether a transmission from ``sender`` reaches ``receiver``."""

    def in_range(self, sender: Position, receiver: Position) -> bool:
        """Return True when a frame sent at ``sender`` can reach ``receiver``."""
        ...


@dataclass
class UnitDiskPropagation:
    """Classic unit-disk model: reachable iff within ``radio_range`` metres."""

    radio_range: float = 250.0

    def in_range(self, sender: Position, receiver: Position) -> bool:
        return distance(sender, receiver) <= self.radio_range


@dataclass
class AsymmetricRangePropagation:
    """Unit-disk model with per-node transmit ranges.

    Used to create asymmetric links (A hears B but not vice versa), one of the
    situations that makes evidence ``E3`` hard to diagnose.
    """

    default_range: float = 250.0
    per_node_range: Dict[str, float] = field(default_factory=dict)
    _positions_to_node: Dict[Position, str] = field(default_factory=dict)

    def register(self, node_id: str, tx_range: float) -> None:
        """Assign ``tx_range`` to ``node_id``."""
        self.per_node_range[node_id] = tx_range

    def range_of(self, node_id: Optional[str]) -> float:
        """Transmit range of ``node_id`` (or the default when unknown)."""
        if node_id is None:
            return self.default_range
        return self.per_node_range.get(node_id, self.default_range)

    def in_range(self, sender: Position, receiver: Position) -> bool:
        # Without a node id the model degrades to the default range;
        # WirelessMedium uses in_range_for when sender identity is known.
        return distance(sender, receiver) <= self.default_range

    def in_range_for(self, sender_id: str, sender: Position, receiver: Position) -> bool:
        """Range check using ``sender_id``'s own transmit range."""
        return distance(sender, receiver) <= self.range_of(sender_id)


# --------------------------------------------------------------------------
# Loss models
# --------------------------------------------------------------------------
class LossModel(Protocol):
    """Per-receiver frame-loss decision."""

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        """Return True when the frame is lost on the sender→receiver link."""
        ...


@dataclass
class PerfectChannel:
    """Never loses frames."""

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        return False


@dataclass
class BernoulliLossModel:
    """Drop each frame independently with probability ``loss_probability``."""

    loss_probability: float = 0.0
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss_probability must be within [0, 1]")

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        if self.loss_probability <= 0.0:
            return False
        return self.rng.random() < self.loss_probability


@dataclass
class DistanceLossModel:
    """Loss probability grows with distance relative to ``radio_range``.

    ``p_loss = min(max_loss, (d / radio_range) ** exponent * max_loss)``.
    Within a fraction ``reliable_fraction`` of the range, delivery is perfect.
    """

    radio_range: float = 250.0
    max_loss: float = 0.8
    exponent: float = 2.0
    reliable_fraction: float = 0.5
    rng: random.Random = field(default_factory=random.Random)

    def loss_probability(self, d: float) -> float:
        """Loss probability at distance ``d``."""
        if d <= self.radio_range * self.reliable_fraction:
            return 0.0
        ratio = min(d / self.radio_range, 1.0)
        return min(self.max_loss, (ratio ** self.exponent) * self.max_loss)

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        return self.rng.random() < self.loss_probability(distance(sender, receiver))


@dataclass
class CompositeLossModel:
    """A frame is lost when *any* of the sub-models loses it."""

    models: List[LossModel] = field(default_factory=list)

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        return any(m.is_lost(frame, sender, receiver) for m in self.models)


# --------------------------------------------------------------------------
# Collision model
# --------------------------------------------------------------------------
@dataclass
class CollisionModel:
    """Simple busy-window collision model.

    Two frames collide at a receiver when their on-air intervals overlap.  The
    on-air duration of a frame is ``size_bytes * 8 / bitrate``.  Both
    overlapping frames are dropped at that receiver (no capture effect).
    """

    bitrate_bps: float = 2_000_000.0

    def airtime(self, frame: Frame) -> float:
        """On-air duration of ``frame`` in seconds."""
        return frame.size_bytes * 8.0 / self.bitrate_bps

    def overlaps(
        self, start_a: float, end_a: float, start_b: float, end_b: float
    ) -> bool:
        """Whether two on-air intervals overlap."""
        return start_a < end_b and start_b < end_a


# --------------------------------------------------------------------------
# The medium itself
# --------------------------------------------------------------------------
class WirelessMedium:
    """Single-channel broadcast medium connecting every registered interface.

    The medium needs a position oracle (callable ``node_id -> (x, y)``) which
    the :class:`repro.netsim.network.Network` provides, so mobility models can
    move nodes without the medium keeping stale coordinates.
    """

    def __init__(
        self,
        simulator,
        propagation: Optional[PropagationModel] = None,
        loss_model: Optional[LossModel] = None,
        collision_model: Optional[CollisionModel] = None,
        propagation_delay: float = 1e-4,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._simulator = simulator
        self.propagation = propagation or UnitDiskPropagation()
        self.loss_model = loss_model or PerfectChannel()
        self.collision_model = collision_model
        self.propagation_delay = propagation_delay
        self.jitter = jitter
        self._rng = rng or random.Random(0)
        self._interfaces: Dict[str, object] = {}
        self._position_of = None  # set by Network
        self.stats = MediumStatistics()
        # receiver id -> list of (start, end) on-air intervals (for collisions)
        self._busy: Dict[str, List[Tuple[float, float, int]]] = {}

    # ------------------------------------------------------------- wiring
    def bind_position_oracle(self, oracle) -> None:
        """Install the callable used to resolve current node positions."""
        self._position_of = oracle

    def register(self, node_id: str, interface) -> None:
        """Register a receiving interface (must expose ``receive(frame, now)``)."""
        if node_id in self._interfaces:
            raise ValueError(f"interface {node_id!r} already registered")
        self._interfaces[node_id] = interface

    def unregister(self, node_id: str) -> None:
        """Remove an interface (node failure / departure)."""
        self._interfaces.pop(node_id, None)

    @property
    def node_ids(self) -> List[str]:
        """Identifiers of all registered interfaces."""
        return list(self._interfaces)

    # ------------------------------------------------------------ querying
    def neighbors_of(self, node_id: str) -> List[str]:
        """Node ids currently within radio range of ``node_id``."""
        if self._position_of is None:
            raise RuntimeError("medium has no position oracle bound")
        origin = self._position_of(node_id)
        result = []
        for other in self._interfaces:
            if other == node_id:
                continue
            if self._reaches(node_id, origin, self._position_of(other)):
                result.append(other)
        return result

    def connectivity_matrix(self) -> Dict[str, List[str]]:
        """Mapping node id -> reachable neighbour ids (directed)."""
        return {nid: self.neighbors_of(nid) for nid in self._interfaces}

    def _reaches(self, sender_id: str, sender_pos: Position, receiver_pos: Position) -> bool:
        prop = self.propagation
        if isinstance(prop, AsymmetricRangePropagation):
            return prop.in_range_for(sender_id, sender_pos, receiver_pos)
        return prop.in_range(sender_pos, receiver_pos)

    # ---------------------------------------------------------- transmission
    def transmit(self, frame: Frame) -> None:
        """Transmit ``frame`` from its source; delivery is scheduled per receiver."""
        if self._position_of is None:
            raise RuntimeError("medium has no position oracle bound")
        if frame.source not in self._interfaces:
            raise ValueError(f"unknown transmitter {frame.source!r}")
        now = self._simulator.now
        frame.created_at = now
        sender_pos = self._position_of(frame.source)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += frame.size_bytes

        if frame.is_broadcast:
            receivers = [nid for nid in self._interfaces if nid != frame.source]
        else:
            receivers = [frame.destination] if frame.destination in self._interfaces else []
            if not receivers:
                self.stats.frames_unroutable += 1
                return

        for receiver_id in receivers:
            receiver_pos = self._position_of(receiver_id)
            if not self._reaches(frame.source, sender_pos, receiver_pos):
                self.stats.frames_out_of_range += 1
                continue
            if self.loss_model.is_lost(frame, sender_pos, receiver_pos):
                self.stats.frames_lost += 1
                continue
            if self.collision_model is not None and self._collides(receiver_id, frame, now):
                self.stats.frames_collided += 1
                continue
            delay = self.propagation_delay
            if self.jitter:
                delay += self._rng.uniform(0.0, self.jitter)
            self._simulator.schedule(delay, self._deliver, receiver_id, frame)

    def _collides(self, receiver_id: str, frame: Frame, now: float) -> bool:
        model = self.collision_model
        assert model is not None
        airtime = model.airtime(frame)
        start, end = now, now + airtime
        intervals = self._busy.setdefault(receiver_id, [])
        # prune stale intervals
        intervals[:] = [iv for iv in intervals if iv[1] > now - 1.0]
        collided = any(model.overlaps(start, end, s, e) for s, e, _ in intervals)
        intervals.append((start, end, frame.frame_id))
        return collided

    def _deliver(self, receiver_id: str, frame: Frame) -> None:
        interface = self._interfaces.get(receiver_id)
        if interface is None:
            self.stats.frames_unroutable += 1
            return
        self.stats.frames_delivered += 1
        self.stats.bytes_delivered += frame.size_bytes
        interface.receive(frame, self._simulator.now)
