"""Wireless medium: propagation, loss and collision models.

The medium implements an idealised single-channel broadcast radio:

* A :class:`PropagationModel` decides *who can hear whom* (connectivity).
* A loss model decides, per receiver, whether an otherwise reachable frame is
  actually delivered (captures fading, noise, obstacles — the unreliability
  the paper points at when discussing evidence ``E3``).
* An optional :class:`CollisionModel` drops frames whose on-air intervals
  overlap at a receiver, modelling the "high level of collisions" mentioned
  in the paper's Section IV-C.

Spatial fast path
-----------------
Broadcast candidate selection, :meth:`WirelessMedium.neighbors_of` and
:meth:`WirelessMedium.connectivity_matrix` are served from a uniform spatial
grid (:class:`_SpatialGrid`) hashed by cell, so each query costs
O(neighbours) instead of O(N) over all registered interfaces.  The grid and
the per-node neighbour cache are invalidated through a *position epoch*: the
:class:`repro.netsim.network.Network` exposes a counter that is bumped every
time a node position changes (``set_position``, the mobility models, node
arrival/departure) and the medium rebuilds its index lazily whenever the
epoch it cached no longer matches.  When no epoch oracle is bound (bare
position callables, as used by some unit tests) or the propagation model has
no finite radio range, the medium transparently falls back to the brute-force
scan, so correctness never depends on the index.

Batched delivery
----------------
With ``batch_delivery=True`` (the default) each broadcast is resolved as one
batch instead of N independent receiver decisions: candidate receivers come
from the spatial grid, the in-range mask and the distance-loss probabilities
are evaluated over numpy position arrays, and — when no collision model and
no jitter are active — all surviving receivers are served by a *single*
scheduled event instead of one event per receiver.  The batch unit is one
transmission, not a whole tick: the scalar path schedules its per-receiver
deliveries back to back at the same timestamp inside one ``transmit()`` call,
so they pop consecutively off the event heap anyway, and a single batched
event replays exactly that callback order.  That is what keeps batch mode
byte-identical to ``batch_delivery=False`` — same RNG draw order for loss and
jitter, same delivery order, same statistics, same trace records — while
removing the per-receiver interpreter and heap overhead that dominates
1,000-node campaigns.  Collision-model and jitter configurations keep
per-receiver events (their busy-window bookkeeping and per-receiver delay
draws are interleaved with delivery), but still reuse the vectorised
candidate/range/loss resolution.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.netsim.packet import Frame
from repro.netsim.stats import MediumStatistics
from repro.numerics import numpy_or_none

Position = Tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two 2-D positions."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


# --------------------------------------------------------------------------
# Propagation models
# --------------------------------------------------------------------------
class PropagationModel(Protocol):
    """Decides whether a transmission from ``sender`` reaches ``receiver``."""

    def in_range(self, sender: Position, receiver: Position) -> bool:
        """Return True when a frame sent at ``sender`` can reach ``receiver``."""
        ...


@dataclass
class UnitDiskPropagation:
    """Classic unit-disk model: reachable iff within ``radio_range`` metres."""

    radio_range: float = 250.0

    def in_range(self, sender: Position, receiver: Position) -> bool:
        return distance(sender, receiver) <= self.radio_range


@dataclass
class AsymmetricRangePropagation:
    """Unit-disk model with per-node transmit ranges.

    Used to create asymmetric links (A hears B but not vice versa), one of the
    situations that makes evidence ``E3`` hard to diagnose.
    """

    default_range: float = 250.0
    per_node_range: Dict[str, float] = field(default_factory=dict)

    def register(self, node_id: str, tx_range: float) -> None:
        """Assign ``tx_range`` to ``node_id``."""
        self.per_node_range[node_id] = tx_range

    def range_of(self, node_id: Optional[str]) -> float:
        """Transmit range of ``node_id`` (or the default when unknown)."""
        if node_id is None:
            return self.default_range
        return self.per_node_range.get(node_id, self.default_range)

    def max_range(self) -> float:
        """Largest transmit range any node can have under this model."""
        per_node = max(self.per_node_range.values(), default=0.0)
        return max(self.default_range, per_node)

    def in_range(self, sender: Position, receiver: Position) -> bool:
        # Without a node id the model degrades to the default range;
        # WirelessMedium uses in_range_for when sender identity is known.
        return distance(sender, receiver) <= self.default_range

    def in_range_for(self, sender_id: str, sender: Position, receiver: Position) -> bool:
        """Range check using ``sender_id``'s own transmit range."""
        return distance(sender, receiver) <= self.range_of(sender_id)


# --------------------------------------------------------------------------
# Loss models
# --------------------------------------------------------------------------
class LossModel(Protocol):
    """Per-receiver frame-loss decision."""

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        """Return True when the frame is lost on the sender→receiver link."""
        ...


@dataclass
class PerfectChannel:
    """Never loses frames."""

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        return False


@dataclass
class BernoulliLossModel:
    """Drop each frame independently with probability ``loss_probability``.

    The default ``rng`` is seeded so that two runs built without an explicit
    generator draw the same loss sequence; pass your own ``random.Random``
    to decorrelate several models.
    """

    loss_probability: float = 0.0
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss_probability must be within [0, 1]")

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        if self.loss_probability <= 0.0:
            return False
        return self.rng.random() < self.loss_probability


@dataclass
class DistanceLossModel:
    """Loss probability grows with distance relative to ``radio_range``.

    ``p_loss = min(max_loss, (d / radio_range) ** exponent * max_loss)``.
    Within a fraction ``reliable_fraction`` of the range, delivery is perfect.
    The default ``rng`` is seeded for run-to-run determinism.
    """

    radio_range: float = 250.0
    max_loss: float = 0.8
    exponent: float = 2.0
    reliable_fraction: float = 0.5
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def loss_probability(self, d: float) -> float:
        """Loss probability at distance ``d``."""
        if d <= self.radio_range * self.reliable_fraction:
            return 0.0
        ratio = min(d / self.radio_range, 1.0)
        return min(self.max_loss, (ratio ** self.exponent) * self.max_loss)

    def loss_probabilities(self, distances: Sequence[float]):
        """Vectorised :meth:`loss_probability` over a sequence of distances.

        Elementwise identical to the scalar formula (``min``/``**`` map to
        ``np.minimum``/``np.power`` over float64, which round the same way),
        so the medium's batch path draws against bit-equal probabilities.
        Falls back to a per-element loop when numpy is unavailable.
        """
        np = numpy_or_none()
        if np is None:
            return [self.loss_probability(d) for d in distances]
        d = np.asarray(distances, dtype=float)
        ratio = np.minimum(d / self.radio_range, 1.0)
        probs = np.minimum(self.max_loss, (ratio ** self.exponent) * self.max_loss)
        return np.where(d <= self.radio_range * self.reliable_fraction, 0.0, probs)

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        return self.rng.random() < self.loss_probability(distance(sender, receiver))


@dataclass
class CompositeLossModel:
    """A frame is lost when *any* of the sub-models loses it."""

    models: List[LossModel] = field(default_factory=list)

    def is_lost(self, frame: Frame, sender: Position, receiver: Position) -> bool:
        return any(m.is_lost(frame, sender, receiver) for m in self.models)


# --------------------------------------------------------------------------
# Collision model
# --------------------------------------------------------------------------
@dataclass
class CollisionModel:
    """Simple busy-window collision model.

    Two frames collide at a receiver when their on-air intervals overlap.  The
    on-air duration of a frame is ``size_bytes * 8 / bitrate``.  Both
    overlapping frames are dropped at that receiver (no capture effect): the
    later arrival is never scheduled and the earlier frame's pending delivery
    is cancelled.
    """

    bitrate_bps: float = 2_000_000.0

    def airtime(self, frame: Frame) -> float:
        """On-air duration of ``frame`` in seconds."""
        return frame.size_bytes * 8.0 / self.bitrate_bps

    def overlaps(
        self, start_a: float, end_a: float, start_b: float, end_b: float
    ) -> bool:
        """Whether two on-air intervals overlap."""
        return start_a < end_b and start_b < end_a


class _BusyEntry:
    """One on-air interval at a receiver, plus its pending delivery event."""

    __slots__ = ("start", "end", "frame_id", "handle", "delivered")

    def __init__(self, start: float, end: float, frame_id: int) -> None:
        self.start = start
        self.end = end
        self.frame_id = frame_id
        self.handle = None  # EventHandle of the scheduled delivery (if any)
        self.delivered = False


# --------------------------------------------------------------------------
# Spatial index
# --------------------------------------------------------------------------
class _SpatialGrid:
    """Uniform grid over node positions, hashed by integer cell coordinates.

    ``cell_size`` is the maximum radio range of the propagation model, so any
    receiver a sender can reach lies within one cell ring of the sender's
    cell; :meth:`candidates_near` therefore returns a conservative superset
    of the true neighbourhood in O(neighbours).
    """

    __slots__ = ("cell_size", "positions", "cells")

    def __init__(self, cell_size: float, positions: Dict[str, Position]) -> None:
        self.cell_size = cell_size
        self.positions = positions
        self.cells: Dict[Tuple[int, int], List[str]] = {}
        for node_id, (x, y) in positions.items():
            key = (math.floor(x / cell_size), math.floor(y / cell_size))
            self.cells.setdefault(key, []).append(node_id)

    def candidates_near(self, origin: Position, radius: float) -> List[str]:
        """All node ids whose cell may contain points within ``radius`` of ``origin``."""
        cx = math.floor(origin[0] / self.cell_size)
        cy = math.floor(origin[1] / self.cell_size)
        reach = max(1, math.ceil(radius / self.cell_size))
        out: List[str] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                bucket = self.cells.get((cx + dx, cy + dy))
                if bucket:
                    out.extend(bucket)
        return out


# --------------------------------------------------------------------------
# The medium itself
# --------------------------------------------------------------------------
class WirelessMedium:
    """Single-channel broadcast medium connecting every registered interface.

    The medium needs a position oracle (callable ``node_id -> (x, y)``) which
    the :class:`repro.netsim.network.Network` provides, so mobility models can
    move nodes without the medium keeping stale coordinates.  When the network
    additionally provides an *epoch oracle* (callable returning an int bumped
    on every position change), neighbourhood queries and broadcast candidate
    selection run through a cached spatial grid instead of scanning all N
    interfaces; set ``use_spatial_index=False`` to force the brute-force scan
    (used by the scaling benchmarks as the comparison baseline).
    """

    def __init__(
        self,
        simulator,
        propagation: Optional[PropagationModel] = None,
        loss_model: Optional[LossModel] = None,
        collision_model: Optional[CollisionModel] = None,
        propagation_delay: float = 1e-4,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
        use_spatial_index: bool = True,
        batch_delivery: bool = True,
    ) -> None:
        self._simulator = simulator
        self.propagation = propagation or UnitDiskPropagation()
        self.loss_model = loss_model or PerfectChannel()
        self.collision_model = collision_model
        self.propagation_delay = propagation_delay
        self.jitter = jitter
        self._rng = rng or random.Random(0)
        #: Resolve each broadcast as one batch (see module docstring).  The
        #: scalar per-receiver path stays available as ``batch_delivery=False``
        #: and both produce byte-identical outputs.
        self.batch_delivery = batch_delivery
        #: Per-medium frame-id pool: two networks in one process (the
        #: differential validator runs oracle and netsim side by side) must
        #: not interleave their id streams.
        self._frame_ids = itertools.count(1)
        #: Per-receiver delivery events elided by batching (each batched
        #: broadcast runs one event instead of one per receiver).  Reporting
        #: code adds this to ``Simulator.processed_events`` so the "events"
        #: metric means the same logical work in batch and scalar mode —
        #: keeping stored rows byte-identical across the two paths.
        self.batched_deliveries_saved = 0
        self._interfaces: Dict[str, object] = {}
        self._position_of = None  # set by Network
        self._position_epoch_of: Optional[Callable[[], int]] = None
        self.use_spatial_index = use_spatial_index
        self._membership_epoch = 0  # bumped on register/unregister
        self._grid: Optional[_SpatialGrid] = None
        self._grid_key: Optional[Tuple[object, ...]] = None
        self._order: Dict[str, int] = {}
        self._neighbor_cache: Dict[str, List[str]] = {}
        # sender id -> (receivers, positions, distances, out_of_range count);
        # follows the same epoch discipline as the neighbour cache.
        self._broadcast_cache: Dict[str, Tuple[List[str], List[Position],
                                               Optional[List[float]], int]] = {}
        self.stats = MediumStatistics()
        # receiver id -> list of busy entries (for collisions)
        self._busy: Dict[str, List[_BusyEntry]] = {}
        #: Optional delivery-trace recorder (``repro.netsim.trace.TraceRecorder``
        #: or anything with its ``record`` signature).  ``None`` (the default)
        #: costs nothing; the validation harness installs one to audit every
        #: delivery with the positions the range check actually used.
        self.trace_recorder = None

    # ------------------------------------------------------------- wiring
    def bind_position_oracle(self, oracle, epoch_oracle: Optional[Callable[[], int]] = None) -> None:
        """Install the callable used to resolve current node positions.

        ``epoch_oracle``, when provided, must return a counter that changes
        whenever any position changes; it gates the spatial-index cache.
        Without it the medium always falls back to the brute-force scan.
        """
        self._position_of = oracle
        self._position_epoch_of = epoch_oracle
        self._grid = None
        self._grid_key = None
        self._neighbor_cache = {}
        self._broadcast_cache = {}

    def register(self, node_id: str, interface) -> None:
        """Register a receiving interface (must expose ``receive(frame, now)``)."""
        if node_id in self._interfaces:
            raise ValueError(f"interface {node_id!r} already registered")
        self._interfaces[node_id] = interface
        self._membership_epoch += 1

    def unregister(self, node_id: str) -> None:
        """Remove an interface (node failure / departure)."""
        if self._interfaces.pop(node_id, None) is not None:
            self._membership_epoch += 1

    @property
    def node_ids(self) -> List[str]:
        """Identifiers of all registered interfaces."""
        return list(self._interfaces)

    # ----------------------------------------------------------- fast path
    def _max_propagation_range(self) -> Optional[float]:
        """Largest sender range under the propagation model, or None if unknown."""
        prop = self.propagation
        if isinstance(prop, AsymmetricRangePropagation):
            candidate = prop.max_range()
        else:
            candidate = getattr(prop, "radio_range", None)
        if isinstance(candidate, (int, float)) and math.isfinite(candidate) and candidate > 0:
            return float(candidate)
        return None

    def _range_of_sender(self, sender_id: str) -> float:
        prop = self.propagation
        if isinstance(prop, AsymmetricRangePropagation):
            return prop.range_of(sender_id)
        return float(getattr(prop, "radio_range"))

    def _current_grid(self) -> Optional[_SpatialGrid]:
        """The up-to-date spatial grid, or None when the fast path is off."""
        if not self.use_spatial_index or self._position_epoch_of is None or self._position_of is None:
            return None
        cell_size = self._max_propagation_range()
        if cell_size is None:
            return None
        # Per-node range edits (AsymmetricRangePropagation.register) change
        # query answers without moving anyone, so they must be part of the key.
        prop = self.propagation
        if isinstance(prop, AsymmetricRangePropagation):
            range_fingerprint: object = tuple(sorted(prop.per_node_range.items()))
        else:
            range_fingerprint = None
        key = (self._position_epoch_of(), self._membership_epoch, cell_size,
               range_fingerprint)
        if self._grid is None or self._grid_key != key:
            position_of = self._position_of
            positions = {nid: position_of(nid) for nid in self._interfaces}
            self._grid = _SpatialGrid(cell_size, positions)
            self._grid_key = key
            self._order = {nid: index for index, nid in enumerate(self._interfaces)}
            self._neighbor_cache = {}
            self._broadcast_cache = {}
        return self._grid

    # ------------------------------------------------------------ querying
    def neighbors_of(self, node_id: str) -> List[str]:
        """Node ids currently within radio range of ``node_id``."""
        if self._position_of is None:
            raise RuntimeError("medium has no position oracle bound")
        grid = self._current_grid()
        if grid is None:
            return self._neighbors_brute_force(node_id)
        cached = self._neighbor_cache.get(node_id)
        if cached is not None:
            return list(cached)
        origin = grid.positions.get(node_id)
        if origin is None:
            origin = self._position_of(node_id)
        candidates = grid.candidates_near(origin, self._range_of_sender(node_id))
        candidates.sort(key=self._order.__getitem__)
        result = [
            other
            for other in candidates
            if other != node_id and self._reaches(node_id, origin, grid.positions[other])
        ]
        self._neighbor_cache[node_id] = result
        return list(result)

    def _neighbors_brute_force(self, node_id: str) -> List[str]:
        origin = self._position_of(node_id)
        result = []
        for other in self._interfaces:
            if other == node_id:
                continue
            if self._reaches(node_id, origin, self._position_of(other)):
                result.append(other)
        return result

    def connectivity_matrix(self) -> Dict[str, List[str]]:
        """Mapping node id -> reachable neighbour ids (directed)."""
        return {nid: self.neighbors_of(nid) for nid in self._interfaces}

    def _reaches(self, sender_id: str, sender_pos: Position, receiver_pos: Position) -> bool:
        prop = self.propagation
        if isinstance(prop, AsymmetricRangePropagation):
            return prop.in_range_for(sender_id, sender_pos, receiver_pos)
        return prop.in_range(sender_pos, receiver_pos)

    # ---------------------------------------------------------- transmission
    def transmit(self, frame: Frame) -> None:
        """Transmit ``frame`` from its source; delivery is scheduled per receiver."""
        if self._position_of is None:
            raise RuntimeError("medium has no position oracle bound")
        if frame.source not in self._interfaces:
            raise ValueError(f"unknown transmitter {frame.source!r}")
        now = self._simulator.now
        frame.created_at = now
        if frame._frame_id is None:
            frame._frame_id = next(self._frame_ids)
        sender_pos = self._position_of(frame.source)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += frame.size_bytes

        if frame.is_broadcast:
            grid = self._current_grid()
            if grid is not None and self.batch_delivery and self._loss_rng_independent():
                self._transmit_broadcast_batch(frame, sender_pos, grid, now)
                return
            if grid is not None:
                candidates = grid.candidates_near(sender_pos, self._range_of_sender(frame.source))
                receivers = [nid for nid in candidates if nid != frame.source]
                receivers.sort(key=self._order.__getitem__)
                # Anything outside the candidate cells is provably out of range.
                self.stats.frames_out_of_range += len(self._interfaces) - 1 - len(receivers)
            else:
                receivers = [nid for nid in self._interfaces if nid != frame.source]
        else:
            receivers = [frame.destination] if frame.destination in self._interfaces else []
            if not receivers:
                self.stats.frames_unroutable += 1
                return

        for receiver_id in receivers:
            receiver_pos = self._position_of(receiver_id)
            if not self._reaches(frame.source, sender_pos, receiver_pos):
                self.stats.frames_out_of_range += 1
                continue
            if self.loss_model.is_lost(frame, sender_pos, receiver_pos):
                self.stats.frames_lost += 1
                continue
            entry: Optional[_BusyEntry] = None
            if self.collision_model is not None:
                entry, collided = self._check_collision(receiver_id, frame, now)
                if collided:
                    self.stats.frames_collided += 1
                    continue
            delay = self.propagation_delay
            if self.jitter:
                delay += self._rng.uniform(0.0, self.jitter)
            tx_info = None
            if self.trace_recorder is not None:
                # Capture the positions (and the sender range) the in-range
                # decision was made with — mobility may move either endpoint
                # before the delivery event fires.
                tx_info = (sender_pos, receiver_pos, self._safe_range_of(frame.source))
            if entry is not None:
                entry.handle = self._simulator.schedule(
                    delay, self._deliver, receiver_id, frame, entry, tx_info)
            else:
                # No collision entry to cancel later: skip handle creation.
                self._simulator.post(delay, self._deliver, receiver_id,
                                     frame, None, tx_info)

    # ------------------------------------------------------- batched delivery
    def _loss_rng_independent(self) -> bool:
        """Whether the jitter rng and the loss rng are distinct streams.

        The batch path evaluates every loss draw before any jitter draw
        (the scalar path interleaves them per receiver); with separate
        ``random.Random`` objects each stream still sees exactly the scalar
        draw sequence.  Sharing one rng between loss model and jitter would
        reorder draws, so that corner falls back to the scalar path.
        """
        if not self.jitter:
            return True
        return getattr(self.loss_model, "rng", None) is not self._rng

    def _resolve_broadcast(
        self, source: str, sender_pos: Position, grid: _SpatialGrid
    ) -> Tuple[List[str], List[Position], Optional[List[float]], int]:
        """Receivers in range of one broadcast, in registration order.

        Returns ``(receivers, positions, distances, out_of_range)`` where
        ``distances`` is only materialised when the loss model needs it.
        The in-range mask runs on squared distances over numpy arrays; a thin
        shell around the range boundary (where 1-ulp differences between
        ``dx*dx + dy*dy`` and ``math.hypot`` could flip the comparison) is
        re-checked with the exact scalar predicate, so membership is
        bit-identical to the per-receiver path.
        """
        tx_range = self._range_of_sender(source)
        candidates = grid.candidates_near(sender_pos, tx_range)
        candidates.sort(key=self._order.__getitem__)
        positions = grid.positions
        total_others = len(self._interfaces) - 1
        prop = self.propagation
        # Exact types only: a subclass may override the range predicate.
        vector_prop = type(prop) is UnitDiskPropagation or type(prop) is AsymmetricRangePropagation
        np = numpy_or_none()
        receivers: List[str]
        receiver_positions: List[Position]
        if vector_prop and np is not None and len(candidates) > 8:
            ids = [nid for nid in candidates if nid != source]
            if ids:
                pts = np.array([positions[nid] for nid in ids], dtype=float)
                dx = pts[:, 0] - sender_pos[0]
                dy = pts[:, 1] - sender_pos[1]
                d2 = dx * dx + dy * dy
                r2 = tx_range * tx_range
                inside = d2 <= r2 * (1.0 - 1e-9)
                shell = ~inside & (d2 <= r2 * (1.0 + 1e-9))
                if shell.any():
                    for i in np.flatnonzero(shell):
                        if distance(sender_pos, positions[ids[i]]) <= tx_range:
                            inside[i] = True
                receivers = [ids[i] for i in np.flatnonzero(inside)]
            else:
                receivers = []
            receiver_positions = [positions[nid] for nid in receivers]
        else:
            receivers = []
            receiver_positions = []
            for nid in candidates:
                if nid == source:
                    continue
                receiver_pos = positions[nid]
                if self._reaches(source, sender_pos, receiver_pos):
                    receivers.append(nid)
                    receiver_positions.append(receiver_pos)
        distances: Optional[List[float]] = None
        if type(self.loss_model) is DistanceLossModel:
            distances = [distance(sender_pos, rp) for rp in receiver_positions]
        return receivers, receiver_positions, distances, total_others - len(receivers)

    def _transmit_broadcast_batch(
        self, frame: Frame, sender_pos: Position, grid: _SpatialGrid, now: float
    ) -> None:
        """Resolve and schedule one broadcast as a batch (see module docstring)."""
        source = frame.source
        resolved = self._broadcast_cache.get(source)
        if resolved is None:
            resolved = self._resolve_broadcast(source, sender_pos, grid)
            self._broadcast_cache[source] = resolved
        receivers, receiver_positions, distances, out_of_range = resolved
        self.stats.frames_out_of_range += out_of_range
        if not receivers:
            return

        # Loss draws, in receiver order — the same rng consumption sequence
        # as the scalar path's per-receiver is_lost calls.
        loss = self.loss_model
        loss_type = type(loss)
        keep: Optional[List[int]] = None
        if loss_type is PerfectChannel:
            pass
        elif loss_type is BernoulliLossModel:
            probability = loss.loss_probability
            if probability > 0.0:
                rng_random = loss.rng.random
                keep = [i for i in range(len(receivers))
                        if not rng_random() < probability]
        elif loss_type is DistanceLossModel:
            if distances is None:  # loss model swapped after the cache filled
                distances = [distance(sender_pos, rp) for rp in receiver_positions]
            probabilities = loss.loss_probabilities(distances)
            rng_random = loss.rng.random
            keep = [i for i, probability in enumerate(probabilities)
                    if not rng_random() < probability]
        else:
            keep = [i for i, receiver_pos in enumerate(receiver_positions)
                    if not loss.is_lost(frame, sender_pos, receiver_pos)]
        if keep is not None:
            self.stats.frames_lost += len(receivers) - len(keep)
            if len(keep) != len(receivers):
                receivers = [receivers[i] for i in keep]
                receiver_positions = [receiver_positions[i] for i in keep]
            if not receivers:
                return

        recorder = self.trace_recorder
        tx_range = self._safe_range_of(source) if recorder is not None else None
        if self.collision_model is None and not self.jitter:
            tx_infos = None
            if recorder is not None:
                tx_infos = [(sender_pos, receiver_pos, tx_range)
                            for receiver_pos in receiver_positions]
            self.batched_deliveries_saved += len(receivers) - 1
            self._simulator.post(self.propagation_delay, self._deliver_batch,
                                 receivers, frame, tx_infos)
            return
        # Collision windows and jitter draws are inherently per receiver;
        # keep those events individual but reuse the batched resolution.
        for receiver_id, receiver_pos in zip(receivers, receiver_positions):
            entry: Optional[_BusyEntry] = None
            if self.collision_model is not None:
                entry, collided = self._check_collision(receiver_id, frame, now)
                if collided:
                    self.stats.frames_collided += 1
                    continue
            delay = self.propagation_delay
            if self.jitter:
                delay += self._rng.uniform(0.0, self.jitter)
            tx_info = None
            if recorder is not None:
                tx_info = (sender_pos, receiver_pos, tx_range)
            if entry is not None:
                entry.handle = self._simulator.schedule(
                    delay, self._deliver, receiver_id, frame, entry, tx_info)
            else:
                self._simulator.post(delay, self._deliver, receiver_id,
                                     frame, None, tx_info)

    def _deliver_batch(self, receiver_ids: List[str], frame: Frame,
                       tx_infos: Optional[List[Tuple[Position, Position, Optional[float]]]]) -> None:
        """Deliver one broadcast to all surviving receivers, in order.

        Equivalent to the scalar path's per-receiver events: those are
        scheduled back to back at the same timestamp inside one ``transmit``
        call, so the (time, sequence) heap pops them consecutively — this
        loop replays exactly that callback order, including the unroutable
        accounting for receivers that unregistered while the frame was on
        the air.
        """
        interfaces = self._interfaces
        stats = self.stats
        now = self._simulator.now
        size_bytes = frame.size_bytes
        for index, receiver_id in enumerate(receiver_ids):
            interface = interfaces.get(receiver_id)
            if interface is None:
                stats.frames_unroutable += 1
                continue
            stats.frames_delivered += 1
            stats.bytes_delivered += size_bytes
            if self.trace_recorder is not None and tx_infos is not None:
                sender_pos, receiver_pos, tx_range = tx_infos[index]
                self.trace_recorder.record(
                    now, "medium", receiver_id, "FRAME_DELIVERED",
                    source=frame.source,
                    sender_pos=sender_pos,
                    receiver_pos=receiver_pos,
                    tx_range=tx_range,
                )
            interface.receive(frame, now)

    def _check_collision(
        self, receiver_id: str, frame: Frame, now: float
    ) -> Tuple[_BusyEntry, bool]:
        """Record ``frame``'s on-air interval; detect and resolve overlaps.

        Both frames of an overlapping pair are dropped: the new frame is
        reported as collided to the caller, and any earlier frame still
        awaiting delivery has its delivery event cancelled here.
        """
        model = self.collision_model
        assert model is not None
        airtime = model.airtime(frame)
        entry = _BusyEntry(now, now + airtime, frame.frame_id)
        intervals = self._busy.setdefault(receiver_id, [])
        # prune stale intervals
        intervals[:] = [iv for iv in intervals if iv.end > now - 1.0]
        collided = False
        for other in intervals:
            if not model.overlaps(entry.start, entry.end, other.start, other.end):
                continue
            collided = True
            if (
                other.handle is not None
                and not other.delivered
                and not other.handle.cancelled
            ):
                other.handle.cancel()
                other.handle = None
                self.stats.frames_collided += 1
        intervals.append(entry)
        return entry, collided

    def _safe_range_of(self, sender_id: str) -> Optional[float]:
        """``_range_of_sender`` for models that may have no finite range."""
        prop = self.propagation
        if isinstance(prop, AsymmetricRangePropagation):
            return prop.range_of(sender_id)
        candidate = getattr(prop, "radio_range", None)
        if isinstance(candidate, (int, float)) and math.isfinite(candidate):
            return float(candidate)
        return None

    def _deliver(self, receiver_id: str, frame: Frame, entry: Optional[_BusyEntry] = None,
                 tx_info: Optional[Tuple[Position, Position, Optional[float]]] = None) -> None:
        if entry is not None:
            entry.delivered = True
        interface = self._interfaces.get(receiver_id)
        if interface is None:
            self.stats.frames_unroutable += 1
            return
        self.stats.frames_delivered += 1
        self.stats.bytes_delivered += frame.size_bytes
        if self.trace_recorder is not None and tx_info is not None:
            sender_pos, receiver_pos, tx_range = tx_info
            self.trace_recorder.record(
                self._simulator.now, "medium", receiver_id, "FRAME_DELIVERED",
                source=frame.source,
                sender_pos=sender_pos,
                receiver_pos=receiver_pos,
                tx_range=tx_range,
            )
        interface.receive(frame, self._simulator.now)
