"""Transmission statistics collected by the wireless medium."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict


@dataclass
class MediumStatistics:
    """Counters maintained by :class:`repro.netsim.medium.WirelessMedium`."""

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_lost: int = 0
    frames_collided: int = 0
    frames_out_of_range: int = 0
    frames_unroutable: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Delivered / attempted per-receiver deliveries (0 when nothing sent)."""
        attempted = (
            self.frames_delivered
            + self.frames_lost
            + self.frames_collided
            + self.frames_out_of_range
        )
        if attempted == 0:
            return 0.0
        return self.frames_delivered / attempted

    @property
    def loss_ratio(self) -> float:
        """Lost (channel loss + collisions) / attempted deliveries."""
        attempted = (
            self.frames_delivered
            + self.frames_lost
            + self.frames_collided
            + self.frames_out_of_range
        )
        if attempted == 0:
            return 0.0
        return (self.frames_lost + self.frames_collided) / attempted

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all counters plus derived ratios."""
        data = asdict(self)
        data["delivery_ratio"] = self.delivery_ratio
        data["loss_ratio"] = self.loss_ratio
        return data

    def reset(self) -> None:
        """Zero every counter."""
        for name in (
            "frames_sent",
            "frames_delivered",
            "frames_lost",
            "frames_collided",
            "frames_out_of_range",
            "frames_unroutable",
            "bytes_sent",
            "bytes_delivered",
        ):
            setattr(self, name, 0)


@dataclass
class NodeStatistics:
    """Per-node transmit/receive counters (used by OLSR nodes)."""

    messages_sent: int = 0
    messages_received: int = 0
    messages_forwarded: int = 0
    messages_dropped: int = 0
    hello_sent: int = 0
    hello_received: int = 0
    tc_sent: int = 0
    tc_received: int = 0
    duplicates_suppressed: int = 0
    per_type_sent: Dict[str, int] = field(default_factory=dict)
    per_type_received: Dict[str, int] = field(default_factory=dict)

    def record_sent(self, message_type: str) -> None:
        """Account for an originated message of ``message_type``."""
        self.messages_sent += 1
        self.per_type_sent[message_type] = self.per_type_sent.get(message_type, 0) + 1
        if message_type == "HELLO":
            self.hello_sent += 1
        elif message_type == "TC":
            self.tc_sent += 1

    def record_received(self, message_type: str) -> None:
        """Account for a received message of ``message_type``."""
        self.messages_received += 1
        self.per_type_received[message_type] = (
            self.per_type_received.get(message_type, 0) + 1
        )
        if message_type == "HELLO":
            self.hello_received += 1
        elif message_type == "TC":
            self.tc_received += 1
