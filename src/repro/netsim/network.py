"""Network container: wires the engine, the medium, mobility and the nodes.

A :class:`Network` owns the simulated clock, the node positions (so mobility
models can move nodes) and the set of attached interfaces.  Protocol nodes
(:class:`repro.olsr.node.OlsrNode`) attach through the small
:class:`NetworkInterface` adapter, which is the only thing the medium sees.
"""

from __future__ import annotations

import random
import sys
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.medium import WirelessMedium, UnitDiskPropagation, PerfectChannel
from repro.netsim.mobility import MobilityModel, GridPlacement
from repro.netsim.packet import Frame
from repro.netsim.trace import TraceRecorder

Position = Tuple[float, float]


class PositionTable(Dict[str, Position]):
    """Node-position mapping that counts its mutations.

    The wireless medium caches a spatial index over node positions; every
    write to this table (teleports via :meth:`Network.set_position`, the
    periodic mobility-model updates, node arrival/departure) bumps ``epoch``,
    which the medium polls to invalidate that cache lazily.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.epoch = 0

    def __setitem__(self, key: str, value: Position) -> None:
        super().__setitem__(key, value)
        self.epoch += 1

    def __delitem__(self, key: str) -> None:
        super().__delitem__(key)
        self.epoch += 1

    def pop(self, key, *default):
        self.epoch += 1
        return super().pop(key, *default)

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self.epoch += 1

    def clear(self) -> None:
        super().clear()
        self.epoch += 1

    def setdefault(self, key, default=None):
        if key not in self:
            self.epoch += 1
        return super().setdefault(key, default)


class FrameReceiver(Protocol):
    """Anything able to accept frames from the medium."""

    def receive(self, frame: Frame, now: float) -> None:
        """Handle a delivered frame at simulated time ``now``."""
        ...


class NetworkInterface:
    """Adapter between a protocol node and the wireless medium.

    The interface forwards received frames to the ``handler`` callable and
    exposes :meth:`send` / :meth:`broadcast` for the node to transmit.
    """

    def __init__(self, node_id: str, network: "Network") -> None:
        self.node_id = node_id
        self._network = network
        self._handler: Optional[Callable[[Frame, float], None]] = None
        self.up = True

    def bind(self, handler: Callable[[Frame, float], None]) -> None:
        """Install the upper-layer receive handler."""
        self._handler = handler

    def receive(self, frame: Frame, now: float) -> None:
        """Deliver a frame to the bound handler (dropped when interface is down)."""
        if not self.up or self._handler is None:
            return
        self._handler(frame, now)

    def send(self, frame: Frame) -> None:
        """Transmit a pre-built frame."""
        if not self.up:
            return
        self._network.medium.transmit(frame)

    def broadcast(self, payload, size_bytes: int = 64, **metadata) -> Frame:
        """Broadcast ``payload`` to every node in range; returns the frame."""
        frame = Frame(
            source=self.node_id,
            destination="ff:ff",
            payload=payload,
            size_bytes=size_bytes,
            metadata=metadata,
        )
        self.send(frame)
        return frame

    def unicast(self, destination: str, payload, size_bytes: int = 64, **metadata) -> Frame:
        """Send ``payload`` to a single link-layer destination; returns the frame."""
        frame = Frame(
            source=self.node_id,
            destination=destination,
            payload=payload,
            size_bytes=size_bytes,
            metadata=metadata,
        )
        self.send(frame)
        return frame


class Network:
    """A simulated ad hoc network.

    Parameters
    ----------
    simulator:
        Discrete-event engine; a fresh one is created when omitted.
    medium:
        Wireless medium; defaults to a perfect unit-disk channel.
    mobility:
        Placement / mobility model applied to nodes added via
        :meth:`add_nodes`.
    seed:
        Seed for the network-level random generator (handed to components
        that need randomness but were not given their own RNG).
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        medium: Optional[WirelessMedium] = None,
        mobility: Optional[MobilityModel] = None,
        seed: int = 0,
    ) -> None:
        self.simulator = simulator or Simulator()
        self.rng = random.Random(seed)
        self.medium = medium or WirelessMedium(
            self.simulator,
            propagation=UnitDiskPropagation(),
            loss_model=PerfectChannel(),
        )
        self.positions: PositionTable = PositionTable()
        self.medium.bind_position_oracle(self.position_of, self._position_epoch)
        self.mobility = mobility or GridPlacement()
        self.interfaces: Dict[str, NetworkInterface] = {}
        self.nodes: Dict[str, object] = {}
        self.trace = TraceRecorder()
        self._mobility_installed = False

    # ------------------------------------------------------------ topology
    def _position_epoch(self) -> int:
        """Counter bumped on every position change (spatial-index invalidation)."""
        return self.positions.epoch

    @property
    def position_epoch(self) -> int:
        """Current position epoch (exposed for tests and diagnostics)."""
        return self.positions.epoch

    def position_of(self, node_id: str) -> Position:
        """Current coordinates of ``node_id``."""
        try:
            return self.positions[node_id]
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def set_position(self, node_id: str, position: Position) -> None:
        """Teleport a node (used by tests and scripted scenarios)."""
        if node_id not in self.positions:
            raise KeyError(f"unknown node {node_id!r}")
        self.positions[node_id] = position

    def neighbors_of(self, node_id: str) -> List[str]:
        """Nodes currently within radio range of ``node_id``."""
        return self.medium.neighbors_of(node_id)

    # ------------------------------------------------------------- node mgmt
    def create_interface(self, node_id: str, position: Optional[Position] = None) -> NetworkInterface:
        """Register a new node id and return its medium-facing interface."""
        # Intern the address: every frame, HELLO link advertisement and trust
        # record carries node-id strings, so a single shared copy per node
        # keeps the per-frame footprint flat at 1,024-node scale.
        node_id = sys.intern(node_id)
        if node_id in self.interfaces:
            raise ValueError(f"node {node_id!r} already exists")
        interface = NetworkInterface(node_id, self)
        self.interfaces[node_id] = interface
        self.medium.register(node_id, interface)
        self.positions[node_id] = position if position is not None else (0.0, 0.0)
        return interface

    def add_nodes(self, node_ids: List[str]) -> Dict[str, NetworkInterface]:
        """Create interfaces for ``node_ids`` and place them with the mobility model."""
        placements = self.mobility.place(node_ids)
        created = {}
        for node_id in node_ids:
            created[node_id] = self.create_interface(node_id, placements[node_id])
        if not self._mobility_installed:
            self.mobility.install(self)
            self._mobility_installed = True
        return created

    def attach_node(self, node_id: str, node: object) -> None:
        """Remember the protocol node object bound to ``node_id``."""
        self.nodes[node_id] = node

    def remove_node(self, node_id: str) -> None:
        """Detach a node entirely (interface, position and protocol object)."""
        self.medium.unregister(node_id)
        self.interfaces.pop(node_id, None)
        self.positions.pop(node_id, None)
        self.nodes.pop(node_id, None)

    def fail_node(self, node_id: str) -> None:
        """Take a node's interface down without removing it (crash model)."""
        interface = self.interfaces.get(node_id)
        if interface is not None:
            interface.up = False

    def recover_node(self, node_id: str) -> None:
        """Bring a previously failed node's interface back up."""
        interface = self.interfaces.get(node_id)
        if interface is not None:
            interface.up = True

    # ---------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> None:
        """Run the underlying simulator until ``until`` (or queue exhaustion)."""
        self.simulator.run(until=until)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.simulator.now

    def engine_counters(self) -> Dict[str, int]:
        """Scheduler throughput counters (empty for engines without them).

        The timer-wheel :class:`~repro.netsim.engine.Simulator` reports
        ``pushes``/``pops``/``cancelled_skipped``/``wheel_hits``/
        ``compactions``; the reference :class:`~repro.netsim.engine.
        HeapSimulator` (and any injected stand-in) reports ``{}``.
        """
        counters = getattr(self.simulator, "counters", None)
        return counters() if callable(counters) else {}

    def node_ids(self) -> List[str]:
        """All registered node identifiers (sorted for determinism)."""
        return sorted(self.interfaces)
