"""Textual serialisation of audit-log records (olsrd-like format).

A record is one line::

    t=12.345678 node=n3 cat=MPR event=MPR_SELECTED mpr=n7 covered=n9,n12

Field values containing spaces are quoted; the parser handles both quoted and
unquoted values.  The round trip ``parse_line(format_record(r)) == r`` holds
for every record produced through :func:`repro.logs.records.make_record`.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List

from repro.logs.records import LogCategory, LogRecord


class LogParseError(ValueError):
    """Raised when a log line cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""(?P<key>[A-Za-z_][A-Za-z0-9_]*)=(?:"(?P<quoted>[^"]*)"|(?P<plain>\S*))"""
)


def format_record(record: LogRecord) -> str:
    """Serialise ``record`` to a single text line."""
    parts = [
        f"t={record.time:.6f}",
        f"node={record.node}",
        f"cat={record.category.value}",
        f"event={record.event}",
    ]
    for key in sorted(record.fields):
        value = record.fields[key]
        if value == "" or any(ch.isspace() for ch in value):
            parts.append(f'{key}="{value}"')
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def parse_line(line: str) -> LogRecord:
    """Parse one text line back into a :class:`LogRecord`.

    The first occurrence of each mandatory key (``t``, ``node``, ``cat``,
    ``event``) forms the header; any later token — even one reusing a
    mandatory key name — is treated as an ordinary field, so records whose
    field names collide with the header keys round-trip correctly.
    """
    line = line.strip()
    if not line:
        raise LogParseError("empty log line")
    header: dict = {}
    fields: dict = {}
    mandatory = ("t", "node", "cat", "event")
    for match in _TOKEN_RE.finditer(line):
        key = match.group("key")
        value = match.group("quoted")
        if value is None:
            value = match.group("plain")
        if key in mandatory and key not in header:
            header[key] = value
        else:
            fields[key] = value
    missing = [k for k in mandatory if k not in header]
    if missing:
        raise LogParseError(f"log line missing mandatory keys {missing}: {line!r}")
    try:
        time = float(header["t"])
    except ValueError as exc:
        raise LogParseError(f"invalid timestamp in {line!r}") from exc
    try:
        category = LogCategory(header["cat"])
    except ValueError as exc:
        raise LogParseError(f"unknown log category {header['cat']!r}") from exc
    return LogRecord(time=time, node=header["node"], category=category,
                     event=header["event"], fields=fields)


def parse_lines(lines: Iterable[str], skip_errors: bool = False) -> Iterator[LogRecord]:
    """Parse an iterable of lines, optionally skipping malformed ones."""
    for line in lines:
        if not line.strip():
            continue
        try:
            yield parse_line(line)
        except LogParseError:
            if not skip_errors:
                raise


def dump_records(records: Iterable[LogRecord]) -> str:
    """Serialise many records to a newline-joined text block."""
    return "\n".join(format_record(record) for record in records)


def load_records(text: str, skip_errors: bool = False) -> List[LogRecord]:
    """Parse a text block produced by :func:`dump_records`."""
    return list(parse_lines(text.splitlines(), skip_errors=skip_errors))
