"""Per-node audit-log store.

The store is append-only, as a real log file would be.  It supports the
queries the detector needs: by category, by time window, by event, and
"records since the last analysis mark".
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.logs.parser import dump_records, load_records
from repro.logs.records import LogCategory, LogRecord, make_record


class LogStore:
    """Append-only audit log of a single node."""

    def __init__(self, node_id: str, max_records: Optional[int] = None) -> None:
        self.node_id = node_id
        self._records: List[LogRecord] = []
        self._max_records = max_records
        self._marks: dict = {}

    # ------------------------------------------------------------- writing
    def append(self, record: LogRecord) -> LogRecord:
        """Append an already-built record."""
        self._records.append(record)
        if self._max_records is not None and len(self._records) > self._max_records:
            overflow = len(self._records) - self._max_records
            del self._records[:overflow]
            # shift analysis marks so they keep pointing at the same records
            self._marks = {k: max(0, v - overflow) for k, v in self._marks.items()}
        return record

    def log(self, time: float, category: LogCategory, event: str, **fields) -> LogRecord:
        """Build (via :func:`make_record`) and append a record."""
        return self.append(make_record(time, self.node_id, category, event, **fields))

    def extend(self, records: Iterable[LogRecord]) -> None:
        """Append many records preserving order."""
        for record in records:
            self.append(record)

    # ------------------------------------------------------------- reading
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self) -> List[LogRecord]:
        """All records, oldest first."""
        return list(self._records)

    def by_category(self, category: LogCategory) -> List[LogRecord]:
        """All records of ``category``."""
        return [r for r in self._records if r.category == category]

    def by_event(self, event: str) -> List[LogRecord]:
        """All records with the given event name."""
        return [r for r in self._records if r.event == event]

    def between(self, start: float, end: float) -> List[LogRecord]:
        """Records with ``start <= time <= end``."""
        return [r for r in self._records if start <= r.time <= end]

    def where(self, predicate: Callable[[LogRecord], bool]) -> List[LogRecord]:
        """Records satisfying an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def last(self, count: int = 1) -> List[LogRecord]:
        """The ``count`` most recent records."""
        if count <= 0:
            return []
        return list(self._records[-count:])

    # -------------------------------------------------- incremental analysis
    def since_mark(self, mark_name: str = "default") -> List[LogRecord]:
        """Records appended after the last call to :meth:`advance_mark`."""
        start = self._marks.get(mark_name, 0)
        return list(self._records[start:])

    def advance_mark(self, mark_name: str = "default") -> None:
        """Move the analysis mark to the end of the current log."""
        self._marks[mark_name] = len(self._records)

    # ------------------------------------------------------------- text I/O
    def dump_text(self) -> str:
        """Serialise the whole log to olsrd-like text."""
        return dump_records(self._records)

    @classmethod
    def from_text(cls, node_id: str, text: str) -> "LogStore":
        """Build a store from a text dump (used when replaying captured logs)."""
        store = cls(node_id)
        store.extend(load_records(text))
        return store

    def clear(self) -> None:
        """Discard every record and analysis mark."""
        self._records.clear()
        self._marks.clear()
