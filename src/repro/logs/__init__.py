"""OLSR audit-log subsystem.

The paper's detector is *log-based*: instead of sniffing packets it parses the
audit logs that the routing daemon already produces.  This package models that
pipeline:

* :mod:`repro.logs.records` — structured log records and their categories.
* :mod:`repro.logs.store` — per-node append-only log store with querying.
* :mod:`repro.logs.parser` — olsrd-like text serialisation and parsing, so the
  detector genuinely works from a textual log and not from in-memory state.
* :mod:`repro.logs.analyzer` — extraction of detection-relevant events
  (MPR replacements, misbehaviour observations, neighbourhood changes).
"""

from repro.logs.records import LogCategory, LogRecord
from repro.logs.store import LogStore
from repro.logs.parser import LogParseError, format_record, parse_line, parse_lines
from repro.logs.analyzer import (
    DetectionEvent,
    DetectionEventType,
    LogAnalyzer,
    NeighborhoodSnapshot,
)

__all__ = [
    "DetectionEvent",
    "DetectionEventType",
    "LogAnalyzer",
    "LogCategory",
    "LogParseError",
    "LogRecord",
    "LogStore",
    "NeighborhoodSnapshot",
    "format_record",
    "parse_line",
    "parse_lines",
]
