"""Extraction of detection-relevant events from audit logs.

The analyzer is the first stage of the paper's detection pipeline: it parses
a node's own logs and surfaces the *local observations* that can start an
investigation — an MPR being replaced (evidence ``E1``), a previously
selected MPR caught misbehaving (``E2``), and the raw material needed to
evaluate ``E3``–``E5`` (who advertised which symmetric neighbours, and when).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.logs.records import LogCategory, LogRecord
from repro.logs.store import LogStore


class DetectionEventType(str, enum.Enum):
    """Detection-relevant events the analyzer can emit."""

    MPR_REPLACED = "MPR_REPLACED"                  # evidence E1
    MPR_MISBEHAVIOR = "MPR_MISBEHAVIOR"            # evidence E2
    NEIGHBOR_APPEARED = "NEIGHBOR_APPEARED"
    NEIGHBOR_DISAPPEARED = "NEIGHBOR_DISAPPEARED"
    ADVERTISEMENT_CHANGED = "ADVERTISEMENT_CHANGED"
    LINK_INSTABILITY = "LINK_INSTABILITY"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class DetectionEvent:
    """One event surfaced by the log analyzer."""

    time: float
    node: str
    event_type: DetectionEventType
    subject: str
    details: Dict[str, str] = field(default_factory=dict, hash=False, compare=False)


@dataclass
class NeighborhoodSnapshot:
    """Reconstruction (from logs) of what a neighbour recently advertised.

    ``advertised_symmetric`` is the set of addresses the neighbour declared as
    1-hop symmetric neighbours in its most recent HELLO, as observed by the
    local node through its ``MSG_RX`` log records.
    """

    neighbor: str
    last_hello_time: float
    advertised_symmetric: Set[str] = field(default_factory=set)
    willingness: Optional[int] = None


class LogAnalyzer:
    """Stateful analyzer scanning a :class:`LogStore` incrementally.

    Each call to :meth:`analyze` consumes the records appended since the
    previous call (through the store's analysis mark) and returns the
    detection events found.  The analyzer also maintains the per-neighbour
    :class:`NeighborhoodSnapshot` map used by the detector to evaluate the
    link-spoofing signature expressions.
    """

    MARK = "log-analyzer"

    def __init__(self, store: LogStore, instability_threshold: int = 4,
                 instability_window: float = 30.0) -> None:
        self.store = store
        self.node_id = store.node_id
        self.snapshots: Dict[str, NeighborhoodSnapshot] = {}
        self.current_mprs: Set[str] = set()
        self.known_neighbors: Set[str] = set()
        self.instability_threshold = instability_threshold
        self.instability_window = instability_window
        self._link_flaps: Dict[str, List[float]] = {}

    # ----------------------------------------------------------------- API
    def analyze(self) -> List[DetectionEvent]:
        """Process new log records and return the detection events found."""
        new_records = self.store.since_mark(self.MARK)
        self.store.advance_mark(self.MARK)
        events: List[DetectionEvent] = []
        for record in new_records:
            events.extend(self._process(record))
        return events

    def analyze_all(self) -> List[DetectionEvent]:
        """Process the entire log from the beginning (ignores marks)."""
        events: List[DetectionEvent] = []
        for record in self.store.records:
            events.extend(self._process(record))
        self.store.advance_mark(self.MARK)
        return events

    def snapshot_of(self, neighbor: str) -> Optional[NeighborhoodSnapshot]:
        """Latest advertisement snapshot of ``neighbor`` (None when never heard)."""
        return self.snapshots.get(neighbor)

    def advertised_symmetric_neighbors(self, neighbor: str) -> Set[str]:
        """Addresses ``neighbor`` last advertised as symmetric (empty when unknown)."""
        snapshot = self.snapshots.get(neighbor)
        return set(snapshot.advertised_symmetric) if snapshot else set()

    # ------------------------------------------------------------ internals
    def _process(self, record: LogRecord) -> List[DetectionEvent]:
        handlers = {
            LogCategory.MESSAGE_RX: self._on_message_rx,
            LogCategory.MPR: self._on_mpr,
            LogCategory.NEIGHBOR: self._on_neighbor,
            LogCategory.LINK: self._on_link,
            LogCategory.DROP: self._on_drop,
            LogCategory.FORWARD: self._on_forward,
        }
        handler = handlers.get(record.category)
        if handler is None:
            return []
        return handler(record)

    def _on_message_rx(self, record: LogRecord) -> List[DetectionEvent]:
        if record.event != "HELLO":
            return []
        sender = record.get("origin")
        if not sender:
            return []
        advertised = set(record.get_list("sym_neighbors"))
        willingness_raw = record.get("willingness")
        willingness = int(willingness_raw) if willingness_raw is not None else None
        previous = self.snapshots.get(sender)
        self.snapshots[sender] = NeighborhoodSnapshot(
            neighbor=sender,
            last_hello_time=record.time,
            advertised_symmetric=advertised,
            willingness=willingness,
        )
        events: List[DetectionEvent] = []
        if previous is not None and previous.advertised_symmetric != advertised:
            added = advertised - previous.advertised_symmetric
            removed = previous.advertised_symmetric - advertised
            events.append(
                DetectionEvent(
                    time=record.time,
                    node=self.node_id,
                    event_type=DetectionEventType.ADVERTISEMENT_CHANGED,
                    subject=sender,
                    details={
                        "added": ",".join(sorted(added)),
                        "removed": ",".join(sorted(removed)),
                    },
                )
            )
        return events

    def _on_mpr(self, record: LogRecord) -> List[DetectionEvent]:
        events: List[DetectionEvent] = []
        if record.event == "MPR_SET_CHANGED":
            new_set = set(record.get_list("mprs"))
            # The record carries the set as it was before the change; this is
            # authoritative even when MPR_SELECTED / MPR_REMOVED records in the
            # same batch already adjusted ``current_mprs``.
            previous = set(record.get_list("previous"))
            if not previous and "previous" not in record.fields:
                previous = set(self.current_mprs)
            removed = previous - new_set
            added = new_set - previous
            # An MPR replacement (E1) is a removal together with an addition:
            # some 1-hop neighbour increased/decreased its coverage to the
            # detriment of the replaced MPR.
            if removed and added:
                for old in sorted(removed):
                    events.append(
                        DetectionEvent(
                            time=record.time,
                            node=self.node_id,
                            event_type=DetectionEventType.MPR_REPLACED,
                            subject=",".join(sorted(added)),
                            details={
                                "replaced": old,
                                "replacing": ",".join(sorted(added)),
                            },
                        )
                    )
            self.current_mprs = new_set
        elif record.event == "MPR_SELECTED":
            mpr = record.get("mpr")
            if mpr:
                self.current_mprs.add(mpr)
        elif record.event == "MPR_REMOVED":
            mpr = record.get("mpr")
            if mpr:
                self.current_mprs.discard(mpr)
        return events

    def _on_neighbor(self, record: LogRecord) -> List[DetectionEvent]:
        neighbor = record.get("neighbor")
        if not neighbor:
            return []
        events: List[DetectionEvent] = []
        if record.event in ("NEIGHBOR_ADDED", "NEIGHBOR_SYM") and neighbor not in self.known_neighbors:
            self.known_neighbors.add(neighbor)
            events.append(
                DetectionEvent(
                    time=record.time,
                    node=self.node_id,
                    event_type=DetectionEventType.NEIGHBOR_APPEARED,
                    subject=neighbor,
                )
            )
        elif record.event == "NEIGHBOR_REMOVED" and neighbor in self.known_neighbors:
            self.known_neighbors.discard(neighbor)
            events.append(
                DetectionEvent(
                    time=record.time,
                    node=self.node_id,
                    event_type=DetectionEventType.NEIGHBOR_DISAPPEARED,
                    subject=neighbor,
                )
            )
        return events

    def _on_link(self, record: LogRecord) -> List[DetectionEvent]:
        neighbor = record.get("neighbor")
        if not neighbor:
            return []
        if record.event not in ("LINK_LOST", "LINK_EXPIRED"):
            return []
        flaps = self._link_flaps.setdefault(neighbor, [])
        flaps.append(record.time)
        cutoff = record.time - self.instability_window
        flaps[:] = [t for t in flaps if t >= cutoff]
        if len(flaps) >= self.instability_threshold:
            self._link_flaps[neighbor] = []
            return [
                DetectionEvent(
                    time=record.time,
                    node=self.node_id,
                    event_type=DetectionEventType.LINK_INSTABILITY,
                    subject=neighbor,
                    details={"flaps": str(self.instability_threshold)},
                )
            ]
        return []

    def _on_drop(self, record: LogRecord) -> List[DetectionEvent]:
        # Drops observed *about* an MPR (e.g. it failed to relay within the
        # allowed period) are evidence E2 against that MPR.
        culprit = record.get("culprit")
        if not culprit or culprit not in self.current_mprs:
            return []
        return [
            DetectionEvent(
                time=record.time,
                node=self.node_id,
                event_type=DetectionEventType.MPR_MISBEHAVIOR,
                subject=culprit,
                details={"reason": record.event},
            )
        ]

    def _on_forward(self, record: LogRecord) -> List[DetectionEvent]:
        if record.event != "NOT_RELAYED":
            return []
        culprit = record.get("culprit") or record.get("relay")
        if not culprit or culprit not in self.current_mprs:
            return []
        return [
            DetectionEvent(
                time=record.time,
                node=self.node_id,
                event_type=DetectionEventType.MPR_MISBEHAVIOR,
                subject=culprit,
                details={"reason": "NOT_RELAYED"},
            )
        ]


def merge_events(event_lists: Sequence[List[DetectionEvent]]) -> List[DetectionEvent]:
    """Merge several event lists, sorted by time (stable for equal times)."""
    merged: List[DetectionEvent] = []
    for events in event_lists:
        merged.extend(events)
    merged.sort(key=lambda e: e.time)
    return merged
