"""Structured audit-log records produced by the OLSR node.

Every record is a flat ``(time, node, category, event, fields)`` tuple that
can be serialised to a single olsrd-style text line (see
:mod:`repro.logs.parser`) and parsed back without loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class LogCategory(str, enum.Enum):
    """High-level category of an audit-log record."""

    MESSAGE_RX = "MSG_RX"
    MESSAGE_TX = "MSG_TX"
    FORWARD = "FORWARD"
    DROP = "DROP"
    LINK = "LINK"
    NEIGHBOR = "NEIGHBOR"
    TWO_HOP = "TWO_HOP"
    MPR = "MPR"
    MPR_SELECTOR = "MPR_SELECTOR"
    TOPOLOGY = "TOPOLOGY"
    ROUTE = "ROUTE"
    DUPLICATE = "DUPLICATE"
    SYSTEM = "SYSTEM"

    def __str__(self) -> str:  # keep the wire value when interpolated
        return self.value


#: Events emitted under each category.  Kept as plain strings so that new
#: events (e.g. from attack modules) do not require touching this module.
KNOWN_EVENTS = {
    LogCategory.MESSAGE_RX: {"HELLO", "TC", "MID", "HNA", "UNKNOWN"},
    LogCategory.MESSAGE_TX: {"HELLO", "TC", "MID", "HNA"},
    LogCategory.FORWARD: {"RELAYED", "NOT_RELAYED"},
    LogCategory.DROP: {"DUPLICATE", "TTL_EXPIRED", "NOT_MPR_SELECTOR", "FILTERED", "MALFORMED"},
    LogCategory.LINK: {"LINK_ADDED", "LINK_SYM", "LINK_ASYM", "LINK_LOST", "LINK_EXPIRED"},
    LogCategory.NEIGHBOR: {"NEIGHBOR_ADDED", "NEIGHBOR_REMOVED", "NEIGHBOR_SYM", "NEIGHBOR_NOT_SYM"},
    LogCategory.TWO_HOP: {"TWO_HOP_ADDED", "TWO_HOP_REMOVED"},
    LogCategory.MPR: {"MPR_SELECTED", "MPR_REMOVED", "MPR_SET_CHANGED"},
    LogCategory.MPR_SELECTOR: {"SELECTOR_ADDED", "SELECTOR_REMOVED"},
    LogCategory.TOPOLOGY: {"TOPOLOGY_ADDED", "TOPOLOGY_REMOVED", "TOPOLOGY_UPDATED"},
    LogCategory.ROUTE: {"ROUTE_ADDED", "ROUTE_REMOVED", "ROUTE_CHANGED", "TABLE_RECOMPUTED"},
    LogCategory.DUPLICATE: {"DUPLICATE_DETECTED"},
    LogCategory.SYSTEM: {"NODE_STARTED", "NODE_STOPPED", "CONFIG"},
}


@dataclass(frozen=True)
class LogRecord:
    """One audit-log line.

    Attributes
    ----------
    time:
        Simulated time at which the event was logged.
    node:
        Identifier of the node that produced the record (logs are local).
    category:
        One of :class:`LogCategory`.
    event:
        Short event name within the category (e.g. ``MPR_SELECTED``).
    fields:
        Flat ``str -> str`` attributes; multi-valued attributes are encoded as
        comma-separated lists by the caller.
    """

    time: float
    node: str
    category: LogCategory
    event: str
    fields: Dict[str, str] = field(default_factory=dict, hash=False, compare=False)

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Return field ``key`` or ``default`` when absent."""
        return self.fields.get(key, default)

    def get_list(self, key: str) -> list:
        """Return a comma-separated field as a list (empty list when absent)."""
        raw = self.fields.get(key, "")
        if not raw:
            return []
        return [item for item in raw.split(",") if item]

    def with_fields(self, **extra: str) -> "LogRecord":
        """Return a copy of the record with additional fields."""
        merged = dict(self.fields)
        merged.update({k: str(v) for k, v in extra.items()})
        return LogRecord(self.time, self.node, self.category, self.event, merged)


def make_record(
    time: float,
    node: str,
    category: LogCategory,
    event: str,
    **fields,
) -> LogRecord:
    """Convenience constructor converting every field value to ``str``.

    Lists and tuples are flattened to comma-separated strings so they survive
    the round trip through the textual log format.
    """
    converted: Dict[str, str] = {}
    for key, value in fields.items():
        if type(value) is str:  # fast path: the overwhelmingly common case
            converted[key] = value
        elif value is None:
            continue
        elif isinstance(value, (list, tuple, set, frozenset)):
            converted[key] = ",".join(str(v) for v in sorted(value, key=str))
        elif isinstance(value, float):
            converted[key] = f"{value:.6f}"
        else:
            converted[key] = str(value)
    return LogRecord(time=time, node=node, category=category, event=event, fields=converted)
