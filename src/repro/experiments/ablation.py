"""Ablation / baseline comparison (table B of DESIGN.md).

Every method receives the *exact same* investigation answers, round by round,
produced by the paper's scenario (liars confirm the spoofed link, honest
responders deny it, some answers may be lost).  Compared methods:

* ``trust-weighted`` — the paper's Eq. 8 aggregate with the entropy trust
  system (as produced by the round driver);
* ``unweighted-vote`` — plain mean of the answers (no trust system);
* ``cap-olsr`` — entropy trust from raw observation counts (no liar
  discounting);
* ``beta-reputation`` — Bayesian Beta reputation with deviation test;
* ``report-averaging`` — cumulative average of all reports ever received.

The comparison metric is the round at which each method first classifies the
attacker as an intruder, plus its final score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.averaging import AveragingTrustSystem
from repro.baselines.beta_reputation import BetaReputationSystem
from repro.baselines.cap_olsr import CapOlsrDetector
from repro.core.decision import DecisionOutcome, decide, unweighted_vote
from repro.experiments.config import ScenarioConfig, paper_default_config
from repro.experiments.engine import ExperimentDefinition, ExperimentSpec, register
from repro.experiments.rounds import ExperimentResult, RoundBasedExperiment
from repro.trust.confidence import margin_of_error


@dataclass
class MethodTrajectory:
    """Score trajectory and detection round of one compared method."""

    method: str
    scores: List[float] = field(default_factory=list)
    detection_round: Optional[int] = None
    final_score: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for tabular output (raw values; the report
        formatter owns rounding)."""
        return {
            "method": self.method,
            "detection_round": self.detection_round,
            "final_score": self.final_score,
            "rounds": len(self.scores),
        }


@dataclass
class AblationResult:
    """Trajectories of every compared method on the same answer stream."""

    experiment: ExperimentResult
    methods: Dict[str, MethodTrajectory] = field(default_factory=dict)

    def as_rows(self) -> List[Dict[str, object]]:
        """One row per method."""
        return [self.methods[name].as_dict() for name in sorted(self.methods)]


def _answers_to_bools(answers: Dict[str, float]) -> Dict[str, Optional[bool]]:
    converted: Dict[str, Optional[bool]] = {}
    for responder, value in answers.items():
        if value > 0:
            converted[responder] = True
        elif value < 0:
            converted[responder] = False
        else:
            converted[responder] = None
    return converted


def run_ablation(config: Optional[ScenarioConfig] = None) -> AblationResult:
    """Run the paper's scenario once and replay its answers through every method."""
    config = config or paper_default_config()
    experiment = RoundBasedExperiment(config)
    return replay_methods(experiment.run())


def replay_methods(run: ExperimentResult) -> AblationResult:
    """Replay one experiment's answer stream through every compared method.

    The run may come from either backend — the oracle round loop or the full
    netsim scenario — since both record the per-round answers the replay
    consumes.
    """
    config = run.config
    attacker = run.attacker

    ours = MethodTrajectory(method="trust-weighted")
    unweighted = MethodTrajectory(method="unweighted-vote")
    cap = MethodTrajectory(method="cap-olsr")
    beta = MethodTrajectory(method="beta-reputation")
    averaging = MethodTrajectory(method="report-averaging")

    cap_detector = CapOlsrDetector(owner=run.investigator, exclusion_threshold=0.0)
    beta_system = BetaReputationSystem(owner=run.investigator)
    averaging_system = AveragingTrustSystem(owner=run.investigator)

    for record in run.rounds:
        if record.detect_value is None:
            continue
        round_index = record.round_index
        bool_answers = _answers_to_bools(record.answers)

        # Paper's method: already evaluated by the round driver.
        ours.scores.append(record.detect_value)
        if ours.detection_round is None and record.outcome == DecisionOutcome.INTRUDER:
            ours.detection_round = round_index

        # Unweighted vote with the same decision rule.
        vote = unweighted_vote(record.answers)
        unweighted.scores.append(vote)
        margin = margin_of_error(list(record.answers.values()), config.confidence_level)
        if (
            unweighted.detection_round is None
            and decide(vote, margin, gamma=config.gamma) == DecisionOutcome.INTRUDER
        ):
            unweighted.detection_round = round_index

        # CAP-OLSR: entropy trust from cumulative counts.
        cap_score = cap_detector.process_round(attacker, bool_answers)
        cap.scores.append(cap_score)
        if cap.detection_round is None and cap_detector.classify(attacker) == "intruder":
            cap.detection_round = round_index

        # Beta reputation.
        beta_score = beta_system.process_round(attacker, bool_answers)
        beta.scores.append(beta_score)
        if beta.detection_round is None and beta_system.classify(attacker) == "intruder":
            beta.detection_round = round_index

        # Plain report averaging.
        avg_score = averaging_system.process_round(attacker, bool_answers)
        averaging.scores.append(avg_score)
        if (
            averaging.detection_round is None
            and averaging_system.classify(attacker) == "intruder"
        ):
            averaging.detection_round = round_index

    for trajectory in (ours, unweighted, cap, beta, averaging):
        trajectory.final_score = trajectory.scores[-1] if trajectory.scores else None

    return AblationResult(
        experiment=run,
        methods={
            t.method: t for t in (ours, unweighted, cap, beta, averaging)
        },
    )


def _ablation_rows(spec: ExperimentSpec,
                   result: ExperimentResult) -> List[Dict[str, object]]:
    return replay_methods(result).as_rows()


#: Engine registration: one scenario run, every method replayed on its
#: answer stream (single cell).
ABLATION_EXPERIMENT = register(ExperimentDefinition(
    name="ablation",
    description="trust weighting vs related-work baselines on one answer stream",
    rows_from_result=_ablation_rows,
    report_title="Ablation — detection round and final score per method",
))
