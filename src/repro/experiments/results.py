"""SQLite-backed, resumable campaign results store.

A scenario campaign (:mod:`repro.experiments.campaign`) can take minutes to
hours; before this module every :class:`~repro.experiments.campaign.CampaignRunResult`
lived only in process memory, so a killed campaign lost all completed cells
and re-aggregation meant re-running the whole grid.  :class:`ResultsStore`
makes the results durable and the campaign *resumable*:

* every completed cell is committed to SQLite as soon as its worker returns,
  keyed by a **content hash** of the fully-resolved
  :class:`~repro.experiments.campaign.CampaignSpec`;
* :func:`~repro.experiments.campaign.run_campaign` skips cells whose hash is
  already present, so a killed campaign restarted with the same grid executes
  only the missing cells and still produces a report byte-identical to an
  uninterrupted run;
* reporting streams rows straight from the database cursor, so aggregating a
  huge stored campaign never materialises every result row in memory.

Schema (version 1)
------------------
Two tables, created on first open::

    meta(key TEXT PRIMARY KEY, value TEXT)
        -- carries schema_version; opening a store with an unknown version
        -- raises instead of silently corrupting it.
    runs(
        spec_hash TEXT PRIMARY KEY,   -- content hash, see spec_content_hash()
        run_id    TEXT NOT NULL,      -- human-readable cell id (indexed)
        system    TEXT NOT NULL,      -- detector | watchdog | beta | ...
        spec_json TEXT NOT NULL,      -- canonical JSON of the CampaignSpec
        row_json  TEXT NOT NULL       -- the flat result row (as_row())
    )

The database is opened in WAL journal mode so a reader (``report``
subcommand, live monitoring) never blocks the writer appending finished
cells.

Content-hash key
----------------
:func:`spec_content_hash` is the SHA-256 of the canonical JSON encoding
(sorted keys, no whitespace) of *every* field of the spec dataclass — all
grid axes, the derived per-cell seed, the ``system`` under test and the
code-relevant scenario configuration (area, radio range, warm-up, cycle
structure) — prefixed with a schema label.  Two specs collide only if they
would execute the identical simulation; changing any knob (or the row schema
version) yields a fresh key, so stale rows from older configurations are
never silently reused.

Resume guarantees
-----------------
Rows are committed one by one (autocommit), so after a crash the store holds
exactly the cells whose workers finished.  Because every cell derives all of
its randomness from its own stable seed, re-running the missing cells in any
order — or from any number of worker processes — reproduces the
uninterrupted campaign's report byte for byte.  Stored rows round-trip
through JSON (``repr``-exact floats), which keeps stored-row reports
bit-identical to freshly-computed ones.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

#: Bump when the row/spec encoding changes *or* when the simulation an
#: identical spec produces changes (e.g. RNG-derivation fixes); part of every
#: content hash, so a store written by an older encoding is never silently
#: reused.  2: unified-engine PR — stable_seed derivations replaced the ad-hoc
#: seed arithmetic, so pre-PR rows no longer match what their specs produce.
#: 3: scenario-library PR — the netsim backend now honours the spec's trust
#: parameters and ``random_initial_trust``, so identical netsim specs
#: simulate differently than under version 2.
#: 4: routing-layer PR — ``protocol`` became a netsim parameter (part of the
#: hashed parameter tuple) and the node stack moved onto the shared
#: ``RoutingProtocol`` base, so version-3 rows must not be reused.
SCHEMA_VERSION = 4


def spec_content_hash(spec) -> str:
    """Content hash identifying one fully-resolved campaign cell.

    ``spec`` is a :class:`~repro.experiments.campaign.CampaignSpec` (or any
    dataclass with the same role): the hash covers every field — axes, seed,
    system and scenario config — plus the store schema version.
    """
    payload = {"schema": SCHEMA_VERSION}
    payload.update(asdict(spec))
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreRecord:
    """One stored cell exactly as the database holds it.

    ``spec_json``/``row_json`` are the *raw* stored text, not decoded
    objects: the fabric merge (:mod:`repro.fabric.merge`) copies these bytes
    verbatim between stores, which is what keeps NaN/±inf rows — and
    therefore merged reports — byte-identical to the shard that produced
    them.
    """

    spec_hash: str
    run_id: str
    system: str
    spec_json: str
    row_json: str


class ResultsStore:
    """Durable store of completed campaign cells (see module docstring).

    Usable as a context manager; safe to reopen over an existing database
    (the schema is created only when missing).  One instance wraps one
    :mod:`sqlite3` connection and therefore belongs to one process — worker
    processes return plain rows and only the parent writes.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        # isolation_level=None → autocommit: every finished cell is durable
        # immediately, which is what makes a killed campaign resumable.
        self._connection = sqlite3.connect(path, isolation_level=None)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._create_schema()

    # ------------------------------------------------------------ lifecycle
    def _create_schema(self) -> None:
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        self._connection.execute(
            """
            CREATE TABLE IF NOT EXISTS runs (
                spec_hash TEXT PRIMARY KEY,
                run_id    TEXT NOT NULL,
                system    TEXT NOT NULL,
                spec_json TEXT NOT NULL,
                row_json  TEXT NOT NULL
            )
            """
        )
        self._connection.execute(
            "CREATE INDEX IF NOT EXISTS idx_runs_run_id ON runs (run_id)"
        )
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._connection.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        elif int(row[0]) != SCHEMA_VERSION:
            raise ValueError(
                f"results store {self.path!r} has schema version {row[0]}, "
                f"expected {SCHEMA_VERSION}"
            )

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- writing
    def record(self, spec, row: Union[Dict[str, object], List[Dict[str, object]]],
               spec_hash: Optional[str] = None) -> str:
        """Persist one completed cell; returns its content hash.

        ``row`` is either one flat dict (a campaign cell) or a list of dicts
        (an engine cell whose experiment emits several rows — e.g. one per
        node); :meth:`iter_rows` flattens both transparently.  Overwrites any
        previous row under the same hash (identical spec → identical
        simulation, so a replace is always an idempotent refresh).
        """
        digest = spec_hash or spec_content_hash(spec)
        self._connection.execute(
            "INSERT OR REPLACE INTO runs "
            "(spec_hash, run_id, system, spec_json, row_json) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                digest,
                spec.run_id,
                getattr(spec, "system", "detector"),
                json.dumps(asdict(spec), sort_keys=True),
                json.dumps(row),
            ),
        )
        return digest

    def discard(self, spec_hash: str) -> None:
        """Drop one stored cell (e.g. to force its re-execution)."""
        self._connection.execute("DELETE FROM runs WHERE spec_hash = ?", (spec_hash,))

    def record_raw(self, record: StoreRecord, replace: bool = False) -> bool:
        """Insert one raw record verbatim; returns whether a row was written.

        The shard merge uses this to copy records between stores without a
        decode/re-encode round trip, so the destination's ``row_json`` is
        byte-identical to the source shard's.  With ``replace=False`` an
        existing cell under the same hash is left untouched (content-hash
        identity: same hash ⇒ same simulation ⇒ same rows) and ``False`` is
        returned.
        """
        verb = "INSERT OR REPLACE" if replace else "INSERT OR IGNORE"
        cursor = self._connection.execute(
            f"{verb} INTO runs (spec_hash, run_id, system, spec_json, row_json) "
            "VALUES (?, ?, ?, ?, ?)",
            (record.spec_hash, record.run_id, record.system,
             record.spec_json, record.row_json),
        )
        return cursor.rowcount > 0

    # ------------------------------------------------------------- metadata
    def set_meta(self, key: str, value: str) -> None:
        """Attach one auxiliary metadata string (e.g. a fabric run context).

        ``schema_version`` is reserved — the store manages it itself.
        """
        if key == "schema_version":
            raise ValueError("'schema_version' is managed by the store itself")
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
        )

    def get_meta(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """One metadata value, or ``default`` when absent."""
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else row[0]

    def iter_meta(self, prefix: str = "") -> Iterator[Tuple[str, str]]:
        """Stream ``(key, value)`` metadata pairs with ``prefix``, sorted."""
        cursor = self._connection.execute(
            "SELECT key, value FROM meta WHERE key LIKE ? AND key != "
            "'schema_version' ORDER BY key",
            (prefix + "%",),
        )
        yield from cursor

    # -------------------------------------------------------------- reading
    def __contains__(self, spec_hash: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM runs WHERE spec_hash = ?", (spec_hash,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        return self._connection.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def has_cell(self, spec_hash: str) -> bool:
        """Whether one cell's results are already stored (resume probe)."""
        return spec_hash in self

    def count_rows(self) -> int:
        """Total number of *flattened* result rows across every stored cell.

        Multi-row engine cells count each of their rows; ``0`` means the
        store holds no results at all — ``report`` treats that as an error
        instead of printing an empty table that looks like success.
        """
        total = 0
        cursor = self._connection.execute("SELECT row_json FROM runs")
        for (row_json,) in cursor:
            decoded = json.loads(row_json)
            total += len(decoded) if isinstance(decoded, list) else 1
        return total

    def raw_row_json(self, spec_hash: str) -> Optional[str]:
        """The stored ``row_json`` text of one cell, byte-exact, or ``None``."""
        record = self._connection.execute(
            "SELECT row_json FROM runs WHERE spec_hash = ?", (spec_hash,)
        ).fetchone()
        return None if record is None else record[0]

    def iter_records(self) -> Iterator[StoreRecord]:
        """Stream every stored cell as a raw :class:`StoreRecord`.

        Ordered by ``(run_id, spec_hash)`` like :meth:`iter_rows`; the rows
        come straight off the cursor so a merge over an arbitrarily large
        shard holds one record in memory at a time.
        """
        cursor = self._connection.execute(
            "SELECT spec_hash, run_id, system, spec_json, row_json "
            "FROM runs ORDER BY run_id, spec_hash"
        )
        for spec_hash, run_id, system, spec_json, row_json in cursor:
            yield StoreRecord(spec_hash=spec_hash, run_id=run_id, system=system,
                              spec_json=spec_json, row_json=row_json)

    def completed_hashes(self, hashes: Optional[Iterable[str]] = None) -> Set[str]:
        """Hashes present in the store, optionally restricted to ``hashes``."""
        if hashes is None:
            cursor = self._connection.execute("SELECT spec_hash FROM runs")
            return {row[0] for row in cursor}
        wanted = set(hashes)
        found: Set[str] = set()
        chunk: List[str] = []
        for digest in sorted(wanted):
            chunk.append(digest)
            if len(chunk) == 500:
                found |= self._completed_chunk(chunk)
                chunk = []
        if chunk:
            found |= self._completed_chunk(chunk)
        return found

    def _completed_chunk(self, chunk: List[str]) -> Set[str]:
        placeholders = ",".join("?" for _ in chunk)
        cursor = self._connection.execute(
            f"SELECT spec_hash FROM runs WHERE spec_hash IN ({placeholders})", chunk
        )
        return {row[0] for row in cursor}

    def get_row(self, spec_hash: str) -> Optional[
            Union[Dict[str, object], List[Dict[str, object]]]]:
        """The stored result row(s) of one cell, or ``None`` when absent."""
        record = self._connection.execute(
            "SELECT row_json FROM runs WHERE spec_hash = ?", (spec_hash,)
        ).fetchone()
        if record is None:
            return None
        return json.loads(record[0])

    def iter_rows(self, hashes: Optional[Iterable[str]] = None) -> Iterator[Dict[str, object]]:
        """Stream result rows ordered by ``run_id`` (then hash, for stability).

        ``hashes`` restricts the stream to one campaign's cells — a store may
        hold several campaigns side by side.  Multi-row cells (engine
        experiments) are flattened into the stream.  The rows come straight
        off the SQLite cursor, so memory stays constant regardless of
        campaign size (apart from the hash filter set itself and one cell's
        rows at a time).
        """
        wanted = set(hashes) if hashes is not None else None
        cursor = self._connection.execute(
            "SELECT spec_hash, row_json FROM runs ORDER BY run_id, spec_hash"
        )
        for spec_hash, row_json in cursor:
            if wanted is None or spec_hash in wanted:
                decoded = json.loads(row_json)
                if isinstance(decoded, list):
                    yield from decoded
                else:
                    yield decoded
