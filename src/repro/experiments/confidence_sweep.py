"""Confidence-level / γ sweep (extension table A of DESIGN.md).

Section IV-C of the paper introduces the confidence interval and the
three-way decision rule but shows no dedicated figure; this sweep quantifies
the mechanism: for every (confidence level, γ) pair it reports how many
rounds the investigation needs before the decision becomes conclusive and
whether the final verdict is correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.decision import DecisionOutcome
from repro.experiments.config import ScenarioConfig, paper_default_config
from repro.experiments.engine import ExperimentDefinition, ExperimentSpec, register
from repro.experiments.rounds import ExperimentResult, RoundBasedExperiment


@dataclass
class ConfidenceSweepRow:
    """Outcome of one (confidence level, γ) configuration."""

    confidence_level: float
    gamma: float
    rounds_to_decision: Optional[int]
    final_outcome: Optional[DecisionOutcome]
    final_detect: Optional[float]
    final_margin: Optional[float]
    verdict_correct: bool

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for tabular output (raw values; the report
        formatter owns rounding)."""
        return {
            "confidence_level": self.confidence_level,
            "gamma": self.gamma,
            "rounds_to_decision": self.rounds_to_decision,
            "final_outcome": str(self.final_outcome) if self.final_outcome else None,
            "final_detect": self.final_detect,
            "final_margin": self.final_margin,
            "verdict_correct": self.verdict_correct,
        }


@dataclass
class ConfidenceSweepResult:
    """All rows of the sweep."""

    rows: List[ConfidenceSweepRow] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat rows for the report generator."""
        return [row.as_dict() for row in self.rows]

    def correct_fraction(self) -> float:
        """Fraction of configurations whose final verdict was correct."""
        if not self.rows:
            return 0.0
        return sum(1 for row in self.rows if row.verdict_correct) / len(self.rows)


def run_confidence_sweep(
    confidence_levels: Sequence[float] = (0.90, 0.95, 0.99),
    gammas: Sequence[float] = (0.4, 0.6, 0.8),
    base_config: Optional[ScenarioConfig] = None,
) -> ConfidenceSweepResult:
    """Run the sweep; the suspect is always a genuine attacker, so the correct
    verdict is :data:`DecisionOutcome.INTRUDER`."""
    base = base_config or paper_default_config()
    result = ConfidenceSweepResult()
    for confidence_level in confidence_levels:
        for gamma in gammas:
            config = base.with_overrides(confidence_level=confidence_level, gamma=gamma)
            run = RoundBasedExperiment(config).run()
            result.rows.append(sweep_row(confidence_level, gamma, run))
    return result


def sweep_row(confidence_level: float, gamma: float,
              run: ExperimentResult) -> ConfidenceSweepRow:
    """Summarise one (confidence level, γ) run into its sweep row."""
    rounds_to_decision: Optional[int] = None
    final_outcome: Optional[DecisionOutcome] = None
    final_detect: Optional[float] = None
    final_margin: Optional[float] = None
    for record in run.rounds:
        if record.outcome is None:
            continue
        final_outcome = record.outcome
        final_detect = record.detect_value
        final_margin = record.margin
        if rounds_to_decision is None and record.outcome != DecisionOutcome.UNRECOGNIZED:
            rounds_to_decision = record.round_index
    return ConfidenceSweepRow(
        confidence_level=confidence_level,
        gamma=gamma,
        rounds_to_decision=rounds_to_decision,
        final_outcome=final_outcome,
        final_detect=final_detect,
        final_margin=final_margin,
        verdict_correct=final_outcome == DecisionOutcome.INTRUDER,
    )


def _confidence_rows(spec: ExperimentSpec,
                     result: ExperimentResult) -> List[Dict[str, object]]:
    row = sweep_row(float(spec.param("confidence_level")),
                    float(spec.param("gamma")), result)
    return [row.as_dict()]


#: Engine registration: the (confidence level × γ) grid, one cell per pair.
CONFIDENCE_SWEEP_EXPERIMENT = register(ExperimentDefinition(
    name="confidence_sweep",
    description="confidence level / γ sweep of the decision rule (ext. Table A)",
    rows_from_result=_confidence_rows,
    axes={"confidence_level": (0.90, 0.95, 0.99), "gamma": (0.4, 0.6, 0.8)},
    report_title="Confidence sweep — decision rule vs confidence level and γ",
))
