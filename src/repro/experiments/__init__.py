"""Experiment harness reproducing the paper's evaluation (Section V).

Architecture — spec / registry / backend layering
-------------------------------------------------
Every experiment is three declarative layers deep, all served by one runtime:

1. **Spec** — an :class:`~repro.experiments.engine.ExperimentDefinition`
   declares the experiment's parameter ``axes`` and ``fixed`` parameters; the
   engine expands the cross product into frozen, content-hashable
   :class:`~repro.experiments.engine.ExperimentSpec` cells with stable
   per-cell seeds.  The spec is the unit of execution, persistence and
   resume.
2. **Registry** — drivers register their definition at import
   (:func:`~repro.experiments.engine.register`); the CLI
   (``python -m repro.experiments``), the worker processes and callers
   resolve names through :func:`~repro.experiments.engine.get_experiment` /
   :func:`~repro.experiments.engine.list_experiments`.
3. **Backend** — each cell executes on a pluggable substrate
   (:mod:`repro.experiments.backends`): ``"oracle"`` runs the paper's
   round-based loop (:class:`~repro.experiments.rounds.RoundBasedExperiment`),
   ``"netsim"`` the full MANET stack
   (:func:`~repro.experiments.scenario.build_manet_scenario`).  Both return
   the same :class:`~repro.experiments.rounds.ExperimentResult`, so every
   figure can also run full-stack and every scenario axis (loss, mobility,
   liar fraction) applies to every experiment.

The shared runtime (:func:`~repro.experiments.engine.run_experiment`) gives
all of them process-pool fan-out, SQLite content-hash resume
(:mod:`repro.experiments.results`) and deterministic streaming reports
(:mod:`repro.experiments.report`); the scenario campaign
(:mod:`repro.experiments.campaign`) runs on the same executor.

Modules
-------
* :mod:`repro.experiments.engine` — spec, registry, runner (the runtime).
* :mod:`repro.experiments.backends` — oracle / netsim execution backends.
* :mod:`repro.experiments.config` — scenario parameters (paper defaults).
* :mod:`repro.experiments.rounds` — the round-based investigation driver.
* :mod:`repro.experiments.figure1` — trust trajectories under a persistent
  attack (paper Figure 1).
* :mod:`repro.experiments.figure2` — forgetting-factor recovery after the
  attack ceases (paper Figure 2).
* :mod:`repro.experiments.figure3` — liar-ratio sweep of the detection
  aggregate (paper Figure 3).
* :mod:`repro.experiments.confidence_sweep` — confidence level / γ sweep
  (extension Table A).
* :mod:`repro.experiments.ablation` — trust weighting vs. baselines
  (extension Table B).
* :mod:`repro.experiments.gravity_ablation` — evidence-gravity sweep.
* :mod:`repro.experiments.mobility` — mobility impact (netsim backend).
* :mod:`repro.experiments.scenario` — full-stack simulated MANET scenarios.
* :mod:`repro.experiments.campaign` — declarative multi-process scenario
  campaigns over system under test × node count × loss × mobility × attack
  variant × liar fraction grids.
* :mod:`repro.experiments.results` — SQLite-backed, resumable results store
  (content-hash keyed, WAL journal, streaming aggregation).
* :mod:`repro.experiments.report` — plain-text tables and sparklines.

Two sibling packages build on the engine: :mod:`repro.scenarios` (the
registry of composable scenario profiles — sweepable on every experiment
through the ``profile`` parameter — plus the seeded scenario fuzzer) and
:mod:`repro.validation` (structural invariants over netsim runs and the
oracle↔netsim differential harness).

Command line: ``python -m repro.experiments`` with the subcommands ``list``,
``run <experiment>``, ``campaign``, ``report`` and ``validate``.
"""

from repro.experiments.ablation import AblationResult, MethodTrajectory, run_ablation
from repro.experiments.gravity_ablation import (
    GravityAblationResult,
    GravityRow,
    run_gravity_ablation,
)
from repro.experiments.mobility import (
    MobilityRunResult,
    MobilityStudyResult,
    run_mobility_study,
)
from repro.experiments.config import (
    ScenarioConfig,
    figure2_config,
    figure3_configs,
    paper_default_config,
)
from repro.experiments.confidence_sweep import (
    ConfidenceSweepResult,
    ConfidenceSweepRow,
    run_confidence_sweep,
)
from repro.experiments.engine import (
    ExperimentDefinition,
    ExperimentRunResult,
    ExperimentSpec,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
)
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.report import (
    aggregate_rows,
    format_series,
    format_table,
    format_trajectories,
    render_report,
    sparkline,
)
from repro.experiments.rounds import (
    ExperimentResult,
    RoundBasedExperiment,
    RoundRecord,
)
from repro.experiments.scenario import (
    CANONICAL_POSITIONS,
    SimulationScenario,
    build_canonical_scenario,
    build_manet_scenario,
)

# Campaign exports are resolved lazily (PEP 562): importing them eagerly
# would put repro.experiments.campaign in sys.modules before ``python -m
# repro.experiments.campaign`` executes it, triggering a runpy warning on
# every CLI invocation.
_CAMPAIGN_EXPORTS = (
    "CampaignGrid",
    "CampaignResult",
    "CampaignRunResult",
    "CampaignSpec",
    "SYSTEMS",
    "execute_spec",
    "run_campaign",
)

_RESULTS_EXPORTS = (
    "ResultsStore",
    "spec_content_hash",
)


def __getattr__(name):
    if name in _CAMPAIGN_EXPORTS:
        from repro.experiments import campaign

        return getattr(campaign, name)
    if name in _RESULTS_EXPORTS:
        from repro.experiments import results

        return getattr(results, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AblationResult",
    "CANONICAL_POSITIONS",
    "CampaignGrid",
    "CampaignResult",
    "CampaignRunResult",
    "CampaignSpec",
    "ResultsStore",
    "SYSTEMS",
    "aggregate_rows",
    "execute_spec",
    "run_campaign",
    "spec_content_hash",
    "ConfidenceSweepResult",
    "ConfidenceSweepRow",
    "ExperimentDefinition",
    "ExperimentResult",
    "ExperimentRunResult",
    "ExperimentSpec",
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "GravityAblationResult",
    "GravityRow",
    "MethodTrajectory",
    "MobilityRunResult",
    "MobilityStudyResult",
    "RoundBasedExperiment",
    "RoundRecord",
    "ScenarioConfig",
    "SimulationScenario",
    "build_canonical_scenario",
    "build_manet_scenario",
    "figure2_config",
    "figure3_configs",
    "format_series",
    "format_table",
    "format_trajectories",
    "get_experiment",
    "list_experiments",
    "paper_default_config",
    "register",
    "render_report",
    "run_ablation",
    "run_confidence_sweep",
    "run_experiment",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_gravity_ablation",
    "run_mobility_study",
    "sparkline",
]
