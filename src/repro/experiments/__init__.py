"""Experiment harness reproducing the paper's evaluation (Section V).

* :mod:`repro.experiments.config` — scenario parameters (paper defaults).
* :mod:`repro.experiments.rounds` — the round-based investigation driver.
* :mod:`repro.experiments.figure1` — trust trajectories under a persistent
  attack (paper Figure 1).
* :mod:`repro.experiments.figure2` — forgetting-factor recovery after the
  attack ceases (paper Figure 2).
* :mod:`repro.experiments.figure3` — liar-ratio sweep of the detection
  aggregate (paper Figure 3).
* :mod:`repro.experiments.confidence_sweep` — confidence level / γ sweep
  (extension Table A).
* :mod:`repro.experiments.ablation` — trust weighting vs. baselines
  (extension Table B).
* :mod:`repro.experiments.scenario` — full-stack simulated MANET scenarios.
* :mod:`repro.experiments.campaign` — declarative multi-process scenario
  campaigns over system under test × node count × loss × mobility × attack
  variant × liar fraction grids (also a CLI:
  ``python -m repro.experiments.campaign``).
* :mod:`repro.experiments.results` — SQLite-backed, resumable campaign
  results store (content-hash keyed, WAL journal, streaming aggregation).
* :mod:`repro.experiments.report` — plain-text tables and sparklines.
"""

from repro.experiments.ablation import AblationResult, MethodTrajectory, run_ablation
from repro.experiments.gravity_ablation import (
    GravityAblationResult,
    GravityRow,
    run_gravity_ablation,
)
from repro.experiments.mobility import (
    MobilityRunResult,
    MobilityStudyResult,
    run_mobility_study,
)
from repro.experiments.config import (
    ScenarioConfig,
    figure2_config,
    figure3_configs,
    paper_default_config,
)
from repro.experiments.confidence_sweep import (
    ConfidenceSweepResult,
    ConfidenceSweepRow,
    run_confidence_sweep,
)
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.report import (
    aggregate_rows,
    format_series,
    format_table,
    format_trajectories,
    render_report,
    sparkline,
)
from repro.experiments.rounds import (
    ExperimentResult,
    RoundBasedExperiment,
    RoundRecord,
)
from repro.experiments.scenario import (
    CANONICAL_POSITIONS,
    SimulationScenario,
    build_canonical_scenario,
    build_manet_scenario,
)

# Campaign exports are resolved lazily (PEP 562): importing them eagerly
# would put repro.experiments.campaign in sys.modules before ``python -m
# repro.experiments.campaign`` executes it, triggering a runpy warning on
# every CLI invocation.
_CAMPAIGN_EXPORTS = (
    "CampaignGrid",
    "CampaignResult",
    "CampaignRunResult",
    "CampaignSpec",
    "SYSTEMS",
    "execute_spec",
    "run_campaign",
)

_RESULTS_EXPORTS = (
    "ResultsStore",
    "spec_content_hash",
)


def __getattr__(name):
    if name in _CAMPAIGN_EXPORTS:
        from repro.experiments import campaign

        return getattr(campaign, name)
    if name in _RESULTS_EXPORTS:
        from repro.experiments import results

        return getattr(results, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AblationResult",
    "CANONICAL_POSITIONS",
    "CampaignGrid",
    "CampaignResult",
    "CampaignRunResult",
    "CampaignSpec",
    "ResultsStore",
    "SYSTEMS",
    "aggregate_rows",
    "execute_spec",
    "run_campaign",
    "spec_content_hash",
    "ConfidenceSweepResult",
    "ConfidenceSweepRow",
    "ExperimentResult",
    "Figure1Result",
    "Figure2Result",
    "Figure3Result",
    "GravityAblationResult",
    "GravityRow",
    "MethodTrajectory",
    "MobilityRunResult",
    "MobilityStudyResult",
    "RoundBasedExperiment",
    "RoundRecord",
    "ScenarioConfig",
    "SimulationScenario",
    "build_canonical_scenario",
    "build_manet_scenario",
    "figure2_config",
    "figure3_configs",
    "format_series",
    "format_table",
    "format_trajectories",
    "paper_default_config",
    "render_report",
    "run_ablation",
    "run_confidence_sweep",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_gravity_ablation",
    "run_mobility_study",
    "sparkline",
]
