"""Helpers shared by the experiment CLIs.

Both ``python -m repro.experiments`` and the standalone campaign CLI
(``python -m repro.experiments.campaign``) open results stores and emit
reports the same way; keeping the logic here stops the two front ends from
drifting apart.
"""

from __future__ import annotations

import argparse
import os
import sqlite3
import sys
from typing import Optional, Tuple

from repro.experiments.results import ResultsStore


def parse_value(raw: str) -> object:
    """Parse one CLI value: int, float, bool, None or bare string."""
    text = raw.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def parse_axis(raw: str) -> Tuple[str, Tuple[object, ...]]:
    """Parse one ``--axis name=v1,v2`` override."""
    name, sep, values = raw.partition("=")
    if not sep or not name.strip():
        raise argparse.ArgumentTypeError(
            f"axis override {raw!r} must look like name=v1,v2")
    parsed = tuple(parse_value(part) for part in values.split(",") if part.strip())
    if not parsed:
        raise argparse.ArgumentTypeError(f"axis override {raw!r} has no values")
    return name.strip(), parsed


def parse_param(raw: str) -> Tuple[str, object]:
    """Parse one ``--param name=value`` override."""
    name, sep, value = raw.partition("=")
    if not sep or not name.strip():
        raise argparse.ArgumentTypeError(
            f"parameter override {raw!r} must look like name=value")
    return name.strip(), parse_value(value)


def open_store(path: str) -> Optional[ResultsStore]:
    """Open a results store; prints the error and returns ``None`` on failure."""
    try:
        return ResultsStore(path)
    except (OSError, ValueError, sqlite3.Error) as error:
        print(f"error: cannot open results store {path}: {error}", file=sys.stderr)
        return None


def require_store_file(path: str) -> bool:
    """Whether ``path`` is an existing store file; prints the error otherwise.

    ``sqlite3.connect`` would silently *create* a fresh empty database on a
    mistyped path and report "(no data)" with exit 0; reporting only makes
    sense over a store that already exists.
    """
    if os.path.isfile(path):
        return True
    print(f"error: results store {path} does not exist", file=sys.stderr)
    return False


def emit_report(report: str, output: Optional[str]) -> int:
    """Print ``report`` and optionally write it to ``output``; exit code."""
    print(report)
    if output:
        try:
            with open(output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
        except OSError as error:
            print(f"error: cannot write report to {output}: {error}",
                  file=sys.stderr)
            return 1
    return 0
