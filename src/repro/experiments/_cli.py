"""Helpers shared by the experiment CLIs.

Both ``python -m repro.experiments`` and the standalone campaign CLI
(``python -m repro.experiments.campaign``) open results stores and emit
reports the same way; keeping the logic here stops the two front ends from
drifting apart.
"""

from __future__ import annotations

import os
import sqlite3
import sys
from typing import Optional

from repro.experiments.results import ResultsStore


def open_store(path: str) -> Optional[ResultsStore]:
    """Open a results store; prints the error and returns ``None`` on failure."""
    try:
        return ResultsStore(path)
    except (OSError, ValueError, sqlite3.Error) as error:
        print(f"error: cannot open results store {path}: {error}", file=sys.stderr)
        return None


def require_store_file(path: str) -> bool:
    """Whether ``path`` is an existing store file; prints the error otherwise.

    ``sqlite3.connect`` would silently *create* a fresh empty database on a
    mistyped path and report "(no data)" with exit 0; reporting only makes
    sense over a store that already exists.
    """
    if os.path.isfile(path):
        return True
    print(f"error: results store {path} does not exist", file=sys.stderr)
    return False


def emit_report(report: str, output: Optional[str]) -> int:
    """Print ``report`` and optionally write it to ``output``; exit code."""
    print(report)
    if output:
        try:
            with open(output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
        except OSError as error:
            print(f"error: cannot write report to {output}: {error}",
                  file=sys.stderr)
            return 1
    return 0
