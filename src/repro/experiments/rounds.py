"""Round-based experiment driver.

The paper evaluates its trust system as a sequence of *investigation rounds*:
in every round the attacked node interrogates the 1-hop neighbours of the
suspect about the contested link, aggregates the answers with Eq. 8, applies
the decision rule and updates the trust of every participant.  This module
drives exactly that loop on top of the library's
:class:`repro.core.investigation.CooperativeInvestigator`:

* the attacker keeps advertising a spoofed link for as long as the attack is
  active;
* honest responders truthfully deny the spoofed link;
* liars (colluding misbehaving nodes) confirm it, foiling the detection;
* when the attack ceases (Figure 2) the investigation stops and the trust
  values evolve under the forgetting factor alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.attacks.adaptive import TrustProbe
from repro.attacks.liar import LiarBehavior
from repro.core.decision import DecisionOutcome
from repro.core.investigation import CooperativeInvestigator, OracleTransport, RoundResult
from repro.experiments.config import ScenarioConfig
from repro.seeding import stable_seed
from repro.trust.manager import TrustManager
from repro.trust.recommendation import RecommendationManager


class _Responder:
    """A responder in the round-based experiment.

    ``honest_answer_supplier`` returns the truthful answer to "is the suspect
    your symmetric neighbour (as it advertises)?"; a liar behaviour, when
    installed, falsifies it.
    """

    def __init__(self, node_id: str, honest_answer_supplier, liar: Optional[LiarBehavior] = None) -> None:
        self.node_id = node_id
        self._honest_answer_supplier = honest_answer_supplier
        self.liar = liar

    @property
    def is_liar(self) -> bool:
        """Whether a liar behaviour is installed on this responder."""
        return self.liar is not None

    def answer_link_query(self, suspect: str, requester: str,
                          link_peer: Optional[str] = None) -> Optional[bool]:
        honest = self._honest_answer_supplier(suspect)
        if self.liar is None:
            return honest
        return self.liar.answer(honest)


@dataclass
class RoundRecord:
    """What happened during one experiment round."""

    round_index: int
    attack_active: bool
    detect_value: Optional[float]
    outcome: Optional[DecisionOutcome]
    margin: Optional[float]
    trust_snapshot: Dict[str, float] = field(default_factory=dict)
    answers: Dict[str, float] = field(default_factory=dict)
    #: Responders no query path could reach this round (netsim backend; the
    #: oracle transport reaches everyone, so it stays 0 there).
    unreached: int = 0


@dataclass
class ExperimentResult:
    """Full outcome of a round-based experiment."""

    config: ScenarioConfig
    investigator: str
    attacker: str
    liars: Set[str]
    honest_responders: Set[str]
    rounds: List[RoundRecord] = field(default_factory=list)
    initial_trust: Dict[str, float] = field(default_factory=dict)
    #: Substrate statistics (frames, events) — filled by the netsim backend.
    stats: Dict[str, float] = field(default_factory=dict)

    # ----------------------------------------------------------------- views
    @property
    def responders(self) -> Set[str]:
        """Every responder (liars and honest)."""
        return self.liars | self.honest_responders

    def trust_trajectory(self, node: str) -> List[float]:
        """Trust of ``node`` (as seen by the investigator) per round."""
        return [record.trust_snapshot.get(node, 0.0) for record in self.rounds]

    def trust_trajectories(self) -> Dict[str, List[float]]:
        """Trajectories of every responder and of the attacker."""
        nodes = sorted(self.responders | {self.attacker})
        return {node: self.trust_trajectory(node) for node in nodes}

    def detect_trajectory(self) -> List[Optional[float]]:
        """Detect^{A,I} value per round (None for rounds without investigation)."""
        return [record.detect_value for record in self.rounds]

    def detect_values(self) -> List[float]:
        """Detect values of the rounds where an investigation actually ran."""
        return [r.detect_value for r in self.rounds if r.detect_value is not None]

    def final_outcome(self) -> Optional[DecisionOutcome]:
        """Outcome of the last investigated round."""
        for record in reversed(self.rounds):
            if record.outcome is not None:
                return record.outcome
        return None

    def role_of(self, node: str) -> str:
        """"attacker", "liar", "honest" or "investigator"."""
        if node == self.attacker:
            return "attacker"
        if node == self.investigator:
            return "investigator"
        if node in self.liars:
            return "liar"
        return "honest"


class RoundBasedExperiment:
    """Builds and runs the paper's round-based evaluation scenario."""

    SPOOFED_LINK_TARGET = "victim-link"

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config or ScenarioConfig()
        self.rng = random.Random(self.config.seed)
        self.investigator_id = "n00"
        self.attacker_id = "n01"
        self.responder_ids = [f"n{i:02d}" for i in range(2, self.config.total_nodes)]
        liar_count = self.config.effective_liar_count()
        shuffled = list(self.responder_ids)
        self.rng.shuffle(shuffled)
        self.liar_ids: Set[str] = set(shuffled[:liar_count])
        self.honest_ids: Set[str] = set(self.responder_ids) - self.liar_ids

        self._attack_active = True
        self.trust = TrustManager(self.investigator_id, self.config.trust)
        #: Read-only feedback surface of the adaptive adversary tiers: the
        #: throttling attacker observes its own trust (as the investigator
        #: scores it) through this probe and nothing else.
        self._trust_probe = TrustProbe(self.trust, self.attacker_id)
        self._riding_paused = False
        self.recommendations = RecommendationManager(self.investigator_id)
        self._liar_behaviors: Dict[str, LiarBehavior] = {}
        self._responders: Dict[str, _Responder] = {}
        self._build_responders()
        self._assign_initial_trust()

        self.transport = OracleTransport(
            self._responders,
            loss_probability=self.config.answer_loss_probability,
            rng=random.Random(stable_seed(self.config.seed, "oracle-transport")),
        )
        self.investigator = CooperativeInvestigator(
            owner=self.investigator_id,
            transport=self.transport,
            trust_manager=self.trust,
            recommendation_manager=self.recommendations,
            gamma=self.config.gamma,
            confidence_level=self.config.confidence_level,
            use_trust_weighting=self.config.use_trust_weighting,
            close_on_decision=self.config.close_on_decision,
        )
        self.investigator.open_investigation(self.attacker_id, self.responder_ids)

    # ----------------------------------------------------------------- set-up
    def _build_responders(self) -> None:
        def honest_answer(_suspect: str) -> bool:
            # While the attack is active the advertised link is spoofed, so a
            # truthful responder denies it; once the attacker stops spoofing,
            # its advertisement matches reality again.
            return not self._attack_active

        for node_id in self.responder_ids:
            liar: Optional[LiarBehavior] = None
            if node_id in self.liar_ids:
                # stable_seed keeps the liar streams disjoint per node: the
                # old additive ``seed + digest % 1000`` capped the offset at
                # 1000, so distinct liars could collide on one RNG stream.
                liar = LiarBehavior(
                    protected_suspects={self.attacker_id},
                    lie_probability=1.0,
                    rng=random.Random(stable_seed(self.config.seed, f"liar:{node_id}")),
                )
                self._liar_behaviors[node_id] = liar
            self._responders[node_id] = _Responder(node_id, honest_answer, liar)

    def _assign_initial_trust(self) -> None:
        subjects = list(self.responder_ids) + [self.attacker_id]
        for node_id in subjects:
            if self.config.random_initial_trust:
                value = self.rng.uniform(self.config.initial_trust_min,
                                         self.config.initial_trust_max)
            else:
                value = self.config.trust.default_trust
            self.trust.set_initial_trust(node_id, value)

    # -------------------------------------------------------------------- run
    def attack_active_at(self, round_index: int) -> bool:
        """Whether the attack (and the lying) is active during ``round_index``."""
        stop = self.config.attack_stop_round
        return stop is None or round_index < stop

    def run(self, rounds: Optional[int] = None) -> ExperimentResult:
        """Run the configured number of rounds and return the result."""
        total_rounds = rounds if rounds is not None else self.config.rounds
        result = ExperimentResult(
            config=self.config,
            investigator=self.investigator_id,
            attacker=self.attacker_id,
            liars=set(self.liar_ids),
            honest_responders=set(self.honest_ids),
            initial_trust=self.trust.as_dict(),
        )
        for round_index in range(total_rounds):
            result.rounds.append(self.run_round(round_index))
        return result

    def run_round(self, round_index: int) -> RoundRecord:
        """Run a single round and return its record."""
        self._attack_active = self.attack_active_at(round_index)
        if self._attack_active and self.config.adaptivity == "throttling":
            self._attack_active = not self._riding_pauses_now()
        self._apply_liar_policy(round_index)

        if self._attack_active and not self._investigation_closed():
            round_result = self.investigator.run_round(self.attacker_id, now=float(round_index))
            record = RoundRecord(
                round_index=round_index,
                attack_active=True,
                detect_value=round_result.decision.detect_value,
                outcome=round_result.decision.outcome,
                margin=round_result.decision.interval.margin,
                answers=dict(round_result.answers),
                unreached=len(round_result.responders_unreached),
            )
        else:
            # No contested link: the trust values evolve under forgetting only.
            self.trust.decay_all(now=float(round_index))
            record = RoundRecord(
                round_index=round_index,
                attack_active=self._attack_active,
                detect_value=None,
                outcome=None,
                margin=None,
            )
        record.trust_snapshot = self.trust.as_dict()
        return record

    def _riding_pauses_now(self) -> bool:
        """Threshold riding: pause/resume hysteresis on the probed trust.

        The attacker reads its own trust as the investigator sees it
        (through the read-only probe) and stops spoofing once that trust
        falls to ``riding_threshold``; paused rounds look misconduct-free,
        so the forgetting factor restores headroom until ``riding_resume``
        readmits the attack.
        """
        trust = self._trust_probe.read()
        if self._riding_paused:
            if trust >= self.config.riding_resume:
                self._riding_paused = False
        elif trust <= self.config.riding_threshold:
            self._riding_paused = True
        return self._riding_paused

    def _apply_liar_policy(self, round_index: int) -> None:
        """Activate the liars the current adaptivity tier fields this round.

        Static (and throttling) adversaries field every liar while the
        attack is active — the paper's behaviour, bit for bit.  The rotating
        tier fields exactly one liar per round (round-indexed entry of the
        sorted roster) and keeps the rest honest, starving the
        per-recommender disagreement bookkeeping.
        """
        if not self._attack_active:
            for liar in self._liar_behaviors.values():
                liar.deactivate()
            return
        if self.config.adaptivity == "rotating" and self._liar_behaviors:
            roster = sorted(self._liar_behaviors)
            active_liar = roster[round_index % len(roster)]
            for node_id, liar in self._liar_behaviors.items():
                if node_id == active_liar:
                    liar.follow_schedule()
                else:
                    liar.deactivate()
            return
        for liar in self._liar_behaviors.values():
            liar.follow_schedule()

    def _investigation_closed(self) -> bool:
        state = self.investigator.state_of(self.attacker_id)
        return bool(state and state.closed)
