"""Scenario-campaign runner: declarative grids of full-stack MANET runs.

The paper's evaluation sweeps detection behaviour across many network
configurations *and compares it against related-work baselines*.  This module
makes such sweeps first-class: a :class:`CampaignGrid` declares the axes to
explore (system under test × node count × loss model × mobility × attack
variant × liar fraction × repetitions), :meth:`CampaignGrid.expand` turns the
cross product into frozen, picklable :class:`CampaignSpec` cells with per-run
seeds derived stably via :func:`repro.seeding.stable_seed` (never the
process-salted ``hash``), and :func:`run_campaign` executes the cells —
serially or across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor` — before aggregating the rows
through :mod:`repro.experiments.report`.

The ``system`` axis puts the paper's trust-based cooperative detector and the
related-work baselines (:mod:`repro.baselines`) into the same grid: every
cell runs the *full* simulator stack (OLSR over the spatial-indexed wireless
medium, the link-spoofing attack, colluding liars, the cooperative
investigation), and for a baseline system the investigation's answer stream
is replayed through the baseline's ``process_round`` adapter — every system
judges the attacker from the identical evidence, which is exactly the
comparison the paper's claims rest on.

Results are deterministic: the same grid and base seed produce byte-identical
reports regardless of worker count or invocation.  With a
:class:`repro.experiments.results.ResultsStore` attached, every completed
cell is durably committed as soon as it finishes, already-stored cells are
skipped on re-invocation (resume), and reporting streams from the database.

Command line
------------
``python -m repro.experiments.campaign`` exposes the runner::

    python -m repro.experiments.campaign \
        --node-counts 8,16 --liar-fractions 0.0,0.25 \
        --loss bernoulli:0.0,bernoulli:0.2 --speeds 0,5 \
        --systems detector,watchdog,beta,cap-olsr,averaging \
        --variants false_existing_link --workers 4 \
        --db campaign.sqlite --resume --output report.txt

and a ``report`` subcommand that re-aggregates a stored campaign without
re-running anything::

    python -m repro.experiments.campaign report --db campaign.sqlite

See ``--help`` for the full set of knobs (warm-up, cycles, seed, ...).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.baselines.averaging import AveragingTrustSystem
from repro.baselines.beta_reputation import BetaReputationSystem
from repro.baselines.cap_olsr import CapOlsrDetector
from repro.baselines.watchdog import WatchdogPathrater
from repro.core.decision import DecisionOutcome
from repro.core.signatures import LinkSpoofingVariant
from repro.experiments._cli import emit_report, open_store, require_store_file
from repro.experiments.engine import execute_pending_cells
from repro.experiments.report import aggregate_rows, format_table, render_report
from repro.experiments.results import ResultsStore, spec_content_hash
from repro.experiments.scenario import build_manet_scenario
from repro.seeding import stable_seed

#: Systems the campaign can put in one grid: the paper's detector plus the
#: related-work baselines re-implemented in :mod:`repro.baselines`.
SYSTEMS = ("detector", "watchdog", "beta", "cap-olsr", "averaging")

#: Factories building the per-run baseline adapter for one investigating node.
#: Every adapter exposes ``process_round(suspect, answers) -> score`` and
#: ``classify(suspect) -> "intruder" | "well-behaving"``.
_BASELINE_FACTORIES = {
    "watchdog": lambda owner: WatchdogPathrater(owner=owner),
    "beta": lambda owner: BetaReputationSystem(owner=owner),
    "cap-olsr": lambda owner: CapOlsrDetector(owner=owner),
    "averaging": lambda owner: AveragingTrustSystem(owner=owner),
}


@dataclass(frozen=True)
class CampaignSpec:
    """One fully-resolved grid cell (picklable; safe to ship to a worker)."""

    run_id: str
    seed: int
    node_count: int
    liar_fraction: float
    loss_model: str
    loss_probability: float
    max_speed: float
    attack_variant: str
    system: str = "detector"
    repetition: int = 0
    area_size: float = 800.0
    radio_range: float = 250.0
    warmup: float = 35.0
    attack_start: float = 40.0
    cycles: int = 5
    cycle_length: float = 10.0

    def liar_count(self) -> int:
        """Liar head-count implied by ``liar_fraction`` (responders only)."""
        responders = max(self.node_count - 2, 0)
        return min(responders, int(round(self.liar_fraction * responders)))

    def content_hash(self) -> str:
        """Content hash keying this cell in a :class:`ResultsStore`."""
        return spec_content_hash(self)


@dataclass
class CampaignGrid:
    """Declarative parameter grid, expanded into seeded :class:`CampaignSpec` cells.

    ``loss_models`` entries are ``"kind:probability"`` strings (for example
    ``"bernoulli:0.2"`` or ``"distance:0.8"``); ``attack_variants`` use the
    :class:`~repro.core.signatures.LinkSpoofingVariant` values; ``systems``
    names the detectors under test (:data:`SYSTEMS`).
    """

    node_counts: Sequence[int] = (16,)
    liar_fractions: Sequence[float] = (0.25,)
    loss_models: Sequence[str] = ("bernoulli:0.0",)
    max_speeds: Sequence[float] = (0.0,)
    attack_variants: Sequence[str] = (str(LinkSpoofingVariant.FALSE_EXISTING_LINK),)
    systems: Sequence[str] = ("detector",)
    repetitions: int = 1
    base_seed: int = 7
    area_size: float = 800.0
    radio_range: float = 250.0
    warmup: float = 35.0
    attack_start: float = 40.0
    cycles: int = 5
    cycle_length: float = 10.0

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        for fraction in self.liar_fractions:
            if not 0.0 <= fraction < 1.0:
                raise ValueError("liar fractions must be in [0, 1)")
        for entry in self.loss_models:
            _parse_loss(entry)
        for variant in self.attack_variants:
            LinkSpoofingVariant(variant)
        for system in self.systems:
            if system not in SYSTEMS:
                raise ValueError(
                    f"unknown system {system!r} (expected one of {', '.join(SYSTEMS)})"
                )

    def size(self) -> int:
        """Number of grid cells (runs) the campaign will execute."""
        return (len(self.node_counts) * len(self.liar_fractions)
                * len(self.loss_models) * len(self.max_speeds)
                * len(self.attack_variants) * len(self.systems)
                * self.repetitions)

    def expand(self) -> List[CampaignSpec]:
        """The full cross product as seeded, stably-identified specs.

        The per-cell seed is derived from the *scenario* axes only (not the
        ``system``): the same scenario cell swept under different systems
        replays the identical simulation, so system columns in the report
        differ exactly by how each system judges the same evidence.
        """
        specs: List[CampaignSpec] = []
        for node_count in self.node_counts:
            for variant in self.attack_variants:
                for loss_entry in self.loss_models:
                    loss_kind, loss_probability = _parse_loss(loss_entry)
                    for max_speed in self.max_speeds:
                        for liar_fraction in self.liar_fractions:
                            for repetition in range(self.repetitions):
                                scenario_id = (
                                    f"n{node_count:03d}-{variant}"
                                    f"-{loss_kind}{loss_probability:g}"
                                    f"-v{max_speed:g}-l{liar_fraction:g}"
                                    f"-r{repetition}"
                                )
                                seed = stable_seed(self.base_seed, scenario_id)
                                for system in self.systems:
                                    specs.append(CampaignSpec(
                                        run_id=f"{scenario_id}-{system}",
                                        seed=seed,
                                        node_count=node_count,
                                        liar_fraction=liar_fraction,
                                        loss_model=loss_kind,
                                        loss_probability=loss_probability,
                                        max_speed=max_speed,
                                        attack_variant=variant,
                                        system=system,
                                        repetition=repetition,
                                        area_size=self.area_size,
                                        radio_range=self.radio_range,
                                        warmup=self.warmup,
                                        attack_start=self.attack_start,
                                        cycles=self.cycles,
                                        cycle_length=self.cycle_length,
                                    ))
        specs.sort(key=lambda spec: spec.run_id)
        return specs


def _parse_loss(entry: str) -> Tuple[str, float]:
    """Parse a ``"kind:probability"`` loss-model axis entry."""
    kind, _, raw = entry.partition(":")
    kind = kind.strip() or "bernoulli"
    if kind not in ("bernoulli", "distance"):
        raise ValueError(f"unknown loss model {kind!r}")
    probability = float(raw) if raw else 0.0
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"loss probability {probability} outside [0, 1]")
    return kind, probability


@dataclass
class CampaignRunResult:
    """Aggregatable outcome of one campaign cell."""

    spec: CampaignSpec
    attacker_investigated: bool
    detection_cycles: int
    final_detect: Optional[float]
    attacker_trust: Optional[float]
    mean_liar_trust: Optional[float]
    mean_honest_trust: Optional[float]
    frames_sent: int
    frames_delivered: int
    events_processed: int
    flagged: bool = False

    def as_row(self) -> Dict[str, object]:
        """Flat row for tabular output (stable column order).

        Values are *raw* — rounding happens only at formatting time
        (:func:`repro.experiments.report.format_table`), so aggregate means
        are computed from unbiased per-run metrics and stored rows keep full
        precision.
        """
        spec = self.spec
        return {
            "run_id": spec.run_id,
            "system": spec.system,
            "nodes": spec.node_count,
            "variant": spec.attack_variant,
            "loss": f"{spec.loss_model}:{spec.loss_probability:g}",
            "speed": spec.max_speed,
            "liar_fraction": spec.liar_fraction,
            "seed": spec.seed,
            "investigated": self.attacker_investigated,
            "cycles": self.detection_cycles,
            # Stored as 0/1 so aggregates read as detection rates.
            "flagged": int(self.flagged),
            "final_detect": self.final_detect,
            "attacker_trust": self.attacker_trust,
            "liar_trust": self.mean_liar_trust,
            "honest_trust": self.mean_honest_trust,
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "events": self.events_processed,
        }


#: Columns averaged by :meth:`CampaignResult.aggregate`.
_VALUE_COLUMNS = ("final_detect", "attacker_trust", "liar_trust",
                  "honest_trust", "cycles", "flagged")


@dataclass
class CampaignResult:
    """All rows of a campaign, with reporting helpers.

    Either in-memory (``runs``) or backed by a :class:`ResultsStore`
    (``store`` plus the campaign's ``spec_hashes``); in the stored case the
    row stream comes straight off the database cursor, so aggregation over an
    arbitrarily large campaign holds only per-group accumulators in memory.
    Both representations format byte-identical reports: stored rows
    round-trip through JSON, which is ``repr``-exact for every value a row
    contains.
    """

    grid: Optional[CampaignGrid]
    runs: List[CampaignRunResult] = field(default_factory=list)
    store: Optional[ResultsStore] = None
    spec_hashes: Optional[List[str]] = None
    #: Cells actually executed by this invocation (run ids).
    executed_run_ids: List[str] = field(default_factory=list)
    #: Cells found already completed in the store and skipped (run ids).
    skipped_run_ids: List[str] = field(default_factory=list)

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        """Stream one row per run, ordered by run id."""
        if self.store is not None:
            yield from self.store.iter_rows(self.spec_hashes)
        else:
            for run in sorted(self.runs, key=lambda r: r.spec.run_id):
                yield run.as_row()

    def as_rows(self) -> List[Dict[str, object]]:
        """One row per run, sorted by run id."""
        return list(self.iter_rows())

    def aggregate(self, group_by: Sequence[str] = ("system", "variant", "liar_fraction")) -> List[Dict[str, object]]:
        """Mean detection/trust metrics per group, streamed from the rows.

        The default grouping includes ``system``: score and flag columns are
        only comparable within one system.
        """
        return aggregate_rows(self.iter_rows(), group_by, _VALUE_COLUMNS)

    def format_report(self) -> str:
        """Deterministic plain-text report (no timestamps, no wall-clock)."""
        # The per-run table needs every row in memory anyway, so materialise
        # once and feed the same list to the aggregates instead of re-scanning
        # (and re-JSON-decoding) the store three more times.
        rows = self.as_rows()
        # Every aggregate groups by system first: the score/flag columns mean
        # something different per system (detector trust vs. beta expectation
        # vs. watchdog miss ratio, five distinct decision rules), so a mean
        # across systems would average incomparable quantities.
        sections = [
            format_table(rows, title=f"Campaign — {len(rows)} runs"),
            format_table(aggregate_rows(rows, ("system", "liar_fraction"), _VALUE_COLUMNS),
                         title="Detector vs baselines — aggregate by system × liar fraction"),
            format_table(aggregate_rows(rows, ("system", "variant", "liar_fraction"), _VALUE_COLUMNS),
                         title="Aggregate by system × attack variant × liar fraction"),
            format_table(aggregate_rows(rows, ("system", "nodes", "loss"), _VALUE_COLUMNS),
                         title="Aggregate by system × node count × loss model"),
        ]
        return render_report(sections)


def _answers_to_bools(answers: Dict[str, float]) -> Dict[str, Optional[bool]]:
    """Convert ±1/0 investigation answers to the baselines' bool interface."""
    converted: Dict[str, Optional[bool]] = {}
    for responder, value in answers.items():
        if value > 0:
            converted[responder] = True
        elif value < 0:
            converted[responder] = False
        else:
            converted[responder] = None
    return converted


def execute_spec(spec: CampaignSpec) -> CampaignRunResult:
    """Run one grid cell end to end (the process-pool worker entry point).

    The simulation itself — scenario build, warm-up, detection cycles — is
    identical for every ``system``: the victim always runs the paper's
    cooperative investigation, which produces the per-round answer stream.
    For ``system="detector"`` the metrics come from the paper's trust-weighted
    aggregate and decision rule; for a baseline system the same answers are
    replayed through the baseline's ``process_round`` adapter (the
    :mod:`repro.experiments.ablation` methodology), so the comparison isolates
    the aggregation/decision layer on identical evidence.
    """
    scenario = build_manet_scenario(
        node_count=spec.node_count,
        liar_count=spec.liar_count(),
        seed=spec.seed,
        area_size=spec.area_size,
        radio_range=spec.radio_range,
        loss_probability=spec.loss_probability,
        attack_start=spec.attack_start,
        attack_variant=LinkSpoofingVariant(spec.attack_variant),
        loss_model=spec.loss_model,
        max_speed=spec.max_speed,
    )
    network = scenario.network
    victim = scenario.victim
    scenario.warm_up(spec.warmup)
    victim.detection_round()

    attacker_rounds = []
    for _ in range(spec.cycles):
        network.run(until=network.now + spec.cycle_length)
        for round_result in victim.detection_round():
            if round_result.suspect == scenario.attacker_id:
                attacker_rounds.append(round_result)

    common = dict(
        spec=spec,
        attacker_investigated=bool(attacker_rounds),
        detection_cycles=len(attacker_rounds),
        frames_sent=network.medium.stats.frames_sent,
        frames_delivered=network.medium.stats.frames_delivered,
        # Scalar-equivalent count: batching elides per-receiver events.
        events_processed=(network.simulator.processed_events
                          + network.medium.batched_deliveries_saved),
    )

    if spec.system != "detector":
        adapter = _BASELINE_FACTORIES[spec.system](scenario.victim_id)
        score: Optional[float] = None
        for round_result in attacker_rounds:
            score = adapter.process_round(
                scenario.attacker_id, _answers_to_bools(round_result.answers)
            )
        flagged = bool(attacker_rounds) and adapter.classify(scenario.attacker_id) == "intruder"
        # Baselines keep no per-responder trust — that is the paper's
        # differentiator — so the liar/honest trust columns stay empty.
        return CampaignRunResult(
            final_detect=None,
            attacker_trust=score,
            mean_liar_trust=None,
            mean_honest_trust=None,
            flagged=flagged,
            **common,
        )

    trust = victim.trust
    liar_trusts = [trust.trust_of(nid) for nid in sorted(scenario.liar_ids)]
    honest_ids = sorted(
        nid for nid in scenario.nodes
        if nid not in scenario.liar_ids
        and nid not in (scenario.victim_id, scenario.attacker_id)
    )
    honest_trusts = [trust.trust_of(nid) for nid in honest_ids]
    return CampaignRunResult(
        final_detect=(attacker_rounds[-1].decision.detect_value
                      if attacker_rounds else None),
        attacker_trust=trust.trust_of(scenario.attacker_id),
        mean_liar_trust=(sum(liar_trusts) / len(liar_trusts)) if liar_trusts else None,
        mean_honest_trust=(sum(honest_trusts) / len(honest_trusts)) if honest_trusts else None,
        flagged=(bool(attacker_rounds)
                 and attacker_rounds[-1].decision.outcome == DecisionOutcome.INTRUDER),
        **common,
    )


def run_campaign(
    grid: CampaignGrid,
    workers: Optional[int] = None,
    store: Optional[ResultsStore] = None,
    resume: bool = True,
    max_new_runs: Optional[int] = None,
) -> CampaignResult:
    """Execute every cell of ``grid`` and collect the results.

    ``workers`` > 1 fans the cells out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; anything else runs
    serially in-process.  Because each cell derives all randomness from its
    own stable seed, the result — and the formatted report — is identical
    whichever execution mode is used.

    With a ``store``, every completed cell is committed as soon as its worker
    returns; when ``resume`` is true (the default) cells whose content hash
    is already stored are skipped entirely, which is what lets a killed
    campaign pick up where it stopped.  ``max_new_runs`` bounds how many
    *missing* cells this invocation executes (budgeted/chunked execution; the
    returned report then covers only the cells completed so far).

    The fan-out itself is the experiment engine's shared executor
    (:func:`repro.experiments.engine.execute_pending_cells`): cells commit
    in completion order, so a kill mid-campaign loses only in-flight cells.
    """
    specs = grid.expand()
    hashes = [spec.content_hash() for spec in specs]

    completed = set()
    if store is not None and resume:
        completed = store.completed_hashes(hashes)
    pending = [(spec, digest) for spec, digest in zip(specs, hashes)
               if digest not in completed]
    skipped = [spec.run_id for spec, digest in zip(specs, hashes)
               if digest in completed]
    if max_new_runs is not None:
        pending = pending[:max_new_runs]

    runs: List[CampaignRunResult] = []

    def _finish(spec: CampaignSpec, digest: str, result: CampaignRunResult) -> None:
        if store is not None:
            store.record(spec, result.as_row(), spec_hash=digest)
        runs.append(result)

    execute_pending_cells(pending, execute_spec, _finish, workers=workers)

    return CampaignResult(
        grid=grid,
        runs=runs,
        store=store,
        spec_hashes=hashes if store is not None else None,
        executed_run_ids=sorted(spec.run_id for spec, _ in pending),
        skipped_run_ids=sorted(skipped),
    )


# ----------------------------------------------------------------- CLI
def _csv_ints(raw: str) -> List[int]:
    return [int(part) for part in raw.split(",") if part.strip()]


def _csv_floats(raw: str) -> List[float]:
    return [float(part) for part in raw.split(",") if part.strip()]


def _csv_strs(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.experiments.campaign`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.campaign",
        description="Run a declarative scenario campaign over the full MANET stack. "
                    "Use the 'report' subcommand (python -m repro.experiments.campaign "
                    "report --db FILE) to re-aggregate a stored campaign without "
                    "re-running anything.",
    )
    parser.add_argument("--node-counts", type=_csv_ints, default=[16],
                        metavar="N,N", help="comma-separated node counts (default: 16)")
    parser.add_argument("--liar-fractions", type=_csv_floats, default=[0.25],
                        metavar="F,F", help="liar fractions of the responders (default: 0.25)")
    parser.add_argument("--loss", type=_csv_strs, default=["bernoulli:0.0"],
                        metavar="KIND:P,...",
                        help="loss models, e.g. bernoulli:0.2,distance:0.8 (default: bernoulli:0.0)")
    parser.add_argument("--speeds", type=_csv_floats, default=[0.0],
                        metavar="V,V", help="random-waypoint max speeds; 0 = static (default: 0)")
    parser.add_argument("--variants", type=_csv_strs,
                        default=[str(LinkSpoofingVariant.FALSE_EXISTING_LINK)],
                        metavar="V,V",
                        help="link-spoofing variants: " + ", ".join(v.value for v in LinkSpoofingVariant))
    parser.add_argument("--systems", type=_csv_strs, default=["detector"],
                        metavar="S,S",
                        help="systems under test: " + ", ".join(SYSTEMS)
                             + " (default: detector)")
    parser.add_argument("--repetitions", type=int, default=1,
                        help="repetitions per cell with distinct stable seeds (default: 1)")
    parser.add_argument("--seed", type=int, default=7, help="campaign base seed (default: 7)")
    parser.add_argument("--warmup", type=float, default=35.0,
                        help="OLSR convergence warm-up in simulated seconds (default: 35)")
    parser.add_argument("--cycles", type=int, default=5,
                        help="detection cycles per run (default: 5)")
    parser.add_argument("--cycle-length", type=float, default=10.0,
                        help="simulated seconds per detection cycle (default: 10)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; 1 = serial (default: 1)")
    parser.add_argument("--db", type=str, default=None, metavar="FILE",
                        help="persist every completed cell to this SQLite results store")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells already completed in --db (resume a "
                             "killed campaign); without it stored cells are re-run")
    parser.add_argument("--max-new-runs", type=int, default=None, metavar="K",
                        help="execute at most K missing cells this invocation "
                             "(budgeted/chunked campaigns)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    """Parser of the ``report`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.campaign report",
        description="Re-aggregate a stored campaign from its SQLite results "
                    "store without re-running any simulation.",
    )
    parser.add_argument("--db", type=str, required=True, metavar="FILE",
                        help="SQLite results store written by a --db campaign run")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    return parser


def report_main(argv: Sequence[str]) -> int:
    """Entry point of the ``report`` subcommand."""
    args = build_report_parser().parse_args(argv)
    if not require_store_file(args.db):
        return 1
    store = open_store(args.db)
    if store is None:
        return 1
    with store:
        result = CampaignResult(grid=None, store=store)
        report = result.format_report()
    return emit_report(report, args.output)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "report":
        return report_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.db:
        parser.error("--resume requires --db")
    try:
        grid = CampaignGrid(
            node_counts=args.node_counts,
            liar_fractions=args.liar_fractions,
            loss_models=args.loss,
            max_speeds=args.speeds,
            attack_variants=args.variants,
            systems=args.systems,
            repetitions=args.repetitions,
            base_seed=args.seed,
            warmup=args.warmup,
            cycles=args.cycles,
            cycle_length=args.cycle_length,
        )
    except ValueError as error:
        parser.error(str(error))
    store = None
    if args.db:
        store = open_store(args.db)
        if store is None:
            return 1
    try:
        result = run_campaign(grid, workers=args.workers, store=store,
                              resume=args.resume, max_new_runs=args.max_new_runs)
        if result.skipped_run_ids:
            print(f"[resume] skipped {len(result.skipped_run_ids)} stored cells, "
                  f"executed {len(result.executed_run_ids)}", file=sys.stderr)
        report = result.format_report()
    finally:
        if store is not None:
            store.close()
    return emit_report(report, args.output)


if __name__ == "__main__":
    sys.exit(main())
