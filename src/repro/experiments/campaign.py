"""Scenario-campaign runner: declarative grids of full-stack MANET runs.

The paper's evaluation sweeps detection behaviour across many network
configurations.  This module makes such sweeps first-class: a
:class:`CampaignGrid` declares the axes to explore (node count × loss model ×
mobility × attack variant × liar fraction × repetitions), :meth:`CampaignGrid.expand`
turns the cross product into frozen, picklable :class:`CampaignSpec` cells
with per-run seeds derived stably via :func:`repro.seeding.stable_seed`
(never the process-salted ``hash``), and :func:`run_campaign` executes the
cells — serially or across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor` — before aggregating the
rows through :mod:`repro.experiments.report`.

Every cell runs the *full* simulator stack (OLSR over the spatial-indexed
wireless medium, the link-spoofing attack, colluding liars, the cooperative
investigation), so the campaign benefits directly from the medium's
O(neighbours) fast path.  Results are deterministic: the same grid and base
seed produce byte-identical reports regardless of worker count or invocation.

Command line
------------
``python -m repro.experiments.campaign`` exposes the runner::

    python -m repro.experiments.campaign \
        --node-counts 8,16 --liar-fractions 0.0,0.25 \
        --loss bernoulli:0.0,bernoulli:0.2 --speeds 0,5 \
        --variants false_existing_link --workers 4 --output report.txt

See ``--help`` for the full set of knobs (warm-up, cycles, seed, ...).
"""

from __future__ import annotations

import argparse
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.signatures import LinkSpoofingVariant
from repro.experiments.report import aggregate_rows, format_table, render_report
from repro.experiments.scenario import build_manet_scenario
from repro.seeding import stable_seed


@dataclass(frozen=True)
class CampaignSpec:
    """One fully-resolved grid cell (picklable; safe to ship to a worker)."""

    run_id: str
    seed: int
    node_count: int
    liar_fraction: float
    loss_model: str
    loss_probability: float
    max_speed: float
    attack_variant: str
    repetition: int = 0
    area_size: float = 800.0
    radio_range: float = 250.0
    warmup: float = 35.0
    attack_start: float = 40.0
    cycles: int = 5
    cycle_length: float = 10.0

    def liar_count(self) -> int:
        """Liar head-count implied by ``liar_fraction`` (responders only)."""
        responders = max(self.node_count - 2, 0)
        return min(responders, int(round(self.liar_fraction * responders)))


@dataclass
class CampaignGrid:
    """Declarative parameter grid, expanded into seeded :class:`CampaignSpec` cells.

    ``loss_models`` entries are ``"kind:probability"`` strings (for example
    ``"bernoulli:0.2"`` or ``"distance:0.8"``); ``attack_variants`` use the
    :class:`~repro.core.signatures.LinkSpoofingVariant` values.
    """

    node_counts: Sequence[int] = (16,)
    liar_fractions: Sequence[float] = (0.25,)
    loss_models: Sequence[str] = ("bernoulli:0.0",)
    max_speeds: Sequence[float] = (0.0,)
    attack_variants: Sequence[str] = (str(LinkSpoofingVariant.FALSE_EXISTING_LINK),)
    repetitions: int = 1
    base_seed: int = 7
    area_size: float = 800.0
    radio_range: float = 250.0
    warmup: float = 35.0
    attack_start: float = 40.0
    cycles: int = 5
    cycle_length: float = 10.0

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        for fraction in self.liar_fractions:
            if not 0.0 <= fraction < 1.0:
                raise ValueError("liar fractions must be in [0, 1)")
        for entry in self.loss_models:
            _parse_loss(entry)
        for variant in self.attack_variants:
            LinkSpoofingVariant(variant)

    def size(self) -> int:
        """Number of grid cells (runs) the campaign will execute."""
        return (len(self.node_counts) * len(self.liar_fractions)
                * len(self.loss_models) * len(self.max_speeds)
                * len(self.attack_variants) * self.repetitions)

    def expand(self) -> List[CampaignSpec]:
        """The full cross product as seeded, stably-identified specs."""
        specs: List[CampaignSpec] = []
        for node_count in self.node_counts:
            for variant in self.attack_variants:
                for loss_entry in self.loss_models:
                    loss_kind, loss_probability = _parse_loss(loss_entry)
                    for max_speed in self.max_speeds:
                        for liar_fraction in self.liar_fractions:
                            for repetition in range(self.repetitions):
                                run_id = (
                                    f"n{node_count:03d}-{variant}"
                                    f"-{loss_kind}{loss_probability:g}"
                                    f"-v{max_speed:g}-l{liar_fraction:g}"
                                    f"-r{repetition}"
                                )
                                specs.append(CampaignSpec(
                                    run_id=run_id,
                                    seed=stable_seed(self.base_seed, run_id),
                                    node_count=node_count,
                                    liar_fraction=liar_fraction,
                                    loss_model=loss_kind,
                                    loss_probability=loss_probability,
                                    max_speed=max_speed,
                                    attack_variant=variant,
                                    repetition=repetition,
                                    area_size=self.area_size,
                                    radio_range=self.radio_range,
                                    warmup=self.warmup,
                                    attack_start=self.attack_start,
                                    cycles=self.cycles,
                                    cycle_length=self.cycle_length,
                                ))
        specs.sort(key=lambda spec: spec.run_id)
        return specs


def _parse_loss(entry: str) -> Tuple[str, float]:
    """Parse a ``"kind:probability"`` loss-model axis entry."""
    kind, _, raw = entry.partition(":")
    kind = kind.strip() or "bernoulli"
    if kind not in ("bernoulli", "distance"):
        raise ValueError(f"unknown loss model {kind!r}")
    probability = float(raw) if raw else 0.0
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"loss probability {probability} outside [0, 1]")
    return kind, probability


@dataclass
class CampaignRunResult:
    """Aggregatable outcome of one campaign cell."""

    spec: CampaignSpec
    attacker_investigated: bool
    detection_cycles: int
    final_detect: Optional[float]
    attacker_trust: Optional[float]
    mean_liar_trust: Optional[float]
    mean_honest_trust: Optional[float]
    frames_sent: int
    frames_delivered: int
    events_processed: int

    def as_row(self) -> Dict[str, object]:
        """Flat row for tabular output (stable column order)."""
        spec = self.spec
        return {
            "run_id": spec.run_id,
            "nodes": spec.node_count,
            "variant": spec.attack_variant,
            "loss": f"{spec.loss_model}:{spec.loss_probability:g}",
            "speed": spec.max_speed,
            "liar_fraction": spec.liar_fraction,
            "seed": spec.seed,
            "investigated": self.attacker_investigated,
            "cycles": self.detection_cycles,
            "final_detect": _rounded(self.final_detect),
            "attacker_trust": _rounded(self.attacker_trust),
            "liar_trust": _rounded(self.mean_liar_trust),
            "honest_trust": _rounded(self.mean_honest_trust),
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "events": self.events_processed,
        }


def _rounded(value: Optional[float], digits: int = 4) -> Optional[float]:
    return None if value is None else round(value, digits)


@dataclass
class CampaignResult:
    """All rows of a campaign, with reporting helpers."""

    grid: Optional[CampaignGrid]
    runs: List[CampaignRunResult] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        """One row per run, sorted by run id."""
        return [run.as_row() for run in sorted(self.runs, key=lambda r: r.spec.run_id)]

    def aggregate(self, group_by: Sequence[str] = ("variant", "liar_fraction")) -> List[Dict[str, object]]:
        """Mean detection/trust metrics per group of the per-run rows."""
        return aggregate_rows(
            self.as_rows(), group_by,
            ("final_detect", "attacker_trust", "liar_trust", "honest_trust", "cycles"),
        )

    def format_report(self) -> str:
        """Deterministic plain-text report (no timestamps, no wall-clock)."""
        sections = [
            format_table(self.as_rows(), title=f"Campaign — {len(self.runs)} runs"),
            format_table(self.aggregate(("variant", "liar_fraction")),
                         title="Aggregate by attack variant × liar fraction"),
            format_table(self.aggregate(("nodes", "loss")),
                         title="Aggregate by node count × loss model"),
        ]
        return render_report(sections)


def execute_spec(spec: CampaignSpec) -> CampaignRunResult:
    """Run one grid cell end to end (the process-pool worker entry point)."""
    scenario = build_manet_scenario(
        node_count=spec.node_count,
        liar_count=spec.liar_count(),
        seed=spec.seed,
        area_size=spec.area_size,
        radio_range=spec.radio_range,
        loss_probability=spec.loss_probability,
        attack_start=spec.attack_start,
        attack_variant=LinkSpoofingVariant(spec.attack_variant),
        loss_model=spec.loss_model,
        max_speed=spec.max_speed,
    )
    network = scenario.network
    victim = scenario.victim
    scenario.warm_up(spec.warmup)
    victim.detection_round()

    attacker_rounds = []
    for _ in range(spec.cycles):
        network.run(until=network.now + spec.cycle_length)
        for round_result in victim.detection_round():
            if round_result.suspect == scenario.attacker_id:
                attacker_rounds.append(round_result)

    trust = victim.trust
    liar_trusts = [trust.trust_of(nid) for nid in sorted(scenario.liar_ids)]
    honest_ids = sorted(
        nid for nid in scenario.nodes
        if nid not in scenario.liar_ids
        and nid not in (scenario.victim_id, scenario.attacker_id)
    )
    honest_trusts = [trust.trust_of(nid) for nid in honest_ids]
    return CampaignRunResult(
        spec=spec,
        attacker_investigated=bool(attacker_rounds),
        detection_cycles=len(attacker_rounds),
        final_detect=(attacker_rounds[-1].decision.detect_value
                      if attacker_rounds else None),
        attacker_trust=trust.trust_of(scenario.attacker_id),
        mean_liar_trust=(sum(liar_trusts) / len(liar_trusts)) if liar_trusts else None,
        mean_honest_trust=(sum(honest_trusts) / len(honest_trusts)) if honest_trusts else None,
        frames_sent=network.medium.stats.frames_sent,
        frames_delivered=network.medium.stats.frames_delivered,
        events_processed=network.simulator.processed_events,
    )


def run_campaign(grid: CampaignGrid, workers: Optional[int] = None) -> CampaignResult:
    """Execute every cell of ``grid`` and collect the results.

    ``workers`` > 1 fans the cells out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; anything else runs
    serially in-process.  Because each cell derives all randomness from its
    own stable seed, the result — and the formatted report — is identical
    whichever execution mode is used.
    """
    specs = grid.expand()
    if workers is not None and workers > 1 and len(specs) > 1:
        max_workers = min(workers, len(specs))
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            runs = list(executor.map(execute_spec, specs))
    else:
        runs = [execute_spec(spec) for spec in specs]
    return CampaignResult(grid=grid, runs=runs)


# ----------------------------------------------------------------- CLI
def _csv_ints(raw: str) -> List[int]:
    return [int(part) for part in raw.split(",") if part.strip()]


def _csv_floats(raw: str) -> List[float]:
    return [float(part) for part in raw.split(",") if part.strip()]


def _csv_strs(raw: str) -> List[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.experiments.campaign`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.campaign",
        description="Run a declarative scenario campaign over the full MANET stack.",
    )
    parser.add_argument("--node-counts", type=_csv_ints, default=[16],
                        metavar="N,N", help="comma-separated node counts (default: 16)")
    parser.add_argument("--liar-fractions", type=_csv_floats, default=[0.25],
                        metavar="F,F", help="liar fractions of the responders (default: 0.25)")
    parser.add_argument("--loss", type=_csv_strs, default=["bernoulli:0.0"],
                        metavar="KIND:P,...",
                        help="loss models, e.g. bernoulli:0.2,distance:0.8 (default: bernoulli:0.0)")
    parser.add_argument("--speeds", type=_csv_floats, default=[0.0],
                        metavar="V,V", help="random-waypoint max speeds; 0 = static (default: 0)")
    parser.add_argument("--variants", type=_csv_strs,
                        default=[str(LinkSpoofingVariant.FALSE_EXISTING_LINK)],
                        metavar="V,V",
                        help="link-spoofing variants: " + ", ".join(v.value for v in LinkSpoofingVariant))
    parser.add_argument("--repetitions", type=int, default=1,
                        help="repetitions per cell with distinct stable seeds (default: 1)")
    parser.add_argument("--seed", type=int, default=7, help="campaign base seed (default: 7)")
    parser.add_argument("--warmup", type=float, default=35.0,
                        help="OLSR convergence warm-up in simulated seconds (default: 35)")
    parser.add_argument("--cycles", type=int, default=5,
                        help="detection cycles per run (default: 5)")
    parser.add_argument("--cycle-length", type=float, default=10.0,
                        help="simulated seconds per detection cycle (default: 10)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; 1 = serial (default: 1)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        grid = CampaignGrid(
            node_counts=args.node_counts,
            liar_fractions=args.liar_fractions,
            loss_models=args.loss,
            max_speeds=args.speeds,
            attack_variants=args.variants,
            repetitions=args.repetitions,
            base_seed=args.seed,
            warmup=args.warmup,
            cycles=args.cycles,
            cycle_length=args.cycle_length,
        )
    except ValueError as error:
        parser.error(str(error))
    result = run_campaign(grid, workers=args.workers)
    report = result.format_report()
    print(report)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
        except OSError as error:
            print(f"error: cannot write report to {args.output}: {error}",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
