"""Mobility-impact experiment (the paper's stated future work).

Section VII announces "more experiences ... to evaluate the impact of mobility
on trustworthiness evaluation".  This module provides that experiment: the
full-stack MANET scenario is run with random-waypoint mobility at increasing
speeds, and the experiment measures how node movement degrades the
investigation (unreachable responders, missing answers) and how the detection
aggregate and the attacker's trust respond.

The sweep executes on the engine's ``netsim`` backend
(:func:`repro.experiments.backends.run_netsim_cell` over
:func:`repro.experiments.scenario.build_manet_scenario`) — the same substrate
the scenario campaign uses — rather than a private scenario builder, so loss
models, attack variants and every other campaign axis compose with the speed
sweep for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.experiments.engine import ExperimentDefinition, ExperimentSpec, register
from repro.experiments.rounds import ExperimentResult


@dataclass
class MobilityRunResult:
    """Outcome of one mobility configuration."""

    max_speed: float
    detection_cycles: int
    attacker_investigated: bool
    final_detect: Optional[float]
    final_attacker_trust: Optional[float]
    unreached_ratio: float
    missing_answer_ratio: float

    def as_dict(self) -> Dict[str, object]:
        """Flat row for tabular output (raw values; the report formatter
        owns rounding)."""
        return {
            "max_speed_m_s": self.max_speed,
            "cycles": self.detection_cycles,
            "attacker_investigated": self.attacker_investigated,
            "final_detect": self.final_detect,
            "attacker_trust": self.final_attacker_trust,
            "unreached_ratio": self.unreached_ratio,
            "missing_answer_ratio": self.missing_answer_ratio,
        }


@dataclass
class MobilityStudyResult:
    """All rows of the mobility sweep."""

    runs: List[MobilityRunResult] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        """One row per mobility configuration."""
        return [run.as_dict() for run in self.runs]

    def detection_degrades_with_speed(self) -> bool:
        """Whether missing-answer ratios are (weakly) increasing with speed."""
        ratios = [run.missing_answer_ratio for run in self.runs]
        return all(b >= a - 0.05 for a, b in zip(ratios, ratios[1:]))


def mobility_run(max_speed: float, result: ExperimentResult) -> MobilityRunResult:
    """Summarise one netsim run into its mobility row.

    ``result`` is the backend's record stream: one record per detection
    cycle, with the attacker's answers and the count of unreachable
    responders attached to the cycles where the attacker was investigated.
    """
    attacker_records = [r for r in result.rounds if r.detect_value is not None]
    total_answers = sum(len(r.answers) for r in attacker_records)
    missing_answers = sum(
        1 for r in attacker_records for v in r.answers.values() if v == 0.0)
    unreached = sum(r.unreached for r in attacker_records)

    last_snapshot = result.rounds[-1].trust_snapshot if result.rounds else {}
    final_trust = last_snapshot.get(result.attacker,
                                    result.config.trust.default_trust)
    return MobilityRunResult(
        max_speed=max_speed,
        detection_cycles=len(attacker_records),
        attacker_investigated=bool(attacker_records),
        final_detect=(attacker_records[-1].detect_value
                      if attacker_records else None),
        final_attacker_trust=final_trust,
        unreached_ratio=(unreached / total_answers) if total_answers else 0.0,
        missing_answer_ratio=(missing_answers / total_answers) if total_answers else 0.0,
    )


def run_mobility_study(
    speeds: Sequence[float] = (0.0, 2.0, 5.0, 10.0),
    seed: int = 23,
    node_count: int = 16,
    liar_count: int = 4,
    area_size: float = 800.0,
    radio_range: float = 250.0,
    warmup: float = 35.0,
    attack_start: float = 40.0,
    cycles: int = 8,
    cycle_length: float = 10.0,
) -> MobilityStudyResult:
    """Run the mobility sweep and return one row per maximum speed."""
    from repro.experiments.backends import run_netsim_cell

    result = MobilityStudyResult()
    for max_speed in speeds:
        # Fixed initial trust: the sweep measures mobility's impact, and
        # random per-node starting values would add variance unrelated to
        # the speed axis.
        config = ScenarioConfig(total_nodes=node_count, liar_count=liar_count,
                                seed=seed, random_initial_trust=False)
        run = run_netsim_cell(config, {
            "max_speed": max_speed,
            "area_size": area_size,
            "radio_range": radio_range,
            "warmup": warmup,
            "attack_start": attack_start,
            "cycles": cycles,
            "cycle_length": cycle_length,
        })
        result.runs.append(mobility_run(max_speed, run))
    return result


def _mobility_rows(spec: ExperimentSpec,
                   result: ExperimentResult) -> List[Dict[str, object]]:
    return [mobility_run(float(spec.param("max_speed", 0.0)), result).as_dict()]


#: Engine registration: the random-waypoint speed sweep on the full MANET
#: stack (netsim default; the oracle backend has no motion, so running this
#: spec there degenerates to identical static cells).
MOBILITY_EXPERIMENT = register(ExperimentDefinition(
    name="mobility",
    description="impact of random-waypoint mobility on the detection (Sec. VII)",
    rows_from_result=_mobility_rows,
    axes={"max_speed": (0.0, 2.0, 5.0, 10.0)},
    fixed={
        "total_nodes": 16,
        "liar_count": 4,
        "area_size": 800.0,
        "radio_range": 250.0,
        "warmup": 35.0,
        "attack_start": 40.0,
        "cycles": 8,
        "cycle_length": 10.0,
        "random_initial_trust": False,
    },
    default_backend="netsim",
    base_seed=23,
    report_title="Mobility — investigation degradation vs node speed",
))
