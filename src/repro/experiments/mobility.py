"""Mobility-impact experiment (the paper's stated future work).

Section VII announces "more experiences ... to evaluate the impact of mobility
on trustworthiness evaluation".  This module provides that experiment: the
full-stack MANET scenario is run with random-waypoint mobility at increasing
speeds, and the experiment measures how node movement degrades the
investigation (unreachable responders, missing answers) and how the detection
aggregate and the attacker's trust respond.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.attacks.liar import LiarBehavior
from repro.attacks.link_spoofing import LinkSpoofingAttack
from repro.attacks.scenario import AttackScenario
from repro.core.detector_node import DetectionConfig, DetectorNode
from repro.core.signatures import LinkSpoofingVariant
from repro.netsim.engine import Simulator
from repro.netsim.medium import UnitDiskPropagation, WirelessMedium
from repro.netsim.mobility import RandomWaypointMobility, UniformRandomPlacement
from repro.netsim.network import Network
from repro.olsr.constants import Willingness
from repro.olsr.node import OlsrConfig
from repro.seeding import stable_digest


@dataclass
class MobilityRunResult:
    """Outcome of one mobility configuration."""

    max_speed: float
    detection_cycles: int
    attacker_investigated: bool
    final_detect: Optional[float]
    final_attacker_trust: Optional[float]
    unreached_ratio: float
    missing_answer_ratio: float

    def as_dict(self) -> Dict[str, object]:
        """Flat row for tabular output."""
        return {
            "max_speed_m_s": self.max_speed,
            "cycles": self.detection_cycles,
            "attacker_investigated": self.attacker_investigated,
            "final_detect": round(self.final_detect, 3) if self.final_detect is not None else None,
            "attacker_trust": (
                round(self.final_attacker_trust, 3)
                if self.final_attacker_trust is not None else None
            ),
            "unreached_ratio": round(self.unreached_ratio, 3),
            "missing_answer_ratio": round(self.missing_answer_ratio, 3),
        }


@dataclass
class MobilityStudyResult:
    """All rows of the mobility sweep."""

    runs: List[MobilityRunResult] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        """One row per mobility configuration."""
        return [run.as_dict() for run in self.runs]

    def detection_degrades_with_speed(self) -> bool:
        """Whether missing-answer ratios are (weakly) increasing with speed."""
        ratios = [run.missing_answer_ratio for run in self.runs]
        return all(b >= a - 0.05 for a, b in zip(ratios, ratios[1:]))


def _build_mobile_scenario(max_speed: float, seed: int, node_count: int,
                           liar_count: int, area_size: float,
                           radio_range: float, attack_start: float):
    simulator = Simulator()
    rng = random.Random(seed)
    medium = WirelessMedium(
        simulator,
        propagation=UnitDiskPropagation(radio_range=radio_range),
    )
    if max_speed > 0:
        mobility = RandomWaypointMobility(
            width=area_size, height=area_size,
            min_speed=max(0.5, max_speed / 4.0), max_speed=max_speed,
            pause_time=2.0, rng=random.Random(seed + 2),
        )
    else:
        mobility = UniformRandomPlacement(width=area_size, height=area_size,
                                          rng=random.Random(seed + 2))
    network = Network(simulator=simulator, medium=medium, mobility=mobility, seed=seed)
    node_ids = [f"n{i:02d}" for i in range(node_count)]
    network.add_nodes(node_ids)

    attacker_id = node_ids[1]
    nodes: Dict[str, DetectorNode] = {}
    for node_id in node_ids:
        willingness = Willingness.WILL_HIGH if node_id == attacker_id else Willingness.WILL_DEFAULT
        nodes[node_id] = DetectorNode(
            node_id, network,
            olsr_config=OlsrConfig(willingness=willingness),
            detection_config=DetectionConfig(),
            seed=rng.randint(0, 2 ** 31),
        )

    attacker_neighbors = network.neighbors_of(attacker_id)
    victim_id = (max(attacker_neighbors, key=lambda n: (len(network.neighbors_of(n)), n))
                 if attacker_neighbors else node_ids[0])
    non_neighbors = [n for n in node_ids
                     if n not in attacker_neighbors and n not in (attacker_id, victim_id)]
    rng.shuffle(non_neighbors)
    spoof_targets = non_neighbors[: max(3, node_count // 3)] or ["phantom"]

    scenario = AttackScenario(name=f"mobility-{max_speed}")
    attack = LinkSpoofingAttack(LinkSpoofingVariant.FALSE_EXISTING_LINK, spoof_targets)
    attack.schedule.start_time = attack_start
    scenario.add(attacker_id, attack)
    candidates = [n for n in node_ids if n not in (attacker_id, victim_id)]
    rng.shuffle(candidates)
    for liar_id in candidates[:liar_count]:
        scenario.add(liar_id, LiarBehavior(protected_suspects={attacker_id},
                                           rng=random.Random(seed + stable_digest(liar_id) % 997)))
    scenario.install_all(nodes)

    for node in nodes.values():
        node.start()
        node.bind_default_transport(nodes)
    return network, nodes, victim_id, attacker_id


def run_mobility_study(
    speeds: Sequence[float] = (0.0, 2.0, 5.0, 10.0),
    seed: int = 23,
    node_count: int = 16,
    liar_count: int = 4,
    area_size: float = 800.0,
    radio_range: float = 250.0,
    warmup: float = 35.0,
    attack_start: float = 40.0,
    cycles: int = 8,
    cycle_length: float = 10.0,
) -> MobilityStudyResult:
    """Run the mobility sweep and return one row per maximum speed."""
    result = MobilityStudyResult()
    for max_speed in speeds:
        network, nodes, victim_id, attacker_id = _build_mobile_scenario(
            max_speed, seed, node_count, liar_count, area_size, radio_range, attack_start)
        victim = nodes[victim_id]
        network.run(until=warmup)
        victim.detection_round()

        attacker_rounds = []
        total_answers = 0
        missing_answers = 0
        unreached = 0
        for _ in range(cycles):
            network.run(until=network.now + cycle_length)
            for round_result in victim.detection_round():
                if round_result.suspect != attacker_id:
                    continue
                attacker_rounds.append(round_result)
                total_answers += len(round_result.answers)
                missing_answers += sum(1 for v in round_result.answers.values() if v == 0.0)
                unreached += len(round_result.responders_unreached)

        final_detect = attacker_rounds[-1].decision.detect_value if attacker_rounds else None
        result.runs.append(
            MobilityRunResult(
                max_speed=max_speed,
                detection_cycles=len(attacker_rounds),
                attacker_investigated=bool(attacker_rounds),
                final_detect=final_detect,
                final_attacker_trust=victim.trust.trust_of(attacker_id),
                unreached_ratio=(unreached / total_answers) if total_answers else 0.0,
                missing_answer_ratio=(missing_answers / total_answers) if total_answers else 0.0,
            )
        )
    return result
