"""Figure 1 — Trustworthiness.

The paper's Figure 1 plots, for the node under attack, the trust value it
assigns to every other node across 25 investigation rounds while the link
spoofing attack (and the lying) persists.  The expected shape:

* the trust of liars decreases, largely and monotonically, regardless of
  their initial trust value (the "defensive" behaviour);
* well-behaving nodes gain trust, but only a little over 25 rounds when they
  start from a low initial value;
* the attacker's trust collapses as the investigation keeps concluding that
  the advertised link is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.config import ScenarioConfig, paper_default_config
from repro.experiments.engine import ExperimentDefinition, ExperimentSpec, register
from repro.experiments.rounds import ExperimentResult, RoundBasedExperiment
from repro.metrics.trust_metrics import TrustTrajectoryReport, total_change


@dataclass
class Figure1Result:
    """Data behind Figure 1."""

    experiment: ExperimentResult
    trajectories: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def liars(self) -> set:
        """Liar node ids."""
        return self.experiment.liars

    @property
    def honest(self) -> set:
        """Honest responder node ids."""
        return self.experiment.honest_responders

    @property
    def attacker(self) -> str:
        """The link-spoofing attacker id."""
        return self.experiment.attacker

    def trajectory_report(self) -> TrustTrajectoryReport:
        """Wrap the trajectories in the metrics report object."""
        return TrustTrajectoryReport(
            observer=self.experiment.investigator,
            trajectories={k: list(v) for k, v in self.trajectories.items()},
            liars=set(self.liars),
            honest=set(self.honest),
            attacker=self.attacker,
        )

    def rows(self) -> List[Dict[str, object]]:
        """Tabular form: one row per node with initial/final trust and change.

        Values are *raw* — rounding happens only in the report formatter, so
        aggregations over these rows average unbiased per-node metrics.
        """
        rows = []
        for node in sorted(self.trajectories):
            trajectory = self.trajectories[node]
            rows.append(
                {
                    "node": node,
                    "role": self.experiment.role_of(node),
                    "initial_trust": self.experiment.initial_trust.get(node, 0.0),
                    "final_trust": trajectory[-1] if trajectory else None,
                    "change": total_change(trajectory),
                }
            )
        return rows


def run_figure1(config: Optional[ScenarioConfig] = None) -> Figure1Result:
    """Run the Figure 1 experiment (attack persists for the whole run)."""
    config = config or paper_default_config()
    if config.attack_stop_round is not None:
        config = config.with_overrides(attack_stop_round=None)
    experiment = RoundBasedExperiment(config)
    result = experiment.run()
    return Figure1Result(experiment=result, trajectories=result.trust_trajectories())


def _figure1_rows(spec: ExperimentSpec,
                  result: ExperimentResult) -> List[Dict[str, object]]:
    figure = Figure1Result(experiment=result,
                           trajectories=result.trust_trajectories())
    return figure.rows()


#: Engine registration: the same scenario the legacy driver runs, expressed
#: as a declarative spec (single cell; promote any fixed parameter — e.g.
#: ``liar_count`` — to an axis at run time to sweep it).
FIGURE1_EXPERIMENT = register(ExperimentDefinition(
    name="figure1",
    description="trust trajectories under a persistent attack (paper Fig. 1)",
    rows_from_result=_figure1_rows,
    fixed={"attack_stop_round": None},
    report_title="Figure 1 — trustworthiness per node",
))
