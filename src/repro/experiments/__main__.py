"""Unified experiment CLI: ``python -m repro.experiments``.

One entry point for the whole evaluation harness, replacing the campaign-only
``python -m repro.experiments.campaign`` (which keeps working for
compatibility)::

    python -m repro.experiments list
    python -m repro.experiments run figure3 --workers 4
    python -m repro.experiments run confidence_sweep --db sweep.sqlite --resume
    python -m repro.experiments run figure1 --backend netsim --param cycles=6
    python -m repro.experiments run figure3 --axis "liar_ratio=6.7%,50%"
    python -m repro.experiments run figure1 --backend netsim --axis profile=paper-static,rpgm
    python -m repro.experiments campaign --node-counts 8,16 --workers 4
    python -m repro.experiments report --db sweep.sqlite --experiment confidence_sweep
    python -m repro.experiments validate --seeds 25
    python -m repro.experiments fabric dispatch figure3 --queue fabric.sqlite
    python -m repro.experiments fabric work --queue fabric.sqlite --group a --shard-dir shards/
    python -m repro.experiments fabric merge --into merged.sqlite --queue fabric.sqlite shards/shard-*.sqlite
    python -m repro.experiments fabric serve --db merged.sqlite --port 8080
    python -m repro.experiments report --url http://127.0.0.1:8080 --experiment figure3

``run`` executes any registered experiment through the shared engine
(:mod:`repro.experiments.engine`): parallel fan-out (``--workers``), durable
resume (``--db``/``--resume``), backend selection (``--backend
oracle|netsim``) and arbitrary axis/parameter overrides (``--axis
name=v1,v2``, ``--param name=value`` — including the scenario-profile axis
``profile``, see :mod:`repro.scenarios`).  ``campaign`` forwards to the
scenario-campaign CLI unchanged; ``report`` re-aggregates a stored run
without executing anything; ``validate`` fuzzes seeded scenario profiles
through the invariant checkers and the oracle↔netsim differential harness
(:mod:`repro.validation`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments._cli import (
    emit_report,
    open_store,
    parse_axis,
    parse_param,
    parse_value,
    require_store_file,
)
from repro.experiments.engine import (
    BACKENDS,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.report import format_table

_PROG = "python -m repro.experiments"

# Historic aliases (tests and external scripts import these names from here).
_parse_value = parse_value
_parse_axis = parse_axis
_parse_param = parse_param


def build_run_parser() -> argparse.ArgumentParser:
    """Parser of the ``run`` subcommand."""
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} run",
        description="Run a registered experiment through the shared engine.",
    )
    parser.add_argument("experiment", help="experiment name (see 'list')")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="execution backend (default: the experiment's own)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; 1 = serial (default: 1)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment's base seed")
    parser.add_argument("--axis", type=_parse_axis, action="append", default=[],
                        metavar="NAME=V1,V2",
                        help="override (or add) a swept axis; repeatable")
    parser.add_argument("--param", type=_parse_param, action="append", default=[],
                        metavar="NAME=VALUE",
                        help="override a fixed parameter; repeatable")
    parser.add_argument("--db", type=str, default=None, metavar="FILE",
                        help="persist every completed cell to this SQLite results store")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells already completed in --db; without it "
                             "stored cells are re-run")
    parser.add_argument("--max-new-runs", type=int, default=None, metavar="K",
                        help="execute at most K missing cells this invocation")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--profile", nargs="?", const="-", default=None,
                        metavar="FILE", dest="cprofile",
                        help="run under cProfile: dump pstats data to FILE, "
                             "or print the top functions by cumulative time "
                             "to stderr when FILE is omitted (place the flag "
                             "after the experiment name)")
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    """Parser of the ``report`` subcommand."""
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} report",
        description="Re-aggregate a stored run from its SQLite results store "
                    "without executing anything.  With --experiment the "
                    "experiment's own report is rendered (byte-identical to "
                    "the live run); without it every stored row is tabulated. "
                    "With --url the report is fetched from a running fabric "
                    "results service instead of a local store.",
    )
    parser.add_argument("--db", type=str, default=None, metavar="FILE",
                        help="SQLite results store written by a --db run")
    parser.add_argument("--url", type=str, default=None, metavar="URL",
                        help="base URL of a fabric results service "
                             "(python -m repro.experiments fabric serve)")
    parser.add_argument("--experiment", type=str, default=None,
                        help="render this experiment's report from the store")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="backend the stored run used (with --experiment)")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed the stored run used (with --experiment)")
    parser.add_argument("--axis", type=_parse_axis, action="append", default=[],
                        metavar="NAME=V1,V2",
                        help="axis overrides the stored run used (with --experiment)")
    parser.add_argument("--param", type=_parse_param, action="append", default=[],
                        metavar="NAME=VALUE",
                        help="parameter overrides the stored run used (with --experiment)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    return parser


def list_main(argv: Sequence[str]) -> int:
    """Entry point of the ``list`` subcommand."""
    argparse.ArgumentParser(
        prog=f"{_PROG} list",
        description="List the registered experiments and scenario profiles.",
    ).parse_args(argv)
    rows = []
    for definition in list_experiments():
        axes = ", ".join(
            f"{name}[{len(values)}]" for name, values in definition.axes.items()
        ) or "-"
        rows.append({
            "experiment": definition.name,
            "cells": len(definition.expand()),
            "backend": definition.default_backend,
            "axes": axes,
            "description": definition.description,
        })
    print(format_table(rows, title="Registered experiments"))

    from repro.scenarios import list_profiles

    profile_rows = [
        {
            "profile": profile.name,
            "kind": profile.kind,
            "differential": profile.differential,
            "description": profile.description,
        }
        for profile in list_profiles()
    ]
    print()
    print(format_table(
        profile_rows,
        title="Scenario profiles (sweep with --axis profile=..., "
              "fuzz with 'validate')",
    ))

    from repro.routing import list_protocols

    protocol_rows = [
        {
            "protocol": info.name,
            "description": info.description,
        }
        for info in list_protocols()
    ]
    print()
    print(format_table(
        protocol_rows,
        title="Routing protocols (sweep with --axis protocol=..., "
              "fuzz with 'validate --protocols ...')",
    ))
    return 0


def run_main(argv: Sequence[str]) -> int:
    """Entry point of the ``run`` subcommand."""
    parser = build_run_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.db:
        parser.error("--resume requires --db")
    try:
        get_experiment(args.experiment)
    except KeyError as error:
        parser.error(str(error.args[0]))

    store = None
    if args.db:
        store = open_store(args.db)
        if store is None:
            return 1
    profiler = None
    if args.cprofile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        result = run_experiment(
            args.experiment,
            backend=args.backend,
            workers=args.workers,
            store=store,
            resume=args.resume,
            max_new_runs=args.max_new_runs,
            base_seed=args.seed,
            axes=dict(args.axis) or None,
            params=dict(args.param) or None,
        )
        if result.skipped_run_ids:
            print(f"[resume] skipped {len(result.skipped_run_ids)} stored cells, "
                  f"executed {len(result.executed_run_ids)}", file=sys.stderr)
        report = result.format_report()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The engine already cancelled queued cells and committed every
        # completed one (see execute_pending_cells), so the store is clean.
        if args.db:
            print(f"\ninterrupted: completed cells are committed to {args.db}; "
                  f"re-run with --resume to finish the campaign", file=sys.stderr)
        else:
            print("\ninterrupted: no --db store, completed cells were "
                  "discarded", file=sys.stderr)
        return 130
    finally:
        if profiler is not None:
            profiler.disable()
            _emit_profile(profiler, args.cprofile)
        if store is not None:
            store.close()
    return emit_report(report, args.output)


def _emit_profile(profiler, destination: str) -> None:
    """Write collected cProfile data: pstats dump or stderr summary."""
    import pstats

    if destination == "-":
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
    else:
        profiler.dump_stats(destination)
        print(f"[profile] pstats data written to {destination} "
              f"(inspect with python -m pstats)", file=sys.stderr)


def _report_from_url(args, parser) -> int:
    """The ``report --url`` path: fetch from a fabric results service."""
    from repro.fabric import client
    from urllib.error import URLError

    try:
        if args.experiment:
            fetched = client.fetch_report(args.url, args.experiment)
            if fetched.status != 200:
                client._raise_for_status(fetched)
            report = fetched.text()
        else:
            experiments = client.fetch_experiments(args.url)
            report = format_table(experiments,
                                  title=f"Served experiments — {args.url}")
    except (URLError, OSError, RuntimeError) as error:
        print(f"error: cannot fetch report from {args.url}: {error}",
              file=sys.stderr)
        return 1
    return emit_report(report, args.output)


def report_main(argv: Sequence[str]) -> int:
    """Entry point of the ``report`` subcommand."""
    parser = build_report_parser()
    args = parser.parse_args(argv)
    if bool(args.db) == bool(args.url):
        parser.error("exactly one of --db and --url is required")
    if args.url:
        return _report_from_url(args, parser)
    if not require_store_file(args.db):
        return 1
    store = open_store(args.db)
    if store is None:
        return 1
    with store:
        if store.count_rows() == 0:
            # An empty table would render and exit 0 — indistinguishable
            # from a successful report of a completed run.
            print(f"error: results store {args.db} holds no completed cells "
                  f"— nothing to report (was the campaign run with --db, "
                  f"or the shards merged?)", file=sys.stderr)
            return 1
        if args.experiment:
            try:
                get_experiment(args.experiment)
            except KeyError as error:
                parser.error(str(error.args[0]))
            # max_new_runs=0: expand + hash + stream from the store, never run.
            try:
                result = run_experiment(
                    args.experiment,
                    backend=args.backend,
                    store=store,
                    resume=True,
                    max_new_runs=0,
                    base_seed=args.seed,
                    axes=dict(args.axis) or None,
                    params=dict(args.param) or None,
                )
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            report = result.format_report()
            if not result.rows():
                print(f"error: results store {args.db} holds no completed "
                      f"cells of experiment {args.experiment!r} (check the "
                      f"--axis/--param/--seed flags match the stored run)",
                      file=sys.stderr)
                return 1
        else:
            rows = list(store.iter_rows())
            report = format_table(rows, title=f"Stored rows — {args.db}")
    return emit_report(report, args.output)


def build_validate_parser() -> argparse.ArgumentParser:
    """Parser of the ``validate`` subcommand."""
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} validate",
        description="Fuzz seeded scenario profiles through the structural "
                    "invariant checkers and the oracle<->netsim differential "
                    "harness; fails (exit 1) on any violation, reporting a "
                    "minimized CLI reproducer per issue.",
    )
    parser.add_argument("--seeds", type=int, default=25, metavar="N",
                        help="number of fuzzed scenarios (default: 25)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="corpus base seed (default: 0); a corpus is a "
                             "pure function of (base seed, index)")
    parser.add_argument("--profiles", type=str, default=None, metavar="A,B",
                        help="restrict fuzzing to these scenario profiles")
    parser.add_argument("--protocols", type=str, default=None, metavar="A,B",
                        help="fuzz the routing backend as an extra axis "
                             "(e.g. olsr,aodv,geo); non-OLSR samples are "
                             "invariant-checked only")
    parser.add_argument("--medium", choices=("batch", "scalar", "both"),
                        default="batch",
                        help="wireless-medium delivery path to audit: the "
                             "batched broadcast fast path (default), the "
                             "per-receiver scalar path, or both per sample")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report raw failing scenarios without shrinking them")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    return parser


def validate_main(argv: Sequence[str]) -> int:
    """Entry point of the ``validate`` subcommand."""
    parser = build_validate_parser()
    args = parser.parse_args(argv)
    if args.seeds <= 0:
        parser.error("--seeds must be positive")
    from repro.routing import get_protocol
    from repro.scenarios import get_profile
    from repro.validation import validate_corpus

    profiles = None
    if args.profiles:
        profiles = [name.strip() for name in args.profiles.split(",") if name.strip()]
        # Usage errors (exit 2) end here: anything raised later comes from
        # the campaign itself and must surface as a failure, not bad usage.
        try:
            for name in profiles:
                get_profile(name)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    protocols = None
    if args.protocols:
        protocols = [name.strip() for name in args.protocols.split(",") if name.strip()]
        try:
            for name in protocols:
                get_protocol(name)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    report = validate_corpus(
        args.seeds,
        base_seed=args.base_seed,
        profiles=profiles,
        minimize=not args.no_minimize,
        protocols=protocols,
        medium=args.medium,
    )
    emit_report(report.format_report(), args.output)
    return 0 if report.ok else 1


def build_attack_search_parser() -> argparse.ArgumentParser:
    """Parser of the ``attack-search`` subcommand."""
    parser = argparse.ArgumentParser(
        prog=f"{_PROG} attack-search",
        description="Hunt the least-detectable attack configuration with a "
                    "(1+lambda) evolutionary search over fuzzed corpora "
                    "(repro.attacks.search); the winner is shrunk to a "
                    "minimal reproducer CLI line.",
    )
    parser.add_argument("--corpus", type=int, default=4, metavar="N",
                        help="static fuzzer samples seeding the search "
                             "(default: 4)")
    parser.add_argument("--generations", type=int, default=6, metavar="G",
                        help="search generations (default: 6)")
    parser.add_argument("--children", type=int, default=4, metavar="L",
                        help="mutated children per generation (default: 4)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="search base seed (default: 0); the whole search "
                             "is a pure function of its arguments")
    parser.add_argument("--rounds", type=int, default=20, metavar="R",
                        help="evaluation rounds per configuration (default: 20)")
    parser.add_argument("--backend", choices=BACKENDS, default="oracle",
                        help="evaluation backend (default: oracle)")
    parser.add_argument("--profiles", type=str, default=None, metavar="A,B",
                        help="restrict the seeding corpus to these scenario "
                             "profiles")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report the raw winner without shrinking it")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the report to this file")
    return parser


def attack_search_main(argv: Sequence[str]) -> int:
    """Entry point of the ``attack-search`` subcommand."""
    parser = build_attack_search_parser()
    args = parser.parse_args(argv)
    if args.corpus <= 0:
        parser.error("--corpus must be positive")
    if args.generations < 0 or args.children < 0:
        parser.error("--generations and --children must be non-negative")
    from repro.attacks.search import search_attack_configs
    from repro.scenarios import get_profile

    profiles = None
    if args.profiles:
        profiles = [name.strip() for name in args.profiles.split(",") if name.strip()]
        try:
            for name in profiles:
                get_profile(name)
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    result = search_attack_configs(
        corpus_size=args.corpus,
        generations=args.generations,
        children=args.children,
        base_seed=args.base_seed,
        rounds=args.rounds,
        backend=args.backend,
        profiles=profiles,
        minimize=not args.no_minimize,
    )
    return emit_report(result.format_report(), args.output)


_USAGE = f"""usage: {_PROG} <command> ...

commands:
  list        list the registered experiments and scenario profiles
  run         run one experiment (parallel fan-out, resume, backend swap)
  campaign    run a declarative scenario campaign (full MANET grid)
  report      re-aggregate a stored run/campaign (--db) or fetch it from a
              fabric results service (--url)
  validate    fuzz scenario profiles through invariant + differential checks
  attack-search
              evolutionary search for the least-detectable attack config
  fabric      distributed campaigns: dispatch | work | merge | serve | status

run '{_PROG} <command> --help' for the command's options."""


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE)
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "list":
        return list_main(rest)
    if command == "run":
        return run_main(rest)
    if command == "campaign":
        from repro.experiments import campaign

        return campaign.main(rest)
    if command == "report":
        return report_main(rest)
    if command == "validate":
        return validate_main(rest)
    if command == "attack-search":
        return attack_search_main(rest)
    if command == "fabric":
        from repro.fabric.cli import main as fabric_main

        return fabric_main(rest)
    print(f"error: unknown command {command!r}\n\n{_USAGE}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
