"""Evidence-gravity ablation (the paper's stated future work).

Section VII announces "using different weighting of the evidences according
to their gravity/reputability".  The trust system already supports per-kind
gravity weights (Property 2); this experiment quantifies their effect on the
paper's scenario by sweeping the harmful/beneficial weighting asymmetry and
reporting, for each configuration:

* how many rounds the investigation needs before the attacker is flagged,
* the final liar trust (how hard colluders are punished), and
* the final honest trust (the collateral damage of an over-aggressive
  weighting, since honest nodes occasionally end up on the minority side).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.decision import DecisionOutcome
from repro.experiments.config import ScenarioConfig, paper_default_config
from repro.experiments.engine import ExperimentDefinition, ExperimentSpec, register
from repro.experiments.rounds import ExperimentResult, RoundBasedExperiment


@dataclass
class GravityRow:
    """Outcome of one (alpha_harmful, alpha_beneficial) configuration."""

    alpha_harmful: float
    alpha_beneficial: float
    asymmetry: float
    detection_round: Optional[int]
    final_detect: float
    mean_final_liar_trust: float
    mean_final_honest_trust: float
    honest_collateral: float

    def as_dict(self) -> Dict[str, object]:
        """Flat row for tabular output (raw values; the report formatter
        owns rounding)."""
        return {
            "alpha_harmful": self.alpha_harmful,
            "alpha_beneficial": self.alpha_beneficial,
            "asymmetry": self.asymmetry,
            "detection_round": self.detection_round,
            "final_detect": self.final_detect,
            "mean_liar_trust": self.mean_final_liar_trust,
            "mean_honest_trust": self.mean_final_honest_trust,
            "honest_collateral": self.honest_collateral,
        }


@dataclass
class GravityAblationResult:
    """All rows of the gravity sweep."""

    rows: List[GravityRow] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        """Flat rows for the report generator."""
        return [row.as_dict() for row in self.rows]

    def liar_punishment_increases_with_asymmetry(self) -> bool:
        """More asymmetric weighting must never *raise* the liars' final trust."""
        ordered = sorted(self.rows, key=lambda r: r.asymmetry)
        trusts = [r.mean_final_liar_trust for r in ordered]
        return all(b <= a + 1e-6 for a, b in zip(trusts, trusts[1:]))


def run_gravity_ablation(
    harmful_alphas: Sequence[float] = (0.02, 0.04, 0.08, 0.16),
    beneficial_alpha: float = 0.04,
    base_config: Optional[ScenarioConfig] = None,
) -> GravityAblationResult:
    """Sweep the harmful-evidence weight while keeping the beneficial one fixed."""
    base = base_config or paper_default_config()
    result = GravityAblationResult()
    for alpha_harmful in harmful_alphas:
        trust_params = replace(base.trust, alpha_harmful=alpha_harmful,
                               alpha_beneficial=beneficial_alpha)
        config = base.with_overrides(trust=trust_params)
        run = RoundBasedExperiment(config).run()
        result.rows.append(gravity_row(run, alpha_harmful, beneficial_alpha))
    return result


def gravity_row(run: ExperimentResult, alpha_harmful: float,
                alpha_beneficial: float) -> GravityRow:
    """Summarise one gravity-weighting run into its sweep row."""
    detection_round = None
    for record in run.rounds:
        if record.outcome == DecisionOutcome.INTRUDER:
            detection_round = record.round_index
            break

    liar_finals = [run.trust_trajectory(l)[-1] for l in run.liars]
    honest_finals = [run.trust_trajectory(h)[-1] for h in run.honest_responders]
    honest_initials = [run.initial_trust.get(h, 0.0) for h in run.honest_responders]
    collateral = sum(
        max(0.0, initial - final)
        for initial, final in zip(honest_initials, honest_finals)
    ) / len(honest_finals)

    detect_values = run.detect_values()
    return GravityRow(
        alpha_harmful=alpha_harmful,
        alpha_beneficial=alpha_beneficial,
        asymmetry=alpha_harmful / alpha_beneficial,
        detection_round=detection_round,
        final_detect=detect_values[-1] if detect_values else 0.0,
        mean_final_liar_trust=sum(liar_finals) / len(liar_finals),
        mean_final_honest_trust=sum(honest_finals) / len(honest_finals),
        honest_collateral=collateral,
    )


def _gravity_rows(spec: ExperimentSpec,
                  result: ExperimentResult) -> List[Dict[str, object]]:
    row = gravity_row(result,
                      float(spec.param("trust_alpha_harmful")),
                      float(spec.param("trust_alpha_beneficial")))
    return [row.as_dict()]


#: Engine registration: the harmful-weight sweep, one cell per α⁻ (the
#: ``trust_`` prefix routes the axis into ``TrustParameters``).
GRAVITY_ABLATION_EXPERIMENT = register(ExperimentDefinition(
    name="gravity_ablation",
    description="evidence-gravity weighting sweep (paper Sec. VII future work)",
    rows_from_result=_gravity_rows,
    axes={"trust_alpha_harmful": (0.02, 0.04, 0.08, 0.16)},
    fixed={"trust_alpha_beneficial": 0.04},
    report_title="Gravity ablation — harmful/beneficial weighting asymmetry",
))
