"""Figure 2 — Impact of the forgetting factor on the trustworthiness.

After the attack (and the lying) ceases, no investigation runs any more and
the forgetting factor β of Eq. 5 drives every trust value back toward the
default (initial) trust, 0.4 in the paper:

* nodes with a high or medium trust decay down to the default within the
  remaining rounds;
* former liars, whose trust collapsed while they lied, recover toward the
  default only slowly and may not reach it — the system "demands a long
  misconduct-less duration before trusting a former liar".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.config import ScenarioConfig, figure2_config
from repro.experiments.engine import ExperimentDefinition, ExperimentSpec, register
from repro.experiments.rounds import ExperimentResult, RoundBasedExperiment
from repro.metrics.trust_metrics import recovery_gap


@dataclass
class Figure2Result:
    """Data behind Figure 2."""

    experiment: ExperimentResult
    trajectories: Dict[str, List[float]] = field(default_factory=dict)
    attack_stop_round: int = 0
    default_trust: float = 0.4

    def recovery_gaps(self) -> Dict[str, float]:
        """Distance of each node's final trust from the default trust."""
        return {
            node: recovery_gap(trajectory, self.default_trust)
            for node, trajectory in self.trajectories.items()
        }

    def post_attack_trajectory(self, node: str) -> List[float]:
        """Trust of ``node`` restricted to the rounds after the attack stopped."""
        return self.trajectories.get(node, [])[self.attack_stop_round:]

    def rows(self) -> List[Dict[str, object]]:
        """Tabular form: per node, trust at the cut-over and at the end.

        Values are *raw* — rounding happens only in the report formatter.
        """
        rows = []
        for node in sorted(self.trajectories):
            trajectory = self.trajectories[node]
            at_stop = (
                trajectory[self.attack_stop_round - 1]
                if len(trajectory) >= self.attack_stop_round and self.attack_stop_round > 0
                else (trajectory[0] if trajectory else None)
            )
            rows.append(
                {
                    "node": node,
                    "role": self.experiment.role_of(node),
                    "trust_at_attack_stop": at_stop,
                    "final_trust": trajectory[-1] if trajectory else None,
                    "gap_to_default": recovery_gap(trajectory, self.default_trust),
                }
            )
        return rows


def run_figure2(config: Optional[ScenarioConfig] = None) -> Figure2Result:
    """Run the Figure 2 experiment (attack ceases mid-run, forgetting takes over)."""
    config = config or figure2_config()
    if config.attack_stop_round is None:
        config = config.with_overrides(attack_stop_round=max(2, config.rounds // 4))
    experiment = RoundBasedExperiment(config)
    result = experiment.run()
    return Figure2Result(
        experiment=result,
        trajectories=result.trust_trajectories(),
        attack_stop_round=config.attack_stop_round,
        default_trust=config.trust.default_trust,
    )


def _figure2_rows(spec: ExperimentSpec,
                  result: ExperimentResult) -> List[Dict[str, object]]:
    config = result.config
    attack_stop = config.attack_stop_round
    if attack_stop is None:
        attack_stop = max(2, config.rounds // 4)
    figure = Figure2Result(
        experiment=result,
        trajectories=result.trust_trajectories(),
        attack_stop_round=attack_stop,
        default_trust=config.trust.default_trust,
    )
    return figure.rows()


#: Engine registration: the Figure 1 attack phase followed by misconduct-free
#: rounds (single cell; the stop round and horizon are overridable params).
FIGURE2_EXPERIMENT = register(ExperimentDefinition(
    name="figure2",
    description="forgetting-factor recovery after the attack stops (paper Fig. 2)",
    rows_from_result=_figure2_rows,
    fixed={"rounds": 75, "attack_stop_round": 25},
    report_title="Figure 2 — trust recovery under the forgetting factor",
))
