"""Experiment configuration.

The defaults reproduce the paper's evaluation setup (Section V): 16 nodes,
one link-spoofing attacker, 4 colluding liars (≈26.3 % of the nodes providing
answers), randomly assigned initial trust, 25 investigation rounds, default
trust 0.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.trust.manager import TrustParameters

#: Adversary adaptivity tiers the round loop (and the netsim threat
#: compositions) implement.  ``"static"`` reproduces the paper's open-loop
#: adversary; the adaptive tiers are the novel extension of
#: :mod:`repro.attacks.adaptive`.
ADAPTIVITY_MODES = ("static", "throttling", "rotating")


@dataclass
class ScenarioConfig:
    """Parameters of a round-based trust/detection experiment."""

    #: Total number of nodes, including the investigator and the attacker.
    total_nodes: int = 16
    #: Number of colluding liars among the responders (paper: 4).
    liar_count: int = 4
    #: Alternative way to size the liar set: fraction of the responders.
    liar_fraction: Optional[float] = None
    #: Number of investigation rounds (paper figures span 25 rounds).
    rounds: int = 25
    #: Round at which the attack (and the lying) ceases; ``None`` = never.
    attack_stop_round: Optional[int] = None
    #: Seed of the experiment-level random generator.
    seed: int = 7
    #: Initial trust values are drawn uniformly from this interval.
    initial_trust_min: float = 0.1
    initial_trust_max: float = 0.8
    #: When False, every node starts at the default trust instead of random.
    random_initial_trust: bool = True
    #: Probability that a query/answer is lost in a given round.
    answer_loss_probability: float = 0.0
    #: Decision-rule threshold γ and confidence level (Eqs. 9–10).
    gamma: float = 0.6
    confidence_level: float = 0.95
    #: Use Eq. 8 trust weighting (False = unweighted-vote ablation).
    use_trust_weighting: bool = True
    #: Terminate the investigation at the first conclusive decision.
    close_on_decision: bool = False
    #: Adversary adaptivity tier (see :data:`ADAPTIVITY_MODES`):
    #: ``"throttling"`` makes the attacker pause its misconduct whenever the
    #: investigator's trust in it falls to ``riding_threshold`` and resume at
    #: ``riding_resume`` (threshold riding, fed by a read-only trust probe);
    #: ``"rotating"`` makes only one liar per round lie while the rest stay
    #: honest, starving the per-recommender bookkeeping.
    adaptivity: str = "static"
    #: Trust level at/below which a threshold-riding attacker pauses.
    riding_threshold: float = 0.32
    #: Trust level at which a paused threshold-rider resumes (hysteresis).
    riding_resume: float = 0.38
    #: Trust-system parameters (Eq. 5).  The experiment defaults keep a small
    #: positive trust floor (so distrusted nodes retain a marginal weight, as
    #: in the paper where Detect converges to ≈ −0.8 rather than −1) and a
    #: slow recovery factor for former liars (Figure 2's defensive recovery).
    trust: TrustParameters = field(
        default_factory=lambda: TrustParameters(
            alpha_beneficial=0.04,
            alpha_harmful=0.08,
            beta=0.95,
            minimum=0.05,
            beta_recovery=0.98,
        )
    )

    def __post_init__(self) -> None:
        if self.total_nodes < 3:
            raise ValueError("a scenario needs at least investigator, attacker and one responder")
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.liar_fraction is not None and not 0.0 <= self.liar_fraction < 1.0:
            raise ValueError("liar_fraction must be in [0, 1)")
        if self.adaptivity not in ADAPTIVITY_MODES:
            raise ValueError(
                f"unknown adaptivity {self.adaptivity!r} "
                f"(expected one of {', '.join(ADAPTIVITY_MODES)})")
        if self.riding_resume < self.riding_threshold:
            raise ValueError("riding_resume must be >= riding_threshold")
        if self.effective_liar_count() > self.responder_count():
            raise ValueError("more liars than responders")

    # ------------------------------------------------------------------ sizes
    def responder_count(self) -> int:
        """Number of responder nodes: everyone but the investigator and attacker."""
        return self.total_nodes - 2

    def effective_liar_count(self) -> int:
        """Liar count derived from ``liar_fraction`` when given, else ``liar_count``."""
        if self.liar_fraction is not None:
            return int(round(self.liar_fraction * self.responder_count()))
        return self.liar_count

    def liar_percentage(self) -> float:
        """Liars as a percentage of the responders (what Figure 3 sweeps)."""
        responders = self.responder_count()
        if responders == 0:
            return 0.0
        return 100.0 * self.effective_liar_count() / responders

    # ----------------------------------------------------------------- helpers
    def with_overrides(self, **changes) -> "ScenarioConfig":
        """Copy of the configuration with the given fields replaced."""
        return replace(self, **changes)


def paper_default_config(seed: int = 7) -> ScenarioConfig:
    """The configuration of the paper's main experiment (Figures 1 and 2)."""
    return ScenarioConfig(seed=seed)


def figure2_config(seed: int = 7, attack_stop_round: int = 25,
                   rounds: int = 75) -> ScenarioConfig:
    """Figure 2: the Figure 1 attack phase followed by misconduct-free rounds.

    The attack (and the lying) lasts for the first ``attack_stop_round``
    rounds; the remaining rounds show the forgetting factor pulling every
    trust value back toward the default.
    """
    return ScenarioConfig(seed=seed, rounds=rounds, attack_stop_round=attack_stop_round)


#: Figure 3 liar-ratio labels (as quoted by the paper) → liar head-counts.
#: Shared by the legacy sweep helper and the engine's ``figure3`` definition.
FIGURE3_LIAR_COUNTS = {"6.7%": 1, "26.3%": 4, "43.2%": 6}


def figure3_configs(seed: int = 7) -> dict:
    """Figure 3: liar-ratio sweep.

    The paper quotes 26.3 % and 43.2 % liars; the sweep below brackets those
    values with a low-liar point for reference.
    """
    return {
        label: ScenarioConfig(seed=seed, liar_count=count)
        for label, count in FIGURE3_LIAR_COUNTS.items()
    }
