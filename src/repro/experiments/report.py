"""Plain-text reporting of experiment results.

The benches and examples print the same rows/series the paper reports;
these helpers format lists of dictionaries as fixed-width text tables and
trajectories as compact sparkline-like strings, so everything stays readable
in a terminal without plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: Optional[str] = None) -> str:
    """Format dict rows as a fixed-width text table.

    The column order is the ordered union of every row's keys (first
    occurrence wins), so a key that only appears in later rows — e.g. a
    metric that is ``None``-omitted for some systems — still gets a column
    instead of being silently dropped.
    """
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    columns: List[str] = []
    seen = set()
    for row in rows:
        for key in row.keys():
            if key not in seen:
                seen.add(key)
                columns.append(key)
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(_cell(row.get(column))))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(_cell(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_series(series: Mapping[str, Sequence[float]], title: Optional[str] = None,
                  precision: int = 2) -> str:
    """Format named numeric series as aligned rows of values."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not series:
        lines.append("(no series)")
        return "\n".join(lines)
    label_width = max(len(str(label)) for label in series)
    for label in sorted(series):
        values = series[label]
        rendered = " ".join(f"{v:+.{precision}f}" for v in values)
        lines.append(f"{str(label).ljust(label_width)} : {rendered}")
    return "\n".join(lines)


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], low: Optional[float] = None,
              high: Optional[float] = None) -> str:
    """Render a numeric series as a unicode sparkline string."""
    if not values:
        return ""
    lo = min(values) if low is None else low
    hi = max(values) if high is None else high
    if hi <= lo:
        return _SPARK_CHARS[0] * len(values)
    scale = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[int(round((min(max(v, lo), hi) - lo) / (hi - lo) * scale))]
        for v in values
    )


def format_trajectories(trajectories: Mapping[str, Sequence[float]],
                        roles: Optional[Mapping[str, str]] = None,
                        title: Optional[str] = None) -> str:
    """Summarise trust trajectories as one sparkline row per node."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not trajectories:
        lines.append("(no trajectories)")
        return "\n".join(lines)
    label_width = max(len(n) for n in trajectories)
    role_width = max((len(roles.get(n, "")) for n in trajectories), default=0) if roles else 0
    for node in sorted(trajectories):
        values = list(trajectories[node])
        role = roles.get(node, "") if roles else ""
        start = f"{values[0]:.2f}" if values else "-"
        end = f"{values[-1]:.2f}" if values else "-"
        parts = [node.ljust(label_width)]
        if roles:
            parts.append(role.ljust(role_width))
        parts.append(sparkline(values, low=0.0, high=1.0))
        parts.append(f"{start}->{end}")
        lines.append("  ".join(parts))
    return "\n".join(lines)


def aggregate_rows(rows: Iterable[Mapping[str, object]],
                   group_by: Sequence[str],
                   value_columns: Sequence[str],
                   count_column: str = "runs") -> List[Dict[str, object]]:
    """Group ``rows`` by the ``group_by`` columns and average ``value_columns``.

    Non-numeric (or missing) values are skipped in the mean; each output row
    carries the group key columns, the per-column means and a ``count_column``
    with the group size.  Groups are emitted in sorted key order so repeated
    aggregations of the same data are byte-identical — a property the
    campaign runner's determinism check relies on.

    ``rows`` may be any iterable (including a database cursor): aggregation
    is streaming — only per-group running sums and counts are held in
    memory, never the rows themselves, so a stored campaign of any size can
    be re-aggregated in constant memory (see
    :meth:`repro.experiments.results.ResultsStore.iter_rows`).
    """
    # group key → (group row count, per-column [sum, numeric count]).
    groups: Dict[tuple, tuple] = {}
    for row in rows:
        key = tuple(row.get(column) for column in group_by)
        entry = groups.get(key)
        if entry is None:
            entry = (0, {column: [0.0, 0] for column in value_columns})
        count, sums = entry
        for column in value_columns:
            value = row.get(column)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                sums[column][0] += value
                sums[column][1] += 1
        groups[key] = (count + 1, sums)

    def sort_key(key: tuple):
        # Numbers sort numerically, everything else lexicographically; the
        # leading flag keeps mixed-type keys comparable.
        return tuple(
            (1, str(value)) if isinstance(value, bool) or not isinstance(value, (int, float))
            else (0, value)
            for value in key
        )

    aggregated: List[Dict[str, object]] = []
    for key in sorted(groups, key=sort_key):
        count, sums = groups[key]
        out: Dict[str, object] = dict(zip(group_by, key))
        out[count_column] = count
        for column in value_columns:
            total, seen = sums[column]
            out[column] = total / seen if seen else None
        aggregated.append(out)
    return aggregated


def render_report(sections: Iterable[str]) -> str:
    """Join report sections with blank lines."""
    return "\n\n".join(section for section in sections if section)
