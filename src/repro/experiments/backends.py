"""Pluggable execution backends of the experiment engine.

Every :class:`~repro.experiments.engine.ExperimentSpec` executes on one of
two interchangeable substrates, both returning the same
:class:`~repro.experiments.rounds.ExperimentResult` so the per-experiment
row logic never cares which one produced the data:

* ``"oracle"`` — the paper's round-based evaluation loop
  (:class:`~repro.experiments.rounds.RoundBasedExperiment`): every responder
  answers through an oracle transport, one investigation round per
  experiment round.  Fast, fully controlled; this is what the paper's
  figures use.
* ``"netsim"`` — the full MANET stack
  (:func:`~repro.experiments.scenario.build_manet_scenario`): OLSR over the
  spatial-indexed wireless medium, the link-spoofing attack, colluding
  liars, the log analyzer raising E1 and the cooperative investigation
  querying 2-hop neighbours over suspect-avoiding paths.  One detection
  cycle per experiment round; mobility, channel loss and attack variants
  actually happen.

Netsim-only parameters (``area_size``, ``radio_range``, ``warmup``,
``attack_start``, ``cycles``, ``cycle_length``, ``loss_model``,
``loss_probability``, ``max_speed``, ``attack_variant``, ``mobility_model``,
``threat``, ``drop_probability``, ``protocol``) are carried in the spec's
flat parameter tuple and ignored by the oracle backend, so any spec can
switch backends without being rewritten.  The engine-level ``profile`` parameter names a
registered scenario profile (:mod:`repro.scenarios`) whose parameters are
merged under the cell's own before execution.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Mapping

from repro.core.detector_node import DetectionConfig
from repro.core.signatures import LinkSpoofingVariant
from repro.experiments.config import ScenarioConfig
from repro.experiments.rounds import (
    ExperimentResult,
    RoundBasedExperiment,
    RoundRecord,
)
from repro.experiments.scenario import build_manet_scenario

#: ScenarioConfig fields a spec parameter may set directly (by field name).
_CONFIG_FIELDS = frozenset(
    f.name for f in fields(ScenarioConfig) if f.name not in ("seed", "trust")
)

#: TrustParameters fields settable through ``trust_``-prefixed parameters
#: (e.g. ``trust_alpha_harmful`` → ``TrustParameters.alpha_harmful``).
_TRUST_PREFIX = "trust_"

#: Netsim-backend knobs a spec parameter may set (ignored by the oracle
#: backend).  The engine validates override names against this set plus the
#: ScenarioConfig fields, so typos fail fast instead of running silently
#: with defaults.
NETSIM_PARAMS = frozenset((
    "area_size", "radio_range", "warmup", "attack_start", "cycles",
    "cycle_length", "loss_model", "loss_probability", "max_speed",
    "attack_variant", "mobility_model", "threat", "drop_probability",
    "protocol", "batch_delivery",
))

#: Parameters consumed by the engine itself rather than a backend.
#: ``profile`` names a registered scenario profile
#: (:mod:`repro.scenarios`) whose parameters are merged under the cell's
#: own at axis expansion — which makes ``--axis profile=a,b`` a sweepable
#: axis on every experiment, with the expanded parameters part of each
#: cell's content hash.
ENGINE_PARAMS = frozenset(("profile",))


def is_known_param(name: str) -> bool:
    """Whether ``name`` is a parameter some backend will actually consume."""
    return (name in _CONFIG_FIELDS or name in NETSIM_PARAMS
            or name in ENGINE_PARAMS or name.startswith(_TRUST_PREFIX))


def scenario_config_from_params(params: Mapping[str, object],
                                seed: int) -> ScenarioConfig:
    """Build a cell's :class:`ScenarioConfig` from its flat parameters.

    Parameters named after a ``ScenarioConfig`` field map one to one;
    ``trust_``-prefixed parameters override the corresponding
    :class:`~repro.trust.manager.TrustParameters` field; everything else
    (the netsim knobs) is left for :func:`execute_backend`.  The seed always
    comes from the spec itself — it is the engine's per-cell stable seed.
    """
    config_kwargs = {name: value for name, value in params.items()
                     if name in _CONFIG_FIELDS}
    config = ScenarioConfig(seed=seed, **config_kwargs)
    trust_overrides = {
        name[len(_TRUST_PREFIX):]: value
        for name, value in params.items()
        if name.startswith(_TRUST_PREFIX)
    }
    if trust_overrides:
        config = config.with_overrides(
            trust=replace(config.trust, **trust_overrides))
    return config


def execute_backend(backend: str, config: ScenarioConfig,
                    params: Mapping[str, object]) -> ExperimentResult:
    """Run one cell on the named backend."""
    if backend == "oracle":
        return run_oracle_cell(config)
    if backend == "netsim":
        return run_netsim_cell(config, params)
    raise ValueError(f"unknown backend {backend!r}")


def run_oracle_cell(config: ScenarioConfig) -> ExperimentResult:
    """Execute the round-based (oracle-transport) evaluation loop."""
    return RoundBasedExperiment(config).run()


def build_netsim_scenario(config: ScenarioConfig,
                          params: Mapping[str, object]):
    """Build (without running) the cell's full-stack MANET scenario.

    Split out of :func:`run_netsim_cell` so callers that must instrument the
    scenario before any event fires — the validation harness installs its
    delivery auditor here — can do so and then hand the scenario to
    :func:`drive_netsim_scenario`.
    """
    def param(name, default):
        return params.get(name, default)

    attack_start = float(param("attack_start", 40.0))

    scenario = build_manet_scenario(
        node_count=config.total_nodes,
        liar_count=config.effective_liar_count(),
        seed=config.seed,
        area_size=float(param("area_size", 800.0)),
        radio_range=float(param("radio_range", 250.0)),
        loss_probability=float(param("loss_probability", 0.0)),
        attack_start=attack_start,
        detection_config=DetectionConfig(
            gamma=config.gamma,
            confidence_level=config.confidence_level,
            use_trust_weighting=config.use_trust_weighting,
            close_on_decision=config.close_on_decision,
            query_loss_probability=config.answer_loss_probability,
        ),
        attack_variant=LinkSpoofingVariant(
            param("attack_variant", str(LinkSpoofingVariant.FALSE_EXISTING_LINK))),
        loss_model=str(param("loss_model", "bernoulli")),
        max_speed=float(param("max_speed", 0.0)),
        mobility_model=str(param("mobility_model", "auto")),
        threat=str(param("threat", "link-spoofing")),
        drop_probability=float(param("drop_probability", 0.7)),
        trust_parameters=config.trust,
        protocol=str(param("protocol", "olsr")),
        batch_delivery=bool(param("batch_delivery", True)),
    )
    if config.random_initial_trust:
        # Mirror the oracle loop's "randomly set initial trust" step on the
        # investigator, so the config field means the same thing on both
        # backends (its own stable stream: independent of scenario wiring).
        import random as _random

        from repro.seeding import stable_seed

        rng = _random.Random(stable_seed(config.seed, "initial-trust"))
        victim = scenario.victim
        for node_id in sorted(scenario.nodes):
            if node_id == scenario.victim_id:
                continue
            victim.trust.set_initial_trust(
                node_id, rng.uniform(config.initial_trust_min,
                                     config.initial_trust_max))
    return scenario


def run_netsim_cell(config: ScenarioConfig,
                    params: Mapping[str, object]) -> ExperimentResult:
    """Execute the cell on the full simulated MANET.

    The scenario derives everything from the config plus the cell's netsim
    parameters; each experiment "round" is one detection cycle of
    ``cycle_length`` simulated seconds on the victim.  The resulting
    :class:`ExperimentResult` carries the same record stream as the oracle
    backend (detect values, outcomes, answers, trust snapshots) plus
    substrate statistics in :attr:`ExperimentResult.stats`.
    """
    scenario = build_netsim_scenario(config, params)
    return drive_netsim_scenario(scenario, config, params)


def drive_netsim_scenario(scenario, config: ScenarioConfig,
                          params: Mapping[str, object]) -> ExperimentResult:
    """Run the detection-cycle loop on an already-built scenario."""
    def param(name, default):
        return params.get(name, default)

    attack_start = float(param("attack_start", 40.0))
    warmup = float(param("warmup", 35.0))
    cycles = int(param("cycles", min(config.rounds, 8)))
    cycle_length = float(param("cycle_length", 10.0))

    network = scenario.network
    victim = scenario.victim
    result = ExperimentResult(
        config=config,
        investigator=scenario.victim_id,
        attacker=scenario.attacker_id,
        liars=set(scenario.liar_ids),
        honest_responders={
            nid for nid in scenario.nodes
            if nid not in scenario.liar_ids
            and nid not in (scenario.victim_id, scenario.attacker_id)
        },
        initial_trust=victim.trust.as_dict(),
    )

    scenario.warm_up(warmup)
    victim.detection_round()  # absorb convergence-era triggers

    for round_index in range(cycles):
        network.run(until=network.now + cycle_length)
        attacker_round = None
        for round_result in victim.detection_round():
            if round_result.suspect == scenario.attacker_id:
                attacker_round = round_result
        if attacker_round is not None:
            record = RoundRecord(
                round_index=round_index,
                attack_active=network.now >= attack_start,
                detect_value=attacker_round.decision.detect_value,
                outcome=attacker_round.decision.outcome,
                margin=attacker_round.decision.interval.margin,
                answers=dict(attacker_round.answers),
                unreached=len(attacker_round.responders_unreached),
            )
        else:
            record = RoundRecord(
                round_index=round_index,
                attack_active=network.now >= attack_start,
                detect_value=None,
                outcome=None,
                margin=None,
            )
        record.trust_snapshot = victim.trust.as_dict()
        result.rounds.append(record)
        # Close the feedback loop: adaptive attack layers observe the
        # detector (through their read-only trust probes) once per cycle.
        for adaptive in getattr(scenario, "adaptive_attacks", ()):
            adaptive.observe(network.now)

    result.stats = {
        "frames_sent": network.medium.stats.frames_sent,
        "frames_delivered": network.medium.stats.frames_delivered,
        # Batched broadcasts run one event for many deliveries; add the
        # elided per-receiver events back so the metric means the same
        # logical work on both medium paths (rows stay byte-identical).
        "events_processed": (network.simulator.processed_events
                             + network.medium.batched_deliveries_saved),
        # Scheduler counters (pushes/pops/cancelled_skipped/wheel_hits/
        # compactions).  ``stats`` is never serialised into campaign rows,
        # so surfacing them here cannot perturb report byte-identity.
        "engine": network.engine_counters(),
    }
    return result
