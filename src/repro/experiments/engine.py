"""Unified experiment engine: declarative specs, a registry, one runtime.

Before this module every evaluation driver (``figure1``–``figure3``, the
ablation, the confidence/γ sweep, the gravity ablation, the mobility study)
hand-rolled its own run loop, result dataclass and output path, and only the
scenario campaign enjoyed parallel fan-out, durable resume and streaming
aggregation.  The engine gives *every* experiment that infrastructure:

* :class:`ExperimentSpec` — one fully-resolved, picklable grid cell: the
  experiment name, its cell id, the stable per-cell seed, the execution
  backend and the flat ``(key, value)`` parameter tuple.  The spec is the
  unit of execution, persistence (content-hash keyed, see
  :func:`repro.experiments.results.spec_content_hash`) and resume.
* :class:`ExperimentDefinition` — the declarative description of one
  experiment: its parameter ``axes`` (the sweep), its ``fixed`` parameters,
  how to build a :class:`~repro.experiments.config.ScenarioConfig` from a
  cell and how to turn the backend's
  :class:`~repro.experiments.rounds.ExperimentResult` into flat report rows.
* a registry (:func:`register`, :func:`get_experiment`,
  :func:`list_experiments`) the CLI and the worker processes resolve names
  against.
* :func:`run_experiment` — the shared runtime: expands the axes into seeded
  cells, skips cells already present in a
  :class:`~repro.experiments.results.ResultsStore` (resume), fans the rest
  out over a :class:`~concurrent.futures.ProcessPoolExecutor`, commits every
  cell as soon as it completes and aggregates the rows into a deterministic
  report.  The exact same executor
  (:func:`execute_pending_cells`) powers the scenario campaign
  (:mod:`repro.experiments.campaign`).

Backends (:mod:`repro.experiments.backends`) are pluggable per run: the same
spec can execute on the fast ``"oracle"`` round loop
(:class:`~repro.experiments.rounds.RoundBasedExperiment`) or on the
``"netsim"`` full MANET stack
(:func:`~repro.experiments.scenario.build_manet_scenario`), so every figure
can also be reproduced full-stack and every scenario axis (loss, mobility,
liar fraction) applies to every experiment.
"""

from __future__ import annotations

import itertools
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.report import format_table, render_report
from repro.experiments.results import ResultsStore, spec_content_hash
from repro.seeding import stable_seed

#: Execution backends every spec can run on (see repro.experiments.backends).
BACKENDS = ("oracle", "netsim")

#: Modules whose import registers the built-in experiment definitions.  The
#: list is resolved lazily so worker processes (and ``python -m``) can
#: rebuild the registry without importing the whole package eagerly.
_BUILTIN_MODULES = (
    "repro.experiments.figure1",
    "repro.experiments.figure2",
    "repro.experiments.figure3",
    "repro.experiments.ablation",
    "repro.experiments.confidence_sweep",
    "repro.experiments.gravity_ablation",
    "repro.experiments.mobility",
    "repro.experiments.adaptivity",
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-resolved experiment cell (picklable; safe to ship to a worker).

    ``params`` is the flat, sorted ``(name, value)`` tuple of every parameter
    the cell runs with — the swept axis values merged over the experiment's
    fixed defaults.  Together with ``seed`` and ``backend`` it fully
    determines the cell's execution, which is what makes
    :meth:`content_hash` a safe resume key.
    """

    experiment: str
    cell_id: str
    run_id: str
    seed: int
    backend: str
    params: Tuple[Tuple[str, object], ...] = ()

    def params_dict(self) -> Dict[str, object]:
        """The cell parameters as a plain dict."""
        return dict(self.params)

    def param(self, name: str, default: object = None) -> object:
        """One parameter value, with a default for absent keys."""
        return self.params_dict().get(name, default)

    def content_hash(self) -> str:
        """Content hash keying this cell in a :class:`ResultsStore`."""
        return spec_content_hash(self)


def spec_to_jsonable(spec: ExperimentSpec) -> Dict[str, object]:
    """The spec as a JSON-serialisable dict (fabric queue wire format)."""
    return {
        "experiment": spec.experiment,
        "cell_id": spec.cell_id,
        "run_id": spec.run_id,
        "seed": spec.seed,
        "backend": spec.backend,
        "params": [list(pair) for pair in spec.params],
    }


def spec_from_jsonable(data: Mapping[str, object]) -> ExperimentSpec:
    """Rebuild a spec from :func:`spec_to_jsonable` output.

    The round trip is hash-exact: JSON keeps ints, floats (repr-exact),
    strings, bools and ``None`` intact, and :func:`spec_content_hash`
    canonicalises tuples and lists identically — so a worker that receives a
    cell over the fabric queue computes the same content hash the dispatcher
    enqueued it under.
    """
    return ExperimentSpec(
        experiment=str(data["experiment"]),
        cell_id=str(data["cell_id"]),
        run_id=str(data["run_id"]),
        seed=int(data["seed"]),  # type: ignore[arg-type]
        backend=str(data["backend"]),
        params=tuple((str(name), value) for name, value in data["params"]),  # type: ignore[union-attr]
    )


#: Builds the per-cell rows from the backend's ExperimentResult.
RowsFromResult = Callable[[ExperimentSpec, object], List[Dict[str, object]]]


@dataclass
class ExperimentDefinition:
    """Declarative description of one registered experiment.

    ``axes`` maps axis name → swept values (the cell grid is their cross
    product, in declaration order); ``fixed`` holds the non-swept parameters.
    Any fixed parameter can be promoted to an axis — and any axis overridden —
    at run time (``axes=...`` of :func:`run_experiment`, ``--axis`` on the
    CLI), which is how the campaign's scenario axes (loss, mobility, liar
    fraction) apply to every experiment.

    ``rows_from_result`` turns the backend's
    :class:`~repro.experiments.rounds.ExperimentResult` into the flat,
    JSON-serialisable report rows of one cell.  ``seed_mode`` selects how the
    per-cell seed derives from the base seed: ``"shared"`` reproduces the
    legacy drivers (every cell runs the same scenario seed, so cells differ
    only by their axis values), ``"per-cell"`` derives a distinct
    :func:`~repro.seeding.stable_seed` per cell id (what replications want).
    """

    name: str
    description: str
    rows_from_result: RowsFromResult
    axes: Mapping[str, Sequence] = field(default_factory=dict)
    fixed: Mapping[str, object] = field(default_factory=dict)
    default_backend: str = "oracle"
    base_seed: int = 7
    seed_mode: str = "shared"
    report_title: Optional[str] = None
    #: Optional hook mapping the raw cell parameters to the executable ones
    #: (e.g. figure3 turns its ``liar_ratio`` axis label into a liar count).
    resolve_params: Optional[Callable[[Dict[str, object]], Dict[str, object]]] = None

    def __post_init__(self) -> None:
        if self.default_backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.default_backend!r}")
        if self.seed_mode not in ("shared", "per-cell"):
            raise ValueError(f"unknown seed mode {self.seed_mode!r}")

    # ------------------------------------------------------------ expansion
    def expand(
        self,
        backend: Optional[str] = None,
        base_seed: Optional[int] = None,
        axes: Optional[Mapping[str, Sequence]] = None,
        params: Optional[Mapping[str, object]] = None,
    ) -> List[ExperimentSpec]:
        """The cell grid as fully-resolved, seeded specs (declaration order).

        ``axes`` overrides (or adds) swept axes; ``params`` overrides fixed
        parameters; ``backend``/``base_seed`` override the definition's
        defaults.  Expansion order is deterministic — the cross product in
        axis declaration order — and the engine preserves it when reporting,
        so reports are byte-identical across runs, worker counts and resumes.
        """
        merged_axes: Dict[str, Sequence] = dict(self.axes)
        if axes:
            self._check_override_names(axes, merged_axes, kind="axis")
            for name, values in axes.items():
                merged_axes[name] = tuple(values)
        if params:
            self._check_override_names(params, merged_axes, kind="parameter")
            shadowed = sorted(set(params) & set(merged_axes))
            if shadowed:
                raise ValueError(
                    f"{', '.join(shadowed)} is a swept axis of "
                    f"{self.name!r}; override it as an axis "
                    f"(axes= / --axis), not as a fixed parameter")
        backend = backend or self.default_backend
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        seed0 = self.base_seed if base_seed is None else base_seed

        specs: List[ExperimentSpec] = []
        names = list(merged_axes)
        for combo in itertools.product(*(merged_axes[n] for n in names)):
            cell = dict(zip(names, combo))
            cell_id = "-".join(
                f"{n}={_format_axis_value(v)}" for n, v in cell.items()
            ) or "default"
            merged: Dict[str, object] = dict(self.fixed)
            if params:
                merged.update(params)
            merged.update(cell)
            if merged.get("profile"):
                # Resolve the scenario profile NOW, not at execution: the
                # expanded parameters enter the spec (and therefore its
                # content hash, so editing a profile invalidates stored
                # cells instead of silently resuming them), and a typo'd
                # profile name fails the whole expansion up front.
                from repro.scenarios import apply_profile

                merged = apply_profile(merged)
            seed = (seed0 if self.seed_mode == "shared"
                    else stable_seed(seed0, f"{self.name}/{cell_id}"))
            specs.append(ExperimentSpec(
                experiment=self.name,
                cell_id=cell_id,
                run_id=f"{self.name}/{cell_id}",
                seed=seed,
                backend=backend,
                params=tuple(sorted(merged.items())),
            ))
        return specs

    def _check_override_names(self, overrides: Mapping[str, object],
                              merged_axes: Mapping[str, Sequence],
                              kind: str) -> None:
        """Reject override names no backend or definition would consume.

        A typo'd name would otherwise run silently with defaults *and*
        pollute the spec content hash, breaking the later resume of the
        correctly-spelled run.
        """
        from repro.experiments.backends import is_known_param

        known = set(merged_axes) | set(self.fixed)
        for name in overrides:
            if name in known or is_known_param(name):
                continue
            raise ValueError(
                f"unknown {kind} {name!r} for experiment {self.name!r} "
                f"(declared: {', '.join(sorted(known)) or 'none'}; plus any "
                f"ScenarioConfig field, netsim knob or trust_* parameter)")


def _format_axis_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


# ---------------------------------------------------------------- registry
_REGISTRY: Dict[str, ExperimentDefinition] = {}


def register(definition: ExperimentDefinition) -> ExperimentDefinition:
    """Register (or replace) an experiment definition; returns it."""
    _REGISTRY[definition.name] = definition
    return definition


def _ensure_builtin_experiments() -> None:
    """Import the built-in experiment modules (idempotent).

    Registration happens at module import; this hook lets worker processes
    and the CLI resolve names without importing :mod:`repro.experiments`
    eagerly.
    """
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_experiment(name: str) -> ExperimentDefinition:
    """Look up a registered experiment by name."""
    _ensure_builtin_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown experiment {name!r} (registered: {known})") from None


def list_experiments() -> List[ExperimentDefinition]:
    """Every registered experiment, sorted by name."""
    _ensure_builtin_experiments()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def expand_experiment(
    name: str,
    backend: Optional[str] = None,
    base_seed: Optional[int] = None,
    axes: Optional[Mapping[str, Sequence]] = None,
    params: Optional[Mapping[str, object]] = None,
) -> Tuple[ExperimentDefinition, List[ExperimentSpec], List[str]]:
    """Resolve a named experiment into its seeded cell grid plus hashes.

    The shared front half of :func:`run_experiment` and the fabric
    dispatcher (:mod:`repro.fabric.dispatcher`): both must expand the same
    grid in the same order and key cells by the same content hashes, or a
    dispatched campaign would not merge back into the single-process report.
    """
    definition = get_experiment(name)
    specs = definition.expand(backend=backend, base_seed=base_seed,
                              axes=axes, params=params)
    hashes = [spec.content_hash() for spec in specs]
    return definition, specs, hashes


# ----------------------------------------------------------------- runtime
def execute_cell(spec: ExperimentSpec) -> List[Dict[str, object]]:
    """Run one cell end to end (the process-pool worker entry point)."""
    from repro.experiments.backends import (
        execute_backend,
        scenario_config_from_params,
    )

    definition = get_experiment(spec.experiment)
    params = spec.params_dict()
    if definition.resolve_params is not None:
        params = definition.resolve_params(dict(params))
    config = scenario_config_from_params(params, spec.seed)
    result = execute_backend(spec.backend, config, params)
    return definition.rows_from_result(spec, result)


def execute_pending_cells(
    pending: Sequence[Tuple[object, str]],
    execute: Callable[[object], object],
    finish: Callable[[object, str, object], None],
    workers: Optional[int] = None,
) -> None:
    """The shared fan-out loop of the engine *and* the scenario campaign.

    ``pending`` is a list of ``(payload, digest)`` cells; ``execute`` runs in
    the worker (must be a picklable module-level callable when ``workers`` >
    1); ``finish(payload, digest, result)`` runs in the parent as each cell
    completes — in completion order, not submission order, so a store-backed
    caller that commits from ``finish`` loses only in-flight cells on a kill.

    A ``KeyboardInterrupt`` (Ctrl-C, or one raised out of a worker) exits
    *gracefully*: queued cells are cancelled, cells that already completed
    are still committed through ``finish``, and the interrupt is re-raised —
    so an interrupted ``--db`` campaign resumes cleanly with exactly the
    finished cells stored.  Only cells in flight at the moment of the
    interrupt are lost.
    """
    if workers is not None and workers > 1 and len(pending) > 1:
        max_workers = min(workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            futures = {executor.submit(execute, payload): (payload, digest)
                       for payload, digest in pending}
            remaining = set(futures)
            finished = set()
            try:
                while remaining:
                    done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in done:
                        payload, digest = futures[future]
                        result = future.result()
                        finish(payload, digest, result)
                        finished.add(future)
            except KeyboardInterrupt:
                for future in futures:
                    if future not in finished:
                        future.cancel()
                # Commit every cell that finished but was not folded in yet;
                # ``finish`` (a store commit) is idempotent per digest.
                for future, (payload, digest) in futures.items():
                    if future in finished or not future.done() or future.cancelled():
                        continue
                    if future.exception() is None:
                        finish(payload, digest, future.result())
                executor.shutdown(wait=False, cancel_futures=True)
                raise
    else:
        for payload, digest in pending:
            finish(payload, digest, execute(payload))


@dataclass
class ExperimentRunResult:
    """All rows of one engine run, with resume-aware reporting helpers.

    Rows stream in *cell expansion order* (the declaration order of the
    axes), never in completion order: an in-memory run, a parallel run and a
    store-resumed run all produce byte-identical reports.  Cells not yet
    executed (budgeted runs) are simply absent from the stream.
    """

    definition: ExperimentDefinition
    specs: List[ExperimentSpec]
    hashes: List[str]
    rows_by_hash: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    store: Optional[ResultsStore] = None
    #: Cells actually executed by this invocation (run ids).
    executed_run_ids: List[str] = field(default_factory=list)
    #: Cells found already completed in the store and skipped (run ids).
    skipped_run_ids: List[str] = field(default_factory=list)

    def iter_rows(self, keep=None) -> Iterator[Dict[str, object]]:
        """Stream the flat rows of every completed cell, in expansion order.

        ``keep`` optionally filters cells by their spec (``keep(spec) ->
        bool``); rows of filtered-out cells are skipped entirely.
        """
        for spec, digest in zip(self.specs, self.hashes):
            if keep is not None and not keep(spec):
                continue
            rows = self.rows_by_hash.get(digest)
            if rows is None and self.store is not None:
                rows = self.store.get_row(digest)
            if rows is None:
                continue
            if isinstance(rows, dict):  # single-row cell stored flat
                rows = [rows]
            yield from rows

    def rows(self) -> List[Dict[str, object]]:
        """Every completed cell's rows as one flat list."""
        return list(self.iter_rows())

    def cells(self) -> int:
        """Number of cells in the expanded grid."""
        return len(self.specs)

    def format_report(self) -> str:
        """Deterministic plain-text report (no timestamps, no wall-clock).

        When the run sweeps the ``protocol`` axis, the report splits into
        one section per protocol (in sorted order) so cross-protocol runs
        stay readable; single-protocol runs keep the historic single table.
        """
        backend = self.specs[0].backend if self.specs else self.definition.default_backend
        title = (self.definition.report_title
                 or f"{self.definition.name} — {self.definition.description}")
        protocols = sorted({str(spec.param("protocol", "olsr"))
                            for spec in self.specs})
        if len(protocols) > 1:
            sections = []
            for protocol in protocols:
                def keep(spec, _protocol=protocol):
                    return str(spec.param("protocol", "olsr")) == _protocol
                rows = list(self.iter_rows(keep=keep))
                cells = sum(1 for spec in self.specs if keep(spec))
                sections.append(format_table(
                    rows,
                    title=f"{title} — protocol={protocol}\n"
                          f"[{len(rows)} rows from {cells} cells, "
                          f"backend={backend}]",
                ))
        else:
            rows = self.rows()
            sections = [format_table(
                rows,
                title=f"{title}\n[{len(rows)} rows from {self.cells()} cells, "
                      f"backend={backend}]",
            )]
        return render_report(sections)


def run_experiment(
    name: str,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    store: Optional[ResultsStore] = None,
    resume: bool = True,
    max_new_runs: Optional[int] = None,
    base_seed: Optional[int] = None,
    axes: Optional[Mapping[str, Sequence]] = None,
    params: Optional[Mapping[str, object]] = None,
) -> ExperimentRunResult:
    """Run a registered experiment through the shared campaign runtime.

    Expands the definition's axes into seeded cells, skips cells whose
    content hash is already in ``store`` (``resume``), executes the rest —
    across ``workers`` processes when > 1 — and commits each completed cell
    to the store the moment it finishes.  ``max_new_runs`` bounds how many
    *missing* cells this invocation executes (budgeted/chunked execution);
    pass ``0`` to re-aggregate a stored run without executing anything.
    Because every cell derives all randomness from its own stable seed, the
    returned report is identical whichever execution mode produced it.
    """
    definition, specs, hashes = expand_experiment(
        name, backend=backend, base_seed=base_seed, axes=axes, params=params)

    completed = set()
    if store is not None and resume:
        completed = store.completed_hashes(hashes)
    pending = [(spec, digest) for spec, digest in zip(specs, hashes)
               if digest not in completed]
    skipped = [spec.run_id for spec, digest in zip(specs, hashes)
               if digest in completed]
    if max_new_runs is not None:
        pending = pending[:max_new_runs]

    result = ExperimentRunResult(
        definition=definition,
        specs=specs,
        hashes=hashes,
        store=store,
        executed_run_ids=sorted(spec.run_id for spec, _ in pending),
        skipped_run_ids=sorted(skipped),
    )

    def _finish(spec: ExperimentSpec, digest: str,
                rows: List[Dict[str, object]]) -> None:
        if store is not None:
            store.record(spec, rows, spec_hash=digest)
        result.rows_by_hash[digest] = rows

    execute_pending_cells(pending, execute_cell, _finish, workers=workers)
    return result
