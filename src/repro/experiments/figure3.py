"""Figure 3 — Impact of liars on the detection.

The paper sweeps the proportion of colluding liars among the responders and
plots the investigation result ``Detect^{A,I}`` across rounds.  The expected
shape:

* the more liars, the slower the detection converges toward −1;
* after about 10 rounds the aggregate falls below ≈ −0.4 even with ≈ 43 %
  liars, because the liars' trust — and therefore their weight in Eq. 8 —
  keeps shrinking;
* in the last rounds the aggregate reaches ≈ −0.8 regardless of the liar
  ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.config import (
    FIGURE3_LIAR_COUNTS,
    ScenarioConfig,
    figure3_configs,
)
from repro.experiments.engine import ExperimentDefinition, ExperimentSpec, register
from repro.experiments.rounds import ExperimentResult, RoundBasedExperiment
from repro.metrics.detection import convergence_round


@dataclass
class Figure3Result:
    """Data behind Figure 3: one detection trajectory per liar ratio."""

    experiments: Dict[str, ExperimentResult] = field(default_factory=dict)

    def detect_series(self) -> Dict[str, List[float]]:
        """Detect^{A,I} trajectory per liar-ratio label."""
        return {
            label: [v for v in result.detect_trajectory() if v is not None]
            for label, result in self.experiments.items()
        }

    def convergence_rounds(self, threshold: float = -0.4) -> Dict[str, Optional[int]]:
        """First round at which each series falls below ``threshold``."""
        return {
            label: convergence_round(series, threshold, below=True)
            for label, series in self.detect_series().items()
        }

    def final_values(self) -> Dict[str, float]:
        """Last Detect value of each series."""
        return {
            label: (series[-1] if series else 0.0)
            for label, series in self.detect_series().items()
        }

    def rows(self) -> List[Dict[str, object]]:
        """Tabular form: per liar ratio, convergence round and final value.

        Values are *raw* — rounding happens only in the report formatter.
        """
        rows = []
        for label in sorted(self.experiments, key=_ratio_sort_key):
            rows.append(_figure3_row(label, self.experiments[label]))
        return rows


def _ratio_sort_key(label: str) -> float:
    try:
        return float(label.rstrip("%"))
    except ValueError:
        return 0.0


def _figure3_row(label: str, result: ExperimentResult) -> Dict[str, object]:
    """One summary row of Figure 3 (computed per liar-ratio cell)."""
    series = [v for v in result.detect_trajectory() if v is not None]
    return {
        "liar_ratio": label,
        "liar_count": len(result.liars),
        "responders": len(result.responders),
        "round_below_-0.4": convergence_round(series, -0.4, below=True),
        "final_detect": series[-1] if series else 0.0,
    }


def run_figure3(configs: Optional[Dict[str, ScenarioConfig]] = None) -> Figure3Result:
    """Run the liar-ratio sweep (paper Figure 3)."""
    configs = configs or figure3_configs()
    experiments: Dict[str, ExperimentResult] = {}
    for label, config in configs.items():
        experiment = RoundBasedExperiment(config)
        experiments[label] = experiment.run()
    return Figure3Result(experiments=experiments)


def _resolve_figure3_params(params: Dict[str, object]) -> Dict[str, object]:
    """Map the ``liar_ratio`` axis label to a concrete liar sizing.

    Paper labels resolve through :data:`FIGURE3_LIAR_COUNTS`; any other
    ``"X%"`` label becomes a ``liar_fraction`` so the axis accepts arbitrary
    sweep points (e.g. ``--axis "liar_ratio=10%,50%"``).
    """
    label = params.get("liar_ratio")
    if label is not None and "liar_count" not in params:
        if label in FIGURE3_LIAR_COUNTS:
            params["liar_count"] = FIGURE3_LIAR_COUNTS[label]
        else:
            params["liar_fraction"] = float(str(label).rstrip("%")) / 100.0
    params.pop("liar_ratio", None)
    return params


def _figure3_rows(spec: ExperimentSpec,
                  result: ExperimentResult) -> List[Dict[str, object]]:
    return [_figure3_row(str(spec.param("liar_ratio")), result)]


#: Engine registration: one cell per liar-ratio label, all sharing the base
#: scenario seed so the cells differ only by how many responders collude.
FIGURE3_EXPERIMENT = register(ExperimentDefinition(
    name="figure3",
    description="liar-ratio sweep of the detection aggregate (paper Fig. 3)",
    rows_from_result=_figure3_rows,
    axes={"liar_ratio": tuple(FIGURE3_LIAR_COUNTS)},
    resolve_params=_resolve_figure3_params,
    report_title="Figure 3 — impact of liars on the detection",
))
