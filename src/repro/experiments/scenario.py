"""Full-stack simulation scenarios.

The round-based driver (:mod:`repro.experiments.rounds`) reproduces the
paper's evaluation; the scenarios below exercise the *whole* pipeline end to
end on a simulated MANET: OLSR runs, the attacker forges its HELLOs, the
victim's log analyzer raises E1, the cooperative investigation queries the
2-hop neighbours over paths avoiding the suspect, and the decision rule
produces a verdict.

Two builders are provided:

* :func:`build_canonical_scenario` — a small, fully deterministic topology
  designed so the MPR replacement (E1) provably happens once the attack
  starts; used by the integration tests and the quickstart example.
* :func:`build_manet_scenario` — an N-node random MANET with an attacker and
  a configurable fraction of liars, for larger demonstrations and the
  simulator-scale benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.attacks.adaptive import (
    RotatingLiarClique,
    ThresholdRidingGrayhole,
    TrustProbe,
)
from repro.attacks.base import AttackSchedule
from repro.attacks.collusion import LiarClique, grayhole_liar_stack
from repro.attacks.dropping import GrayholeAttack, OnOffDroppingAttack
from repro.attacks.liar import LiarBehavior
from repro.attacks.link_spoofing import LinkSpoofingAttack
from repro.attacks.scenario import AttackScenario
from repro.core.detector_node import DetectionConfig, DetectorNode
from repro.core.investigation import RoundResult
from repro.core.signatures import LinkSpoofingVariant
from repro.netsim.medium import (
    BernoulliLossModel,
    DistanceLossModel,
    LossModel,
    UnitDiskPropagation,
    WirelessMedium,
)
from repro.netsim.mobility import (
    GaussMarkovMobility,
    RandomWalkMobility,
    RandomWaypointMobility,
    ReferencePointGroupMobility,
    StaticPlacement,
    UniformRandomPlacement,
)
from repro.netsim.network import Network
from repro.netsim.engine import Simulator
from repro.olsr.constants import Willingness
from repro.olsr.node import OlsrConfig
from repro.seeding import stable_seed
from repro.trust.manager import TrustParameters


@dataclass
class SimulationScenario:
    """A built scenario: network, detector nodes and the attack plan."""

    network: Network
    nodes: Dict[str, DetectorNode]
    attack_scenario: AttackScenario
    victim_id: str
    attacker_id: str
    liar_ids: Set[str] = field(default_factory=set)
    #: Adaptive attack layers whose ``observe(now)`` feedback hook the
    #: driving loop must call once per detection cycle (see
    #: :mod:`repro.attacks.adaptive`).
    adaptive_attacks: List = field(default_factory=list)

    @property
    def victim(self) -> DetectorNode:
        """The investigating (attacked) node."""
        return self.nodes[self.victim_id]

    @property
    def attacker(self) -> DetectorNode:
        """The compromised node performing link spoofing."""
        return self.nodes[self.attacker_id]

    def start_all(self) -> None:
        """Start the routing process on every node."""
        for node in self.nodes.values():
            node.start()

    def bind_transports(self) -> None:
        """Give every node the suspect-avoiding query transport."""
        for node in self.nodes.values():
            node.bind_default_transport(self.nodes)

    def warm_up(self, duration: float = 30.0) -> None:
        """Run the network long enough for OLSR to converge."""
        self.network.run(until=self.network.now + duration)

    def run_detection_cycle(self, duration: float = 10.0) -> List[RoundResult]:
        """Advance the simulation and run one detection cycle on the victim."""
        self.network.run(until=self.network.now + duration)
        return self.victim.detection_round()

    def run_detection_rounds(self, rounds: int, step: float = 10.0) -> List[List[RoundResult]]:
        """Run several detection cycles, returning the per-cycle results."""
        return [self.run_detection_cycle(step) for _ in range(rounds)]


#: Coordinates of the canonical 6-node topology (radio range 250 m).
#: ``victim`` neighbours ``relay`` (honest MPR) and ``attacker``;
#: ``edge1``/``edge2`` are only reachable through ``relay``; ``shared`` is
#: reachable through both ``relay`` and ``attacker``.
CANONICAL_POSITIONS = {
    "victim": (0.0, 0.0),
    "relay": (0.0, 200.0),
    "attacker": (150.0, 100.0),
    "edge1": (0.0, 400.0),
    "edge2": (-150.0, 300.0),
    "shared": (150.0, 300.0),
}


def build_canonical_scenario(
    seed: int = 11,
    attack_start: float = 40.0,
    loss_probability: float = 0.0,
    detection_config: Optional[DetectionConfig] = None,
) -> SimulationScenario:
    """Build the deterministic 6-node link-spoofing scenario.

    Before ``attack_start`` the attacker behaves; afterwards it advertises
    spoofed symmetric links to ``edge1`` and ``edge2`` (which are not its
    neighbours), and — combined with its high willingness — replaces ``relay``
    as the victim's MPR, which is the E1 trigger.
    """
    simulator = Simulator()
    rng = random.Random(seed)
    medium = WirelessMedium(
        simulator,
        propagation=UnitDiskPropagation(radio_range=250.0),
        loss_model=BernoulliLossModel(
            loss_probability, rng=random.Random(stable_seed(seed, "loss-model"))),
    )
    network = Network(
        simulator=simulator,
        medium=medium,
        mobility=StaticPlacement(CANONICAL_POSITIONS),
        seed=seed,
    )
    network.add_nodes(list(CANONICAL_POSITIONS))

    nodes: Dict[str, DetectorNode] = {}
    for node_id in CANONICAL_POSITIONS:
        willingness = Willingness.WILL_HIGH if node_id == "attacker" else Willingness.WILL_DEFAULT
        config = OlsrConfig(willingness=willingness)
        nodes[node_id] = DetectorNode(
            node_id,
            network,
            olsr_config=config,
            detection_config=detection_config or DetectionConfig(),
            seed=rng.randint(0, 2 ** 31),
        )

    attack = LinkSpoofingAttack(
        variant=LinkSpoofingVariant.FALSE_EXISTING_LINK,
        target_addresses=["edge1", "edge2"],
    )
    attack.schedule.start_time = attack_start
    scenario = AttackScenario(name="canonical-link-spoofing")
    scenario.add("attacker", attack)
    scenario.install_all(nodes)

    built = SimulationScenario(
        network=network,
        nodes=nodes,
        attack_scenario=scenario,
        victim_id="victim",
        attacker_id="attacker",
    )
    built.start_all()
    built.bind_transports()
    return built


def _build_loss_model(kind: str, loss_probability: float, radio_range: float,
                      seed: int) -> LossModel:
    """Instantiate the named loss model with a stably derived RNG.

    ``stable_seed`` (not an additive offset) keeps the channel stream
    decorrelated from the scenario stream and from sibling campaign cells
    whose base seeds differ by small constants.
    """
    rng = random.Random(stable_seed(seed, "loss-model"))
    if kind == "bernoulli":
        return BernoulliLossModel(loss_probability, rng=rng)
    if kind == "distance":
        # loss_probability doubles as the distance model's max_loss, including
        # an explicit 0.0 (a lossless distance channel).
        return DistanceLossModel(radio_range=radio_range,
                                 max_loss=max(loss_probability, 0.0),
                                 rng=rng)
    raise ValueError(f"unknown loss model {kind!r} (expected 'bernoulli' or 'distance')")


#: Mobility models build_manet_scenario can instantiate by name.
MOBILITY_MODELS = ("auto", "static", "waypoint", "walk", "gauss-markov", "rpgm")

#: Threat compositions build_manet_scenario can install by name.
THREATS = ("link-spoofing", "onoff-grayhole", "liar-clique", "grayhole-liar",
           "throttling-grayhole", "rotating-clique")


def _build_mobility(kind: str, area_size: float, max_speed: float,
                    rng: random.Random):
    """Instantiate the named mobility model for an ``area_size`` square.

    ``"auto"`` reproduces the historic behaviour: random waypoint when
    ``max_speed`` is positive, static uniform placement otherwise.  The
    mobile models fall back to their own sensible default speed when
    ``max_speed`` is 0, so a ``mobility_model`` axis can be swept without
    also sweeping speeds.
    """
    if kind == "auto":
        kind = "waypoint" if max_speed > 0.0 else "static"
    if kind == "static":
        return UniformRandomPlacement(width=area_size, height=area_size, rng=rng)
    speed = max_speed if max_speed > 0.0 else 5.0
    if kind == "waypoint":
        return RandomWaypointMobility(
            width=area_size, height=area_size,
            min_speed=max(0.5, speed / 4.0), max_speed=speed,
            pause_time=2.0, rng=rng,
        )
    if kind == "walk":
        return RandomWalkMobility(width=area_size, height=area_size,
                                  max_step=speed, rng=rng)
    if kind == "gauss-markov":
        return GaussMarkovMobility(
            width=area_size, height=area_size,
            mean_speed=max_speed if max_speed > 0.0 else 3.0,
            rng=rng,
        )
    if kind == "rpgm":
        return ReferencePointGroupMobility(
            width=area_size, height=area_size,
            min_speed=max(0.5, speed / 4.0), max_speed=speed,
            member_radius=area_size / 6.0, rng=rng,
        )
    raise ValueError(
        f"unknown mobility model {kind!r} (expected one of {', '.join(MOBILITY_MODELS)})")


def build_manet_scenario(
    node_count: int = 16,
    liar_count: int = 4,
    seed: int = 23,
    area_size: float = 800.0,
    radio_range: float = 250.0,
    loss_probability: float = 0.0,
    attack_start: float = 40.0,
    detection_config: Optional[DetectionConfig] = None,
    attack_variant: LinkSpoofingVariant = LinkSpoofingVariant.FALSE_EXISTING_LINK,
    loss_model: str = "bernoulli",
    max_speed: float = 0.0,
    mobility_model: str = "auto",
    threat: str = "link-spoofing",
    drop_probability: float = 0.7,
    trust_parameters: Optional["TrustParameters"] = None,
    protocol: str = "olsr",
    batch_delivery: bool = True,
) -> SimulationScenario:
    """Build an ``node_count``-node random MANET with one attacker and liars.

    The attacker spoofs symmetric links toward a sample of distant nodes; the
    liar nodes protect it during investigations.  The victim is the node with
    the most neighbours among the attacker's neighbours (so an investigation
    is actually possible).

    ``attack_variant`` selects the link-spoofing expression (1–3),
    ``loss_model`` names the channel model (``"bernoulli"`` or
    ``"distance"``), ``mobility_model`` names the motion model (``"auto"``
    keeps the historic behaviour: random waypoint when ``max_speed`` > 0,
    static otherwise; see :data:`MOBILITY_MODELS`), and ``threat`` names the
    composition layered on top of the base link-spoofing attack (see
    :data:`THREATS`):

    * ``"link-spoofing"`` — the paper's scenario: spoofing attacker plus
      independent liars.
    * ``"onoff-grayhole"`` — the attacker additionally drops relayed traffic
      with ``drop_probability`` during periodic on-windows.
    * ``"liar-clique"`` — the liars coordinate through one shared decision
      stream (:class:`repro.attacks.collusion.LiarClique`), never
      contradicting each other.
    * ``"grayhole-liar"`` — a stacked threat: the attacker grayholes *and*
      shields itself with falsified answers when investigated, on top of the
      independent liars.
    * ``"throttling-grayhole"`` — the adaptive tier: the attacker grayholes
      but *rides the detection threshold*, pausing its dropping whenever the
      victim's trust in it nears the classification level and resuming as
      forgetting restores headroom (:class:`repro.attacks.adaptive.
      ThresholdRidingGrayhole`, fed back through a read-only trust probe).
    * ``"rotating-clique"`` — the liar clique, but with a single *active*
      liar rotating per epoch while the rest answer honestly, starving the
      per-recommender disagreement bookkeeping
      (:class:`repro.attacks.adaptive.RotatingLiarClique`).

    These (with ``loss_model``/``max_speed``) are the axes the scenario
    campaign and the unified experiment CLI sweep.

    ``protocol`` selects the routing backend (any name registered with
    :mod:`repro.routing`).  With OLSR the attacker runs the paper's link
    spoofing; protocols without OLSR HELLOs to forge express the base
    threat on the forwarding path instead (a grayhole starting at
    ``attack_start`` with ``drop_probability``), so drop-evidence detection
    is exercised on every backend.  Liars attach to the investigation
    responder path and are protocol-agnostic.

    ``batch_delivery`` toggles the medium's batched broadcast path (on by
    default; results are identical either way — it is purely a performance
    knob, exposed so campaigns can A/B the two paths).
    """
    if node_count < 4:
        raise ValueError("a MANET scenario needs at least 4 nodes")
    if liar_count >= node_count - 2:
        raise ValueError("too many liars for the node count")
    if threat not in THREATS:
        raise ValueError(
            f"unknown threat {threat!r} (expected one of {', '.join(THREATS)})")

    simulator = Simulator()
    rng = random.Random(seed)
    medium = WirelessMedium(
        simulator,
        propagation=UnitDiskPropagation(radio_range=radio_range),
        loss_model=_build_loss_model(loss_model, loss_probability, radio_range, seed),
        batch_delivery=batch_delivery,
    )
    mobility_rng = random.Random(stable_seed(seed, "mobility"))
    mobility = _build_mobility(mobility_model, area_size, max_speed, mobility_rng)
    network = Network(
        simulator=simulator,
        medium=medium,
        mobility=mobility,
        seed=seed,
    )
    node_ids = [f"n{i:02d}" for i in range(node_count)]
    network.add_nodes(node_ids)

    nodes: Dict[str, DetectorNode] = {}
    attacker_id = node_ids[1]
    for node_id in node_ids:
        if protocol == "olsr":
            willingness = (Willingness.WILL_HIGH if node_id == attacker_id
                           else Willingness.WILL_DEFAULT)
            nodes[node_id] = DetectorNode(
                node_id,
                network,
                olsr_config=OlsrConfig(willingness=willingness),
                trust_parameters=trust_parameters,
                detection_config=detection_config or DetectionConfig(),
                seed=rng.randint(0, 2 ** 31),
            )
        else:
            nodes[node_id] = DetectorNode(
                node_id,
                network,
                protocol=protocol,
                trust_parameters=trust_parameters,
                detection_config=detection_config or DetectionConfig(),
                seed=rng.randint(0, 2 ** 31),
            )

    # Victim: the attacker's best-connected radio neighbour (fallback: n00).
    attacker_neighbors = network.neighbors_of(attacker_id)
    victim_id = node_ids[0]
    if attacker_neighbors:
        victim_id = max(
            attacker_neighbors,
            key=lambda nid: (len(network.neighbors_of(nid)), nid),
        )

    scenario = AttackScenario(name=f"manet-{node_count}n-{liar_count}liars-{threat}")
    if protocol == "olsr":
        # Pick targets matching the spoofing expression: phantom addresses for
        # variant 1, existing non-neighbours for variant 2, real neighbours
        # (other than the victim) for variant 3.
        if attack_variant == LinkSpoofingVariant.NON_EXISTENT_NEIGHBOR:
            spoof_targets = [f"phantom{seed}-{i}" for i in range(max(3, node_count // 3))]
        elif attack_variant == LinkSpoofingVariant.OMITTED_NEIGHBOR:
            omittable = sorted(nid for nid in attacker_neighbors if nid != victim_id)
            spoof_targets = omittable[: max(1, len(omittable) // 2)] or [victim_id]
        else:
            non_neighbors = [
                nid for nid in node_ids
                if nid not in attacker_neighbors and nid not in (attacker_id, victim_id)
            ]
            rng.shuffle(non_neighbors)
            spoof_targets = non_neighbors[: max(3, node_count // 3)] or [f"phantom{seed}"]

        attack = LinkSpoofingAttack(
            variant=attack_variant,
            target_addresses=spoof_targets,
        )
        attack.schedule.start_time = attack_start
        scenario.add(attacker_id, attack)
    else:
        # No OLSR HELLOs to forge: the attacker misbehaves on the forwarding
        # path itself, which every protocol backend exposes identically.
        base_attack = GrayholeAttack(
            drop_probability=drop_probability,
            rng=random.Random(stable_seed(seed, "base-grayhole")),
        )
        base_attack.schedule.start_time = attack_start
        scenario.add(attacker_id, base_attack)

    # Threat composition: extra payloads stacked on the spoofing attacker.
    adaptive_attacks: List = []
    if threat == "onoff-grayhole":
        scenario.add(attacker_id, OnOffDroppingAttack(
            drop_probability=drop_probability,
            on_duration=15.0, off_duration=15.0,
            start_time=attack_start,
            rng=random.Random(stable_seed(seed, "grayhole")),
        ))
    elif threat == "grayhole-liar":
        scenario.add(attacker_id, grayhole_liar_stack(
            protected_suspects={attacker_id},
            drop_probability=drop_probability,
            start_time=attack_start,
            rng=random.Random(stable_seed(seed, "grayhole")),
            liar_rng=random.Random(stable_seed(seed, "self-liar")),
        ))
    elif threat == "throttling-grayhole":
        # The adaptive tier: the attacker additionally grayholes, but paces
        # the dropping against its own trust as the victim scores it — the
        # probe is bound to the victim's trust manager (victim_id is chosen
        # above, before threat composition) and drive_netsim_scenario calls
        # observe() once per detection cycle.
        rider = ThresholdRidingGrayhole(
            max_drop_probability=drop_probability,
            schedule=AttackSchedule(start_time=attack_start),
            rng=random.Random(stable_seed(seed, "threshold-grayhole")),
        )
        rider.bind_probe(TrustProbe(nodes[victim_id].trust, attacker_id))
        scenario.add(attacker_id, rider)
        adaptive_attacks.append(rider)

    # Liars: sampled among the remaining nodes.
    candidates = [nid for nid in node_ids if nid not in (attacker_id, victim_id)]
    rng.shuffle(candidates)
    liar_ids = set(candidates[:liar_count])
    if threat in ("liar-clique", "rotating-clique"):
        # One shared decision stream: the clique never contradicts itself.
        # Intermittent lying (p < 1) is what coordination changes: either the
        # whole clique shields the attacker this epoch or the whole clique
        # answers honestly — independent liars at the same rate would split.
        # The rotating variant additionally fields only one active liar per
        # epoch (the rest answer honestly), starving the per-recommender
        # disagreement bookkeeping.
        clique_cls = RotatingLiarClique if threat == "rotating-clique" else LiarClique
        clique = clique_cls(protected_suspects={attacker_id},
                            lie_probability=0.9,
                            epoch_length=10.0,
                            seed=stable_seed(seed, "clique"))
        for liar_id in sorted(liar_ids):
            scenario.add(liar_id, clique.member(liar_id))
    else:
        for liar_id in sorted(liar_ids):
            # stable_seed keeps the per-liar streams disjoint: the old additive
            # ``seed + digest % 997`` capped the offset, allowing two liars to
            # collide on the same RNG stream.
            liar = LiarBehavior(protected_suspects={attacker_id},
                                rng=random.Random(stable_seed(seed, f"liar:{liar_id}")))
            scenario.add(liar_id, liar)

    scenario.install_all(nodes)

    built = SimulationScenario(
        network=network,
        nodes=nodes,
        attack_scenario=scenario,
        victim_id=victim_id,
        attacker_id=attacker_id,
        liar_ids=liar_ids,
        adaptive_attacks=adaptive_attacks,
    )
    built.start_all()
    built.bind_transports()
    return built
