"""Adaptivity experiment: time-to-detect vs adversary adaptivity.

The paper evaluates its detector against *open-loop* adversaries only; this
experiment (the repo's novel extension, named on the ROADMAP) sweeps the
adversary's adaptivity tier instead:

* ``static`` — the paper's adversary: permanent spoofing, every liar lies.
* ``throttling`` — a threshold rider: the attacker observes its own trust
  (as the investigator scores it, through a read-only
  :class:`~repro.attacks.adaptive.TrustProbe`) and pauses its misconduct
  whenever that trust nears the classification threshold, resuming once the
  forgetting factor restores headroom.
* ``rotating`` — a rotating liar clique: one active liar per round/epoch,
  the rest honest, starving the per-recommender bookkeeping.

Rows report when the investigator durably *distrusts* the attacker (trust
at or below :data:`DISTRUST_THRESHOLD`), when the decision rule first says
INTRUDER, and how the liars fare — the adaptive tiers trade attack volume
for longevity, so the interesting columns are the detection delays.

Both backends implement every tier: the oracle round loop natively
(``ScenarioConfig.adaptivity``), the netsim stack through the
``throttling-grayhole``/``rotating-clique`` threat compositions
(:func:`resolve_adaptivity_params` maps the axis value to the matching
threat, so ``--backend netsim`` just works).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.decision import DecisionOutcome
from repro.experiments.engine import (
    ExperimentDefinition,
    ExperimentSpec,
    register,
)
from repro.experiments.rounds import ExperimentResult

#: Trust level at/below which the investigator counts as having classified
#: the attacker (the "distrusted" line of the time-to-detect metric).  Sits
#: below the throttling adversary's default riding band
#: (``riding_threshold`` = 0.32), which is exactly what threshold riding
#: exploits.
DISTRUST_THRESHOLD = 0.25

#: Adaptivity tier → netsim threat composition implementing it.
ADAPTIVITY_THREATS = {
    "static": "link-spoofing",
    "throttling": "throttling-grayhole",
    "rotating": "rotating-clique",
}


def resolve_adaptivity_params(params: Dict[str, object]) -> Dict[str, object]:
    """Map the ``adaptivity`` axis onto the backend parameters.

    The oracle backend consumes ``adaptivity`` directly (a
    ``ScenarioConfig`` field); the netsim backend expresses the tier as a
    threat composition, defaulted here so an explicit ``--param threat=...``
    still wins.
    """
    mode = str(params.get("adaptivity", "static"))
    if mode not in ADAPTIVITY_THREATS:
        raise ValueError(
            f"unknown adaptivity {mode!r} "
            f"(expected one of {', '.join(sorted(ADAPTIVITY_THREATS))})")
    resolved = dict(params)
    resolved.setdefault("threat", ADAPTIVITY_THREATS[mode])
    return resolved


def time_to_distrust(result: ExperimentResult,
                     threshold: float = DISTRUST_THRESHOLD) -> Optional[int]:
    """Rounds until the investigator's trust in the attacker reaches
    ``threshold`` (1-based; ``None`` = the attacker survived the run)."""
    for record in result.rounds:
        snapshot = record.trust_snapshot
        if snapshot and snapshot.get(result.attacker, 1.0) <= threshold:
            return record.round_index + 1
    return None


def _rows(spec: ExperimentSpec, result: ExperimentResult) -> List[Dict[str, object]]:
    rounds = result.rounds
    investigated = [r for r in rounds if r.detect_value is not None]
    first_intruder = next(
        (r.round_index + 1 for r in rounds
         if r.outcome == DecisionOutcome.INTRUDER), None)
    attacker_curve = [r.trust_snapshot.get(result.attacker)
                      for r in rounds if r.trust_snapshot]
    attacker_curve = [v for v in attacker_curve if v is not None]
    liar_finals = []
    if rounds and rounds[-1].trust_snapshot:
        final_snapshot = rounds[-1].trust_snapshot
        liar_finals = [final_snapshot[liar] for liar in sorted(result.liars)
                       if liar in final_snapshot]
    return [{
        "adaptivity": str(spec.param("adaptivity", "static")),
        "rounds": len(rounds),
        "investigated": len(investigated),
        "time_to_distrust": time_to_distrust(result),
        "first_intruder_round": first_intruder,
        "final_attacker_trust": (round(attacker_curve[-1], 4)
                                 if attacker_curve else None),
        "min_attacker_trust": (round(min(attacker_curve), 4)
                               if attacker_curve else None),
        "liars_distrusted": sum(1 for v in liar_finals
                                if v <= DISTRUST_THRESHOLD),
        "min_liar_trust": (round(min(liar_finals), 4)
                           if liar_finals else None),
    }]


ADAPTIVITY_EXPERIMENT = register(ExperimentDefinition(
    name="adaptivity",
    description="time-to-detect vs adversary adaptivity (novel extension)",
    rows_from_result=_rows,
    axes={"adaptivity": ("static", "throttling", "rotating")},
    fixed={
        "rounds": 40,
        "total_nodes": 16,
        "liar_count": 4,
        # Deterministic starting point: every node at the default trust, so
        # the riding dynamics are about the feedback loop, not the draw.
        "random_initial_trust": False,
        # Netsim-backend pacing (ignored by the oracle): enough post-attack
        # cycles for the threat compositions to express themselves.
        "cycles": 8,
        "cycle_length": 10.0,
        "warmup": 35.0,
        "attack_start": 40.0,
    },
    resolve_params=resolve_adaptivity_params,
    default_backend="oracle",
    base_seed=29,
    report_title="Adaptivity — time-to-detect vs adversary adaptivity",
))
