"""AODV (RFC 3561) backend: reactive route discovery.

A deliberately compact Ad hoc On-Demand Distance Vector implementation:
periodic HELLO beacons for neighbour sensing, RREQ flooding with
per-(originator, id) duplicate suppression, RREP unicast back along the
reverse route, RERR propagation on broken links, destination sequence
numbers for freshness, hop-count metric, and active-route expiry.  Data
packets with no route are buffered while a route discovery runs, matching
the protocol's on-demand character.

The implementation reuses the protocol-agnostic machinery of
:class:`repro.routing.base.RoutingProtocol` — audit logging, attack hooks,
the data plane — so drop attacks and the misbehaviour detector work on AODV
exactly as they do on OLSR: relayed RREQs are logged with their
``(origin, seq)`` pair (the duplicate-suppression invariant applies
unchanged), and vetoed relays surface as ``DROP`` records the log analyzer
turns into evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.logs.records import LogCategory
from repro.routing.base import DataPacket, RoutingProtocol
from repro.routing.registry import register_protocol


@dataclass
class AodvConfig:
    """Per-node AODV configuration (RFC 3561 defaults, scaled to the sim)."""

    hello_interval: float = 2.0
    #: HELLOs that may be missed before the neighbour is considered lost.
    allowed_hello_loss: int = 2
    active_route_timeout: float = 15.0
    #: Hold time of the (originator, rreq_id) duplicate table.
    path_discovery_time: float = 5.0
    rreq_ttl: int = 16
    #: Route-discovery retries before buffered packets are dropped.
    rreq_retries: int = 2
    rreq_retry_interval: float = 2.0
    housekeeping_interval: float = 1.0
    emission_jitter: float = 0.5
    start_delay_max: float = 1.0
    forward_jitter: float = 0.1
    #: Packets buffered per destination while discovery is in flight.
    buffer_limit: int = 16

    @property
    def neighbor_hold_time(self) -> float:
        """How long a neighbour survives without a fresh HELLO."""
        return self.hello_interval * self.allowed_hello_loss + self.emission_jitter


# ------------------------------------------------------------------ messages
@dataclass(slots=True)
class AodvHello:
    """1-hop beacon used for neighbour sensing (RFC 3561 §6.9)."""

    originator: str
    seq: int
    message_type: str = "AODV_HELLO"

    def size_bytes(self) -> int:
        return 24


@dataclass(slots=True)
class RouteRequest:
    """RREQ flooded toward an unknown destination (RFC 3561 §6.3)."""

    originator: str
    rreq_id: int
    originator_seq: int
    destination: str
    destination_seq: Optional[int]
    hop_count: int = 0
    ttl: int = 16
    message_type: str = "RREQ"

    def size_bytes(self) -> int:
        return 24


@dataclass(slots=True)
class RouteReply:
    """RREP unicast back along the reverse route (RFC 3561 §6.6)."""

    originator: str  # the RREQ originator the reply travels toward
    destination: str  # the route target being answered for
    destination_seq: int
    hop_count: int
    lifetime: float
    message_type: str = "RREP"

    def size_bytes(self) -> int:
        return 20


@dataclass(slots=True)
class RouteError:
    """RERR listing destinations that became unreachable (RFC 3561 §6.11)."""

    originator: str
    unreachable: Tuple[Tuple[str, int], ...]
    message_type: str = "RERR"

    def size_bytes(self) -> int:
        return 12 + 8 * len(self.unreachable)


# --------------------------------------------------------------- route table
@dataclass
class AodvRoute:
    """One routing-table entry (RFC 3561 §6.2)."""

    destination: str
    next_hop: str
    hop_count: int
    destination_seq: int
    expiry_time: float
    valid: bool = True

    def is_active(self, now: float) -> bool:
        return self.valid and self.expiry_time > now


class AodvNode(RoutingProtocol):
    """One AODV router attached to a simulated network."""

    protocol_name = "aodv"

    def __init__(
        self,
        node_id: str,
        network,
        config: Optional[AodvConfig] = None,
        log_store=None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(node_id, network, log_store=log_store, seed=seed)
        self.config = config if isinstance(config, AodvConfig) else AodvConfig()
        self.sequence_number = 0
        self._rreq_id = 0
        self.routes: Dict[str, AodvRoute] = {}
        self._neighbor_expiry: Dict[str, float] = {}
        self._seen_rreqs: Dict[Tuple[str, int], float] = {}
        self._pending: Dict[str, List[DataPacket]] = {}
        #: Per-destination discovery state: (attempts, next_retry_time).
        self._discovery: Dict[str, Tuple[int, float]] = {}

    # ------------------------------------------------------------------ life
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.log.log(self.now, LogCategory.SYSTEM, "NODE_STARTED",
                     protocol=self.protocol_name)
        start_delay = self.rng.uniform(0.0, self.config.start_delay_max)
        self._schedule_periodic(
            self.config.hello_interval,
            self._emit_hello,
            start_delay=start_delay,
            jitter=self.config.emission_jitter,
            rng=self.rng,
        )
        self._schedule_periodic(
            self.config.housekeeping_interval,
            self._housekeeping,
            start_delay=self.config.housekeeping_interval,
        )

    # ----------------------------------------------------------- state views
    def symmetric_neighbors(self) -> Set[str]:
        now = self.now
        return {n for n, expiry in self._neighbor_expiry.items() if expiry > now}

    def next_hop(self, destination: str) -> Optional[str]:
        route = self.routes.get(destination)
        if route is None or not route.is_active(self.now):
            return None
        # Using a route keeps it alive (RFC 3561 §6.2).
        route.expiry_time = max(route.expiry_time,
                                self.now + self.config.active_route_timeout)
        return route.next_hop

    def route_distance(self, destination: str) -> Optional[int]:
        route = self.routes.get(destination)
        if route is None or not route.is_active(self.now):
            return None
        return route.hop_count

    def known_destinations(self) -> Set[str]:
        now = self.now
        return {d for d, r in self.routes.items() if r.is_active(now)}

    def routing_entries(self) -> List[Tuple[str, str, int, int, bool]]:
        """Stable snapshot of the route table, for tests and reports."""
        return [
            (d, r.next_hop, r.hop_count, r.destination_seq, r.is_active(self.now))
            for d, r in sorted(self.routes.items())
        ]

    # -------------------------------------------------------------- reception
    def handle_control(self, payload: object, last_hop: str) -> None:
        # Drop copies of our own flooded messages; a RouteReply is exempt
        # because its ``originator`` names the requester it travels toward.
        if (not isinstance(payload, RouteReply)
                and getattr(payload, "originator", None) == self.node_id):
            return
        if isinstance(payload, (AodvHello, RouteRequest, RouteReply, RouteError)):
            for tap in self.message_taps:
                tap(payload, last_hop, self)
            self.stats.record_received(payload.message_type)
        if isinstance(payload, AodvHello):
            self._on_hello(payload, last_hop)
        elif isinstance(payload, RouteRequest):
            self._on_rreq(payload, last_hop)
        elif isinstance(payload, RouteReply):
            self._on_rrep(payload, last_hop)
        elif isinstance(payload, RouteError):
            self._on_rerr(payload, last_hop)

    # ---------------------------------------------------------------- beacons
    def _emit_hello(self) -> None:
        if not self._started:
            return
        hello = AodvHello(originator=self.node_id, seq=self.sequence_number)
        self.interface.broadcast(hello, size_bytes=hello.size_bytes())
        self.stats.record_sent("AODV_HELLO")
        self.log.log(self.now, LogCategory.MESSAGE_TX, "AODV_HELLO",
                     seq=hello.seq)

    def _on_hello(self, hello: AodvHello, last_hop: str) -> None:
        now = self.now
        origin = hello.originator
        known = self._neighbor_expiry.get(origin, 0.0) > now
        self._neighbor_expiry[origin] = now + self.config.neighbor_hold_time
        if not known:
            self.log.log(now, LogCategory.NEIGHBOR, "NEIGHBOR_ADDED",
                         neighbor=origin)
        self._update_route(origin, origin, 1, hello.seq,
                           lifetime=self.config.neighbor_hold_time)

    # -------------------------------------------------------- route discovery
    def _on_rreq(self, rreq: RouteRequest, last_hop: str) -> None:
        now = self.now
        self.log.log(now, LogCategory.MESSAGE_RX, "RREQ",
                     origin=rreq.originator, last_hop=last_hop,
                     seq=rreq.rreq_id, destination=rreq.destination,
                     ttl=rreq.ttl, hops=rreq.hop_count)
        key = (rreq.originator, rreq.rreq_id)
        if self._seen_rreqs.get(key, 0.0) > now:
            self.stats.duplicates_suppressed += 1
            self.log.log(now, LogCategory.DUPLICATE, "DUPLICATE_DETECTED",
                         origin=rreq.originator, seq=rreq.rreq_id)
            return
        self._seen_rreqs[key] = now + self.config.path_discovery_time

        # Reverse route toward the originator (RFC 3561 §6.5).
        self._update_route(rreq.originator, last_hop, rreq.hop_count + 1,
                           rreq.originator_seq)

        if rreq.destination == self.node_id:
            # We are the destination: answer with a fresh sequence number.
            self.sequence_number = max(self.sequence_number,
                                       rreq.destination_seq or 0) + 1
            self._send_rrep(
                requester=rreq.originator,
                target=self.node_id,
                target_seq=self.sequence_number,
                hop_count=0,
                via=last_hop,
            )
            return

        route = self.routes.get(rreq.destination)
        if route is not None and route.is_active(now) and (
            rreq.destination_seq is None
            or route.destination_seq >= rreq.destination_seq
        ):
            # Intermediate node with a fresh-enough route replies itself.
            self._send_rrep(
                requester=rreq.originator,
                target=rreq.destination,
                target_seq=route.destination_seq,
                hop_count=route.hop_count,
                via=last_hop,
            )
            return

        self._forward_rreq(rreq, last_hop)

    def _forward_rreq(self, rreq: RouteRequest, last_hop: str) -> None:
        if rreq.ttl <= 1:
            self.log.log(self.now, LogCategory.DROP, "TTL_EXPIRED",
                         origin=rreq.originator, seq=rreq.rreq_id)
            return
        for forward_filter in self.forward_filters:
            if not forward_filter(rreq, last_hop, self):
                self.stats.messages_dropped += 1
                self.log.log(self.now, LogCategory.DROP, "FILTERED",
                             origin=rreq.originator, seq=rreq.rreq_id,
                             reason="forward_filter", last_hop=last_hop)
                return
        forwarded = replace(rreq, hop_count=rreq.hop_count + 1, ttl=rreq.ttl - 1)
        delay = self.rng.uniform(0.0, self.config.forward_jitter)
        self.simulator.post(delay, self._broadcast, forwarded)
        self.stats.messages_forwarded += 1
        self.log.log(self.now, LogCategory.FORWARD, "RELAYED",
                     origin=rreq.originator, seq=rreq.rreq_id,
                     ttl=forwarded.ttl, last_hop=last_hop)

    def _broadcast(self, message) -> None:
        self.interface.broadcast(message, size_bytes=message.size_bytes())

    def _send_rrep(self, requester: str, target: str, target_seq: int,
                   hop_count: int, via: str) -> None:
        rrep = RouteReply(
            originator=requester,
            destination=target,
            destination_seq=target_seq,
            hop_count=hop_count,
            lifetime=self.config.active_route_timeout,
        )
        self.interface.unicast(via, rrep, size_bytes=rrep.size_bytes())
        self.stats.record_sent("RREP")
        self.log.log(self.now, LogCategory.MESSAGE_TX, "RREP",
                     destination=target, requester=requester,
                     seq=target_seq, hops=hop_count)

    def _on_rrep(self, rrep: RouteReply, last_hop: str) -> None:
        self.log.log(self.now, LogCategory.MESSAGE_RX, "RREP",
                     origin=rrep.destination, last_hop=last_hop,
                     seq=rrep.destination_seq, hops=rrep.hop_count)
        # Forward route toward the replied-for target (RFC 3561 §6.7).
        self._update_route(rrep.destination, last_hop, rrep.hop_count + 1,
                           rrep.destination_seq, lifetime=rrep.lifetime)
        if rrep.originator == self.node_id:
            return  # discovery complete; pending traffic was flushed on update
        reverse = self.routes.get(rrep.originator)
        if reverse is None or not reverse.is_active(self.now):
            self.log.log(self.now, LogCategory.DROP, "FILTERED",
                         reason="no_reverse_route", origin=rrep.destination,
                         destination=rrep.originator)
            return
        for forward_filter in self.forward_filters:
            if not forward_filter(rrep, last_hop, self):
                self.stats.messages_dropped += 1
                self.log.log(self.now, LogCategory.DROP, "FILTERED",
                             origin=rrep.destination, reason="forward_filter",
                             last_hop=last_hop)
                return
        forwarded = replace(rrep, hop_count=rrep.hop_count + 1)
        self.interface.unicast(reverse.next_hop, forwarded,
                               size_bytes=forwarded.size_bytes())
        self.stats.messages_forwarded += 1
        # No ``seq`` field: RREPs are unicast, the flooding invariant does
        # not apply to them (mirrors the data-plane relay records).
        self.log.log(self.now, LogCategory.FORWARD, "RELAYED",
                     origin=rrep.destination, destination=rrep.originator,
                     kind="rrep")

    # ------------------------------------------------------------ route errors
    def _on_rerr(self, rerr: RouteError, last_hop: str) -> None:
        self.log.log(self.now, LogCategory.MESSAGE_RX, "RERR",
                     origin=rerr.originator, last_hop=last_hop,
                     unreachable=[d for d, _ in rerr.unreachable])
        invalidated: List[Tuple[str, int]] = []
        for destination, seq in rerr.unreachable:
            route = self.routes.get(destination)
            if route is not None and route.valid and route.next_hop == last_hop:
                route.valid = False
                route.destination_seq = max(route.destination_seq, seq)
                self.log.log(self.now, LogCategory.ROUTE, "ROUTE_INVALIDATED",
                             destination=destination, via=last_hop)
                invalidated.append((destination, route.destination_seq))
        if invalidated:
            self._broadcast_rerr(invalidated)

    def _broadcast_rerr(self, unreachable: List[Tuple[str, int]]) -> None:
        rerr = RouteError(originator=self.node_id,
                          unreachable=tuple(sorted(unreachable)))
        self.interface.broadcast(rerr, size_bytes=rerr.size_bytes())
        self.stats.record_sent("RERR")
        self.log.log(self.now, LogCategory.MESSAGE_TX, "RERR",
                     unreachable=[d for d, _ in rerr.unreachable])

    # ------------------------------------------------------------- data plane
    def _on_no_route(self, packet: DataPacket) -> bool:
        if packet.source == self.node_id:
            queue = self._pending.setdefault(packet.destination, [])
            if len(queue) >= self.config.buffer_limit:
                self.log.log(self.now, LogCategory.DROP, "FILTERED",
                             reason="buffer_full", destination=packet.destination)
                return False
            queue.append(packet)
            if packet.destination not in self._discovery:
                self._originate_rreq(packet.destination)
            return True
        # Transiting packet hit a broken route: drop and report upstream.
        self.log.log(self.now, LogCategory.DROP, "FILTERED",
                     reason="no_route", origin=packet.source,
                     destination=packet.destination)
        route = self.routes.get(packet.destination)
        seq = route.destination_seq + 1 if route is not None else 1
        self._broadcast_rerr([(packet.destination, seq)])
        return False

    def _originate_rreq(self, destination: str) -> None:
        now = self.now
        self._rreq_id += 1
        self.sequence_number += 1
        known = self.routes.get(destination)
        rreq = RouteRequest(
            originator=self.node_id,
            rreq_id=self._rreq_id,
            originator_seq=self.sequence_number,
            destination=destination,
            destination_seq=known.destination_seq if known is not None else None,
            hop_count=0,
            ttl=self.config.rreq_ttl,
        )
        self._seen_rreqs[(self.node_id, self._rreq_id)] = (
            now + self.config.path_discovery_time
        )
        attempts, _ = self._discovery.get(destination, (0, 0.0))
        self._discovery[destination] = (
            attempts + 1, now + self.config.rreq_retry_interval
        )
        self._broadcast(rreq)
        self.stats.record_sent("RREQ")
        self.log.log(now, LogCategory.MESSAGE_TX, "RREQ",
                     destination=destination, seq=rreq.rreq_id,
                     originator_seq=rreq.originator_seq, ttl=rreq.ttl)

    def _flush_pending(self, destination: str) -> None:
        self._discovery.pop(destination, None)
        for packet in self._pending.pop(destination, []):
            self._route_data(packet)

    # --------------------------------------------------------------- routes
    def _update_route(self, destination: str, next_hop: str, hop_count: int,
                      destination_seq: int, lifetime: Optional[float] = None) -> None:
        if destination == self.node_id:
            return
        now = self.now
        hold = lifetime if lifetime is not None else self.config.active_route_timeout
        route = self.routes.get(destination)
        fresher = (
            route is None
            or not route.is_active(now)
            or destination_seq > route.destination_seq
            or (destination_seq == route.destination_seq
                and hop_count < route.hop_count)
        )
        if fresher:
            changed = (
                route is None or not route.valid
                or route.next_hop != next_hop or route.hop_count != hop_count
            )
            self.routes[destination] = AodvRoute(
                destination=destination,
                next_hop=next_hop,
                hop_count=hop_count,
                destination_seq=destination_seq,
                expiry_time=now + hold,
                valid=True,
            )
            if changed:
                self.log.log(now, LogCategory.ROUTE, "ROUTE_UPDATED",
                             destination=destination, next_hop=next_hop,
                             hops=hop_count, seq=destination_seq)
        elif (route.valid and route.next_hop == next_hop
              and route.hop_count == hop_count):
            route.expiry_time = max(route.expiry_time, now + hold)
        if destination in self._pending and self.routes[destination].is_active(now):
            self._flush_pending(destination)

    # ------------------------------------------------------------ maintenance
    def _housekeeping(self) -> None:
        now = self.now
        lost = sorted(n for n, expiry in self._neighbor_expiry.items()
                      if expiry <= now)
        for neighbor in lost:
            del self._neighbor_expiry[neighbor]
            self.log.log(now, LogCategory.LINK, "LINK_EXPIRED", neighbor=neighbor)
            self.log.log(now, LogCategory.NEIGHBOR, "NEIGHBOR_REMOVED",
                         neighbor=neighbor)
        if lost:
            broken: List[Tuple[str, int]] = []
            for destination in sorted(self.routes):
                route = self.routes[destination]
                if route.valid and route.next_hop in set(lost):
                    route.valid = False
                    route.destination_seq += 1
                    self.log.log(now, LogCategory.ROUTE, "ROUTE_INVALIDATED",
                                 destination=destination, via=route.next_hop,
                                 reason="link_lost")
                    broken.append((destination, route.destination_seq))
            if broken:
                self._broadcast_rerr(broken)
        for destination in sorted(self.routes):
            route = self.routes[destination]
            if route.valid and route.expiry_time <= now:
                route.valid = False
                self.log.log(now, LogCategory.ROUTE, "ROUTE_EXPIRED",
                             destination=destination)
        self._seen_rreqs = {k: v for k, v in self._seen_rreqs.items() if v > now}
        self._retry_discoveries(now)

    def _retry_discoveries(self, now: float) -> None:
        for destination in sorted(self._discovery):
            attempts, next_retry = self._discovery[destination]
            if now < next_retry:
                continue
            if self.next_hop(destination) is not None:
                self._flush_pending(destination)
            elif attempts > self.config.rreq_retries:
                del self._discovery[destination]
                for packet in self._pending.pop(destination, []):
                    self.log.log(now, LogCategory.DROP, "FILTERED",
                                 reason="route_discovery_failed",
                                 destination=destination)
            else:
                self._originate_rreq(destination)

    # ---------------------------------------------------------------- helpers
    def describe(self) -> Dict[str, object]:
        data = super().describe()
        data["sequence_number"] = self.sequence_number
        data["pending_discoveries"] = sorted(self._discovery)
        return data


def _build_aodv(node_id, network, config=None, log_store=None, seed=None):
    return AodvNode(node_id, network, config=config,
                    log_store=log_store, seed=seed)


register_protocol(
    "aodv",
    _build_aodv,
    "AODV (RFC 3561): reactive RREQ/RREP/RERR discovery, sequence numbers, "
    "route expiry, hop-count metric",
)
