"""Registry of routing-protocol backends.

Experiments select a backend by name (the ``protocol`` engine axis); the
registry maps that name to a factory building one router instance per node.
Built-in backends register themselves on first use via a lazy import, so
``import repro.routing`` stays cheap and free of circular imports.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.routing.base import RoutingProtocol

#: Modules that register the built-in backends as an import side effect.
_BUILTIN_MODULES = (
    "repro.olsr.node",
    "repro.routing.aodv",
    "repro.routing.geo",
)

_REGISTRY: Dict[str, "ProtocolInfo"] = {}
_builtins_loaded = False


@dataclass(frozen=True)
class ProtocolInfo:
    """One registered routing backend."""

    name: str
    factory: Callable[..., RoutingProtocol]
    description: str = ""


class UnknownProtocolError(KeyError):
    """Raised when a protocol name is not in the registry."""


def register_protocol(
    name: str,
    factory: Callable[..., RoutingProtocol],
    description: str = "",
) -> None:
    """Register a backend factory under ``name``.

    The factory is called as ``factory(node_id, network, config=...,
    log_store=..., seed=...)`` and must return a started-able
    :class:`~repro.routing.base.RoutingProtocol`.  Re-registering a name
    replaces the previous entry (useful in tests).
    """
    _REGISTRY[name] = ProtocolInfo(name=name, factory=factory,
                                   description=description)


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module_name in _BUILTIN_MODULES:
        importlib.import_module(module_name)


def get_protocol(name: str) -> ProtocolInfo:
    """Look up one backend; raises :class:`UnknownProtocolError` if absent."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise UnknownProtocolError(
            f"unknown routing protocol {name!r} (registered: {known})"
        ) from None


def list_protocols() -> List[ProtocolInfo]:
    """All registered backends, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def create_protocol(
    name: str,
    node_id: str,
    network,
    config: Optional[object] = None,
    log_store=None,
    seed: Optional[int] = None,
) -> RoutingProtocol:
    """Instantiate one router of protocol ``name`` attached to ``network``."""
    info = get_protocol(name)
    return info.factory(node_id, network, config=config,
                        log_store=log_store, seed=seed)
