"""Greedy geographic routing backend.

Position-based forwarding: each node periodically beacons its own
coordinates, keeps a position table of its 1-hop neighbours, and forwards a
data packet to the neighbour geographically closest to the destination —
provided that neighbour is strictly closer than the node itself (greedy
progress).  When greedy forwarding hits a local minimum (no neighbour makes
progress — a "dead end" in the topology), a *perimeter fallback stub* takes
over: the packet is handed to the closest neighbour not yet on its path,
a simplified stand-in for GPSR's full perimeter (face) mode that is enough
to escape shallow voids and is clearly marked in the audit log.

Destination coordinates come from :meth:`repro.netsim.network.Network.
position_of` — an idealised location service (every geo-routing deployment
assumes one, e.g. GLS); only the *destination* lookup uses it, neighbour
positions travel in beacons like on a real radio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.logs.records import LogCategory
from repro.routing.base import DataPacket, RoutingProtocol
from repro.routing.registry import register_protocol


@dataclass
class GeoConfig:
    """Per-node configuration of the greedy-geo backend."""

    beacon_interval: float = 2.0
    #: Beacons that may be missed before the neighbour is considered gone.
    allowed_beacon_loss: int = 2
    housekeeping_interval: float = 1.0
    emission_jitter: float = 0.5
    start_delay_max: float = 1.0

    @property
    def neighbor_hold_time(self) -> float:
        """How long a neighbour survives without a fresh beacon."""
        return self.beacon_interval * self.allowed_beacon_loss + self.emission_jitter


@dataclass(slots=True)
class GeoBeacon:
    """1-hop position announcement."""

    originator: str
    position: Tuple[float, float]
    message_type: str = "GEO_BEACON"

    def size_bytes(self) -> int:
        return 28


class GreedyGeoNode(RoutingProtocol):
    """One greedy geographic router attached to a simulated network."""

    protocol_name = "geo"

    def __init__(
        self,
        node_id: str,
        network,
        config: Optional[GeoConfig] = None,
        log_store=None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(node_id, network, log_store=log_store, seed=seed)
        self.config = config if isinstance(config, GeoConfig) else GeoConfig()
        #: neighbour -> (position, expiry_time)
        self.neighbor_positions: Dict[str, Tuple[Tuple[float, float], float]] = {}
        self.perimeter_fallbacks = 0

    # ------------------------------------------------------------------ life
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.log.log(self.now, LogCategory.SYSTEM, "NODE_STARTED",
                     protocol=self.protocol_name)
        start_delay = self.rng.uniform(0.0, self.config.start_delay_max)
        self._schedule_periodic(
            self.config.beacon_interval,
            self._emit_beacon,
            start_delay=start_delay,
            jitter=self.config.emission_jitter,
            rng=self.rng,
        )
        self._schedule_periodic(
            self.config.housekeeping_interval,
            self._housekeeping,
            start_delay=self.config.housekeeping_interval,
        )

    # ----------------------------------------------------------- state views
    def symmetric_neighbors(self) -> Set[str]:
        now = self.now
        return {n for n, (_, expiry) in self.neighbor_positions.items()
                if expiry > now}

    def known_destinations(self) -> Set[str]:
        return self.symmetric_neighbors()

    def route_distance(self, destination: str) -> Optional[int]:
        return 1 if destination in self.symmetric_neighbors() else None

    # -------------------------------------------------------------- reception
    def handle_control(self, payload: object, last_hop: str) -> None:
        if not isinstance(payload, GeoBeacon):
            return
        if payload.originator == self.node_id:
            return
        for tap in self.message_taps:
            tap(payload, last_hop, self)
        self.stats.record_received("GEO_BEACON")
        now = self.now
        origin = payload.originator
        known = origin in self.neighbor_positions and \
            self.neighbor_positions[origin][1] > now
        self.neighbor_positions[origin] = (
            tuple(payload.position), now + self.config.neighbor_hold_time
        )
        if not known:
            self.log.log(now, LogCategory.NEIGHBOR, "NEIGHBOR_ADDED",
                         neighbor=origin)

    def _emit_beacon(self) -> None:
        if not self._started:
            return
        beacon = GeoBeacon(originator=self.node_id,
                           position=tuple(self.network.position_of(self.node_id)))
        self.interface.broadcast(beacon, size_bytes=beacon.size_bytes())
        self.stats.record_sent("GEO_BEACON")
        self.log.log(self.now, LogCategory.MESSAGE_TX, "GEO_BEACON",
                     position=list(beacon.position))

    def _housekeeping(self) -> None:
        now = self.now
        for neighbor in sorted(n for n, (_, expiry)
                               in self.neighbor_positions.items()
                               if expiry <= now):
            del self.neighbor_positions[neighbor]
            self.log.log(now, LogCategory.NEIGHBOR, "NEIGHBOR_REMOVED",
                         neighbor=neighbor)

    # ------------------------------------------------------------- forwarding
    def _destination_position(self, destination: str) -> Optional[Tuple[float, float]]:
        try:
            return tuple(self.network.position_of(destination))
        except KeyError:
            return None

    def _greedy_choice(self, destination: str,
                       exclude: Set[str]) -> Tuple[Optional[str], bool]:
        """(next hop, used perimeter fallback) toward ``destination``.

        Greedy mode picks the strictly-closest-to-destination neighbour;
        when none makes progress the perimeter stub picks the closest
        neighbour not yet visited by the packet.
        """
        target = self._destination_position(destination)
        if target is None:
            return None, False
        now = self.now
        candidates = {
            n: pos for n, (pos, expiry) in self.neighbor_positions.items()
            if expiry > now and n not in exclude
        }
        if destination in candidates:
            return destination, False
        if not candidates:
            return None, False
        own = tuple(self.network.position_of(self.node_id))
        own_distance = math.dist(own, target)
        # Deterministic tie-break: distance first, then node id.
        best, best_distance = min(
            ((n, math.dist(pos, target)) for n, pos in candidates.items()),
            key=lambda item: (item[1], item[0]),
        )
        if best_distance < own_distance:
            return best, False
        return best, True  # perimeter fallback stub: no greedy progress

    def next_hop(self, destination: str) -> Optional[str]:
        choice, _ = self._greedy_choice(destination, exclude=set())
        return choice

    def next_hop_for(self, packet: DataPacket) -> Optional[str]:
        exclude = set(packet.hops) - {packet.destination}
        choice, fallback = self._greedy_choice(packet.destination, exclude)
        if fallback:
            self.perimeter_fallbacks += 1
            self.log.log(self.now, LogCategory.ROUTE, "PERIMETER_FALLBACK",
                         destination=packet.destination, via=choice)
        return choice

    # ---------------------------------------------------------------- helpers
    def describe(self) -> Dict[str, object]:
        data = super().describe()
        data["perimeter_fallbacks"] = self.perimeter_fallbacks
        return data


def _build_geo(node_id, network, config=None, log_store=None, seed=None):
    return GreedyGeoNode(node_id, network, config=config,
                         log_store=log_store, seed=seed)


register_protocol(
    "geo",
    _build_geo,
    "greedy geographic routing: position beacons, closest-to-destination "
    "next hop, perimeter fallback stub",
)
