"""Protocol-agnostic routing layer.

Architecture
------------
The paper's misbehaviour detector judges *forwarding behaviour*; nothing in
its evidence/trust/investigation pipeline cares which routing protocol
produced the routes.  This package is the seam that keeps it that way:

* :class:`~repro.routing.base.RoutingProtocol` is the contract every
  backend implements.  It owns the protocol-agnostic machinery — network
  attachment and frame dispatch, the per-node audit
  :class:`~repro.logs.store.LogStore`, deterministic per-node randomness,
  transmission statistics, the attack hooks (``forward_filters``,
  ``message_taps``, ``data_handlers``) and the hop-by-hop data plane —
  and requires four protocol-specific pieces:

  ====================================  =======================================
  ``start()``                           schedule periodic control traffic
  ``symmetric_neighbors()``             neighbour discovery result
  ``next_hop(destination)``             route lookup (``None`` = unroutable)
  ``handle_control(payload, last_hop)`` process one received control payload
  ====================================  =======================================

  Optional refinements: ``next_hop_for(packet)`` (per-packet routing, used
  by geo to avoid revisiting hops), ``_on_no_route(packet)`` (reactive
  protocols buffer + discover), ``_data_filter_probe(packet)`` (what drop
  attacks see on the data path), and the detector-integration views
  (``local_topology_answer``, ``peer_advertises``, ``coverage_of``,
  ``providers_of``, ``is_mpr_selector``) that default to "not tracked".

* The **registry** maps protocol names to factories so experiments sweep
  routing protocols like any other axis
  (``--axis protocol=olsr,aodv,geo``).  Registering a new backend::

      from repro.routing import RoutingProtocol, register_protocol

      class MyProtocol(RoutingProtocol):
          protocol_name = "mine"
          ...

      register_protocol(
          "mine",
          lambda node_id, network, config=None, log_store=None, seed=None:
              MyProtocol(node_id, network, config=config,
                         log_store=log_store, seed=seed),
          "one-line description shown by `repro.experiments list`",
      )

  Built-in backends (OLSR from :mod:`repro.olsr.node`, AODV from
  :mod:`repro.routing.aodv`, greedy-geo from :mod:`repro.routing.geo`)
  self-register on first registry use via a lazy import, so importing this
  package stays cheap and cycle-free.

Because attacks attach to the *base-class* hooks and the detector consumes
the *audit log*, a backend registered here automatically works with the
drop/liar/clique attack library, the cooperative investigation protocol,
and the validation invariants that are not OLSR-specific.
"""

from repro.routing.base import DataPacket, ForwardProbe, RoutingProtocol
from repro.routing.registry import (
    ProtocolInfo,
    UnknownProtocolError,
    create_protocol,
    get_protocol,
    list_protocols,
    register_protocol,
)

__all__ = [
    "DataPacket",
    "ForwardProbe",
    "RoutingProtocol",
    "ProtocolInfo",
    "UnknownProtocolError",
    "create_protocol",
    "get_protocol",
    "list_protocols",
    "register_protocol",
]
