"""The protocol-agnostic routing substrate.

:class:`RoutingProtocol` owns everything a MANET router needs that is *not*
specific to one protocol: the attachment to the simulated network (interface
creation, frame dispatch), the per-node audit :class:`~repro.logs.store.
LogStore` the paper's detector consumes, deterministic per-node randomness,
transmission statistics, the attack/monitoring hooks, and the hop-by-hop
data plane.  Concrete backends (OLSR, AODV, greedy-geo, …) implement the
protocol-specific quartet — neighbour discovery, route computation, next-hop
lookup, and control-message handling — plus their own periodic lifecycle.

Attack modules never patch protocol classes; they register *hooks*:

* ``forward_filters`` — veto the relaying of a message (blackhole/grayhole).
  Filters receive an object exposing at least ``originator`` and
  ``message_type``; on the data path that object comes from
  :meth:`RoutingProtocol._data_filter_probe`.
* ``message_taps`` — observe every received control message (wormhole
  recording, watchdog-style monitoring).
* ``data_handlers`` — deliver data packets addressed to this node.

Protocol-specific hooks (e.g. OLSR's ``hello_mutators``/``tc_mutators``)
live on the backends that define the corresponding messages.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Set

from repro.logs.records import LogCategory
from repro.logs.store import LogStore
from repro.netsim.packet import Frame
from repro.netsim.stats import NodeStatistics
from repro.seeding import stable_digest


@dataclass(slots=True)
class DataPacket:
    """Minimal data-plane payload routed hop-by-hop over protocol routes."""

    source: str
    destination: str
    payload: object
    ttl: int = 32
    hops: List[str] = field(default_factory=list)


@dataclass(slots=True)
class ForwardProbe:
    """Stand-in handed to ``forward_filters`` on the data path.

    Protocols whose control messages are not OLSR messages still need to
    expose the data-forwarding decision to drop attacks; the probe carries
    the attributes those filters inspect (``originator``, ``message_type``).
    """

    originator: str
    message_type: str = "DATA"
    message_seq_number: int = 0


class RoutingProtocol(abc.ABC):
    """One router attached to a simulated network.

    The contract every backend implements:

    * :meth:`start` — schedule periodic control traffic and housekeeping.
    * :meth:`symmetric_neighbors` — current bidirectional 1-hop neighbours
      (neighbour discovery).
    * :meth:`next_hop` — next-hop lookup toward a destination (``None``
      when no route is known).
    * :meth:`handle_control` — process one received control payload.

    Everything else (data plane, frame dispatch, detector integration)
    has shared default behaviour that backends may refine.
    """

    #: Registry name of the protocol; used in reports and log records.
    protocol_name: ClassVar[str] = "generic"

    def __init__(
        self,
        node_id: str,
        network,
        log_store: Optional[LogStore] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.simulator = network.simulator
        self.log = log_store or LogStore(node_id)
        self.rng = random.Random(seed if seed is not None else stable_digest(node_id) & 0xFFFF)
        self.stats = NodeStatistics()

        # Attack / monitoring hooks (protocol-agnostic).
        self.forward_filters: List[Callable] = []
        self.message_taps: List[Callable] = []
        self.data_handlers: List[Callable[[DataPacket, str], None]] = []

        self._started = False
        #: Periodic-chain handles registered via :meth:`_schedule_periodic`;
        #: cancelled wholesale by :meth:`stop`.
        self._periodic_handles: List = []
        self.interface = network.interfaces.get(node_id)
        if self.interface is None:
            self.interface = network.create_interface(node_id)
        self.interface.bind(self._on_frame)
        network.attach_node(node_id, self)

    # ------------------------------------------------------------------ life
    @abc.abstractmethod
    def start(self) -> None:
        """Begin periodic control-traffic emission and housekeeping."""

    def stop(self) -> None:
        """Stop the node: cancel its periodic timers and go silent.

        The interface stays registered (frames still reach ``_on_frame``)
        but all control-traffic and housekeeping chains registered through
        :meth:`_schedule_periodic` are cancelled, so a stopped node leaves
        no live events behind in the engine.
        """
        self._started = False
        for handle in self._periodic_handles:
            handle.cancel()
        self._periodic_handles.clear()
        self.log.log(self.now, LogCategory.SYSTEM, "NODE_STOPPED")

    def _schedule_periodic(self, interval: float, callback: Callable, *args,
                           **kwargs):
        """Register a periodic chain owned by this node's lifecycle.

        Thin wrapper over ``simulator.schedule_periodic`` that records the
        handle so :meth:`stop` can cancel the chain.
        """
        handle = self.simulator.schedule_periodic(interval, callback, *args,
                                                  **kwargs)
        self._periodic_handles.append(handle)
        return handle

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.simulator.now

    # ----------------------------------------------------------- state views
    @abc.abstractmethod
    def symmetric_neighbors(self) -> Set[str]:
        """Current 1-hop bidirectional neighbours (the paper's ``NS``)."""

    @abc.abstractmethod
    def next_hop(self, destination: str) -> Optional[str]:
        """Next hop toward ``destination`` or ``None`` when unroutable."""

    def route_distance(self, destination: str) -> Optional[int]:
        """Known route metric toward ``destination`` (hop count), if any."""
        return None

    def known_destinations(self) -> Set[str]:
        """Destinations the protocol currently holds a route for."""
        return set()

    # ------------------------------------------------- detector integration
    def local_topology_answer(self, link_peer: str) -> bool:
        """Answer an investigation query: "is ``link_peer`` your symmetric neighbour?".

        This is the truthful answer used by well-behaving nodes; liars go
        through :class:`repro.attacks.liar.LiarBehavior` instead.
        """
        return link_peer in self.symmetric_neighbors()

    def peer_advertises(self, peer: str, address: str) -> Optional[bool]:
        """Whether ``peer`` advertises reachability of ``address`` to us.

        ``None`` means the protocol keeps no such second-hand state (AODV
        and geo routing do not); link-state protocols override this.
        """
        return None

    def coverage_of(self, neighbor: str) -> Set[str]:
        """2-hop addresses reachable through ``neighbor``, when tracked."""
        return set()

    def providers_of(self, two_hop_address: str) -> Set[str]:
        """1-hop neighbours claiming to reach ``two_hop_address``, when tracked."""
        return set()

    def is_mpr_selector(self, address: str) -> bool:
        """Whether ``address`` selected this node as a relay (OLSR-specific)."""
        return False

    # -------------------------------------------------------------- reception
    def _on_frame(self, frame: Frame, now: float) -> None:
        payload = frame.payload
        if isinstance(payload, DataPacket):
            self._on_data(payload, frame.source)
        else:
            self.handle_control(payload, frame.source)

    @abc.abstractmethod
    def handle_control(self, payload: object, last_hop: str) -> None:
        """Process one received control payload (packet or message)."""

    # -------------------------------------------------------------- data plane
    def send_data(self, destination: str, payload: object, ttl: int = 32) -> bool:
        """Send a data packet towards ``destination`` using protocol routes.

        Returns ``False`` when no route is known and the protocol cannot
        recover (reactive protocols may instead queue the packet and start
        a route discovery, in which case they return ``True``).
        """
        packet = DataPacket(source=self.node_id, destination=destination,
                            payload=payload, ttl=ttl, hops=[self.node_id])
        return self._route_data(packet)

    def _route_data(self, packet: DataPacket) -> bool:
        next_hop = self.next_hop_for(packet)
        if next_hop is None:
            return self._on_no_route(packet)
        self.interface.unicast(next_hop, packet, size_bytes=64 + 8 * packet.ttl)
        return True

    def next_hop_for(self, packet: DataPacket) -> Optional[str]:
        """Next hop for one specific packet (geo routing uses its history)."""
        return self.next_hop(packet.destination)

    def _on_no_route(self, packet: DataPacket) -> bool:
        """React to an unroutable packet; reactive protocols override."""
        self.log.log(self.now, LogCategory.DROP, "FILTERED",
                     reason="no_route", destination=packet.destination)
        return False

    def _data_filter_probe(self, packet: DataPacket):
        """Object handed to each forward filter for a transiting data packet."""
        return ForwardProbe(originator=packet.source)

    def _on_data(self, packet: DataPacket, last_hop: str) -> None:
        if packet.destination == self.node_id:
            for handler in self.data_handlers:
                handler(packet, last_hop)
            return
        if packet.ttl <= 1:
            self.log.log(self.now, LogCategory.DROP, "TTL_EXPIRED",
                         origin=packet.source, destination=packet.destination)
            return
        for forward_filter in self.forward_filters:
            pseudo = self._data_filter_probe(packet)
            if not forward_filter(pseudo, last_hop, self):
                self.stats.messages_dropped += 1
                self.log.log(self.now, LogCategory.DROP, "FILTERED",
                             reason="data_forward_filter", origin=packet.source,
                             destination=packet.destination)
                return
        packet.ttl -= 1
        packet.hops.append(self.node_id)
        self.log.log(self.now, LogCategory.FORWARD, "RELAYED",
                     origin=packet.source, destination=packet.destination, kind="data")
        self._route_data(packet)

    # ---------------------------------------------------------------- helpers
    def describe(self) -> Dict[str, object]:
        """Summary of the node's protocol state (used by examples/reports)."""
        return {
            "node": self.node_id,
            "protocol": self.protocol_name,
            "symmetric_neighbors": sorted(self.symmetric_neighbors()),
            "routes": len(self.known_destinations()),
        }
