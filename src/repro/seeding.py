"""Stable, process-independent seed derivation.

Python's built-in ``hash`` of a string is salted per interpreter process
(PYTHONHASHSEED), so any RNG seeded with ``seed + hash(node_id)`` draws a
*different* sequence on every run — a reproducibility bug that silently
decorrelates multi-process experiment campaigns from their single-process
reference runs.  These helpers derive per-entity seeds from a CRC32 digest
instead, which is stable across processes, platforms and Python versions.
"""

from __future__ import annotations

import zlib


def stable_digest(label: str) -> int:
    """Process-independent 32-bit digest of ``label``."""
    return zlib.crc32(label.encode("utf-8"))


def stable_seed(base_seed: int, label: str, modulus: int = 2 ** 31) -> int:
    """Derive a deterministic per-``label`` seed from ``base_seed``.

    The combination is injective enough for experiment fan-out (distinct
    labels under the same base seed get distinct, reproducible seeds) and is
    byte-identical across interpreter processes, unlike ``hash``-based
    derivations.
    """
    return (base_seed * 1_000_003 + stable_digest(label)) % modulus
