"""Information-theoretic trust mapping (Sun et al., JSAC 2006).

The paper's trust system is "entropy-based": the uncertainty about a node's
behaviour is measured with the binary entropy of the probability that the
node acts correctly, and trust is derived from that entropy:

* ``T = 1 − H(p)`` when ``p ≥ 0.5`` (more likely good ⇒ positive trust),
* ``T = H(p) − 1`` when ``p < 0.5`` (more likely bad ⇒ negative trust).

Trust is therefore in ``[−1, 1]`` with ``T = 0`` at maximal uncertainty
(``p = 0.5``).  The inverse mapping is obtained by bisection since the binary
entropy has no closed-form inverse.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple


def binary_entropy(p: float) -> float:
    """Binary entropy ``H(p)`` in bits, with the convention ``0·log0 = 0``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def entropy_trust_from_probability(p: float) -> float:
    """Map the probability of correct behaviour to an entropy-based trust value."""
    h = binary_entropy(p)
    if p >= 0.5:
        return 1.0 - h
    return h - 1.0


def probability_from_entropy_trust(trust: float, tolerance: float = 1e-9) -> float:
    """Inverse of :func:`entropy_trust_from_probability` (by bisection).

    For ``trust ≥ 0`` the returned probability is in ``[0.5, 1]``; for
    ``trust < 0`` it is in ``[0, 0.5)``.
    """
    if not -1.0 <= trust <= 1.0:
        raise ValueError(f"trust must be in [-1, 1], got {trust}")
    target_entropy = 1.0 - abs(trust)
    # binary_entropy is increasing on [0, 0.5] and decreasing on [0.5, 1].
    if trust >= 0.0:
        low, high = 0.5, 1.0
        # entropy decreases from 1 to 0 on this interval
        while high - low > tolerance:
            mid = (low + high) / 2.0
            if binary_entropy(mid) > target_entropy:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0
    low, high = 0.0, 0.5
    # entropy increases from 0 to 1 on this interval
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if binary_entropy(mid) < target_entropy:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def trust_from_observations(positive: int, negative: int,
                            prior_positive: float = 1.0,
                            prior_negative: float = 1.0) -> float:
    """Entropy trust computed from counted observations.

    The probability of correct behaviour is estimated with a smoothed
    (Laplace/Beta) ratio, then mapped through the entropy trust function.
    Used by the CAP-OLSR baseline and by tests as a reference point.
    """
    if positive < 0 or negative < 0:
        raise ValueError("observation counts must be non-negative")
    p = (positive + prior_positive) / (positive + negative + prior_positive + prior_negative)
    return entropy_trust_from_probability(p)


def shannon_entropy(probabilities: Iterable[float]) -> float:
    """Shannon entropy (bits) of a discrete distribution.

    Probabilities must be non-negative and sum to 1 within a small tolerance.
    """
    probs = list(probabilities)
    if any(p < 0 for p in probs):
        raise ValueError("probabilities must be non-negative")
    total = sum(probs)
    if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-6):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    return -sum(p * math.log2(p) for p in probs if p > 0.0)


def uncertainty(trust: float) -> float:
    """Remaining uncertainty (entropy) associated with a trust value."""
    return 1.0 - abs(max(-1.0, min(1.0, trust)))


def clamp_unit_interval(value: float, low: float = -1.0, high: float = 1.0) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    return max(low, min(high, value))


def normalised_trust_to_unit(trust: float) -> float:
    """Rescale a trust value from ``[-1, 1]`` to ``[0, 1]``."""
    return (clamp_unit_interval(trust) + 1.0) / 2.0


def unit_to_normalised_trust(value: float) -> float:
    """Rescale a ``[0, 1]`` value to the ``[-1, 1]`` trust range."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"value must be in [0, 1], got {value}")
    return value * 2.0 - 1.0
