"""Trust evidences.

An evidence records one observed activity of a subject node, positive
(beneficial) or negative (harmful), together with the metadata needed to
enforce the paper's five trust properties:

* Property 1 — the sign of ``value`` encodes beneficial vs. harmful.
* Property 2 — ``gravity`` scales the weighting factor α_j.
* Property 3 — ``imminent`` marks evidences belonging to an evolving attack
  signature, which drastically lowers trust.
* Property 4 — ``timestamp`` lets the manager prefer fresh evidences.
* Property 5 — ``firsthand`` distinguishes own observations from the less
  reliable second-hand ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class EvidenceKind(str, enum.Enum):
    """Category of an observed activity."""

    TRAFFIC_RELAYED = "TRAFFIC_RELAYED"
    CORRECT_ANSWER = "CORRECT_ANSWER"
    CONSISTENT_ADVERTISEMENT = "CONSISTENT_ADVERTISEMENT"
    INCORRECT_ANSWER = "INCORRECT_ANSWER"
    TRAFFIC_DROPPED = "TRAFFIC_DROPPED"
    FORGED_MESSAGE = "FORGED_MESSAGE"
    LINK_SPOOFING = "LINK_SPOOFING"
    INVESTIGATION_AGREEMENT = "INVESTIGATION_AGREEMENT"
    INVESTIGATION_DISAGREEMENT = "INVESTIGATION_DISAGREEMENT"
    NO_ANSWER = "NO_ANSWER"

    def __str__(self) -> str:
        return self.value


#: Default gravity (Property 2) per evidence kind.  Harmful activities carry
#: more weight than beneficial ones, which is what makes the trust system
#: "defensive": trust is lost quickly and regained slowly.
DEFAULT_GRAVITY = {
    EvidenceKind.TRAFFIC_RELAYED: 0.5,
    EvidenceKind.CORRECT_ANSWER: 0.5,
    EvidenceKind.CONSISTENT_ADVERTISEMENT: 0.3,
    EvidenceKind.INVESTIGATION_AGREEMENT: 0.5,
    EvidenceKind.INCORRECT_ANSWER: 1.0,
    EvidenceKind.INVESTIGATION_DISAGREEMENT: 1.0,
    EvidenceKind.TRAFFIC_DROPPED: 1.0,
    EvidenceKind.FORGED_MESSAGE: 1.5,
    EvidenceKind.LINK_SPOOFING: 2.0,
    EvidenceKind.NO_ANSWER: 0.0,
}

#: Evidence kinds that are intrinsically harmful (negative value expected).
HARMFUL_KINDS = {
    EvidenceKind.INCORRECT_ANSWER,
    EvidenceKind.TRAFFIC_DROPPED,
    EvidenceKind.FORGED_MESSAGE,
    EvidenceKind.LINK_SPOOFING,
    EvidenceKind.INVESTIGATION_DISAGREEMENT,
}


@dataclass(frozen=True)
class TrustEvidence:
    """One observation about ``subject`` collected by ``observer``."""

    observer: str
    subject: str
    kind: EvidenceKind
    value: float
    timestamp: float = 0.0
    firsthand: bool = True
    gravity: Optional[float] = None
    imminent: bool = False
    details: dict = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        if not -1.0 <= self.value <= 1.0:
            raise ValueError(f"evidence value must be in [-1, 1], got {self.value}")

    @property
    def is_harmful(self) -> bool:
        """Whether the evidence reports a harmful activity (Property 1)."""
        return self.value < 0.0

    @property
    def effective_gravity(self) -> float:
        """Gravity to use: explicit value or the per-kind default (Property 2)."""
        if self.gravity is not None:
            return self.gravity
        return DEFAULT_GRAVITY.get(self.kind, 1.0)

    def weighted(self, alpha: float) -> float:
        """Contribution α_j · e_j of this evidence to Eq. 5."""
        weight = alpha * self.effective_gravity
        if self.imminent and self.is_harmful:
            # Property 3: imminence of an intrusion drastically decreases trust.
            weight *= 2.0
        if not self.firsthand:
            # Property 5: second-hand evidences count less than local ones.
            weight *= 0.5
        return weight * self.value


class EvidenceBatch:
    """Accumulates one slot's evidences grouped by subject.

    Collectors (investigations, forwarding monitors, …) append evidences as
    they observe them; at the end of the slot the whole batch feeds
    :meth:`TrustManager.update_all` in one call, which lets the manager run
    its vectorised Eq. 5 path over every subject at once instead of being
    driven one ``update()`` at a time.  Insertion order per subject is
    preserved — the order evidences are added is the order their α_j·e_j
    contributions are summed.
    """

    __slots__ = ("_by_subject",)

    def __init__(self) -> None:
        self._by_subject: Dict[str, List[TrustEvidence]] = {}

    def add(self, evidence: TrustEvidence) -> None:
        """Record one evidence under its subject."""
        self._by_subject.setdefault(evidence.subject, []).append(evidence)

    def extend(self, evidences: Iterable[TrustEvidence]) -> None:
        """Record several evidences, preserving their order."""
        for evidence in evidences:
            self.add(evidence)

    def by_subject(self) -> Dict[str, List[TrustEvidence]]:
        """The accumulated mapping, ready for ``TrustManager.update_all``."""
        return self._by_subject

    def subjects(self) -> List[str]:
        """Subjects with at least one accumulated evidence."""
        return list(self._by_subject)

    def __len__(self) -> int:
        return sum(len(lst) for lst in self._by_subject.values())

    def __bool__(self) -> bool:
        return bool(self._by_subject)


def beneficial(observer: str, subject: str, kind: EvidenceKind,
               timestamp: float = 0.0, value: float = 1.0,
               firsthand: bool = True) -> TrustEvidence:
    """Build a beneficial (positive) evidence."""
    if value <= 0.0:
        raise ValueError("beneficial evidence requires a positive value")
    return TrustEvidence(observer=observer, subject=subject, kind=kind,
                         value=value, timestamp=timestamp, firsthand=firsthand)


def harmful(observer: str, subject: str, kind: EvidenceKind,
            timestamp: float = 0.0, value: float = -1.0,
            firsthand: bool = True, imminent: bool = False) -> TrustEvidence:
    """Build a harmful (negative) evidence."""
    if value >= 0.0:
        raise ValueError("harmful evidence requires a negative value")
    return TrustEvidence(observer=observer, subject=subject, kind=kind,
                         value=value, timestamp=timestamp, firsthand=firsthand,
                         imminent=imminent)
