"""Entropy-based trust system (Section IV of the paper).

* :mod:`repro.trust.evidence` — trust evidences (Property 1–5 metadata).
* :mod:`repro.trust.entropy` — the information-theoretic trust mapping of
  Sun et al. used to turn observation statistics into trust values.
* :mod:`repro.trust.manager` — direct trust maintenance (Eq. 5) with the
  forgetting factor and gravity weights.
* :mod:`repro.trust.propagation` — concatenated (Eq. 6) and multipath
  (Eq. 7) trust propagation.
* :mod:`repro.trust.confidence` — confidence interval (Eq. 9) and the margin
  of error used by the decision rule (Eq. 10).
* :mod:`repro.trust.recommendation` — recommendation-trust bookkeeping.
"""

from repro.trust.evidence import EvidenceBatch, EvidenceKind, TrustEvidence
from repro.trust.entropy import (
    binary_entropy,
    entropy_trust_from_probability,
    probability_from_entropy_trust,
)
from repro.trust.manager import TrustManager, TrustParameters, TrustRecord
from repro.trust.propagation import (
    batch_multipath_trust,
    concatenated_trust,
    multipath_trust,
    normalised_weights,
)
from repro.trust.confidence import (
    ConfidenceInterval,
    confidence_interval,
    margin_of_error,
    sample_standard_deviation,
    z_value,
)
from repro.trust.recommendation import RecommendationManager

__all__ = [
    "ConfidenceInterval",
    "EvidenceBatch",
    "EvidenceKind",
    "batch_multipath_trust",
    "RecommendationManager",
    "TrustEvidence",
    "TrustManager",
    "TrustParameters",
    "TrustRecord",
    "binary_entropy",
    "concatenated_trust",
    "confidence_interval",
    "entropy_trust_from_probability",
    "margin_of_error",
    "multipath_trust",
    "normalised_weights",
    "probability_from_entropy_trust",
    "sample_standard_deviation",
    "z_value",
]
