"""Confidence interval on the detection result (Equation 9, Section IV-C).

Given the sample of evidences ``e_1 … e_n`` gathered during an investigation,
the margin of error is ``ε = z · σ / √n`` where ``σ`` is the sample standard
deviation and ``z`` the standard-normal quantile of the configured confidence
level.  The confidence interval around the detection aggregate ``Detect`` is
``[Detect − ε, Detect + ε]`` and feeds the three-way decision rule (Eq. 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Two-sided standard-normal quantiles for the usual confidence levels.
Z_TABLE = {
    0.80: 1.2815515655,
    0.90: 1.6448536270,
    0.95: 1.9599639845,
    0.98: 2.3263478740,
    0.99: 2.5758293035,
    0.995: 2.8070337683,
    0.999: 3.2905267315,
}


def z_value(confidence_level: float) -> float:
    """Standard-normal quantile ``z`` for a two-sided confidence level.

    Exact values are returned for the levels in :data:`Z_TABLE`; other levels
    in ``(0, 1)`` are obtained with a rational approximation of the inverse
    normal CDF (Acklam's method), which is accurate to ~1e-9 — far below the
    precision the decision rule needs.
    """
    if not 0.0 < confidence_level < 1.0:
        raise ValueError(f"confidence level must be in (0, 1), got {confidence_level}")
    for level, z in Z_TABLE.items():
        if math.isclose(level, confidence_level, abs_tol=1e-9):
            return z
    # Two-sided: quantile at (1 + cl) / 2.
    return _inverse_normal_cdf((1.0 + confidence_level) / 2.0)


def _inverse_normal_cdf(p: float) -> float:
    """Acklam's rational approximation of the inverse standard normal CDF."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    a = [-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00]
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    )


def sample_standard_deviation(samples: Sequence[float]) -> float:
    """Sample standard deviation ``σ`` with the ``n − 1`` denominator.

    Returns 0 for samples of size 0 or 1 (no spread can be estimated), which
    produces a zero margin of error — the decision is then based on the
    aggregate alone, as the paper does when all evidences agree.
    """
    n = len(samples)
    if n < 2:
        return 0.0
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return math.sqrt(variance)


def margin_of_error(samples: Sequence[float], confidence_level: float = 0.95) -> float:
    """Equation 9: ``ε = z · σ / √n`` (0 when the sample is empty)."""
    n = len(samples)
    if n == 0:
        return 0.0
    sigma = sample_standard_deviation(samples)
    return z_value(confidence_level) * sigma / math.sqrt(n)


def weighted_sample_standard_deviation(
    samples: Sequence[float], weights: Sequence[float]
) -> float:
    """Reliability-weighted sample standard deviation.

    Evidence provided by low-trust nodes should barely widen the confidence
    interval: the spread is computed around the weighted mean with the
    (normalised) trust values as reliability weights.  Falls back to the
    unweighted estimator when every weight is zero.
    """
    if len(samples) != len(weights):
        raise ValueError("samples and weights must have the same length")
    total = sum(weights)
    if total <= 0.0:
        return sample_standard_deviation(samples)
    normalised = [w / total for w in weights]
    mean = sum(w * x for w, x in zip(normalised, samples))
    variance = sum(w * (x - mean) ** 2 for w, x in zip(normalised, samples))
    # Bessel-style correction using the effective sample size.
    n_eff = effective_sample_size(weights)
    if n_eff > 1.0:
        variance *= n_eff / (n_eff - 1.0)
    return math.sqrt(variance)


def effective_sample_size(weights: Sequence[float]) -> float:
    """Kish effective sample size ``(Σw)² / Σw²`` (0 for all-zero weights)."""
    total = sum(weights)
    squares = sum(w * w for w in weights)
    if squares <= 0.0:
        return 0.0
    return (total * total) / squares


def weighted_margin_of_error(
    samples: Sequence[float],
    weights: Sequence[float],
    confidence_level: float = 0.95,
) -> float:
    """Trust-weighted variant of Eq. 9: ``ε = z · σ_w / √n_eff``.

    Low-trust responders contribute little to both the spread and the
    effective sample size, so the interval tightens as the liars' trust —
    and hence their weight — shrinks across investigation rounds.
    """
    if not samples:
        return 0.0
    n_eff = effective_sample_size(weights)
    if n_eff <= 0.0:
        return margin_of_error(samples, confidence_level)
    sigma = weighted_sample_standard_deviation(samples, weights)
    return z_value(confidence_level) * sigma / math.sqrt(n_eff)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a point estimate."""

    center: float
    margin: float
    confidence_level: float
    sample_size: int

    @property
    def lower(self) -> float:
        """Lower bound of the interval."""
        return self.center - self.margin

    @property
    def upper(self) -> float:
        """Upper bound of the interval."""
        return self.center + self.margin

    @property
    def width(self) -> float:
        """Total width of the interval."""
        return 2.0 * self.margin

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval."""
        return self.lower <= value <= self.upper

    def is_conclusive(self, threshold: float) -> bool:
        """Whether the whole interval lies beyond ``±threshold``.

        Used by the decision rule: only when the interval does not straddle
        the undecided region can the investigation be terminated.
        """
        return self.lower >= threshold or self.upper <= -threshold


def confidence_interval(
    samples: Sequence[float],
    center: float,
    confidence_level: float = 0.95,
) -> ConfidenceInterval:
    """Build the confidence interval around ``center`` from the evidence sample."""
    return ConfidenceInterval(
        center=center,
        margin=margin_of_error(samples, confidence_level),
        confidence_level=confidence_level,
        sample_size=len(samples),
    )
