"""Direct trust maintenance (Equation 5 of the paper).

A node ``A`` keeps, for every other node ``I`` it interacts with, a trust
value updated once per time slot Δt::

    T^{A,I}_{Δt} = Σ_j α_j · e^{A,I}_j  +  β · T^{A,I}_{Δ(t−1)}

where the ``e_j`` are the evidences collected about ``I`` during the slot,
``α_j`` reflects their gravity/reputability and freshness, and ``β`` is the
forgetting factor that privileges fresh activity over stale activity.

Two refinements are made explicit here because the paper's figures require
them:

* Trust values live in ``[minimum, maximum]`` (default ``[0, 1]``) with a
  configurable default/initial value (0.4 in the paper's experiments).
* With no evidence at all, the forgetting factor pulls the value back toward
  the default: ``T ← β·T + (1−β)·T_default``.  This is what Figure 2 shows —
  former liars slowly *recover* toward the default after the attack ceases,
  while previously trusted nodes decay back down to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.numerics import numpy_or_none
from repro.trust.evidence import TrustEvidence

#: Minimum number of subjects before ``update_all`` switches to the numpy
#: fast path; below this the array set-up costs more than the Python loop.
_VECTOR_THRESHOLD = 16


@dataclass
class TrustParameters:
    """Tunable parameters of the trust system."""

    #: Weighting factor applied to beneficial evidences (α for e_j > 0).
    alpha_beneficial: float = 0.04
    #: Weighting factor applied to harmful evidences (α for e_j < 0); larger
    #: than the beneficial one, which is the "defensive" design of the paper.
    alpha_harmful: float = 0.08
    #: Forgetting factor β privileging fresh evidences.
    beta: float = 0.95
    #: Default (initial) trust assigned to unknown nodes; 0.4 in the paper.
    default_trust: float = 0.4
    #: Lower / upper bounds of the trust value.
    minimum: float = 0.0
    maximum: float = 1.0
    #: When True, the update is anchored to ``default_trust``: the forgetting
    #: term pulls the value toward the default instead of toward zero.
    decay_to_default: bool = True
    #: Optional slower forgetting factor applied when a node *recovers* from a
    #: trust value below the default with no new evidence.  This implements
    #: the paper's defensive behaviour: a former liar "demands a long
    #: misconduct-less duration" before being trusted again.  ``None`` reuses
    #: ``beta``.
    beta_recovery: Optional[float] = None

    def validate(self) -> None:
        """Raise ``ValueError`` when the parameter combination is inconsistent."""
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        if self.beta_recovery is not None and not 0.0 <= self.beta_recovery <= 1.0:
            raise ValueError("beta_recovery must be in [0, 1]")
        if self.minimum >= self.maximum:
            raise ValueError("minimum must be strictly below maximum")
        if not self.minimum <= self.default_trust <= self.maximum:
            raise ValueError("default_trust must lie within [minimum, maximum]")
        if self.alpha_beneficial < 0 or self.alpha_harmful < 0:
            raise ValueError("alpha factors must be non-negative")


@dataclass
class TrustRecord:
    """Trust state kept about one subject node."""

    subject: str
    value: float
    updates: int = 0
    last_update_time: float = 0.0
    history: List[float] = field(default_factory=list)

    def snapshot(self) -> None:
        """Append the current value to the history (one point per slot)."""
        self.history.append(self.value)


class TrustManager:
    """Maintains the direct trust T(A, I) an observer holds about every subject."""

    def __init__(self, owner: str, parameters: Optional[TrustParameters] = None) -> None:
        self.owner = owner
        self.parameters = parameters or TrustParameters()
        self.parameters.validate()
        self._records: Dict[str, TrustRecord] = {}

    # -------------------------------------------------------------- accessors
    def known_subjects(self) -> List[str]:
        """Every node for which a trust record exists."""
        return sorted(self._records)

    def record_of(self, subject: str) -> TrustRecord:
        """Trust record for ``subject``, created at the default value if absent."""
        record = self._records.get(subject)
        if record is None:
            record = TrustRecord(subject=subject, value=self.parameters.default_trust)
            self._records[subject] = record
        return record

    def trust_of(self, subject: str) -> float:
        """Current trust value for ``subject`` (default when unknown)."""
        record = self._records.get(subject)
        return record.value if record else self.parameters.default_trust

    def set_initial_trust(self, subject: str, value: float) -> None:
        """Initialise the trust of ``subject`` (used by the experiments'
        "randomly set initial trust" step)."""
        clamped = self._clamp(value)
        self._records[subject] = TrustRecord(subject=subject, value=clamped)

    def history_of(self, subject: str) -> List[float]:
        """Per-slot trust history of ``subject`` (one value per update slot)."""
        record = self._records.get(subject)
        return list(record.history) if record else []

    # ---------------------------------------------------------------- updates
    def update(self, subject: str, evidences: Iterable[TrustEvidence],
               now: float = 0.0) -> float:
        """Apply Eq. 5 for one time slot and return the new trust value.

        ``evidences`` are the observations about ``subject`` collected during
        the slot; an empty iterable triggers pure forgetting (decay toward the
        default value when ``decay_to_default`` is set, plain β-scaling
        otherwise).
        """
        params = self.parameters
        record = self.record_of(subject)
        evidence_list = [e for e in evidences if e.subject == subject]

        contribution = 0.0
        for evidence in evidence_list:
            alpha = params.alpha_harmful if evidence.is_harmful else params.alpha_beneficial
            contribution += evidence.weighted(alpha)

        beta = params.beta
        if (
            not evidence_list
            and params.beta_recovery is not None
            and record.value < params.default_trust
        ):
            # Recovering from a below-default (e.g. former liar) value with no
            # fresh evidence is deliberately slower than ordinary forgetting.
            beta = params.beta_recovery

        if params.decay_to_default:
            # Default-anchored exponential forgetting: without evidence the
            # value relaxes toward the default; with evidence the α_j·e_j term
            # pushes it up or down from that anchor.
            new_value = contribution + beta * record.value + (1.0 - beta) * params.default_trust
        else:
            new_value = contribution + beta * record.value

        record.value = self._clamp(new_value)
        record.updates += 1
        record.last_update_time = now
        record.snapshot()
        return record.value

    def update_all(self, evidences_by_subject: Dict[str, List[TrustEvidence]],
                   now: float = 0.0) -> Dict[str, float]:
        """Run one slot update for every subject in the mapping.

        Subjects already known to the manager but absent from the mapping are
        updated with an empty evidence list so forgetting applies uniformly.

        On wide slots (>= 16 subjects) the per-subject Eq. 5 recurrences are
        evaluated as one numpy expression.  The array form reproduces the
        scalar arithmetic operation for operation — same grouping
        ``(contribution + β·T) + ((1−β)·T_default)``, same clamp order — so
        both paths yield bit-identical trust values; only the per-subject
        evidence contribution Σ_j α_j·e_j stays a sequential Python sum,
        because its accumulation order is part of the observable result.
        """
        subjects = sorted(set(evidences_by_subject) | set(self._records))
        np = numpy_or_none()
        if np is not None and len(subjects) >= _VECTOR_THRESHOLD:
            return self._update_all_vector(np, subjects, evidences_by_subject, now)
        results: Dict[str, float] = {}
        for subject in subjects:
            results[subject] = self.update(
                subject, evidences_by_subject.get(subject, []), now=now
            )
        return results

    def _update_all_vector(
        self,
        np,
        subjects: Sequence[str],
        evidences_by_subject: Dict[str, List[TrustEvidence]],
        now: float,
    ) -> Dict[str, float]:
        """One Eq. 5 slot for every subject, as float64 array arithmetic."""
        params = self.parameters
        records = [self.record_of(subject) for subject in subjects]
        values = np.array([record.value for record in records], dtype=np.float64)
        contributions = np.zeros(len(records), dtype=np.float64)
        has_evidence = np.zeros(len(records), dtype=bool)
        for i, subject in enumerate(subjects):
            evidence_list = [
                e for e in evidences_by_subject.get(subject, []) if e.subject == subject
            ]
            if not evidence_list:
                continue
            has_evidence[i] = True
            contribution = 0.0
            for evidence in evidence_list:
                alpha = (
                    params.alpha_harmful if evidence.is_harmful else params.alpha_beneficial
                )
                contribution += evidence.weighted(alpha)
            contributions[i] = contribution

        beta = np.full(len(records), params.beta, dtype=np.float64)
        if params.beta_recovery is not None:
            beta[~has_evidence & (values < params.default_trust)] = params.beta_recovery
        if params.decay_to_default:
            new_values = (contributions + beta * values) + (
                (1.0 - beta) * params.default_trust
            )
        else:
            new_values = contributions + beta * values
        new_values = np.maximum(params.minimum, np.minimum(params.maximum, new_values))

        results: Dict[str, float] = {}
        for subject, record, new_value in zip(subjects, records, new_values):
            value = float(new_value)
            record.value = value
            record.updates += 1
            record.last_update_time = now
            record.history.append(value)
            results[subject] = value
        return results

    def decay_all(self, now: float = 0.0) -> Dict[str, float]:
        """Apply one slot of pure forgetting to every known subject."""
        return self.update_all({}, now=now)

    # ---------------------------------------------------------------- helpers
    def _clamp(self, value: float) -> float:
        return max(self.parameters.minimum, min(self.parameters.maximum, value))

    def normalised_trust(self, subject: str) -> float:
        """Trust rescaled to ``[0, 1]`` regardless of the configured bounds."""
        params = self.parameters
        span = params.maximum - params.minimum
        return (self.trust_of(subject) - params.minimum) / span

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of every subject's current trust value."""
        return {subject: record.value for subject, record in sorted(self._records.items())}
